//! A compact Table II-style benchmark on one synthetic city: statistical
//! baselines, an LSTM, DeepMove and AdaMove, all on the same splits.
//!
//! Run with: `cargo run --release --example city_benchmark [-- tky|lymob]`

use adamove::history::HistoryAttention;
use adamove::{
    evaluate, evaluate_fn, AdaMoveConfig, InferenceMode, LightMob, PttaConfig, Trainer,
    TrainingConfig,
};
use adamove_autograd::ParamStore;
use adamove_baselines::heuristic::HeuristicWeights;
use adamove_baselines::{DeepMove, HeuristicMob, MarkovBaseline, PopularityBaseline};
use adamove_mobility::synth::{generate, Scale};
use adamove_mobility::{
    make_samples, preprocess, CityPreset, PreprocessConfig, SampleConfig, Split,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let preset = match std::env::args().nth(1).as_deref() {
        Some("tky") => CityPreset::Tky,
        Some("lymob") => CityPreset::Lymob,
        _ => CityPreset::Nyc,
    };
    let mut cfg = preset.config(Scale::Small);
    cfg.num_users = 40;
    let raw = generate(&cfg);
    let data = preprocess(&raw, &PreprocessConfig::default());
    let stats = data.stats();
    println!(
        "{}: {} users, {} locations, {} sessions\n",
        stats.name, stats.num_users, stats.num_locations, stats.num_trajectories
    );

    let train = make_samples(&data, Split::Train, &SampleConfig::train());
    let val = make_samples(&data, Split::Val, &SampleConfig::eval(5));
    let test = make_samples(&data, Split::Test, &SampleConfig::eval(5));
    let num_locations = data.num_locations as usize;

    let model_cfg = AdaMoveConfig {
        loc_dim: 32,
        time_dim: 8,
        user_dim: 12,
        hidden: 48,
        lambda: 0.6,
        max_history: 40,
        ..AdaMoveConfig::default()
    };
    let train_cfg = TrainingConfig {
        max_epochs: 10,
        ..TrainingConfig::default()
    };

    println!(
        "{:<22} {:>7} {:>7} {:>7} {:>7}",
        "method", "Rec@1", "Rec@5", "Rec@10", "MRR"
    );

    // Statistical baselines.
    let markov = MarkovBaseline::fit(num_locations, &train);
    let m = evaluate_fn(&test, |s| markov.predict(s)).metrics;
    println!("{:<22} {}", "Markov", m.row());

    let pop = PopularityBaseline::fit(num_locations, &train);
    let m = evaluate_fn(&test, |s| pop.predict(s)).metrics;
    println!("{:<22} {}", "Popularity", m.row());

    let heuristic = HeuristicMob::fit(num_locations, &train, HeuristicWeights::default());
    let m = evaluate_fn(&test, |s| heuristic.predict(s)).metrics;
    println!("{:<22} {}", "HeuristicMob", m.row());

    // LSTM base model (no contrastive branch, frozen inference).
    let mut rng = StdRng::seed_from_u64(1);
    let mut base_store = ParamStore::new();
    let base = LightMob::new(
        &mut base_store,
        AdaMoveConfig {
            lambda: 0.0,
            ..model_cfg.clone()
        },
        data.num_locations,
        data.num_users() as u32,
        &mut rng,
    );
    Trainer::new(train_cfg.clone()).fit(&base, None, &mut base_store, &train, &val);
    let m = evaluate(&base, &base_store, &test, &InferenceMode::Frozen).metrics;
    println!("{:<22} {}", "LSTM", m.row());

    // DeepMove (two-branch).
    let mut dm_store = ParamStore::new();
    let deepmove = DeepMove::new(
        &mut dm_store,
        model_cfg.clone(),
        data.num_locations,
        data.num_users() as u32,
        &mut rng,
    );
    deepmove.train(&mut dm_store, &train, &val, train_cfg.clone());
    let m = evaluate_fn(&test, |s| deepmove.predict(&dm_store, s)).metrics;
    println!("{:<22} {}", "DeepMove", m.row());

    // AdaMove = LightMob (contrastive) + PTTA.
    let mut store = ParamStore::new();
    let light = LightMob::new(
        &mut store,
        model_cfg,
        data.num_locations,
        data.num_users() as u32,
        &mut rng,
    );
    let attention = HistoryAttention::new(&mut store, light.config.hidden, &mut rng);
    Trainer::new(train_cfg).fit(&light, Some(&attention), &mut store, &train, &val);
    let m = evaluate(
        &light,
        &store,
        &test,
        &InferenceMode::Ptta(PttaConfig::default()),
    )
    .metrics;
    println!("{:<22} {}", "AdaMove (ours)", m.row());
}
