//! Quickstart: generate a synthetic city, train LightMob with contrastive
//! history incorporation, and compare frozen inference against PTTA
//! test-time adaptation.
//!
//! Run with: `cargo run --release --example quickstart`

use adamove::history::HistoryAttention;
use adamove::{
    evaluate, AdaMoveConfig, InferenceMode, LightMob, PttaConfig, Trainer, TrainingConfig,
};
use adamove_autograd::ParamStore;
use adamove_mobility::synth::{generate, Scale};
use adamove_mobility::{
    make_samples, preprocess, CityPreset, PreprocessConfig, SampleConfig, Split,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Data: a small synthetic NYC-like city with distribution shift.
    let mut city_cfg = CityPreset::Nyc.config(Scale::Small);
    city_cfg.num_users = 40;
    city_cfg.days = 100;
    let raw = generate(&city_cfg);
    let data = preprocess(&raw, &PreprocessConfig::default());
    let stats = data.stats();
    println!(
        "dataset: {} users, {} locations, {} sessions, {} points",
        stats.num_users, stats.num_locations, stats.num_trajectories, stats.num_points
    );

    // 2. Samples: train with context c = 1, evaluate with c = 5 (§IV-A).
    let train = make_samples(&data, Split::Train, &SampleConfig::train());
    let val = make_samples(&data, Split::Val, &SampleConfig::eval(5));
    let test = make_samples(&data, Split::Test, &SampleConfig::eval(5));
    println!(
        "samples: {} train / {} val / {} test",
        train.len(),
        val.len(),
        test.len()
    );

    // 3. Model: LightMob with an LSTM encoder plus the training-time
    //    history-attention branch (lambda = 0.8 for NYC).
    let mut rng = StdRng::seed_from_u64(42);
    let mut store = ParamStore::new();
    let config = AdaMoveConfig {
        loc_dim: 32,
        time_dim: 8,
        user_dim: 12,
        hidden: 48,
        lambda: 0.8,
        max_history: 40,
        ..AdaMoveConfig::default()
    };
    let model = LightMob::new(
        &mut store,
        config,
        data.num_locations,
        data.num_users() as u32,
        &mut rng,
    );
    let attention = HistoryAttention::new(&mut store, model.config.hidden, &mut rng);
    println!("model: {} parameters", store.num_scalars());

    // 4. Train with the paper's schedule (Adam, plateau decay, early stop).
    let trainer = Trainer::new(TrainingConfig {
        max_epochs: 10,
        verbose: true,
        ..TrainingConfig::default()
    });
    let report = trainer.fit(&model, Some(&attention), &mut store, &train, &val);
    println!(
        "trained {} epochs, best val Rec@1 = {:.4}",
        report.epochs_run, report.best_val_accuracy
    );

    // 5. Evaluate: frozen vs preference-aware test-time adaptation.
    let frozen = evaluate(&model, &store, &test, &InferenceMode::Frozen);
    let adapted = evaluate(
        &model,
        &store,
        &test,
        &InferenceMode::Ptta(PttaConfig::default()),
    );
    println!("\n           Rec@1   Rec@5   Rec@10  MRR");
    println!("frozen     {}", frozen.metrics.row());
    println!("AdaMove    {}", adapted.metrics.row());
    println!(
        "\nPTTA adaptation changed Rec@1 by {:+.1}% at {:.0} us/sample (frozen: {:.0} us).",
        (adapted.metrics.rec1 / frozen.metrics.rec1.max(1e-9) - 1.0) * 100.0,
        adapted.avg_latency_us,
        frozen.avg_latency_us
    );
}
