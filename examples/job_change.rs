//! The paper's Fig. 1(a) motivating story: Alice changes jobs, her mobility
//! pattern shifts from home -> office1 -> bar1 to home -> office2 -> bar2,
//! and a frozen model keeps predicting the old office. PTTA adapts from
//! the trajectory itself.
//!
//! This example builds the scenario explicitly (no simulator), trains a
//! model on pre-change data only, and traces the predictions step by step.
//!
//! Run with: `cargo run --release --example job_change`

use adamove::{AdaMoveConfig, LightMob, Ptta, PttaConfig, Trainer, TrainingConfig};
use adamove_autograd::ParamStore;
use adamove_mobility::{LocationId, Point, Sample, Timestamp, UserId};
use adamove_tensor::stats::rank_of;
use rand::rngs::StdRng;
use rand::SeedableRng;

const HOME: u32 = 0;
const OFFICE1: u32 = 1;
const BAR1: u32 = 2;
const OFFICE2: u32 = 3;
const BAR2: u32 = 4;
const NUM_LOCATIONS: u32 = 6;

fn name(l: u32) -> &'static str {
    match l {
        HOME => "home",
        OFFICE1 => "office#1",
        BAR1 => "bar#1",
        OFFICE2 => "office#2",
        BAR2 => "bar#2",
        _ => "other",
    }
}

/// One day of Alice's life: home(8h) -> office(9h) -> bar(19h) -> home(22h).
fn day(day_idx: i64, office: u32, bar: u32) -> Vec<Point> {
    let h = |hh: i64| Timestamp::from_hours(day_idx * 24 + hh);
    vec![
        Point::new(HOME, h(8)),
        Point::new(office, h(9)),
        Point::new(bar, h(19)),
        Point::new(HOME, h(22)),
    ]
}

/// Sliding-window samples over a stream of days.
fn samples_from_days(days: &[Vec<Point>]) -> Vec<Sample> {
    let mut out = Vec::new();
    for d in days {
        for k in 1..d.len() {
            out.push(Sample {
                user: UserId(0),
                recent: d[..k].to_vec(),
                history: vec![],
                target: d[k].loc,
                target_time: d[k].time,
            });
        }
    }
    out
}

fn main() {
    // Training data: 60 workdays of the OLD routine only.
    let old_days: Vec<Vec<Point>> = (0..60).map(|d| day(d, OFFICE1, BAR1)).collect();
    let train = samples_from_days(&old_days);

    let mut rng = StdRng::seed_from_u64(7);
    let mut store = ParamStore::new();
    let model = LightMob::new(
        &mut store,
        AdaMoveConfig {
            loc_dim: 16,
            time_dim: 8,
            user_dim: 4,
            hidden: 24,
            lambda: 0.0,
            ..AdaMoveConfig::default()
        },
        NUM_LOCATIONS,
        1,
        &mut rng,
    );
    let trainer = Trainer::new(TrainingConfig {
        max_epochs: 12,
        batch_size: 16,
        ..TrainingConfig::default()
    });
    let report = trainer.fit(&model, None, &mut store, &train, &train[..20]);
    println!(
        "trained on the old routine: val Rec@1 = {:.3}\n",
        report.best_val_accuracy
    );

    // Alice changes jobs at day 60. Three days into the new routine, we
    // predict her evening destination from the day's trajectory so far.
    let new_days: Vec<Vec<Point>> = (60..63).map(|d| day(d, OFFICE2, BAR2)).collect();
    let mut recent: Vec<Point> = new_days.iter().flatten().copied().collect();
    // Query: she has just left the new office on day 63; where next?
    recent.push(Point::new(HOME, Timestamp::from_hours(63 * 24 + 8)));
    recent.push(Point::new(OFFICE2, Timestamp::from_hours(63 * 24 + 9)));
    let query = Sample {
        user: UserId(0),
        recent,
        history: old_days.iter().flatten().copied().collect(),
        target: LocationId(BAR2),
        target_time: Timestamp::from_hours(63 * 24 + 19),
    };

    let frozen_scores = model.predict_scores(&store, &query.recent, query.user);
    let ptta = Ptta::new(PttaConfig::default());
    let adapted_scores = ptta.predict_scores(&model, &store, &query);

    println!(
        "Alice is at {} at 19:00 after three days in the new job.",
        name(OFFICE2)
    );
    println!("ground truth next location: {}\n", name(BAR2));
    println!("{:<12} {:>10} {:>10}", "location", "frozen", "adapted");
    for l in 0..NUM_LOCATIONS {
        println!(
            "{:<12} {:>10.3} {:>10.3}",
            name(l),
            frozen_scores[l as usize],
            adapted_scores[l as usize]
        );
    }
    let frozen_rank = rank_of(&frozen_scores, BAR2 as usize);
    let adapted_rank = rank_of(&adapted_scores, BAR2 as usize);
    println!(
        "\nrank of {}: frozen #{frozen_rank} -> adapted #{adapted_rank}",
        name(BAR2)
    );
    assert!(
        adapted_rank <= frozen_rank,
        "adaptation should never demote the true new-routine location"
    );
    if adapted_rank == 1 && frozen_rank > 1 {
        println!("PTTA recovered the new routine that the frozen model missed.");
    }
}
