//! Sharded serving: the deployment shape behind the paper's "real-time
//! applications" claim (§III-B) at multi-user scale.
//!
//! A [`ShardedEngine`] partitions users across worker shards by a stable
//! hash; each shard owns its users' sliding windows and adapts the
//! classifier per predict (Algorithm 1). This demo trains a small model on
//! a synthetic city, replays the test region as live observe/predict
//! traffic through the engine, and prints the serving report — shard
//! occupancy, throughput and p50/p99 predict latency — plus a metrics
//! section read straight from the engine's obs registry: a mid-run
//! `snapshot()`, the flat-JSON export and the Prometheus exposition.
//!
//! The run also demonstrates the self-healing layer: recovery is enabled
//! (checkpoints + write-ahead journal, background supervisor, PTTA
//! circuit breaker), and an injected fault kills one shard a quarter of
//! the way through the replay. The engine respawns it, replays its
//! journal, and the report's respawn/replay/degraded counters show the
//! incident — while the served predictions stay exactly what a crash-free
//! run would have produced.
//!
//! Run with: `cargo run --release --example sharded_serving`

use adamove::{
    shard_of, AdaMoveConfig, Disturbance, EngineConfig, FaultAction, LightMob, PttaConfig,
    RecoveryConfig, RequestKind, ShardedEngine, Trainer, TrainingConfig,
};
use adamove_autograd::ParamStore;
use adamove_mobility::synth::{generate, Scale};
use adamove_mobility::{
    make_samples, preprocess, CityPreset, PreprocessConfig, SampleConfig, Split, Timestamp, UserId,
};
use adamove_tensor::matrix::argmax;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

/// One-shot injected crash: panics `shard` when it processes its `seq`-th
/// request. The per-slot sequence counter survives respawns, so the fault
/// fires exactly once — the respawned worker serves on unharmed.
struct KillAt {
    shard: usize,
    seq: u64,
}

impl Disturbance for KillAt {
    fn action(&self, shard: usize, seq: u64, _kind: RequestKind) -> FaultAction {
        if shard == self.shard && seq == self.seq {
            FaultAction::PanicShard
        } else {
            FaultAction::None
        }
    }
}

fn main() {
    // A small shifted city, trained briefly — enough for the engine to
    // have plausible scores to serve.
    let mut cfg = CityPreset::Nyc.config(Scale::Small);
    cfg.num_users = 30;
    cfg.days = 50;
    cfg.seed = 77;
    let raw = generate(&cfg);
    let data = preprocess(&raw, &PreprocessConfig::default());
    let mut train = make_samples(&data, Split::Train, &SampleConfig::train());
    train.truncate(1500);
    let val = make_samples(&data, Split::Val, &SampleConfig::eval(5));
    let test = make_samples(&data, Split::Test, &SampleConfig::eval(5));
    println!(
        "city: {} users, {} locations, {} train / {} test samples",
        data.num_users(),
        data.num_locations,
        train.len(),
        test.len()
    );

    let mut rng = StdRng::seed_from_u64(77);
    let mut store = ParamStore::new();
    let model = LightMob::new(
        &mut store,
        AdaMoveConfig {
            loc_dim: 16,
            time_dim: 8,
            user_dim: 8,
            hidden: 24,
            lambda: 0.0,
            ..AdaMoveConfig::default()
        },
        data.num_locations,
        data.num_users() as u32,
        &mut rng,
    );
    println!("training...");
    Trainer::new(TrainingConfig {
        max_epochs: 4,
        batch_size: 50,
        val_subsample: Some(200),
        verbose: false,
        ..TrainingConfig::default()
    })
    .fit(&model, None, &mut store, &train, &val);

    // Serve: replay each test sample as traffic. The sample's recent
    // points arrive as observes; the predict then scores the true next
    // location the same way the offline PTTA evaluation would.
    let shards = adamove::available_threads();
    // Self-healing serving: checkpoints + journal make a crashed shard
    // recoverable, a background supervisor respawns corpses even without
    // traffic, and the PTTA breaker guards adaptation against entropy
    // spikes. The injected kill hits one shard a quarter into the replay.
    let victim = shard_of(test.first().map(|s| s.user).unwrap_or(UserId(0)), shards);
    let engine = ShardedEngine::with_disturbance(
        Arc::new(model),
        Arc::new(store),
        EngineConfig {
            shards,
            context_sessions: 5,
            session_hours: 72,
            ptta: PttaConfig::default(),
            recovery: Some(RecoveryConfig {
                breaker: Some(Default::default()),
                supervise_interval: Some(Duration::from_millis(20)),
                ..RecoveryConfig::default()
            }),
            ..EngineConfig::default()
        },
        Some(Arc::new(KillAt {
            shard: victim,
            seq: (test.len() / (4 * shards)) as u64,
        })),
    );
    println!(
        "serving {} requests over {shards} shards (shard {victim} will be killed mid-run)...",
        test.len()
    );
    let mut hits = 0usize;
    let mut answered = 0usize;
    for (i, s) in test.iter().enumerate() {
        for &p in &s.recent {
            engine.observe(s.user, p);
        }
        let now = Timestamp(s.target_time.0);
        if let Some(pred) = engine.predict(s.user, now) {
            answered += 1;
            if argmax(&pred.scores) == s.target.index() {
                hits += 1;
            }
        }
        // Mid-run visibility: the live registry answers "what is the
        // engine doing right now" without pausing the workers.
        if i == test.len() / 2 {
            let snap = engine.snapshot();
            println!(
                "  mid-run snapshot: {} observed, {} predicted, p99 predict {:.1} us, {} faults",
                snap.observed(),
                snap.predictions(),
                snap.predict_latency().percentile(0.99) / 1_000.0,
                snap.shard_down_errors + snap.timeout_errors,
            );
        }
    }

    // ---- metrics section -------------------------------------------------
    // The same registry the engine recorded into, exported both ways.
    // The flat JSON matches the testkit golden format; the Prometheus
    // text is what a scrape endpoint would serve.
    engine.flush();
    let metrics = engine.registry().snapshot();
    println!("\nper-shard predict telemetry (flat JSON export):");
    print!(
        "{}",
        adamove::obs::to_flat_json(&metrics.filter_prefix("engine_predicts_total"))
    );
    println!("prometheus exposition (first lines):");
    for line in adamove::obs::to_prometheus(&metrics).lines().take(6) {
        println!("  {line}");
    }
    let snap = engine.snapshot();
    println!(
        "\nself-healing: {} respawn(s), {} journalled observe(s) replayed, {} degraded prediction(s)",
        snap.respawns, snap.replayed_observes, snap.degraded_predictions
    );
    let report = engine.shutdown();

    println!("\nserving report: {}", report.row());
    println!(
        "total requests/s (observe + predict): {:.0}",
        report.requests_per_sec()
    );
    println!(
        "online Rec@1: {:.4} over {answered} answered predicts",
        hits as f64 / answered.max(1) as f64
    );
    println!(
        "\nEvery user's requests land on one shard in FIFO order, so this run's\nper-user predictions match a single-threaded StreamingPredictor exactly;\nshard count only moves the throughput line."
    );
}
