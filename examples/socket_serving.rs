//! Network serving: the `ShardedEngine` behind a real TCP socket.
//!
//! `adamove-serve` wraps the engine in a zero-dependency, thread-per-core
//! socket front-end speaking a small length-prefixed binary protocol
//! (OBSERVE / PREDICT / SNAPSHOT, typed error replies with retry hints).
//! This demo starts an in-process server on a loopback port, drives it
//! with a few concurrent clients replaying a synthetic mini-city, and
//! shows the three faces of the wire:
//!
//! 1. the happy path — observes and predicts round-tripping with dense
//!    scores bit-identical to what the engine computes in-process,
//! 2. protocol discipline — garbage bytes earn a typed `Malformed`
//!    error, never a hung or crashed connection,
//! 3. operations — a SNAPSHOT frame returns the live metrics registry
//!    (engine + serve counters) as flat JSON over the same socket.
//!
//! Run with: `cargo run --release --example socket_serving`

use adamove::{AdaMoveConfig, EngineConfig, LightMob, PttaConfig, RecoveryConfig, ShardedEngine};
use adamove_autograd::ParamStore;
use adamove_mobility::ministream::nyc_mini;
use adamove_serve::{serve, Client, ErrorCode, Frame, Quality, ServeConfig};
use adamove_testkit::{workload_from_dataset, StreamEvent};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;

fn main() {
    // A seeded mini-city and an untrained tiny model: this demo is about
    // the wire, not accuracy.
    let city = nyc_mini();
    let dataset = city.generate();
    let mut rng = StdRng::seed_from_u64(7);
    let mut store = ParamStore::new();
    let model = LightMob::new(
        &mut store,
        AdaMoveConfig::tiny(),
        city.locations,
        city.users as u32,
        &mut rng,
    );
    let engine = Arc::new(ShardedEngine::new(
        Arc::new(model),
        Arc::new(store),
        EngineConfig {
            shards: 2,
            context_sessions: 2,
            session_hours: 24,
            ptta: PttaConfig::default(),
            recovery: Some(RecoveryConfig::default()),
            ..EngineConfig::default()
        },
    ));

    // Bind an ephemeral loopback port; admission control on defaults.
    let handle = serve(engine, ServeConfig::default()).expect("server start");
    let addr = handle.addr();
    println!("serving on {addr} (2 shards, admission control on)");

    // ---- 1. concurrent clients replay the mini-city ---------------------
    let workload = workload_from_dataset(&dataset, 3, 30);
    let chunks: Vec<_> = workload.chunks(workload.len().div_ceil(3)).collect();
    println!(
        "replaying {} users over {} concurrent client connections...",
        workload.len(),
        chunks.len()
    );
    thread::scope(|scope| {
        for chunk in chunks {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let (mut observes, mut predicts, mut answered) = (0u64, 0u64, 0u64);
                for (user, events) in chunk {
                    for ev in events {
                        match ev {
                            StreamEvent::Observe(p) => {
                                client.observe(user.0, p.loc.0, p.time.0).expect("observe");
                                observes += 1;
                            }
                            StreamEvent::Predict(now) => {
                                predicts += 1;
                                if let Some(pred) =
                                    client.predict(user.0, now.0, true).expect("predict")
                                {
                                    answered += 1;
                                    assert_eq!(pred.quality, Quality::Adapted);
                                    assert!(!pred.scores.is_empty(), "asked for scores");
                                }
                            }
                        }
                    }
                }
                println!(
                    "  client done: {observes} observes, {answered}/{predicts} predicts answered"
                );
            });
        }
    });

    // ---- 2. protocol discipline -----------------------------------------
    // A raw socket speaking HTTP at a binary port: one typed error frame,
    // then the server closes the connection. No hang, no panic.
    let mut raw = TcpStream::connect(addr).expect("raw connect");
    raw.write_all(b"GET / HTTP/1.1\r\n\r\n").expect("write");
    let mut buf = Vec::new();
    let mut chunk = [0u8; 256];
    let frame = loop {
        if let Some((frame, _)) = adamove_serve::decode(&buf, adamove_serve::DEFAULT_MAX_PAYLOAD)
            .expect("server replies are well-formed")
        {
            break frame;
        }
        let n = raw.read(&mut chunk).expect("read");
        assert!(n > 0, "reply expected before close");
        buf.extend_from_slice(&chunk[..n]);
    };
    match frame {
        Frame::Error { code, message, .. } => {
            assert_eq!(code, ErrorCode::Malformed);
            println!("garbage bytes -> typed error: {code} ({message})");
        }
        other => panic!("expected an error frame, got {other:?}"),
    }

    // ---- 3. live metrics over the wire ----------------------------------
    let mut ops = Client::connect(addr).expect("ops connect");
    let snapshot = ops.snapshot().expect("snapshot");
    println!("\nSNAPSHOT (serve_* lines):");
    for line in snapshot.lines().filter(|l| l.contains("serve_")) {
        println!("  {}", line.trim_end_matches(','));
    }
    drop(ops);

    // Orderly shutdown: stop the socket layer, then the engine.
    let engine = handle.stop();
    let engine = Arc::into_inner(engine).expect("sole engine ref");
    let report = engine.shutdown();
    println!("\nengine report: {}", report.row());
    assert!(report.healthy());
    println!("the wire path is pinned bit-identical to the in-process engine by");
    println!("crates/testkit/tests/serve_differential.rs — what you saw here is");
    println!("exactly what a direct ShardedEngine run would have produced.");
}
