//! Teacher-student distillation — the extension the paper's conclusion
//! sketches. A two-branch DeepMove teacher (history at inference) is
//! distilled into a recent-only LightMob student; the student inherits
//! history knowledge without ever reading history at test time, and stays
//! PTTA-compatible.
//!
//! Run with: `cargo run --release --example distill_teacher`

use adamove::{
    distill, evaluate_fn, AdaMoveConfig, DistillConfig, LightMob, Ptta, PttaConfig, Trainer,
    TrainingConfig,
};
use adamove_autograd::ParamStore;
use adamove_baselines::DeepMove;
use adamove_mobility::synth::{generate, Scale};
use adamove_mobility::{
    make_samples, preprocess, CityPreset, PreprocessConfig, SampleConfig, Split,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Small shifted city.
    let mut cfg = CityPreset::Nyc.config(Scale::Small);
    cfg.num_users = 35;
    cfg.days = 90;
    let raw = generate(&cfg);
    let data = preprocess(&raw, &PreprocessConfig::default());
    let train = make_samples(&data, Split::Train, &SampleConfig::train());
    let val = make_samples(&data, Split::Val, &SampleConfig::eval(5));
    let test = make_samples(&data, Split::Test, &SampleConfig::eval(5));
    println!(
        "{}: {} users, {} locations; {} train / {} test samples\n",
        data.name,
        data.num_users(),
        data.num_locations,
        train.len(),
        test.len()
    );

    let model_cfg = AdaMoveConfig {
        loc_dim: 24,
        time_dim: 8,
        user_dim: 8,
        hidden: 32,
        lambda: 0.0,
        max_history: 40,
        ..AdaMoveConfig::default()
    };
    let train_cfg = TrainingConfig {
        max_epochs: 8,
        ..TrainingConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(5);

    // 1. Teacher: DeepMove with explicit history access.
    println!("training DeepMove teacher...");
    let mut teacher_store = ParamStore::new();
    let teacher = DeepMove::new(
        &mut teacher_store,
        model_cfg.clone(),
        data.num_locations,
        data.num_users() as u32,
        &mut rng,
    );
    teacher.train(&mut teacher_store, &train, &val, train_cfg.clone());
    let teacher_out = evaluate_fn(&test, |s| teacher.predict(&teacher_store, s));

    // 2. Student A: LightMob trained directly (hard labels only).
    println!("training plain student...");
    let mut plain_store = ParamStore::new();
    let plain = LightMob::new(
        &mut plain_store,
        model_cfg.clone(),
        data.num_locations,
        data.num_users() as u32,
        &mut rng,
    );
    Trainer::new(train_cfg.clone()).fit(&plain, None, &mut plain_store, &train, &val);
    let plain_out = evaluate_fn(&test, |s| {
        plain.predict_scores(&plain_store, &s.recent, s.user)
    });

    // 3. Student B: LightMob distilled from the teacher.
    println!("distilling student from teacher...");
    let mut distilled_store = ParamStore::new();
    let distilled = LightMob::new(
        &mut distilled_store,
        model_cfg,
        data.num_locations,
        data.num_users() as u32,
        &mut rng,
    );
    distill(
        &distilled,
        &mut distilled_store,
        &train,
        &val,
        &DistillConfig {
            temperature: 2.0,
            alpha: 0.5,
        },
        &train_cfg,
        |s| teacher.predict(&teacher_store, s),
    );
    let distilled_out = evaluate_fn(&test, |s| {
        distilled.predict_scores(&distilled_store, &s.recent, s.user)
    });

    // 4. Distilled student + PTTA: the full future-work pipeline.
    let ptta = Ptta::new(PttaConfig::default());
    let adapted_out = evaluate_fn(&test, |s| {
        ptta.predict_scores(&distilled, &distilled_store, s)
    });

    println!("\n{:<28} Rec@1   Rec@5   Rec@10  MRR", "model");
    println!("{:<28} {}", "DeepMove teacher", teacher_out.metrics.row());
    println!(
        "{:<28} {}",
        "student (hard labels)",
        plain_out.metrics.row()
    );
    println!(
        "{:<28} {}",
        "student (distilled)",
        distilled_out.metrics.row()
    );
    println!(
        "{:<28} {}",
        "student (distilled) + PTTA",
        adapted_out.metrics.row()
    );
    println!(
        "\nThe distilled student consumes only the recent trajectory at inference;\nsoft teacher targets transfer history knowledge the hard labels cannot."
    );
}
