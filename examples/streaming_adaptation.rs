//! Streaming adaptation: the real-time deployment mode §III-B sketches —
//! a sliding window over incoming check-ins keeps the recent trajectory
//! (Definition 3) in memory, and every prediction adapts the classifier to
//! the window's contents.
//!
//! The demo streams a user whose routine shifts mid-stream and plots
//! rolling Rec@1 for the frozen model vs PTTA before and after the shift.
//!
//! Run with: `cargo run --release --example streaming_adaptation`

use adamove::streaming::RecentWindow;
use adamove::{AdaMoveConfig, LightMob, Ptta, PttaConfig, Trainer, TrainingConfig};
use adamove_autograd::ParamStore;
use adamove_mobility::{LocationId, Point, Sample, Timestamp, UserId};
use adamove_tensor::matrix::argmax;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A routine: cycle of (hour, location) visits per day.
fn routine_day(day: i64, stops: &[(i64, u32)], rng: &mut StdRng) -> Vec<Point> {
    stops
        .iter()
        .filter(|_| rng.gen::<f64>() > 0.1) // occasional skipped check-in
        .map(|&(h, l)| Point::new(l, Timestamp::from_hours(day * 24 + h)))
        .collect()
}

fn main() {
    let old_routine = [(8i64, 0u32), (9, 1), (13, 2), (19, 3), (22, 0)];
    let new_routine = [(8i64, 0u32), (9, 5), (13, 6), (19, 7), (22, 0)];
    let mut rng = StdRng::seed_from_u64(11);

    // Train on 80 days of the old routine, with the SAME sliding-window
    // sample construction the deployment loop uses — train/test input
    // lengths must match for the encoder to generalise.
    let mut train = Vec::new();
    let mut train_window = RecentWindow::new(2, 72);
    for d in 0..80 {
        for p in routine_day(d, &old_routine, &mut rng) {
            if !train_window.is_empty() {
                train.push(Sample {
                    user: UserId(0),
                    recent: train_window.points().to_vec(),
                    history: vec![],
                    target: p.loc,
                    target_time: p.time,
                });
            }
            train_window.push(p);
        }
    }
    let mut store = ParamStore::new();
    let model = LightMob::new(
        &mut store,
        AdaMoveConfig {
            loc_dim: 16,
            time_dim: 8,
            user_dim: 4,
            hidden: 24,
            lambda: 0.0,
            ..AdaMoveConfig::default()
        },
        9,
        1,
        &mut rng,
    );
    Trainer::new(TrainingConfig {
        max_epochs: 10,
        batch_size: 32,
        ..TrainingConfig::default()
    })
    .fit(&model, None, &mut store, &train, &train[..40]);

    // Stream 30 more days; the routine shifts at day 95.
    let ptta = Ptta::new(PttaConfig::default());
    let mut window = RecentWindow::new(2, 72);
    let mut stats = [[0usize; 2]; 4]; // [pre/post][frozen/adapted] hits
    let mut totals = [0usize; 2];

    println!("streaming days 80..110 (routine shifts at day 95)\n");
    for d in 80..110 {
        let shifted = d >= 95;
        let routine = if shifted { &new_routine } else { &old_routine };
        let pts = routine_day(d, routine, &mut rng);
        for p in pts {
            if !window.is_empty() {
                let sample = Sample {
                    user: UserId(0),
                    recent: window.points().to_vec(),
                    history: vec![],
                    target: p.loc,
                    target_time: p.time,
                };
                let frozen = model.predict_scores(&store, &sample.recent, sample.user);
                let adapted = ptta.predict_scores(&model, &store, &sample);
                let idx = usize::from(shifted);
                totals[idx] += 1;
                if argmax(&frozen) == p.loc.index() {
                    stats[idx][0] += 1;
                }
                if argmax(&adapted) == p.loc.index() {
                    stats[idx][1] += 1;
                }
            }
            window.push(p);
        }
    }

    let pct = |h: usize, t: usize| 100.0 * h as f64 / t.max(1) as f64;
    println!("{:<22} {:>10} {:>10}", "phase", "frozen", "PTTA");
    println!(
        "{:<22} {:>9.1}% {:>9.1}%",
        "before shift",
        pct(stats[0][0], totals[0]),
        pct(stats[0][1], totals[0])
    );
    println!(
        "{:<22} {:>9.1}% {:>9.1}%",
        "after shift",
        pct(stats[1][0], totals[1]),
        pct(stats[1][1], totals[1])
    );
    println!(
        "\nAfter the shift the frozen model keeps predicting the old routine; PTTA\nrebuilds the classifier from the window and recovers accuracy — the paper's\ncore claim, in streaming form."
    );
    let _ = LocationId(0);
}
