#!/usr/bin/env bash
# Best-effort Miri pass over the obs registry laws.
#
# Usage: scripts/miri.sh
#
# Miri interprets MIR and checks the memory model directly (Stacked
# Borrows, data races under weak memory, UB in unsafe blocks) — it
# catches ordering bugs TSan's happens-before race detector cannot, at
# the cost of a ~3-4 orders-of-magnitude slowdown. Complementary to
# scripts/tsan.sh (real execution, instrumented std) and the
# `--cfg adamove_verify` model checker (exhaustive schedules over
# ported models).
#
# Needs a nightly toolchain with the miri component; offline boxes
# usually lack one, so every precondition failure is a graceful skip
# (exit 0) with an explanation — the tier-1 gate never depends on this
# script.
set -euo pipefail
cd "$(dirname "$0")/.."

skip() {
    echo "miri.sh: skipping — $1"
    exit 0
}

command -v rustup >/dev/null 2>&1 || skip "rustup not installed"
rustup toolchain list 2>/dev/null | grep -q '^nightly' \
    || skip "no nightly toolchain (rustup toolchain install nightly)"
rustup component list --toolchain nightly 2>/dev/null \
    | grep -q 'miri.*(installed)' \
    || skip "nightly lacks miri (rustup component add miri --toolchain nightly)"

export CARGO_TARGET_DIR="$PWD/target-miri"
# First run builds a Miri-ready sysroot, which needs network for the
# std sources' deps — another reason this is best-effort, not a gate.
cargo +nightly miri setup >/dev/null 2>&1 \
    || skip "cargo miri setup failed (likely offline)"

echo "miri.sh: running Miri on the obs registry laws"
# The 8-thread × 50k-increment hammer is a throughput test, not an
# ordering test — under Miri's interpreter it would take hours while
# exercising the same atomics the other tests already cover, so it is
# skipped. PROPTEST_CASES trims the seeded property suites to a handful
# of cases each; Miri checks every execution it sees exhaustively, so
# volume buys little here.
PROPTEST_CASES=4 cargo +nightly miri test -p adamove-obs --test registry_laws \
    -- --skip eight_threads_of_increments_lose_nothing
echo "miri.sh: Miri pass green"
