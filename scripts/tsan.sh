#!/usr/bin/env bash
# Best-effort ThreadSanitizer pass over the concurrency-heavy crates.
#
# Usage: scripts/tsan.sh
#
# TSan needs a nightly toolchain with the rust-src component so std can
# be rebuilt instrumented (-Zbuild-std). Offline boxes usually lack one
# or both, so every precondition failure is a graceful skip (exit 0)
# with an explanation — the tier-1 gate never depends on this script.
# When available, it runs the sharded-engine and observability tests,
# the two places real data races could hide (everything else is
# single-threaded by construction).
set -euo pipefail
cd "$(dirname "$0")/.."

skip() {
    echo "tsan.sh: skipping — $1"
    exit 0
}

command -v rustup >/dev/null 2>&1 || skip "rustup not installed"
rustup toolchain list 2>/dev/null | grep -q '^nightly' \
    || skip "no nightly toolchain (rustup toolchain install nightly)"
rustup component list --toolchain nightly 2>/dev/null \
    | grep -q 'rust-src.*(installed)' \
    || skip "nightly lacks rust-src (rustup component add rust-src --toolchain nightly)"

host=$(rustc -vV | sed -n 's/^host: //p')
[ -n "$host" ] || skip "could not determine host target triple"

echo "tsan.sh: running ThreadSanitizer on $host (engine/recovery/streaming + obs + verify shims)"
export RUSTFLAGS="-Zsanitizer=thread"
export RUSTDOCFLAGS="-Zsanitizer=thread"
export CARGO_TARGET_DIR="$PWD/target-tsan"
# Fail on the first report instead of printing and continuing, and keep
# both stacks when a (potential) deadlock is flagged. Callers can still
# append their own options via the environment.
export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1${TSAN_OPTIONS:+ $TSAN_OPTIONS}"
# TSan throws false positives on some std initialisation paths unless
# std itself is instrumented, hence -Zbuild-std (needs rust-src, and
# typically network for the std deps — another reason this is
# best-effort rather than a gate).
run() {
    cargo +nightly test -Zbuild-std --target "$host" "$@"
}
run -p adamove-obs
run -p adamove --lib -- engine:: recovery:: streaming::
# Engine + registry wired together across threads (fault counters vs
# typed errors, retire_shard handshake).
run -p adamove-testkit --test obs_telemetry
# Without --cfg adamove_verify the shims are the real std/atomic
# primitives, so the model suites run their ported algorithms on real
# threads — exactly the build TSan should see.
run -p adamove-verify
echo "tsan.sh: ThreadSanitizer pass green"
