#!/usr/bin/env bash
# Run cargo against the offline dependency stubs in .devstubs/.
#
# For fully offline development boxes with an empty cargo registry: the
# stubs are injected with a transient `.cargo/config.toml` holding
# `[patch.crates-io]` entries (removed on exit), so the committed manifests
# keep depending on the real crates. A config *file* rather than
# `--config` CLI flags because subcommands like `cargo clippy` re-invoke
# cargo internally and would drop CLI-level config. Artifacts go to
# target-offline/ and the stub-resolved Cargo.lock is kept out of the way
# so a normal networked `cargo build` is unaffected.
#
# Usage: scripts/offline-check.sh <cargo-subcommand> [args...]
#   e.g. scripts/offline-check.sh check --workspace --all-targets
#        scripts/offline-check.sh test -q
#        scripts/offline-check.sh clippy --workspace -- -D warnings
#
# `scripts/offline-check.sh full` mirrors the tier-1 gate in check.sh
# against the stubs: workspace tests, the adamove-testkit suites by name,
# a golden-drift guard, fmt, and clippy with warnings denied. Note the
# stubs' serde_json/rand replacements make a handful of serialization
# round-trip tests fail offline that pass against the real crates.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${1:-}" = "full" ]; then
    self="$0"
    # The stubs' serde_json (non-JSON byte format) and rand (different
    # stream) make exactly these tests fail offline; they pass against the
    # real crates and stay in the networked check.sh gate. Skip them here
    # so any offline failure is a real regression.
    "$self" test -q --workspace -- \
        --skip checkpoint_round_trip_preserves_predictions \
        --skip io::tests::corrupt_processed_json_is_rejected \
        --skip io::tests::processed_json_round_trip \
        --skip ptta::tests::repeated_visits_reinforce_the_revisited_location \
        --skip serialize::tests::
    "$self" test -q -p adamove-testkit
    # Batched == per-sample: the differential oracle over the
    # forward_batch paths (metrics and ranks bit-identical across batch
    # sizes and thread counts).
    "$self" test -q -p adamove-testkit --test batched_equivalence
    # Observability smoke: registry laws plus the end-to-end path —
    # engine under load → snapshot → flat-JSON export → parse → keys.
    "$self" test -q -p adamove-obs
    "$self" test -q -p adamove-testkit --test obs_telemetry
    # Restart drill: SIGKILL the real daemon mid-load, restart from
    # --state-dir, require bit-identical replies versus a never-crashed
    # golden run (see check.sh).
    "$self" test -q -p adamove-serve --test restart_drill
    # Concurrency verification: the crates/verify model suites — plain
    # build (real threads, smoke) and the exhaustive `--cfg adamove_verify`
    # build, which swaps in the mini-loom model-checker shims. Separate
    # target dir: RUSTFLAGS changes every crate's fingerprint (see check.sh).
    "$self" test -q -p adamove-verify
    RUSTFLAGS="--cfg adamove_verify" CARGO_TARGET_DIR="$PWD/target-verify" \
        "$self" test -q -p adamove-verify
    # Golden drift: regenerated-but-uncommitted changes to checked-in
    # baselines (new, not-yet-tracked baselines are fine mid-PR).
    if ! git diff --quiet HEAD -- crates/testkit/tests/golden 2>/dev/null; then
        echo "offline-check.sh: golden baselines drifted (uncommitted changes under crates/testkit/tests/golden)" >&2
        git --no-pager diff --stat HEAD -- crates/testkit/tests/golden >&2
        exit 1
    fi
    # Serving SLO smoke: open-loop load against the socket front-end,
    # gating on predict rate / p99 / zero unexpected errors. One retry
    # absorbs one-off tail poisoning on a 1-CPU box (see check.sh).
    "$self" run -q --release -p adamove-bench --bin loadgen -- --quick --no-metrics ||
        "$self" run -q --release -p adamove-bench --bin loadgen -- --quick --no-metrics
    # DIAG smoke: deterministic shed + typed error over loopback; the
    # flight-recorder dump fetched with a DIAG frame must parse and
    # carry those anomalies (see check.sh).
    "$self" run -q --release -p adamove-testkit --example diag_smoke
    "$self" fmt --check
    "$self" clippy --workspace --all-targets -- -D warnings
    # Repo-specific invariants clippy cannot see (determinism, panic-free
    # serving files, metric naming, suppression hygiene): see crates/lint.
    "$self" run -q -p adamove-lint
    echo "offline-check.sh: all offline gates green"
    exit 0
fi

STUBS="$PWD/.devstubs"
LOCK_KEEP="$STUBS/Cargo.lock.offline"
CONFIG=.cargo/config.toml

if [ -e "$CONFIG" ]; then
    echo "offline-check.sh: refusing to overwrite existing $CONFIG" >&2
    exit 1
fi

cleanup() {
    rm -f "$CONFIG"
    rmdir .cargo 2>/dev/null || true
    # The stub-resolved lockfile must never shadow a real resolution.
    if [ -f Cargo.lock ]; then
        mv Cargo.lock "$LOCK_KEEP"
    fi
}
trap cleanup EXIT

# Reuse the previous stub resolution if we have one.
if [ -f "$LOCK_KEEP" ] && [ ! -f Cargo.lock ]; then
    cp "$LOCK_KEEP" Cargo.lock
fi

mkdir -p .cargo
{
    echo "[patch.crates-io]"
    for dep in rand serde serde_json proptest criterion; do
        echo "${dep} = { path = \"${STUBS}/${dep}\" }"
    done
} > "$CONFIG"

# CARGO_TARGET_DIR is overridable so flag-changing runs (e.g. the
# `--cfg adamove_verify` model-checking build, which sets RUSTFLAGS and
# target-verify/) don't thrash the plain offline build's fingerprints.
CARGO_TARGET_DIR="${CARGO_TARGET_DIR:-$PWD/target-offline}" CARGO_NET_OFFLINE=true cargo "$@"
