#!/usr/bin/env bash
# Run cargo against the offline dependency stubs in .devstubs/.
#
# For fully offline development boxes with an empty cargo registry: the
# stubs are injected with a transient `.cargo/config.toml` holding
# `[patch.crates-io]` entries (removed on exit), so the committed manifests
# keep depending on the real crates. A config *file* rather than
# `--config` CLI flags because subcommands like `cargo clippy` re-invoke
# cargo internally and would drop CLI-level config. Artifacts go to
# target-offline/ and the stub-resolved Cargo.lock is kept out of the way
# so a normal networked `cargo build` is unaffected.
#
# Usage: scripts/offline-check.sh <cargo-subcommand> [args...]
#   e.g. scripts/offline-check.sh check --workspace --all-targets
#        scripts/offline-check.sh test -q
#        scripts/offline-check.sh clippy --workspace -- -D warnings
set -euo pipefail
cd "$(dirname "$0")/.."

STUBS="$PWD/.devstubs"
LOCK_KEEP="$STUBS/Cargo.lock.offline"
CONFIG=.cargo/config.toml

if [ -e "$CONFIG" ]; then
    echo "offline-check.sh: refusing to overwrite existing $CONFIG" >&2
    exit 1
fi

cleanup() {
    rm -f "$CONFIG"
    rmdir .cargo 2>/dev/null || true
    # The stub-resolved lockfile must never shadow a real resolution.
    if [ -f Cargo.lock ]; then
        mv Cargo.lock "$LOCK_KEEP"
    fi
}
trap cleanup EXIT

# Reuse the previous stub resolution if we have one.
if [ -f "$LOCK_KEEP" ] && [ ! -f Cargo.lock ]; then
    cp "$LOCK_KEEP" Cargo.lock
fi

mkdir -p .cargo
{
    echo "[patch.crates-io]"
    for dep in rand serde serde_json proptest criterion; do
        echo "${dep} = { path = \"${STUBS}/${dep}\" }"
    done
} > "$CONFIG"

CARGO_TARGET_DIR="$PWD/target-offline" CARGO_NET_OFFLINE=true cargo "$@"
