#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green.
#
# Usage: scripts/check.sh
#
# Runs against the real crates-io dependencies and therefore needs network
# (or a primed cargo cache). For fully-offline development against the
# API-compatible stubs in .devstubs/, use scripts/offline-check.sh instead.

set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q --workspace
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
echo "check.sh: all gates green"
