#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green.
#
# Usage: scripts/check.sh
#
# Runs against the real crates-io dependencies and therefore needs network
# (or a primed cargo cache). For fully-offline development against the
# API-compatible stubs in .devstubs/, use scripts/offline-check.sh instead
# (`scripts/offline-check.sh full` mirrors this gate).

set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q --workspace
# The testkit suites run as part of the workspace pass above; re-run them
# by name so a failure in the differential oracles, golden traces, or
# fault-injection suites is unmistakable in CI logs.
cargo test -q -p adamove-testkit
# Batched == per-sample: the differential oracle over the forward_batch
# paths (metrics and per-sample ranks bit-identical across batch sizes
# and thread counts) — the contract the batched serving path relies on.
cargo test -q -p adamove-testkit --test batched_equivalence
# Observability smoke: registry laws (concurrency, percentile bounds,
# merge == sequential) plus the end-to-end path — engine under load →
# snapshot → flat-JSON export → parse → required keys present.
cargo test -q -p adamove-obs
cargo test -q -p adamove-testkit --test obs_telemetry
# Restart drill: SIGKILL the real adamove_serve binary mid-load, restart
# it from --state-dir, and require bit-identical replies versus a
# never-crashed golden run (plus the graceful-drain / zero-replay path).
# Runs in the workspace pass too; named here so a durability regression
# is unmistakable in CI logs.
cargo test -q -p adamove-serve --test restart_drill
# Concurrency verification: the crates/verify model suites. The plain
# build runs the ported hot-path models on real threads (smoke); the
# `--cfg adamove_verify` build swaps the sync shims for the mini-loom
# model checker and exhaustively explores every interleaving. A separate
# target dir because RUSTFLAGS changes every crate's fingerprint.
cargo test -q -p adamove-verify
RUSTFLAGS="--cfg adamove_verify" CARGO_TARGET_DIR="$PWD/target-verify" \
    cargo test -q -p adamove-verify
# Golden drift: the comparison tests fail on numerical drift; this guard
# additionally catches a regenerated-but-uncommitted baseline (new,
# not-yet-tracked baselines are fine mid-PR).
if ! git diff --quiet HEAD -- crates/testkit/tests/golden 2>/dev/null; then
    echo "check.sh: golden baselines drifted (uncommitted changes under crates/testkit/tests/golden)" >&2
    git --no-pager diff --stat HEAD -- crates/testkit/tests/golden >&2
    exit 1
fi
# Serving smoke: a 3-second open-loop load test against the socket
# front-end, gating on its SLOs (sustained predict rate, predict p99,
# zero unexpected wire errors). --no-metrics keeps the committed
# BENCH_serving.json out of CI's hands. One retry: on a 1-CPU runner a
# single ~100 ms preemption of the sender (e.g. residual compile/cache
# activity) can poison the 3-second tail; a persistent SLO breach still
# fails both attempts.
cargo run -q --release -p adamove-bench --bin loadgen -- --quick --no-metrics ||
    cargo run -q --release -p adamove-bench --bin loadgen -- --quick --no-metrics
# DIAG smoke: force a deterministic shed + typed error over loopback and
# verify the flight-recorder dump fetched with a DIAG frame parses and
# carries those anomalies (request ids, kinds).
cargo run -q --release -p adamove-testkit --example diag_smoke
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
# Repo-specific invariants clippy cannot see (determinism, panic-free
# serving files, metric naming, suppression hygiene): see crates/lint.
cargo run -q -p adamove-lint
echo "check.sh: all gates green"
