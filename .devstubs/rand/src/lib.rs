//! Offline API stub of `rand 0.8`: same surface, different stream.
//!
//! The generator is SplitMix64, not ChaCha12, so seed-derived values do
//! not match the real crate — fine for compilation and invariance-style
//! tests, wrong for golden-value tests.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: everything derives from `next_u64`.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// SplitMix64 step.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types producible by [`Rng::gen`].
pub trait Generable {
    /// Draw one value.
    fn generate(rng: &mut dyn RngCore) -> Self;
}

impl Generable for u64 {
    fn generate(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}
impl Generable for u32 {
    fn generate(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}
impl Generable for bool {
    fn generate(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Generable for f64 {
    fn generate(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
impl Generable for f32 {
    fn generate(rng: &mut dyn RngCore) -> Self {
        ((rng.next_u64() >> 40) as f32) / (1u64 << 24) as f32
    }
}

/// Types drawable from a range by [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw from `[lo, hi)` (`hi` included when `inclusive`).
    fn sample_between(lo: Self, hi: Self, inclusive: bool, rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between(lo: Self, hi: Self, inclusive: bool, rng: &mut dyn RngCore) -> Self {
                let lo_w = lo as i128;
                let hi_w = hi as i128 + if inclusive { 1 } else { 0 };
                assert!(lo_w < hi_w, "gen_range: empty range");
                let span = (hi_w - lo_w) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo_w + v as i128) as $t
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between(lo: Self, hi: Self, _inclusive: bool, rng: &mut dyn RngCore) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                lo + (u as $t) * (hi - lo)
            }
        }
    )*};
}
impl_sample_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_one(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_one(self, rng: &mut dyn RngCore) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_one(self, rng: &mut dyn RngCore) -> T {
        T::sample_between(*self.start(), *self.end(), true, rng)
    }
}

/// The user-facing RNG trait (subset of real `rand::Rng`).
pub trait Rng: RngCore {
    /// Random value of an inferred type.
    fn gen<T: Generable>(&mut self) -> T
    where
        Self: Sized,
    {
        T::generate(self)
    }

    /// Random value in `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_one(self)
    }

    /// Bernoulli draw.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Generable>::generate(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding interface (subset of real `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Derive a full state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.
    use super::*;

    /// Stand-in for `rand::rngs::StdRng` (SplitMix64 inside).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self {
                state: seed ^ 0x5851_F42D_4C95_7F2D,
            }
        }
    }
}

pub mod seq {
    //! Slice helpers.
    use super::*;

    /// Subset of `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// Uniformly random element.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}
