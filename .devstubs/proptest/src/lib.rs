//! Offline API stub of `proptest 1`: a deterministic mini property runner.
//!
//! Generates pseudo-random values from a splitmix64 stream (seeded per test
//! name, so runs are reproducible) and executes each property body for the
//! configured number of cases. No shrinking, no persistence, no regression
//! file replay — just enough surface for this workspace's property tests to
//! compile and exercise their bodies offline.

use std::ops::Range;

/// Deterministic pseudo-random source used by stub strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a stream from a test name so every run is reproducible.
    pub fn for_test(name: &str) -> Self {
        let mut seed = 0x9e37_79b9_7f4a_7c15u64;
        for b in name.bytes() {
            seed = seed.wrapping_mul(0x100_0000_01b3).wrapping_add(b as u64);
        }
        Self { state: seed }
    }

    /// Next value from the splitmix64 stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Stand-in for `proptest::strategy::Strategy` (generation only).
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Derive a dependent strategy from generated values.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                let off = (rng.next_u64() as i128).rem_euclid(span);
                ((self.start as i128) + off) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.next_unit() as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

pub mod bool {
    //! Boolean strategies.

    use super::{Strategy, TestRng};

    /// Strategy type behind [`ANY`].
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification accepted by [`vec`].
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { start: n, end: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { start: r.start, end: r.end }
        }
    }

    /// Strategy for `Vec<S::Value>` with a random length.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Vectors of `elem` values with length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Stand-in for `proptest::test_runner::Config`.
#[derive(Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

impl ProptestConfig {
    /// Default config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

pub mod prelude {
    //! Mirror of `proptest::prelude`.

    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{ProptestConfig, Strategy};

    pub mod prop {
        //! Qualified-path access, mirroring `prelude::prop`.
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Stand-in for `proptest::prop_assert!` (panics instead of returning Err).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Stand-in for `proptest::prop_assert_eq!` (panics instead of returning Err).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Stand-in for `proptest::proptest!`: runs each body `config.cases` times
/// with freshly generated inputs. No shrinking or regression replay.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(stringify!($name));
            for _case in 0..config.cases {
                let ($($pat,)*) =
                    ($($crate::Strategy::generate(&($strat), &mut rng),)*);
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}
