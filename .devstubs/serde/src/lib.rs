//! Offline API stub of `serde`: blanket-implemented marker traits plus the
//! no-op derives. Enough for `#[derive(Serialize, Deserialize)]` and
//! `T: Serialize` bounds to compile; no actual (de)serialisation happens.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

pub mod de {
    //! Deserialisation markers.

    /// Marker stand-in for `serde::Deserialize`; blanket-implemented.
    pub trait Deserialize<'de> {}
    impl<'de, T: ?Sized> Deserialize<'de> for T {}

    /// Marker stand-in for `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned {}
    impl<T: ?Sized> DeserializeOwned for T {}
}
