//! Offline API stub of `serde_json`: compiles everywhere, parses nothing.

use std::fmt;

/// Stand-in for `serde_json::Error`.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Serialise to JSON — the stub emits a placeholder document.
pub fn to_string<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String, Error> {
    Ok("{\"offline-stub\":true}".to_string())
}

/// Pretty-serialise to JSON — the stub emits a placeholder document.
pub fn to_string_pretty<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String, Error> {
    to_string(_value)
}

/// Parse JSON — the stub has no parser and always errors.
pub fn from_str<T>(_s: &str) -> Result<T, Error> {
    Err(Error {
        msg: "serde_json offline stub cannot parse".to_string(),
    })
}
