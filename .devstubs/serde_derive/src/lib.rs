//! Stub derive macros: the stub `serde` traits have blanket impls, so the
//! derives mostly need to swallow the attribute syntax. They additionally
//! emit an inert method that reads every named field, mirroring the fact
//! that real serde codegen uses the fields — otherwise `Serialize`-only
//! structs would trip the `dead_code` lint under the stubs but not under
//! the real dependencies.

use proc_macro::{Delimiter, Spacing, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    field_use_impl(input, "__serde_stub_ser")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    field_use_impl(input, "__serde_stub_de")
}

/// For `struct Name { a: T, ... }` (non-generic, named fields) produce
/// `impl Name { #[allow(dead_code)] fn <method>(&self) { let _ = &self.a; ... } }`.
/// Anything else (enums, tuple/unit structs, generics) degrades to a no-op.
fn field_use_impl(input: TokenStream, method: &str) -> TokenStream {
    let mut iter = input.into_iter();
    let mut name = None;
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            match id.to_string().as_str() {
                "struct" => {
                    if let Some(TokenTree::Ident(n)) = iter.next() {
                        name = Some(n.to_string());
                    }
                    break;
                }
                "enum" | "union" => return TokenStream::new(),
                _ => {}
            }
        }
    }
    let Some(name) = name else {
        return TokenStream::new();
    };
    // A brace group right after the name means named fields, no generics.
    let Some(TokenTree::Group(group)) = iter.next() else {
        return TokenStream::new();
    };
    if group.delimiter() != Delimiter::Brace {
        return TokenStream::new();
    }

    // A field name is the ident right before a lone ':' at angle depth 0
    // (the ':' of '::' path separators is either Joint or preceded /
    // followed by another ':').
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut angle = 0i32;
    for i in 0..toks.len() {
        let TokenTree::Punct(p) = &toks[i] else {
            continue;
        };
        match p.as_char() {
            '<' => angle += 1,
            '>' => angle -= 1,
            ':' if angle == 0 && p.spacing() == Spacing::Alone && i > 0 => {
                let part_of_path = matches!(&toks[i - 1], TokenTree::Punct(q) if q.as_char() == ':')
                    || matches!(toks.get(i + 1), Some(TokenTree::Punct(q)) if q.as_char() == ':');
                if !part_of_path {
                    if let TokenTree::Ident(id) = &toks[i - 1] {
                        fields.push(id.to_string());
                    }
                }
            }
            _ => {}
        }
    }

    let body: String = fields
        .iter()
        .map(|f| format!("let _ = &self.{f};"))
        .collect();
    format!(
        "#[automatically_derived] impl {name} {{ \
           #[allow(dead_code)] fn {method}(&self) {{ {body} }} \
         }}"
    )
    .parse()
    .expect("stub derive generated invalid tokens")
}
