//! Offline API stub of `criterion 0.5`: runs each benchmark body a handful
//! of times and prints a rough per-iteration time. No statistics, plots or
//! CLI — just enough to compile and smoke-run `cargo bench` offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Stand-in for `criterion::Criterion`.
pub struct Criterion {
    iterations: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { iterations: 10 }
    }
}

impl Criterion {
    /// Accepted and ignored (the stub has no warm-up phase).
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted and ignored (the stub runs a fixed iteration count).
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Sets how many times each body runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.iterations = n.max(1) as u64;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iterations: self.iterations,
            elapsed: Duration::ZERO,
            timed_iters: 0,
        };
        f(&mut b);
        let per_iter = if b.timed_iters > 0 {
            b.elapsed / b.timed_iters as u32
        } else {
            Duration::ZERO
        };
        println!("bench {id}: ~{per_iter:?}/iter (offline stub)");
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        println!("group {} (offline stub)", name.into());
        BenchmarkGroup { parent: self }
    }
}

/// Stand-in for `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Run one named benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.parent.bench_function(id, f);
        self
    }

    /// Accepted and ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted and ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Stand-in for `criterion::Bencher`.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
    timed_iters: u64,
}

impl Bencher {
    /// Time `f` over the configured iteration count.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.elapsed += start.elapsed();
        self.timed_iters += self.iterations;
    }
}

/// Stand-in for `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Stand-in for `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
