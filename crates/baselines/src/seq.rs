//! Recent-only neural sequence baselines.
//!
//! `SeqBaseline` wraps the base model (embeddings + sequence encoder + FC
//! predictor) with the contrastive branch disabled — exactly the paper's
//! **LSTM** baseline (and the **Base Model** ablation of Fig. 4) when built
//! with an LSTM encoder. With a Transformer encoder and a history tail
//! prepended to the input it stands in for **MHSA** (multi-head
//! self-attention over diverse context, Hong et al. 2023).

use adamove::history::HistoryAttention;
use adamove::{AdaMoveConfig, EncoderKind, LightMob, Trainer, TrainingConfig};
use adamove_autograd::ParamStore;
use adamove_mobility::{Point, Sample};
use rand::Rng;

/// A recent-only (optionally history-tailed) sequence model baseline.
#[derive(Debug, Clone)]
pub struct SeqBaseline {
    /// The underlying base model (contrastive branch unused).
    pub model: LightMob,
    /// When `Some(n)`, up to `n` trailing history points are prepended to
    /// the model input (the MHSA-style context window).
    pub history_tail: Option<usize>,
    /// Display name for experiment tables.
    pub name: String,
}

impl SeqBaseline {
    /// Build a baseline with the given encoder family.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        store: &mut ParamStore,
        name: impl Into<String>,
        encoder: EncoderKind,
        mut config: AdaMoveConfig,
        num_locations: u32,
        num_users: u32,
        history_tail: Option<usize>,
        rng: &mut impl Rng,
    ) -> Self {
        config.encoder = encoder;
        config.lambda = 0.0; // no contrastive branch in baselines
        Self {
            model: LightMob::new(store, config, num_locations, num_users, rng),
            history_tail,
            name: name.into(),
        }
    }

    /// The model input: optional history tail followed by the recent
    /// trajectory.
    pub fn input_points(&self, sample: &Sample) -> Vec<Point> {
        match self.history_tail {
            Some(n) if !sample.history.is_empty() => {
                let tail_start = sample.history.len().saturating_sub(n);
                let mut pts: Vec<Point> = sample.history[tail_start..].to_vec();
                pts.extend_from_slice(&sample.recent);
                pts
            }
            _ => sample.recent.clone(),
        }
    }

    /// Train with plain cross-entropy.
    pub fn train(
        &self,
        store: &mut ParamStore,
        train: &[Sample],
        val: &[Sample],
        config: TrainingConfig,
    ) -> adamove::TrainReport {
        let trainer = Trainer::new(config);
        trainer.fit_generic(
            store,
            train,
            val,
            0.0,
            |g, sample| {
                let pts = self.input_points(sample);
                let h = self.model.encode_last(g, &pts, sample.user);
                (self.model.logits(g, h), None)
            },
            |store, sample| self.predict(store, sample),
        )
    }

    /// Frozen inference scores.
    pub fn predict(&self, store: &ParamStore, sample: &Sample) -> Vec<f32> {
        let pts = self.input_points(sample);
        self.model.predict_scores(store, &pts, sample.user)
    }

    /// An unused-history attention module builder kept for API symmetry
    /// with AdaMove training harnesses (lets bench code construct the full
    /// AdaMove variant from the same call site).
    pub fn history_attention(
        store: &mut ParamStore,
        hidden: usize,
        rng: &mut impl Rng,
    ) -> HistoryAttention {
        HistoryAttention::new(store, hidden, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamove_mobility::{LocationId, Timestamp, UserId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pt(loc: u32, h: i64) -> Point {
        Point::new(loc, Timestamp::from_hours(h))
    }

    fn cyclic_samples(n: usize) -> Vec<Sample> {
        (0..n)
            .map(|i| Sample {
                user: UserId(0),
                recent: (0..3)
                    .map(|k| pt(((i + k) % 4) as u32, (i * 3 + k) as i64))
                    .collect(),
                history: vec![pt(5, 0), pt(6, 1)],
                target: LocationId(((i + 3) % 4) as u32),
                target_time: Timestamp::from_hours((i * 3 + 3) as i64),
            })
            .collect()
    }

    #[test]
    fn history_tail_prepends_trailing_points() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let b = SeqBaseline::new(
            &mut store,
            "MHSA",
            EncoderKind::Transformer,
            AdaMoveConfig::tiny(),
            8,
            2,
            Some(1),
            &mut rng,
        );
        let s = &cyclic_samples(1)[0];
        let pts = b.input_points(s);
        assert_eq!(pts.len(), 4); // 1 history tail + 3 recent
        assert_eq!(pts[0].loc, LocationId(6)); // the *last* history point
                                               // Without a tail the input is just the recent trajectory.
        let b2 = SeqBaseline::new(
            &mut store,
            "LSTM",
            EncoderKind::Lstm,
            AdaMoveConfig::tiny(),
            8,
            2,
            None,
            &mut rng,
        );
        assert_eq!(b2.input_points(s).len(), 3);
    }

    #[test]
    fn lstm_baseline_learns_cycle() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let b = SeqBaseline::new(
            &mut store,
            "LSTM",
            EncoderKind::Lstm,
            AdaMoveConfig::tiny(),
            8,
            1,
            None,
            &mut rng,
        );
        let samples = cyclic_samples(40);
        let report = b.train(
            &mut store,
            &samples,
            &samples[..10],
            TrainingConfig {
                max_epochs: 10,
                batch_size: 16,
                ..TrainingConfig::default()
            },
        );
        assert!(
            report.best_val_accuracy > 0.8,
            "accuracy {}",
            report.best_val_accuracy
        );
    }

    #[test]
    fn baseline_lambda_is_forced_to_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let b = SeqBaseline::new(
            &mut store,
            "GRU",
            EncoderKind::Gru,
            AdaMoveConfig {
                lambda: 0.9,
                ..AdaMoveConfig::tiny()
            },
            8,
            1,
            None,
            &mut rng,
        );
        assert_eq!(b.model.config.lambda, 0.0);
        assert_eq!(b.model.config.encoder, EncoderKind::Gru);
    }
}
