//! DeepMove (Feng et al., WWW 2018): the two-branch attentional model.
//!
//! DeepMove encodes the *historical* trajectory and the *recent* trajectory
//! with a shared recurrent encoder, fuses them through attention (the
//! mechanism paper Eqs. 7–8 are inspired by), and classifies on the
//! concatenation `[h_N ; context]`. Unlike LightMob, the history branch
//! runs **at inference time**, which is exactly the cost AdaMove removes.
//!
//! `DeepMove` implements [`adamove::TtaModel`], so `Ptta::predict_scores`
//! over it yields **DeepTTA** — the efficiency comparator of Fig. 9 and
//! Table III.

use adamove::history::HistoryAttention;
use adamove::{AdaMoveConfig, Trainer, TrainingConfig, TtaModel};
use adamove_autograd::{Graph, ParamId, ParamStore, Var};
use adamove_mobility::timecode::{time_code, NUM_TIME_SLOTS};
use adamove_mobility::{Point, Sample, UserId};
use adamove_nn::{Embedding, Linear, LstmCell, Recurrent};
use adamove_tensor::Matrix;
use rand::Rng;

/// The DeepMove model. Same embedding scheme as LightMob; LSTM encoder
/// shared across branches; classifier over `[recent ; context]` (`2H x L`).
#[derive(Debug, Clone)]
pub struct DeepMove {
    /// Shared hyperparameters (embedding dims, hidden width, history cap).
    pub config: AdaMoveConfig,
    /// Location vocabulary size.
    pub num_locations: u32,
    loc_emb: Embedding,
    time_emb: Embedding,
    user_emb: Embedding,
    encoder: Recurrent,
    attn: HistoryAttention,
    predictor: Linear,
}

impl DeepMove {
    /// Register a fresh DeepMove model.
    pub fn new(
        store: &mut ParamStore,
        config: AdaMoveConfig,
        num_locations: u32,
        num_users: u32,
        rng: &mut impl Rng,
    ) -> Self {
        let input = config.input_dim();
        let hidden = config.hidden;
        Self {
            loc_emb: Embedding::new(
                store,
                "dm.emb.loc",
                num_locations as usize,
                config.loc_dim,
                rng,
            ),
            time_emb: Embedding::new(
                store,
                "dm.emb.time",
                NUM_TIME_SLOTS as usize,
                config.time_dim,
                rng,
            ),
            user_emb: Embedding::new(
                store,
                "dm.emb.user",
                num_users as usize,
                config.user_dim,
                rng,
            ),
            encoder: Recurrent::Lstm(LstmCell::new(store, "dm.encoder", input, hidden, rng)),
            attn: HistoryAttention::new(store, hidden, rng),
            predictor: Linear::new(
                store,
                "dm.predictor",
                2 * hidden,
                num_locations as usize,
                true,
                rng,
            ),
            config,
            num_locations,
        }
    }

    fn embed(&self, g: &mut Graph, points: &[Point], user: UserId) -> Var {
        assert!(!points.is_empty(), "DeepMove::embed: empty sequence");
        let locs: Vec<u32> = points.iter().map(|p| p.loc.0).collect();
        let times: Vec<u32> = points.iter().map(|p| time_code(p.time)).collect();
        let users: Vec<u32> = vec![user.0; points.len()];
        let le = self.loc_emb.forward(g, &locs);
        let te = self.time_emb.forward(g, &times);
        let ue = self.user_emb.forward(g, &users);
        g.concat_cols(&[le, te, ue])
    }

    fn encode_all(&self, g: &mut Graph, points: &[Point], user: UserId) -> Var {
        let x = self.embed(g, points, user);
        self.encoder.encode_all(g, x)
    }

    fn capped_history<'a>(&self, sample: &'a Sample) -> &'a [Point] {
        let cap = self.config.max_history;
        if sample.history.len() > cap {
            &sample.history[sample.history.len() - cap..]
        } else {
            &sample.history
        }
    }

    /// Two-branch representations `[recent hidden ; history context]` for
    /// every prefix: `recent_len x 2H`. With no history the context block
    /// is zero.
    pub fn representations(&self, g: &mut Graph, sample: &Sample) -> Var {
        let recent_hidden = self.encode_all(g, &sample.recent, sample.user);
        let n = sample.recent.len();
        let history = self.capped_history(sample);
        let context = if history.is_empty() {
            g.constant(Matrix::zeros(n, self.config.hidden))
        } else {
            let hist_hidden = self.encode_all(g, history, sample.user);
            self.attn.enhance(g, recent_hidden, hist_hidden)
        };
        g.concat_cols(&[recent_hidden, context])
    }

    /// Logits (`1 x L`) for the next location of `sample`.
    pub fn forward_logits(&self, g: &mut Graph, sample: &Sample) -> Var {
        let reps = self.representations(g, sample);
        let n = g.value(reps).rows();
        let last = g.row(reps, n - 1);
        self.predictor.forward(g, last)
    }

    /// Frozen inference scores.
    pub fn predict(&self, store: &ParamStore, sample: &Sample) -> Vec<f32> {
        let mut g = Graph::new(store);
        let logits = self.forward_logits(&mut g, sample);
        g.value(logits).row(0).to_vec()
    }

    /// Train with cross-entropy (DeepMove has no contrastive term).
    pub fn train(
        &self,
        store: &mut ParamStore,
        train: &[Sample],
        val: &[Sample],
        config: TrainingConfig,
    ) -> adamove::TrainReport {
        let trainer = Trainer::new(config);
        trainer.fit_generic(
            store,
            train,
            val,
            0.0,
            |g, sample| (self.forward_logits(g, sample), None),
            |store, sample| self.predict(store, sample),
        )
    }
}

impl TtaModel for DeepMove {
    fn patterns(&self, store: &ParamStore, sample: &Sample) -> Matrix {
        let mut g = Graph::new(store);
        let reps = self.representations(&mut g, sample);
        g.value(reps).clone()
    }

    fn theta_param(&self) -> ParamId {
        self.predictor.w
    }

    fn bias_param(&self) -> Option<ParamId> {
        self.predictor.b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamove::{Ptta, PttaConfig};
    use adamove_mobility::{LocationId, Timestamp};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pt(loc: u32, h: i64) -> Point {
        Point::new(loc, Timestamp::from_hours(h))
    }

    fn sample(recent: &[u32], history: &[u32], target: u32) -> Sample {
        Sample {
            user: UserId(0),
            recent: recent
                .iter()
                .enumerate()
                .map(|(i, &l)| pt(l, 100 + i as i64))
                .collect(),
            history: history
                .iter()
                .enumerate()
                .map(|(i, &l)| pt(l, i as i64))
                .collect(),
            target: LocationId(target),
            target_time: Timestamp::from_hours(200),
        }
    }

    fn model() -> (ParamStore, DeepMove) {
        let mut rng = StdRng::seed_from_u64(13);
        let mut store = ParamStore::new();
        let m = DeepMove::new(&mut store, AdaMoveConfig::tiny(), 10, 2, &mut rng);
        (store, m)
    }

    #[test]
    fn representations_are_2h_wide() {
        let (store, m) = model();
        let s = sample(&[1, 2, 3], &[4, 5], 6);
        let mut g = Graph::new(&store);
        let reps = m.representations(&mut g, &s);
        assert_eq!(g.value(reps).shape(), (3, 32)); // 2 * hidden(16)
    }

    #[test]
    fn history_changes_the_prediction() {
        let (store, m) = model();
        let with_history = sample(&[1, 2, 3], &[4, 5, 6], 0);
        let without = sample(&[1, 2, 3], &[], 0);
        let a = m.predict(&store, &with_history);
        let b = m.predict(&store, &without);
        assert_ne!(a, b, "the history branch must influence scores");
    }

    #[test]
    fn empty_history_uses_zero_context() {
        let (store, m) = model();
        let s = sample(&[1, 2], &[], 0);
        let scores = m.predict(&store, &s);
        assert_eq!(scores.len(), 10);
        assert!(scores.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn history_cap_applies() {
        let (store, m) = model();
        // Build histories longer and shorter than the cap; truncation keeps
        // the most recent points, so adding *old* points beyond the cap
        // must not change the output.
        let long: Vec<u32> = (0..(m.config.max_history + 30) as u32)
            .map(|i| i % 9)
            .collect();
        let capped: Vec<u32> = long[long.len() - m.config.max_history..].to_vec();
        let a = m.predict(&store, &sample(&[1, 2], &long, 0));
        // The capped history must produce identical scores only if
        // timestamps match; rebuild with aligned times.
        let sa = sample(&[1, 2], &long, 0);
        let mut sb = sample(&[1, 2], &capped, 0);
        let offset = sa.history.len() - sb.history.len();
        for (i, p) in sb.history.iter_mut().enumerate() {
            p.time = sa.history[offset + i].time;
        }
        let b = m.predict(&store, &sb);
        assert_eq!(a, b);
    }

    #[test]
    fn deepmove_learns_a_history_dependent_task() {
        // Target equals the first history location: impossible for a
        // recent-only model, learnable for DeepMove.
        let mut rng = StdRng::seed_from_u64(14);
        let mut store = ParamStore::new();
        let m = DeepMove::new(&mut store, AdaMoveConfig::tiny(), 6, 1, &mut rng);
        let samples: Vec<Sample> = (0..60)
            .map(|i| {
                let key = (i % 4) as u32;
                sample(&[4, 5], &[key, 5], key)
            })
            .collect();
        let report = m.train(
            &mut store,
            &samples,
            &samples[..12],
            TrainingConfig {
                max_epochs: 12,
                batch_size: 16,
                ..TrainingConfig::default()
            },
        );
        assert!(
            report.best_val_accuracy > 0.8,
            "accuracy {}",
            report.best_val_accuracy
        );
    }

    #[test]
    fn deeptta_ptta_over_deepmove_works() {
        let (store, m) = model();
        let s = sample(&[1, 2, 1, 2, 3], &[7, 8], 4);
        let ptta = Ptta::new(PttaConfig::default());
        let adapted = ptta.predict_scores(&m, &store, &s);
        let frozen = m.predict(&store, &s);
        assert_eq!(adapted.len(), frozen.len());
        // Adaptation must touch at least one labelled column.
        assert!(adapted
            .iter()
            .zip(&frozen)
            .any(|(a, f)| (a - f).abs() > 1e-7));
    }
}
