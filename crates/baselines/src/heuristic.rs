//! HeuristicMob — the LLM-Mob substitute (see DESIGN.md).
//!
//! LLM-Mob (Wang et al., 2023) prompts a GPT model with two lists: the
//! user's *historical stays* (location, day-of-week, time) and *contextual
//! stays* (the recent trajectory), and asks for a ranked guess. Without an
//! LLM we score the same evidence directly:
//!
//! `score(l) = w_slot * P(l | user, time-slot of target)
//!           + w_user * P(l | user)
//!           + w_recent * recency-weighted frequency of l in the context
//!           + w_global * P(l)`
//!
//! Two deliberate blunting choices keep the substitute faithful to an
//! un-fine-tuned LLM rather than to an exact counter: visit counts are
//! log-compressed (LLMs reason over coarse frequency impressions, not
//! exact tallies) and time matching uses 4-hour buckets split by
//! weekday/weekend (prompts carry coarse time-of-day semantics). This
//! reproduces LLM-Mob's Table II profile: mediocre Rec@1 (no learned
//! transition dynamics, not fine-tuned) with competitive Rec@5/10 (it
//! reliably surfaces the user's frequent places).

use adamove_mobility::{Sample, Timestamp};
use std::collections::HashMap;

/// Coarse time bucket: 4-hour blocks, weekday vs weekend (12 buckets).
fn coarse_slot(t: Timestamp) -> u32 {
    let block = t.hour_of_day() / 4;
    if t.is_weekend() {
        6 + block
    } else {
        block
    }
}

/// Mixing weights for the four evidence sources.
#[derive(Debug, Clone)]
pub struct HeuristicWeights {
    /// Historical stays at the target's time slot.
    pub slot: f32,
    /// Historical stays overall.
    pub user: f32,
    /// Contextual (recent) stays, recency-discounted.
    pub recent: f32,
    /// Global popularity.
    pub global: f32,
    /// Per-step recency decay inside the context.
    pub recency_decay: f32,
}

impl Default for HeuristicWeights {
    fn default() -> Self {
        Self {
            slot: 1.0,
            user: 0.5,
            recent: 0.8,
            global: 0.05,
            recency_decay: 0.8,
        }
    }
}

/// The fitted predictor.
#[derive(Debug, Clone)]
pub struct HeuristicMob {
    num_locations: usize,
    weights: HeuristicWeights,
    /// `(user, slot) -> loc -> count`.
    slot_counts: HashMap<(u32, u32), HashMap<u32, f32>>,
    /// `user -> loc -> count`.
    user_counts: HashMap<u32, HashMap<u32, f32>>,
    global: Vec<f32>,
}

impl HeuristicMob {
    /// Fit stay statistics from training samples.
    pub fn fit(num_locations: usize, samples: &[Sample], weights: HeuristicWeights) -> Self {
        let mut model = Self {
            num_locations,
            weights,
            slot_counts: HashMap::new(),
            user_counts: HashMap::new(),
            global: vec![0.0; num_locations],
        };
        for s in samples {
            // Historical stays = history + recent points + the target stay.
            for p in s.history.iter().chain(&s.recent) {
                model.observe(s.user.0, coarse_slot(p.time), p.loc.0);
            }
            model.observe(s.user.0, coarse_slot(s.target_time), s.target.0);
        }
        model
    }

    fn observe(&mut self, user: u32, slot: u32, loc: u32) {
        debug_assert!(slot < 12);
        *self
            .slot_counts
            .entry((user, slot))
            .or_default()
            .entry(loc)
            .or_insert(0.0) += 1.0;
        *self
            .user_counts
            .entry(user)
            .or_default()
            .entry(loc)
            .or_insert(0.0) += 1.0;
        self.global[loc as usize] += 1.0;
    }

    /// Score all locations for the next stay.
    pub fn predict(&self, sample: &Sample) -> Vec<f32> {
        let w = &self.weights;
        let mut scores = vec![0.0f32; self.num_locations];

        // Global prior.
        let g_total: f32 = self.global.iter().sum::<f32>().max(1.0);
        for (s, &g) in scores.iter_mut().zip(&self.global) {
            *s += w.global * g / g_total;
        }

        // Historical stays around the *current* time of day. The paper's
        // setting predicts the next location without knowing its timestamp,
        // so the query slot is projected one hour past the last observed
        // point (LLM-Mob's prompt reasons the same way: "given where she is
        // now, where next?").
        let now = sample
            .recent
            .last()
            .map(|p| p.time)
            .unwrap_or(sample.target_time);
        let slot = coarse_slot(Timestamp(now.0 + 3600));
        if let Some(counts) = self.slot_counts.get(&(sample.user.0, slot)) {
            let total: f32 = counts
                .values()
                .map(|&c| (1.0 + c).ln())
                .sum::<f32>()
                .max(1e-6);
            for (&l, &c) in counts {
                scores[l as usize] += w.slot * (1.0 + c).ln() / total;
            }
        }

        // Historical stays overall (log-compressed).
        if let Some(counts) = self.user_counts.get(&sample.user.0) {
            let total: f32 = counts
                .values()
                .map(|&c| (1.0 + c).ln())
                .sum::<f32>()
                .max(1e-6);
            for (&l, &c) in counts {
                scores[l as usize] += w.user * (1.0 + c).ln() / total;
            }
        }

        // Contextual stays: geometric recency weights, newest first.
        let mut weight = w.recent;
        for p in sample.recent.iter().rev() {
            scores[p.loc.index()] += weight;
            weight *= w.recency_decay;
        }
        scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamove_mobility::{LocationId, Point, Timestamp, UserId};

    fn pt(loc: u32, h: i64) -> Point {
        Point::new(loc, Timestamp::from_hours(h))
    }

    fn sample(user: u32, recent: Vec<Point>, target: u32, target_h: i64) -> Sample {
        Sample {
            user: UserId(user),
            recent,
            history: vec![],
            target: LocationId(target),
            target_time: Timestamp::from_hours(target_h),
        }
    }

    #[test]
    fn slot_evidence_dominates_at_matching_times() {
        // User 0 is always at location 3 at 9am on workdays; the context
        // point sits in a different 4-hour bucket (1am) so the slot
        // evidence for the 8-11am bucket is unambiguous.
        let train: Vec<Sample> = (0..8)
            .map(|d| sample(0, vec![pt(1, d * 24 + 1)], 3, d * 24 + 9))
            .collect();
        let m = HeuristicMob::fit(6, &train, HeuristicWeights::default());
        // Query with the last observation at 8am on a workday: the slot
        // lookup projects to the 8-11am bucket, where 3 dominates.
        let q = sample(0, vec![pt(5, 14 * 24 + 8)], 0, 14 * 24 + 9);
        let scores = m.predict(&q);
        assert_eq!(adamove_tensor::matrix::argmax(&scores), 3);
    }

    #[test]
    fn recent_context_boosts_just_visited_places() {
        let m = HeuristicMob::fit(6, &[], HeuristicWeights::default());
        // With no training data, only recency evidence remains.
        let q = sample(1, vec![pt(2, 0), pt(4, 1)], 0, 2);
        let scores = m.predict(&q);
        // Location 4 (most recent) beats 2.
        assert!(scores[4] > scores[2]);
        assert!(scores[2] > scores[0]);
    }

    #[test]
    fn frequent_places_rank_in_top_k_even_when_rec1_misses() {
        // The LLM-Mob profile: the user splits 9am between 2 and 3, so
        // Rec@1 may miss but both places must be in the top ranks.
        let mut train = Vec::new();
        for d in 0..4 {
            train.push(sample(0, vec![pt(1, d * 48 + 8)], 2, d * 48 + 9));
            train.push(sample(0, vec![pt(1, d * 48 + 32)], 3, d * 48 + 33));
        }
        let m = HeuristicMob::fit(8, &train, HeuristicWeights::default());
        let q = sample(0, vec![pt(1, 9 * 24 + 8)], 2, 9 * 24 + 9);
        let scores = m.predict(&q);
        let top2 = adamove_tensor::stats::top_k_indices(&scores, 3);
        assert!(top2.contains(&2));
        assert!(top2.contains(&3));
    }

    #[test]
    fn unknown_user_falls_back_to_global_popularity() {
        let train = vec![sample(0, vec![pt(5, 0)], 5, 1)];
        let m = HeuristicMob::fit(6, &train, HeuristicWeights::default());
        let q = Sample {
            user: UserId(42),
            recent: vec![],
            history: vec![],
            target: LocationId(0),
            target_time: Timestamp::from_hours(1),
        };
        let scores = m.predict(&q);
        assert_eq!(adamove_tensor::matrix::argmax(&scores), 5);
    }

    #[test]
    fn history_points_count_as_historical_stays() {
        let mut s = sample(0, vec![pt(1, 100)], 1, 101);
        s.history = vec![pt(7, 9), pt(7, 33), pt(7, 57)];
        let m = HeuristicMob::fit(8, &[s], HeuristicWeights::default());
        let q = sample(0, vec![], 0, 9);
        let scores = m.predict(&q);
        // Location 7 dominates user counts.
        assert_eq!(adamove_tensor::matrix::argmax(&scores), 7);
    }
}
