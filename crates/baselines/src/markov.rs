//! Statistical baselines: first-order Markov (≈ NLPMM) and popularity.

use adamove_mobility::{Sample, UserId};
use std::collections::HashMap;

/// Per-user first-order Markov chain over locations with a global-chain
/// fallback and a popularity prior — the statistical family of the paper's
/// related work (PFMC-LR, NLPMM).
#[derive(Debug, Clone, Default)]
pub struct MarkovBaseline {
    num_locations: usize,
    /// `(user, from) -> to -> count`.
    user_transitions: HashMap<(u32, u32), HashMap<u32, f32>>,
    /// `from -> to -> count` pooled over users.
    global_transitions: HashMap<u32, HashMap<u32, f32>>,
    /// Global visit counts.
    popularity: Vec<f32>,
}

impl MarkovBaseline {
    /// Fit transition counts from training samples. Each sample contributes
    /// the consecutive pairs inside `recent` plus `(last, target)`.
    pub fn fit(num_locations: usize, samples: &[Sample]) -> Self {
        let mut model = Self {
            num_locations,
            popularity: vec![0.0; num_locations],
            ..Self::default()
        };
        for s in samples {
            let mut seq: Vec<u32> = s.recent.iter().map(|p| p.loc.0).collect();
            seq.push(s.target.0);
            for w in seq.windows(2) {
                model.observe(s.user, w[0], w[1]);
            }
            for &l in &seq {
                model.popularity[l as usize] += 1.0;
            }
        }
        model
    }

    fn observe(&mut self, user: UserId, from: u32, to: u32) {
        *self
            .user_transitions
            .entry((user.0, from))
            .or_default()
            .entry(to)
            .or_insert(0.0) += 1.0;
        *self
            .global_transitions
            .entry(from)
            .or_default()
            .entry(to)
            .or_insert(0.0) += 1.0;
    }

    /// Scores for the next location after `sample.recent`.
    ///
    /// Blend: user chain (weight 1.0) + global chain (0.3) + popularity
    /// prior (0.01) — the prior breaks ties and ranks unseen transitions.
    pub fn predict(&self, sample: &Sample) -> Vec<f32> {
        let mut scores = vec![0.0f32; self.num_locations];
        let pop_total: f32 = self.popularity.iter().sum::<f32>().max(1.0);
        for (s, &p) in scores.iter_mut().zip(&self.popularity) {
            *s += 0.01 * p / pop_total;
        }
        let Some(last) = sample.recent.last() else {
            return scores;
        };
        if let Some(global) = self.global_transitions.get(&last.loc.0) {
            let total: f32 = global.values().sum();
            for (&to, &c) in global {
                scores[to as usize] += 0.3 * c / total;
            }
        }
        if let Some(user) = self.user_transitions.get(&(sample.user.0, last.loc.0)) {
            let total: f32 = user.values().sum();
            for (&to, &c) in user {
                scores[to as usize] += 1.0 * c / total;
            }
        }
        scores
    }

    /// Number of distinct (user, from) transition rows learned.
    pub fn num_user_rows(&self) -> usize {
        self.user_transitions.len()
    }
}

/// Per-user visit-frequency baseline with a global fallback — the weakest
/// sensible comparator and a sanity floor for every experiment.
#[derive(Debug, Clone, Default)]
pub struct PopularityBaseline {
    num_locations: usize,
    user_counts: HashMap<u32, Vec<f32>>,
    global: Vec<f32>,
}

impl PopularityBaseline {
    /// Count visits in the training samples (recent points + targets).
    pub fn fit(num_locations: usize, samples: &[Sample]) -> Self {
        let mut model = Self {
            num_locations,
            global: vec![0.0; num_locations],
            ..Self::default()
        };
        for s in samples {
            let counts = model
                .user_counts
                .entry(s.user.0)
                .or_insert_with(|| vec![0.0; num_locations]);
            for p in &s.recent {
                counts[p.loc.index()] += 1.0;
            }
            counts[s.target.index()] += 1.0;
        }
        for counts in model.user_counts.values() {
            for (g, &c) in model.global.iter_mut().zip(counts) {
                *g += c;
            }
        }
        model
    }

    /// Per-user frequency plus a small global prior.
    pub fn predict(&self, sample: &Sample) -> Vec<f32> {
        let mut scores = vec![0.0f32; self.num_locations];
        let g_total: f32 = self.global.iter().sum::<f32>().max(1.0);
        for (s, &g) in scores.iter_mut().zip(&self.global) {
            *s += 0.05 * g / g_total;
        }
        if let Some(counts) = self.user_counts.get(&sample.user.0) {
            let total: f32 = counts.iter().sum::<f32>().max(1.0);
            for (s, &c) in scores.iter_mut().zip(counts) {
                *s += c / total;
            }
        }
        scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamove_mobility::{LocationId, Point, Timestamp};

    fn sample(user: u32, locs: &[u32], target: u32) -> Sample {
        Sample {
            user: UserId(user),
            recent: locs
                .iter()
                .enumerate()
                .map(|(i, &l)| Point::new(l, Timestamp::from_hours(i as i64)))
                .collect(),
            history: vec![],
            target: LocationId(target),
            target_time: Timestamp::from_hours(10),
        }
    }

    #[test]
    fn markov_learns_user_transitions() {
        // User 0 always goes 1 -> 2; user 1 always goes 1 -> 3.
        let train = vec![
            sample(0, &[0, 1], 2),
            sample(0, &[0, 1], 2),
            sample(1, &[0, 1], 3),
            sample(1, &[0, 1], 3),
        ];
        let m = MarkovBaseline::fit(5, &train);
        assert!(m.num_user_rows() >= 2);
        let s0 = m.predict(&sample(0, &[0, 1], 9));
        let s1 = m.predict(&sample(1, &[0, 1], 9));
        assert_eq!(adamove_tensor::matrix::argmax(&s0), 2);
        assert_eq!(adamove_tensor::matrix::argmax(&s1), 3);
    }

    #[test]
    fn markov_falls_back_to_global_chain() {
        // User 5 never trained; global statistics say 1 -> 2.
        let train = vec![sample(0, &[1], 2), sample(1, &[1], 2), sample(2, &[1], 2)];
        let m = MarkovBaseline::fit(5, &train);
        let s = m.predict(&sample(5, &[0, 1], 9));
        assert_eq!(adamove_tensor::matrix::argmax(&s), 2);
    }

    #[test]
    fn markov_handles_unseen_transition_via_popularity() {
        let train = vec![sample(0, &[1], 2)];
        let m = MarkovBaseline::fit(5, &train);
        // From location 4: never observed; popularity prior decides
        // (locations 1 and 2 were visited).
        let s = m.predict(&sample(0, &[4], 9));
        let best = adamove_tensor::matrix::argmax(&s);
        assert!(best == 1 || best == 2);
        // Empty recent trajectory degrades to the prior without panicking.
        let empty = m.predict(&sample(0, &[], 9));
        assert_eq!(empty.len(), 5);
    }

    #[test]
    fn popularity_ranks_frequent_locations_first() {
        let train = vec![
            sample(0, &[3, 3, 3], 3),
            sample(0, &[3, 1], 3),
            sample(1, &[2, 2], 2),
        ];
        let p = PopularityBaseline::fit(5, &train);
        let s0 = p.predict(&sample(0, &[0], 9));
        assert_eq!(adamove_tensor::matrix::argmax(&s0), 3);
        let s1 = p.predict(&sample(1, &[0], 9));
        assert_eq!(adamove_tensor::matrix::argmax(&s1), 2);
    }

    #[test]
    fn popularity_unknown_user_uses_global() {
        let train = vec![sample(0, &[4, 4, 4], 4)];
        let p = PopularityBaseline::fit(6, &train);
        let s = p.predict(&sample(9, &[0], 1));
        assert_eq!(adamove_tensor::matrix::argmax(&s), 4);
    }
}
