#![warn(missing_docs)]
//! Baseline next-location predictors for the Table II comparison.
//!
//! One faithful implementation per architectural family (see DESIGN.md for
//! the substitution rationale):
//!
//! - [`markov`] — `MarkovBaseline` (per-user first-order Markov with global
//!   fallback, ≈ NLPMM) and `PopularityBaseline` (frequency prior);
//! - [`seq`] — `SeqBaseline`: recent-only neural sequence models (the
//!   paper's LSTM baseline and the RNN/GRU encoder ablations) and the
//!   MHSA-style Transformer with history access;
//! - [`deepmove`] — `DeepMove`: the two-branch attentional RNN (Feng et
//!   al., WWW 2018). Implements [`adamove::TtaModel`], so wrapping it in
//!   PTTA yields **DeepTTA**, the efficiency comparator of Table III;
//! - [`heuristic`] — `HeuristicMob`: a frequency/recency scorer standing in
//!   for the GPT-based LLM-Mob (no LLM access offline; scores the same
//!   signals LLM-Mob's prompt encodes).

pub mod deepmove;
pub mod heuristic;
pub mod markov;
pub mod seq;

pub use deepmove::DeepMove;
pub use heuristic::HeuristicMob;
pub use markov::{MarkovBaseline, PopularityBaseline};
pub use seq::SeqBaseline;
