//! Comment/string-aware line scanning.
//!
//! Rules must not fire on text inside comments or string literals — a
//! doc comment *describing* `thread_rng` is not a use of it. Instead of
//! a full parser (which would drag in `syn` and break the offline
//! build), [`ScannedFile::scan`] runs a small state machine over the
//! source that produces, per line:
//!
//! - a **code view**: the original line with comment text and string/char
//!   literal *bodies* blanked out by spaces (quotes kept, so call shapes
//!   like `.counter("…")` survive). Rules match against this view.
//! - the **string literals** that started on the line (code-view column
//!   plus content) — for rules that inspect literal values, like metric
//!   naming.
//! - whether the line sits inside a `#[cfg(test)]` item, tracked by
//!   brace counting on the code view.
//! - any [`Suppression`] declared by a plain `// lint:allow(rule): why`
//!   line comment. Doc comments (`///`, `//!`) are deliberately inert so
//!   documentation can show the syntax without creating suppressions.
//!
//! The scanner understands line comments, nested block comments, plain
//! and raw (`r#"…"#`) string literals, and char literals vs lifetimes
//! (heuristically: `'a'` is a literal, `'a` is a lifetime).

/// A string literal that started on a line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StringLit {
    /// Byte offset of the opening quote in the line's code view.
    pub col: usize,
    /// Literal content (escape sequences kept verbatim). For a literal
    /// spanning multiple lines, each line records its own fragment.
    pub text: String,
}

/// One `// lint:allow(rule): reason` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// 1-based line the comment sits on.
    pub line: usize,
    /// 1-based line the suppression applies to: its own line when the
    /// comment trails code, the following line when it stands alone.
    pub target: usize,
    /// The rule name between the parentheses.
    pub rule: String,
    /// The justification after `): `. Empty when missing — the checker
    /// rejects that as `bad-suppression`.
    pub reason: String,
}

/// One scanned source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// The original line, newline stripped.
    pub raw: String,
    /// Comment/literal-blanked view (see the [module docs](self)).
    pub code: String,
    /// String literals that started on this line.
    pub strings: Vec<StringLit>,
    /// True inside a `#[cfg(test)]` item (attribute line included).
    pub in_test: bool,
}

/// A fully scanned source file.
#[derive(Debug, Clone)]
pub struct ScannedFile {
    /// Scanned lines, in order.
    pub lines: Vec<Line>,
    /// Every suppression declared in the file.
    pub suppressions: Vec<Suppression>,
}

/// Lexer state carried across lines.
enum Mode {
    Code,
    Block(u32),
    Str,
    RawStr(u32),
}

/// True for characters that may end an identifier — keeps the `r` in
/// `for`/`attr` from being mistaken for a raw-string prefix.
fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// If `chars` starts a raw string literal (`r"`, `r#"`, `br##"`, …),
/// return `(prefix length including the opening quote, hash count)`.
fn raw_str_open(chars: &[char]) -> Option<(usize, u32)> {
    let mut i = 0;
    if chars.get(i) == Some(&'b') {
        i += 1;
    }
    if chars.get(i) != Some(&'r') {
        return None;
    }
    i += 1;
    let mut hashes = 0u32;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    if chars.get(i) == Some(&'"') {
        Some((i + 1, hashes))
    } else {
        None
    }
}

/// Scan one line, updating the cross-line `mode`; returns the text of a
/// line comment starting on this line, if any.
fn scan_line(
    chars: &[char],
    mode: &mut Mode,
    code: &mut String,
    strings: &mut Vec<StringLit>,
) -> Option<String> {
    let mut comment: Option<String> = None;
    let mut cur: Option<(usize, String)> = match mode {
        // A literal continuing from the previous line restarts a
        // fragment at column 0.
        Mode::Str | Mode::RawStr(_) => Some((0, String::new())),
        _ => None,
    };
    let mut i = 0usize;
    while i < chars.len() {
        match mode {
            Mode::Block(depth) => {
                if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    *depth -= 1;
                    code.push_str("  ");
                    i += 2;
                    if *depth == 0 {
                        *mode = Mode::Code;
                    }
                } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    *depth += 1;
                    code.push_str("  ");
                    i += 2;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            Mode::Str => {
                if chars[i] == '\\' {
                    if let Some((_, text)) = &mut cur {
                        text.push('\\');
                        if let Some(&next) = chars.get(i + 1) {
                            text.push(next);
                        }
                    }
                    code.push(' ');
                    if i + 1 < chars.len() {
                        code.push(' ');
                    }
                    i += 2;
                } else if chars[i] == '"' {
                    code.push('"');
                    if let Some((col, text)) = cur.take() {
                        strings.push(StringLit { col, text });
                    }
                    *mode = Mode::Code;
                    i += 1;
                } else {
                    if let Some((_, text)) = &mut cur {
                        text.push(chars[i]);
                    }
                    code.push(' ');
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                let h = *hashes as usize;
                let closes = chars[i] == '"'
                    && chars[i + 1..].len() >= h
                    && chars[i + 1..i + 1 + h].iter().all(|&c| c == '#');
                if closes {
                    code.push('"');
                    for _ in 0..h {
                        code.push('#');
                    }
                    if let Some((col, text)) = cur.take() {
                        strings.push(StringLit { col, text });
                    }
                    *mode = Mode::Code;
                    i += 1 + h;
                } else {
                    if let Some((_, text)) = &mut cur {
                        text.push(chars[i]);
                    }
                    code.push(' ');
                    i += 1;
                }
            }
            Mode::Code => {
                let c = chars[i];
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    comment = Some(chars[i..].iter().collect());
                    // Blank the comment text so rules can't match it.
                    for _ in i..chars.len() {
                        code.push(' ');
                    }
                    i = chars.len();
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    *mode = Mode::Block(1);
                    code.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    code.push('"');
                    cur = Some((code.len() - 1, String::new()));
                    *mode = Mode::Str;
                    i += 1;
                } else if (c == 'r' || c == 'b') && (i == 0 || !is_ident_char(chars[i - 1])) {
                    if let Some((prefix_len, hashes)) = raw_str_open(&chars[i..]) {
                        for &pc in &chars[i..i + prefix_len] {
                            code.push(pc);
                        }
                        cur = Some((code.len() - 1, String::new()));
                        *mode = Mode::RawStr(hashes);
                        i += prefix_len;
                    } else {
                        code.push(c);
                        i += 1;
                    }
                } else if c == '\'' {
                    // Char literal vs lifetime.
                    if chars.get(i + 1) == Some(&'\\') {
                        // Escaped char literal: blank through the
                        // closing quote.
                        let mut j = i + 2;
                        while j < chars.len() && chars[j] != '\'' {
                            j += 1;
                        }
                        code.push('\'');
                        for _ in i + 1..j.min(chars.len()) {
                            code.push(' ');
                        }
                        if j < chars.len() {
                            code.push('\'');
                        }
                        i = j + 1;
                    } else if chars.get(i + 2) == Some(&'\'') {
                        code.push('\'');
                        code.push(' ');
                        code.push('\'');
                        i += 3;
                    } else {
                        // Lifetime.
                        code.push('\'');
                        i += 1;
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
        }
    }
    // A plain string literal left open at end of line continues on the
    // next line; flush this line's fragment.
    if let Some((col, text)) = cur.take() {
        strings.push(StringLit { col, text });
    }
    comment
}

/// Parse a `// lint:allow(rule): reason` comment. Returns `None` for doc
/// comments (`///`, `//!`) and comments without the marker.
fn parse_suppression(comment: &str, line: usize, standalone: bool) -> Option<Suppression> {
    let after_slashes = comment.strip_prefix("//")?;
    if after_slashes.starts_with('/') || after_slashes.starts_with('!') {
        return None; // doc comment: inert, may cite the syntax
    }
    let idx = after_slashes.find("lint:allow(")?;
    let rest = &after_slashes[idx + "lint:allow(".len()..];
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    let tail = &rest[close + 1..];
    let reason = tail.strip_prefix(':').map(str::trim).unwrap_or("");
    Some(Suppression {
        line,
        target: if standalone { line + 1 } else { line },
        rule,
        reason: reason.to_string(),
    })
}

impl ScannedFile {
    /// Scan `content` into per-line code views, literals, `#[cfg(test)]`
    /// regions, and suppression declarations.
    pub fn scan(content: &str) -> ScannedFile {
        let mut mode = Mode::Code;
        let mut lines = Vec::new();
        let mut suppressions = Vec::new();
        for (idx, raw) in content.lines().enumerate() {
            let chars: Vec<char> = raw.chars().collect();
            let mut code = String::with_capacity(raw.len());
            let mut strings = Vec::new();
            let comment = scan_line(&chars, &mut mode, &mut code, &mut strings);
            if let Some(text) = &comment {
                let standalone = code.trim().is_empty();
                if let Some(s) = parse_suppression(text, idx + 1, standalone) {
                    suppressions.push(s);
                }
            }
            lines.push(Line {
                raw: raw.to_string(),
                code,
                strings,
                in_test: false, // filled by the region pass below
            });
        }
        mark_test_regions(&mut lines);
        ScannedFile {
            lines,
            suppressions,
        }
    }
}

/// Mark every line inside a `#[cfg(test)]` item by counting braces on
/// the code view, starting at the first `{` after the attribute.
fn mark_test_regions(lines: &mut [Line]) {
    enum Region {
        Outside,
        Pending,
        Inside(i64),
    }
    let mut region = Region::Outside;
    for line in lines.iter_mut() {
        match region {
            Region::Outside => {
                if line.code.contains("cfg(test") {
                    line.in_test = true;
                    // The opening brace may share the attribute's line.
                    region = match enter_braces(&line.code) {
                        Some(depth) if depth > 0 => Region::Inside(depth),
                        Some(_) => Region::Outside,
                        None => Region::Pending,
                    };
                }
            }
            Region::Pending => {
                line.in_test = true;
                region = match enter_braces(&line.code) {
                    Some(depth) if depth > 0 => Region::Inside(depth),
                    Some(_) => Region::Outside,
                    None => Region::Pending,
                };
            }
            Region::Inside(depth) => {
                line.in_test = true;
                let d = depth + brace_delta(&line.code);
                region = if d <= 0 {
                    Region::Outside
                } else {
                    Region::Inside(d)
                };
            }
        }
    }
}

/// Depth after consuming the line, starting from the first `{`;
/// `None` when the line has no braces yet.
fn enter_braces(code: &str) -> Option<i64> {
    let first = code.find('{')?;
    Some(brace_delta(&code[first..]))
}

fn brace_delta(code: &str) -> i64 {
    let mut d = 0i64;
    for c in code.chars() {
        match c {
            '{' => d += 1,
            '}' => d -= 1,
            _ => {}
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_blanked() {
        let f = ScannedFile::scan("let x = 1; // thread_rng here\n/* SystemTime::now */ let y;\n");
        assert!(!f.lines[0].code.contains("thread_rng"));
        assert!(f.lines[0].code.contains("let x = 1;"));
        assert!(!f.lines[1].code.contains("SystemTime"));
        assert!(f.lines[1].code.contains("let y;"));
    }

    #[test]
    fn string_bodies_are_blanked_but_captured() {
        let f = ScannedFile::scan(r#"call(".unwrap()", other);"#);
        assert!(!f.lines[0].code.contains(".unwrap()"));
        assert_eq!(f.lines[0].strings.len(), 1);
        assert_eq!(f.lines[0].strings[0].text, ".unwrap()");
    }

    #[test]
    fn raw_strings_and_nested_block_comments() {
        let src =
            "let s = r#\"panic!(\"x\")\"#;\n/* a /* nested panic! */ still comment */ let z;\n";
        let f = ScannedFile::scan(src);
        assert!(!f.lines[0].code.contains("panic!"));
        assert_eq!(f.lines[0].strings[0].text, "panic!(\"x\")");
        assert!(!f.lines[1].code.contains("panic!"));
        assert!(f.lines[1].code.contains("let z;"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let f = ScannedFile::scan("fn f<'a>(x: &'a str) -> char { 'x' }\n");
        assert!(f.lines[0].code.contains("fn f<'a>(x: &'a str)"));
    }

    #[test]
    fn raw_identifier_is_not_a_raw_string() {
        let f = ScannedFile::scan("let r#type = 1; for x in r {}\n");
        assert!(f.lines[0].code.contains("for x in r { }") || f.lines[0].strings.is_empty());
    }

    #[test]
    fn multiline_strings_stay_blanked() {
        let f = ScannedFile::scan("let s = \"first panic!\nsecond .unwrap() line\";\nlet t = 1;\n");
        assert!(!f.lines[0].code.contains("panic!"));
        assert!(!f.lines[1].code.contains(".unwrap()"));
        assert!(f.lines[2].code.contains("let t = 1;"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let f = ScannedFile::scan(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test);
        assert!(f.lines[2].in_test);
        assert!(f.lines[3].in_test);
        assert!(f.lines[4].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn suppression_parsing_trailing_and_standalone() {
        let src = "x.unwrap(); // lint:allow(panic-path): documented invariant\n// lint:allow(print): demo output\nprintln!(\"hi\");\n";
        let f = ScannedFile::scan(src);
        assert_eq!(f.suppressions.len(), 2);
        assert_eq!(f.suppressions[0].rule, "panic-path");
        assert_eq!(f.suppressions[0].target, 1);
        assert_eq!(f.suppressions[0].reason, "documented invariant");
        assert_eq!(f.suppressions[1].rule, "print");
        assert_eq!(f.suppressions[1].target, 3);
    }

    #[test]
    fn doc_comments_do_not_declare_suppressions() {
        let src = "/// Use `// lint:allow(print): why` to suppress.\n//! lint:allow(tab): nope\nfn f() {}\n";
        let f = ScannedFile::scan(src);
        assert!(f.suppressions.is_empty());
    }

    #[test]
    fn suppression_inside_string_literal_is_inert() {
        let src = "let s = \"// lint:allow(print): fake\";\n";
        let f = ScannedFile::scan(src);
        assert!(f.suppressions.is_empty());
    }

    #[test]
    fn missing_reason_is_recorded_as_empty() {
        let f = ScannedFile::scan("x.unwrap(); // lint:allow(panic-path)\n");
        assert_eq!(f.suppressions.len(), 1);
        assert_eq!(f.suppressions[0].reason, "");
    }
}
