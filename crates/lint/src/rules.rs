//! The rule set and the per-file checker.
//!
//! Each rule has a kebab-case id used both in diagnostics and in
//! suppression comments (`// lint:allow(<id>): <why>`). Rules fall into
//! three scopes:
//!
//! - **library scope** (`entropy`, `instant-now`, `panic-path`,
//!   `fs-unwrap`, `metric-name`, `print`, `trace-context`,
//!   `unsorted-export`, `atomics-ordering`): non-test library code
//!   only — integration tests, benches, examples, bin targets, and
//!   `#[cfg(test)]` regions are exempt.
//! - **test scope** (`sleep-in-test`): the exact inverse — fires only in
//!   test code, where wall-clock sleeps breed flakes.
//! - **everywhere** (`tab`, `trailing-ws`, `file-length`): hygiene.
//! - **cross-file** (`lock-order`): lives in [`crate::locks`] — the
//!   acquisition-order graph spans files, so the workspace driver runs
//!   it globally and routes findings back through each file's
//!   suppressions here.
//!
//! Two meta findings keep the suppression mechanism honest:
//! `bad-suppression` (unknown rule or missing reason) and
//! `unused-suppression` (nothing on the target line would have fired).

use crate::scan::ScannedFile;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule id (kebab-case).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

/// Every enforceable rule id, for `--list-rules` and suppression
/// validation.
pub const RULE_IDS: &[&str] = &[
    "entropy",
    "instant-now",
    "panic-path",
    "fs-unwrap",
    "metric-name",
    "print",
    "sleep-in-test",
    "trace-context",
    "unsorted-export",
    "lock-order",
    "atomics-ordering",
    "tab",
    "trailing-ws",
    "file-length",
];

/// Non-`Relaxed` atomic orderings: each use is a claim about inter-
/// thread visibility that the type system cannot check, so each must
/// carry an `// ordering:` comment saying what it pairs with.
const STRONG_ORDERINGS: &[&str] = &[
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
    "Ordering::SeqCst",
];

/// Ambient-entropy patterns banned from deterministic library code.
const ENTROPY_PATTERNS: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "SystemTime::now",
    "rand::random",
];

/// Crates allowed to read the monotonic clock: observability and the
/// bench harness measure durations by design.
const INSTANT_ALLOWED_PREFIXES: &[&str] = &["crates/obs/", "crates/bench/"];

/// Files additionally allowed to read the monotonic clock: the engine's
/// shutdown/timeout plumbing needs real deadlines.
const INSTANT_ALLOWED_FILES: &[&str] = &["crates/core/src/engine.rs"];

/// Serving-path files that must stay free of panicking calls: a panic
/// here poisons a shard and degrades the whole engine.
const PANIC_FREE_FILES: &[&str] = &[
    "crates/core/src/engine.rs",
    "crates/core/src/streaming.rs",
    "crates/core/src/recovery.rs",
    "crates/core/src/ptta.rs",
    // The batched forward path runs inside shard workers, so the device
    // kernels and the batch-capable layers are serving-path too.
    "crates/tensor/src/device.rs",
    "crates/nn/src/layers.rs",
    // The socket front-end sits on the same hot path: a panic in the
    // codec, the connection loop, or admission control kills a worker
    // carrying many connections.
    "crates/serve/src/protocol.rs",
    "crates/serve/src/server.rs",
    "crates/serve/src/admission.rs",
    // The tracing primitives run inside every request (the flight
    // recorder's is_slow/record path) and the ticker thread.
    "crates/obs/src/trace.rs",
    "crates/obs/src/window.rs",
    // Persistence runs on the observe hot path (per-record appends) and
    // at cold start; a panic there turns a disk fault into an outage
    // instead of a typed SegmentError + quarantine.
    "crates/core/src/durability.rs",
    // The fault-injection Fs wrapper is swapped in underneath the same
    // store, so it must uphold the same no-panic contract.
    "crates/testkit/src/faultfs.rs",
];

const PANIC_PATTERNS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

/// Tokens that mark a line as producing a filesystem `io::Result`. A
/// bare `.unwrap()` on the same line turns a recoverable disk fault
/// (full volume, yanked mount, permission change) into a panic, so
/// library code must propagate or handle it; only tests may assume a
/// healthy disk.
const FS_RESULT_MARKERS: &[&str] = &[
    "std::fs",
    "fs::",
    "File::",
    "OpenOptions",
    ".sync_all(",
    ".sync_data(",
    "create_dir",
    "read_dir",
    "remove_file(",
    "rename(",
    "set_len(",
];

/// Ordered longest-first: `eprintln!` contains `println!` as a
/// substring, and the checker reports only the first match per line.
const PRINT_PATTERNS: &[&str] = &["eprintln!", "println!", "eprint!(", "print!("];

/// Files whose map iteration feeds golden files or exported text, where
/// HashMap order nondeterminism shows up as spurious diffs.
const EXPORT_FILES: &[&str] = &[
    "crates/testkit/src/json.rs",
    "crates/testkit/src/golden.rs",
    "crates/obs/src/export.rs",
    "crates/bench/src/report.rs",
];

/// Accepted histogram name unit suffixes.
const HISTOGRAM_UNITS: &[&str] = &["_ns", "_us", "_ms", "_secs", "_millinats", "_bp", "_bytes"];

/// Files longer than this need a `file-length` suppression explaining
/// why they have not been split.
const MAX_FILE_LINES: usize = 3000;

/// What kind of compilation target a path belongs to; decides which
/// rule scopes apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileClass {
    /// Integration test or bench target (`tests/`, `benches/`).
    pub is_test_target: bool,
    /// Example target.
    pub is_example: bool,
    /// Binary target or build script.
    pub is_bin: bool,
}

impl FileClass {
    /// Classify a workspace-relative path (forward slashes).
    pub fn classify(rel: &str) -> FileClass {
        let is_test_target =
            rel.starts_with("tests/") || rel.contains("/tests/") || rel.contains("/benches/");
        let is_example = rel.starts_with("examples/") || rel.contains("/examples/");
        let is_bin = rel.contains("/src/bin/")
            || rel.ends_with("/main.rs")
            || rel == "build.rs"
            || rel.ends_with("/build.rs");
        FileClass {
            is_test_target,
            is_example,
            is_bin,
        }
    }

    /// Library-scope rules apply: not a test/bench, example, or bin.
    fn library_scope(&self) -> bool {
        !self.is_test_target && !self.is_example && !self.is_bin
    }
}

fn path_allowed_instant(rel: &str) -> bool {
    INSTANT_ALLOWED_PREFIXES.iter().any(|p| rel.starts_with(p))
        || INSTANT_ALLOWED_FILES.contains(&rel)
}

/// Check one scanned file; returns findings in line order.
///
/// The sanctioned poisoned-lock idiom `.unwrap_or_else(|p| p.into_inner())`
/// never matches the `.unwrap()` pattern (the parenthesis pair is what
/// makes the call panicking), so it needs no special case.
///
/// Standalone convenience over [`collect_raw`] + the file-local slice
/// of the [`lock-order`](crate::locks) pass + [`apply_suppressions`];
/// the workspace driver composes the same pieces itself so the
/// lock-order graph can span files.
pub fn check_file(rel: &str, content: &str) -> Vec<Violation> {
    let scanned = ScannedFile::scan(content);
    let mut raw = collect_raw(rel, &scanned);
    if crate::locks::LOCK_ORDER_FILES.contains(&rel) {
        let fns = crate::locks::extract_lock_sequences(rel, &scanned);
        raw.extend(crate::locks::lock_order_violations(&fns));
    }
    apply_suppressions(rel, &scanned, raw)
}

/// All per-file findings, before suppression filtering.
pub(crate) fn collect_raw(rel: &str, scanned: &ScannedFile) -> Vec<Violation> {
    let class = FileClass::classify(rel);
    let mut raw: Vec<Violation> = Vec::new();

    let lib_scope = class.library_scope();
    let panic_free = PANIC_FREE_FILES.contains(&rel);
    let instant_ok = path_allowed_instant(rel);
    let export_file = EXPORT_FILES.contains(&rel);

    for (idx, line) in scanned.lines.iter().enumerate() {
        let n = idx + 1;
        let code = line.code.as_str();
        let push = |raw: &mut Vec<Violation>, rule: &'static str, message: String| {
            raw.push(Violation {
                file: rel.to_string(),
                line: n,
                rule,
                message,
            });
        };

        // -- hygiene: everywhere, including tests ----------------------
        if line.raw.contains('\t') {
            push(
                &mut raw,
                "tab",
                "hard tab; this repo indents with spaces".to_string(),
            );
        }
        if line.raw.ends_with(' ') || line.raw.ends_with('\t') {
            push(&mut raw, "trailing-ws", "trailing whitespace".to_string());
        }

        let in_lib_code = lib_scope && !line.in_test;

        // -- sleep-in-test: test code only -----------------------------
        let in_test_code = class.is_test_target || line.in_test;
        if in_test_code && code.contains("thread::sleep") {
            push(
                &mut raw,
                "sleep-in-test",
                "wall-clock sleep in a test; poll a deadline or use a channel instead".to_string(),
            );
        }

        if !in_lib_code {
            continue;
        }

        // -- entropy ---------------------------------------------------
        for pat in ENTROPY_PATTERNS {
            if code.contains(pat) {
                push(
                    &mut raw,
                    "entropy",
                    format!("ambient entropy `{pat}` in deterministic library code; thread a seeded Rng or logical clock instead"),
                );
            }
        }

        // -- instant-now -----------------------------------------------
        if !instant_ok && code.contains("Instant::now") {
            push(
                &mut raw,
                "instant-now",
                "direct monotonic-clock read outside the obs/bench allowlist; use adamove_obs::Stopwatch".to_string(),
            );
        }

        // -- panic-path ------------------------------------------------
        if panic_free {
            for pat in PANIC_PATTERNS {
                if code.contains(pat) {
                    push(
                        &mut raw,
                        "panic-path",
                        format!("`{}` in a panic-free serving file; return a typed error or document the invariant with a suppression", pat.trim_end_matches('(')),
                    );
                }
            }
        }

        // -- fs-unwrap -------------------------------------------------
        // Narrower than panic-path (only `.unwrap()`, only fs lines)
        // but workspace-wide: every crate's library code must treat a
        // filesystem error as a value, not an invariant.
        if code.contains(".unwrap()") {
            if let Some(marker) = FS_RESULT_MARKERS.iter().find(|m| code.contains(*m)) {
                push(
                    &mut raw,
                    "fs-unwrap",
                    format!("bare `unwrap()` on a filesystem result (`{marker}`); propagate the io::Error or handle the fault"),
                );
            }
        }

        // -- metric-name -----------------------------------------------
        for (what, is_counter) in [(".counter(", true), (".histogram(", false)] {
            if let Some(pos) = code.find(what) {
                // First string literal at or after the call's open paren
                // is the metric name; dynamic names are skipped.
                if let Some(lit) = line.strings.iter().find(|s| s.col >= pos) {
                    let name = lit.text.as_str();
                    if is_counter {
                        if !name.ends_with("_total") {
                            push(
                                &mut raw,
                                "metric-name",
                                format!("counter `{name}` must end in `_total`"),
                            );
                        }
                    } else if !HISTOGRAM_UNITS.iter().any(|u| name.ends_with(u)) {
                        push(
                            &mut raw,
                            "metric-name",
                            format!(
                                "histogram `{name}` must carry a unit suffix ({})",
                                HISTOGRAM_UNITS.join(", ")
                            ),
                        );
                    }
                }
            }
        }

        // -- print -----------------------------------------------------
        for pat in PRINT_PATTERNS {
            if code.contains(pat) {
                push(
                    &mut raw,
                    "print",
                    format!(
                        "`{}` in library code; route output through the Tracer/sink seam",
                        pat.trim_end_matches('(')
                    ),
                );
                break; // one finding per line; longest pattern wins
            }
        }

        // -- trace-context ---------------------------------------------
        // TraceContext is Copy and rides the call path by value: a
        // reference invites accidental sharing/mutation across requests,
        // and a global would let one request's identity leak into
        // another's spans.
        if code.contains("TraceContext") {
            if code.contains("&TraceContext") || code.contains("&mut TraceContext") {
                push(
                    &mut raw,
                    "trace-context",
                    "TraceContext is Copy and must be passed by value; take `TraceContext`, not a reference".to_string(),
                );
            }
            let trimmed = code.trim_start();
            if trimmed.starts_with("static ")
                || code.contains("static mut ")
                || code.contains("thread_local")
            {
                push(
                    &mut raw,
                    "trace-context",
                    "TraceContext must never be stored in a global/static; thread it through call arguments".to_string(),
                );
            }
        }

        // -- unsorted-export -------------------------------------------
        if export_file && (code.contains("HashMap") || code.contains("HashSet")) {
            push(
                &mut raw,
                "unsorted-export",
                "hash-ordered collection in an export/golden path; use BTreeMap/BTreeSet or sort before emitting".to_string(),
            );
        }

        // -- atomics-ordering ------------------------------------------
        // Every non-Relaxed ordering is a visibility claim: the code
        // must say which store/load it pairs with and what becomes
        // visible, in an `// ordering:` comment on the same line or in
        // the contiguous comment block above. A Relaxed *store* to a
        // cell another thread reads for control decisions is the one
        // place Relaxed itself needs defending, so it carries the same
        // obligation; Relaxed loads and RMWs (counters) are
        // self-evidently order-free.
        let trimmed_code = code.trim_start();
        let is_use = trimmed_code.starts_with("use ") || trimmed_code.starts_with("pub use ");
        if !is_use {
            let block_justified = || {
                scanned.lines[..idx]
                    .iter()
                    .rev()
                    .take_while(|l| l.raw.trim_start().starts_with("//"))
                    .any(|l| l.raw.trim_start().starts_with("// ordering:"))
            };
            let justified = line.raw.contains("// ordering:") || block_justified();
            if let Some(strong) = STRONG_ORDERINGS.iter().find(|p| code.contains(**p)) {
                if !justified {
                    push(
                        &mut raw,
                        "atomics-ordering",
                        format!(
                            "`{strong}` without a justification; add `// ordering: <what \
                             this synchronizes with>` on this line or the line above"
                        ),
                    );
                }
            } else if code.contains(".store(") && code.contains("Ordering::Relaxed") && !justified {
                push(
                    &mut raw,
                    "atomics-ordering",
                    "Relaxed store: if another thread reads this cell for a control \
                     decision, say why Relaxed suffices with `// ordering: ...`; \
                     otherwise say it is single-owner state"
                        .to_string(),
                );
            }
        }
    }

    // -- file-length (anchored to line 1 so a suppression there can
    // -- carry the justification) -------------------------------------
    if scanned.lines.len() > MAX_FILE_LINES {
        raw.push(Violation {
            file: rel.to_string(),
            line: 1,
            rule: "file-length",
            message: format!(
                "{} lines exceeds the {MAX_FILE_LINES}-line budget; split the module or justify with a suppression",
                scanned.lines.len()
            ),
        });
    }

    raw
}

/// Filter findings through the file's suppressions, emitting
/// `bad-suppression` / `unused-suppression` meta findings.
pub(crate) fn apply_suppressions(
    rel: &str,
    scanned: &ScannedFile,
    raw: Vec<Violation>,
) -> Vec<Violation> {
    let mut out: Vec<Violation> = Vec::new();
    let mut used = vec![false; scanned.suppressions.len()];

    for s in &scanned.suppressions {
        if !RULE_IDS.contains(&s.rule.as_str()) {
            out.push(Violation {
                file: rel.to_string(),
                line: s.line,
                rule: "bad-suppression",
                message: format!(
                    "unknown rule `{}` in lint:allow (known: {})",
                    s.rule,
                    RULE_IDS.join(", ")
                ),
            });
        } else if s.reason.is_empty() {
            out.push(Violation {
                file: rel.to_string(),
                line: s.line,
                rule: "bad-suppression",
                message: format!(
                    "suppression of `{}` has no reason; write `// lint:allow({}): <why>`",
                    s.rule, s.rule
                ),
            });
        }
    }

    for v in raw {
        let mut suppressed = false;
        for (i, s) in scanned.suppressions.iter().enumerate() {
            // A suppression covers its target line and its own line —
            // the latter so a standalone comment on line 1 can carry
            // the `file-length` justification (anchored to line 1) and
            // so hygiene findings on the comment line itself are
            // coverable.
            if s.rule == v.rule && (s.target == v.line || s.line == v.line) && !s.reason.is_empty()
            {
                used[i] = true;
                suppressed = true;
            }
        }
        if !suppressed {
            out.push(v);
        }
    }

    for (i, s) in scanned.suppressions.iter().enumerate() {
        if !used[i] && RULE_IDS.contains(&s.rule.as_str()) && !s.reason.is_empty() {
            out.push(Violation {
                file: rel.to_string(),
                line: s.line,
                rule: "unused-suppression",
                message: format!(
                    "suppression of `{}` matched nothing on line {}; delete it",
                    s.rule, s.target
                ),
            });
        }
    }

    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}
