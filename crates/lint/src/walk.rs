//! Workspace discovery and the whole-tree lint driver.

use std::fs;
use std::path::{Path, PathBuf};

use crate::locks;
use crate::rules::{apply_suppressions, collect_raw, Violation};
use crate::scan::ScannedFile;

/// Directories under the workspace root that contain lintable sources.
const SCAN_ROOTS: &[&str] = &["crates", "src", "examples", "tests"];

/// Directory names skipped wherever they appear. `fixtures` holds the
/// lint crate's own planted-violation corpus, which must not fail the
/// real workspace scan.
const SKIP_DIRS: &[&str] = &[
    ".git",
    "target",
    "target-offline",
    "target-tsan",
    ".devstubs",
    "fixtures",
    "node_modules",
];

/// Result of linting a tree.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Unsuppressed findings plus meta findings, in path order.
    pub violations: Vec<Violation>,
    /// Number of `.rs` files scanned.
    pub files: usize,
}

/// Ascend from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    let mut children: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    children.sort(); // deterministic scan order
    for child in children {
        if child.is_dir() {
            let name = child
                .file_name()
                .map(|n| n.to_string_lossy().to_string())
                .unwrap_or_default();
            if !SKIP_DIRS.contains(&name.as_str()) {
                collect_rs_files(&child, out);
            }
        } else if child.extension().is_some_and(|e| e == "rs") {
            out.push(child);
        }
    }
}

/// Lint every `.rs` file under the workspace's scan roots.
pub fn lint_workspace(root: &Path) -> LintReport {
    let mut files: Vec<PathBuf> = Vec::new();
    for scan_root in SCAN_ROOTS {
        let dir = root.join(scan_root);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files);
        }
    }
    // Root-level build.rs, if any, is part of the build surface too.
    let build_rs = root.join("build.rs");
    if build_rs.is_file() {
        files.push(build_rs);
    }

    // Pass 1: scan every file and collect its per-file raw findings,
    // keeping the scans so suppressions can be applied after the
    // cross-file lock-order pass has contributed its findings.
    let mut report = LintReport::default();
    let mut scanned_files: Vec<(String, ScannedFile, Vec<Violation>)> = Vec::new();
    let mut lock_fns: Vec<locks::FnLocks> = Vec::new();
    for path in files {
        let rel = match path.strip_prefix(root) {
            Ok(r) => r.to_string_lossy().replace('\\', "/"),
            Err(_) => path.to_string_lossy().to_string(),
        };
        let content = match fs::read_to_string(&path) {
            Ok(c) => c,
            Err(_) => continue, // non-UTF-8 or unreadable: not lintable source
        };
        report.files += 1;
        let scanned = ScannedFile::scan(&content);
        let raw = collect_raw(&rel, &scanned);
        if locks::LOCK_ORDER_FILES.contains(&rel.as_str()) {
            lock_fns.extend(locks::extract_lock_sequences(&rel, &scanned));
        }
        scanned_files.push((rel, scanned, raw));
    }

    // Pass 2: fold every function's acquisition sequence into one
    // graph; a cycle between files lands the finding in each owning
    // file's raw set, where its suppressions apply as usual.
    for v in locks::lock_order_violations(&lock_fns) {
        if let Some((_, _, raw)) = scanned_files.iter_mut().find(|(rel, _, _)| *rel == v.file) {
            raw.push(v);
        }
    }

    for (rel, scanned, raw) in scanned_files {
        report
            .violations
            .extend(apply_suppressions(&rel, &scanned, raw));
    }
    report
        .violations
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    report
}
