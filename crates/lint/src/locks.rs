//! The `lock-order` pass: cross-file lock-acquisition-order analysis.
//!
//! Deadlock by lock inversion needs two code paths that acquire the
//! same pair of locks in opposite orders. This pass extracts, per
//! function, the *sequence* of lock acquisitions — both the repo's
//! `lock(&expr)` poison-recovering helper and the shim/std `.lock()` /
//! `.try_lock()` method forms — from the files that share locks on the
//! serving path ([`LOCK_ORDER_FILES`]), folds every sequence into one
//! directed lock-order graph (`a → b` when some function acquires `a`
//! before `b`), and flags each edge that participates in a cycle.
//!
//! The analysis deliberately over-approximates: it does not track
//! guard drops, so `lock a; drop; lock b` contributes the same `a → b`
//! edge as genuine nesting, and acquisitions inside closures count
//! toward the enclosing function. That costs nothing while the graph
//! is acyclic — a finding still needs a real `a → … → b` *and*
//! `b → … → a` pair of paths, and the fix (pick one global order) is
//! the same whether the nesting is real or potential. Lock identity is
//! the final field identifier of the receiver with indexing stripped
//! (`self.slots[shard].link` → `link`), which matches how this
//! workspace names its mutexes: one field name per protected resource.
//!
//! Findings anchor to the line acquiring the *second* lock of the
//! offending edge, so a `// lint:allow(lock-order): <why>` there can
//! document a cycle that is provably benign (e.g. ordered by a
//! runtime token the scanner cannot see).

use std::collections::{BTreeMap, BTreeSet};

use crate::rules::Violation;
use crate::scan::ScannedFile;

/// Files whose functions contribute to the global lock-order graph:
/// the engine hot path and the observability registry share mutexes
/// across threads, so their acquisition orders must agree. The
/// `crates/obs/src/sync.rs` helper *definition* is excluded — its
/// `m.lock()` is the implementation of acquisition, not a use site.
pub const LOCK_ORDER_FILES: &[&str] = &[
    "crates/core/src/engine.rs",
    "crates/core/src/recovery.rs",
    "crates/core/src/durability.rs",
    "crates/obs/src/registry.rs",
    "crates/obs/src/span.rs",
];

/// One lock acquisition site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Acquisition {
    /// Normalized lock name (final field identifier of the receiver).
    pub lock: String,
    /// 1-based line of the acquiring call.
    pub line: usize,
}

/// The ordered lock acquisitions of one function.
#[derive(Debug, Clone)]
pub struct FnLocks {
    /// Workspace-relative path of the defining file.
    pub file: String,
    /// Function name (for diagnostics).
    pub name: String,
    /// Acquisitions in source order.
    pub acquisitions: Vec<Acquisition>,
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Find a `fn name` item head on a code-view line; returns the name.
fn fn_name(code: &str) -> Option<String> {
    let mut search = 0usize;
    while let Some(rel_pos) = code[search..].find("fn ") {
        let pos = search + rel_pos;
        let before_ok = pos == 0 || !is_ident_char(code[..pos].chars().next_back().unwrap_or(' '));
        if before_ok {
            let name: String = code[pos + 3..]
                .trim_start()
                .chars()
                .take_while(|&c| is_ident_char(c))
                .collect();
            if !name.is_empty() {
                return Some(name);
            }
        }
        search = pos + 3;
    }
    None
}

fn brace_delta(code: &str) -> i64 {
    let mut d = 0i64;
    for c in code.chars() {
        match c {
            '{' => d += 1,
            '}' => d -= 1,
            _ => {}
        }
    }
    d
}

/// Normalize a receiver/argument expression to a lock name: last
/// `.`-segment, indexing stripped. `self.slots[shard].link` → `link`,
/// `rec.journals[shard]` → `journals`. Returns `None` when no stable
/// field identifier exists (bare `self`, call results, empty).
fn normalize(expr: &str) -> Option<String> {
    let e = expr
        .trim()
        .trim_start_matches('&')
        .trim_start_matches("mut ")
        .trim();
    let last = e.rsplit('.').next()?;
    let name: String = last.chars().take_while(|&c| is_ident_char(c)).collect();
    if name.is_empty() || name == "self" {
        return None;
    }
    Some(name)
}

/// Extract the receiver expression ending at byte `end` (exclusive):
/// walks back over identifiers, `.`, and balanced `[...]` index
/// brackets.
fn receiver_before(code: &str, end: usize) -> String {
    let chars: Vec<char> = code[..end].chars().collect();
    let mut i = chars.len();
    while i > 0 {
        let c = chars[i - 1];
        if is_ident_char(c) || c == '.' {
            i -= 1;
        } else if c == ']' {
            let mut depth = 0i64;
            let mut j = i;
            while j > 0 {
                match chars[j - 1] {
                    ']' => depth += 1,
                    '[' => depth -= 1,
                    _ => {}
                }
                j -= 1;
                if depth == 0 {
                    break;
                }
            }
            if depth != 0 {
                break;
            }
            i = j;
        } else {
            break;
        }
    }
    chars[i..].iter().collect()
}

/// The argument of a `lock(&...)` helper call starting right after the
/// open paren: everything up to the matching close paren.
fn helper_arg(code: &str, after_paren: usize) -> Option<&str> {
    let rest = &code[after_paren..];
    let mut depth = 0i64;
    for (off, c) in rest.char_indices() {
        match c {
            '(' | '[' => depth += 1,
            ')' if depth == 0 => return Some(&rest[..off]),
            ')' | ']' => depth -= 1,
            _ => {}
        }
    }
    None
}

/// All lock acquisitions on one code-view line.
fn line_acquisitions(code: &str, line: usize, out: &mut Vec<Acquisition>) {
    // Helper form: `lock(&expr)` — the repo's poison-recovering free
    // function. The char before `lock(` must not be an identifier char
    // (excludes `try_lock(`/`unlock(`) or a `.` (method calls take no
    // lock argument, but stay conservative).
    let mut search = 0usize;
    while let Some(rel_pos) = code[search..].find("lock(&") {
        let pos = search + rel_pos;
        search = pos + "lock(&".len();
        let prev = code[..pos].chars().next_back();
        if prev.is_some_and(|c| is_ident_char(c) || c == '.') {
            continue;
        }
        if let Some(arg) = helper_arg(code, pos + "lock(".len()) {
            if let Some(lock) = normalize(arg) {
                out.push(Acquisition { lock, line });
            }
        }
    }
    // Method form: `.lock()` / `.try_lock()` on a mutex field.
    for pat in [".lock()", ".try_lock()"] {
        let mut search = 0usize;
        while let Some(rel_pos) = code[search..].find(pat) {
            let pos = search + rel_pos;
            search = pos + pat.len();
            let recv = receiver_before(code, pos);
            if let Some(lock) = normalize(&recv) {
                out.push(Acquisition { lock, line });
            }
        }
    }
    // Source order within the line: sort by nothing (find order is
    // left-to-right per pattern); a line acquiring two locks in both
    // forms is vanishingly rare and the pair still lands in the graph.
}

/// Extract per-function acquisition sequences from one scanned file.
pub fn extract_lock_sequences(rel: &str, scanned: &ScannedFile) -> Vec<FnLocks> {
    let mut out: Vec<FnLocks> = Vec::new();
    let mut cur: Option<FnLocks> = None;
    let mut depth = 0i64;
    let mut entry_depth = 0i64;
    let mut in_body = false;
    for (idx, line) in scanned.lines.iter().enumerate() {
        let code = line.code.as_str();
        if cur.is_none() {
            if let Some(name) = fn_name(code) {
                cur = Some(FnLocks {
                    file: rel.to_string(),
                    name,
                    acquisitions: Vec::new(),
                });
                entry_depth = depth;
                in_body = false;
            }
        }
        match &mut cur {
            Some(f) => {
                line_acquisitions(code, idx + 1, &mut f.acquisitions);
                let had_open = code.contains('{');
                depth += brace_delta(code);
                if !in_body && had_open {
                    in_body = true; // body may open and close on one line
                }
                if in_body && depth <= entry_depth {
                    out.push(cur.take().expect("current fn"));
                } else if !in_body && code.contains(';') {
                    // Bodyless declaration (trait method signature).
                    cur = None;
                }
            }
            None => depth += brace_delta(code),
        }
    }
    if let Some(f) = cur.take() {
        out.push(f); // unterminated tail (truncated fixture): keep it
    }
    out
}

/// Where one `a → b` edge was first observed.
#[derive(Debug, Clone)]
struct EdgeSite {
    file: String,
    line: usize,
    func: String,
}

/// Fold acquisition sequences into the lock-order graph and flag every
/// edge on a cycle. Raw findings — the caller routes them through the
/// owning file's suppressions.
pub fn lock_order_violations(fns: &[FnLocks]) -> Vec<Violation> {
    let mut edges: BTreeMap<(String, String), EdgeSite> = BTreeMap::new();
    for f in fns {
        for i in 0..f.acquisitions.len() {
            for j in i + 1..f.acquisitions.len() {
                let a = &f.acquisitions[i].lock;
                let b = &f.acquisitions[j].lock;
                if a == b {
                    continue; // re-acquisition, usually after a drop
                }
                edges
                    .entry((a.clone(), b.clone()))
                    .or_insert_with(|| EdgeSite {
                        file: f.file.clone(),
                        line: f.acquisitions[j].line,
                        func: f.name.clone(),
                    });
            }
        }
    }

    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a.as_str()).or_default().insert(b.as_str());
    }

    let mut out = Vec::new();
    for ((a, b), site) in &edges {
        let Some(path) = shortest_path(&adj, b, a) else {
            continue; // no return path: edge is not on a cycle
        };
        let chain = path.join("` → `");
        let counter = edges.get(&(b.clone(), a.clone()));
        let elsewhere = match counter {
            Some(c) => format!("{}:{} (fn `{}`)", c.file, c.line, c.func),
            None => "another function".to_string(),
        };
        out.push(Violation {
            file: site.file.clone(),
            line: site.line,
            rule: "lock-order",
            message: format!(
                "lock-order cycle: fn `{}` acquires `{a}` before `{b}`, but `{chain}` \
                 is acquired elsewhere ({elsewhere}); pick one global order",
                site.func
            ),
        });
    }
    out
}

/// BFS shortest path `from → … → to` over the edge set; node order is
/// deterministic (BTree iteration).
fn shortest_path<'a>(
    adj: &BTreeMap<&'a str, BTreeSet<&'a str>>,
    from: &'a str,
    to: &str,
) -> Option<Vec<&'a str>> {
    let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::from([from]);
    let mut seen: BTreeSet<&str> = BTreeSet::from([from]);
    while let Some(node) = queue.pop_front() {
        if node == to {
            let mut path = vec![node];
            let mut cur = node;
            while let Some(&p) = prev.get(cur) {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        if let Some(nexts) = adj.get(node) {
            for &n in nexts {
                if seen.insert(n) {
                    prev.insert(n, node);
                    queue.push_back(n);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seqs(rel: &str, src: &str) -> Vec<FnLocks> {
        extract_lock_sequences(rel, &ScannedFile::scan(src))
    }

    #[test]
    fn extracts_helper_and_method_forms() {
        let src = "fn f(&self) {\n    let g = lock(&self.slots[shard].link);\n    \
                   let j = self.journals[shard].lock();\n    let t = self.ring.try_lock();\n}\n";
        let fns = seqs("crates/core/src/engine.rs", src);
        assert_eq!(fns.len(), 1);
        let names: Vec<&str> = fns[0]
            .acquisitions
            .iter()
            .map(|a| a.lock.as_str())
            .collect();
        assert_eq!(names, vec!["link", "journals", "ring"]);
        assert_eq!(fns[0].acquisitions[0].line, 2);
        assert_eq!(fns[0].name, "f");
    }

    #[test]
    fn try_lock_is_not_the_helper_and_self_is_no_lock() {
        let src = "fn g(&self) {\n    if self.try_lock().is_ok() {}\n    lock(&other.state);\n}\n";
        let fns = seqs("crates/core/src/engine.rs", src);
        // `self.try_lock()` has no field receiver → skipped; the helper
        // call still counts.
        let names: Vec<&str> = fns[0]
            .acquisitions
            .iter()
            .map(|a| a.lock.as_str())
            .collect();
        assert_eq!(names, vec!["state"]);
    }

    #[test]
    fn per_function_segmentation_resets_sequences() {
        let src = "fn a(&self) {\n    lock(&self.x);\n}\n\nfn b(&self) {\n    lock(&self.y);\n}\n";
        let fns = seqs("crates/core/src/engine.rs", src);
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].acquisitions[0].lock, "x");
        assert_eq!(fns[1].acquisitions[0].lock, "y");
        // No cross-function edge: x-then-y in separate fns is no cycle
        // even with a y-then-x elsewhere... unless both orders appear
        // within single functions.
        assert!(lock_order_violations(&fns).is_empty());
    }

    #[test]
    fn opposite_orders_across_files_form_a_cycle() {
        let f1 = seqs(
            "crates/core/src/engine.rs",
            "fn ab(&self) {\n    let a = lock(&self.alpha);\n    let b = self.beta.lock();\n}\n",
        );
        let f2 = seqs(
            "crates/core/src/recovery.rs",
            "fn ba(&self) {\n    let b = lock(&self.beta);\n    let a = self.alpha.lock();\n}\n",
        );
        let all: Vec<FnLocks> = f1.into_iter().chain(f2).collect();
        let v = lock_order_violations(&all);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v
            .iter()
            .any(|x| x.file == "crates/core/src/engine.rs" && x.line == 3));
        assert!(v
            .iter()
            .any(|x| x.file == "crates/core/src/recovery.rs" && x.line == 3));
        assert!(v[0].message.contains("pick one global order"));
    }

    #[test]
    fn reacquisition_of_the_same_lock_is_no_cycle() {
        let fns = seqs(
            "crates/core/src/engine.rs",
            "fn f(&self) {\n    drop(lock(&self.x));\n    drop(lock(&self.x));\n}\n",
        );
        assert!(lock_order_violations(&fns).is_empty());
    }

    #[test]
    fn three_party_cycle_is_found_via_path() {
        let src = "fn ab(&self) { let _a = lock(&self.a); let _b = lock(&self.b); }\n\
                   fn bc(&self) { let _b = lock(&self.b); let _c = lock(&self.c); }\n\
                   fn ca(&self) { let _c = lock(&self.c); let _a = lock(&self.a); }\n";
        let fns = seqs("crates/core/src/engine.rs", src);
        let v = lock_order_violations(&fns);
        assert_eq!(v.len(), 3, "every edge of the 3-cycle is flagged: {v:?}");
        assert!(v[0].message.contains("` → `"), "{}", v[0].message);
    }
}
