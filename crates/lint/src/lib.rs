//! adamove-lint: tidy-style workspace invariant checker.
//!
//! A zero-dependency static analysis pass over the workspace's Rust
//! sources, in the spirit of rustc's `tidy`: plain line scanning (no
//! `syn`, no `regex`), so it builds offline and runs in well under a
//! second. It enforces the serving-stack invariants that `clippy`
//! cannot see because they are repo policy, not Rust idiom:
//!
//! | rule | scope | invariant |
//! |------|-------|-----------|
//! | `entropy` | library code | no `thread_rng` / `SystemTime::now` / `rand::random` / `from_entropy` — replay determinism |
//! | `instant-now` | library code | `Instant::now` only in obs/bench and the engine's timeout plumbing; elsewhere use `adamove_obs::Stopwatch` |
//! | `panic-path` | engine/streaming/recovery/ptta | no `.unwrap()` / `.expect(` / `panic!` family — a panic poisons a shard |
//! | `metric-name` | library code | counters end `_total`; histograms carry a unit suffix |
//! | `print` | library code | no `println!` / `eprintln!` — output goes through the Tracer/sink seam |
//! | `sleep-in-test` | test code | no `thread::sleep` — poll deadlines instead of breeding flakes |
//! | `unsorted-export` | export/golden paths | no `HashMap`/`HashSet` where iteration order reaches golden files |
//! | `lock-order` | engine/recovery/durability/registry/span | lock acquisition orders form one acyclic global graph — no lock-inversion deadlocks |
//! | `atomics-ordering` | library code | every non-`Relaxed` `Ordering::` use (and `Relaxed` stores to control cells) carries an `// ordering:` justification |
//! | `tab`, `trailing-ws`, `file-length` | everywhere | hygiene |
//!
//! ## Suppressions
//!
//! A finding is silenced by a plain line comment carrying a reason:
//!
//! ```text
//! x.expect("invariant"); // lint:allow(panic-path): width == rows is a construction invariant
//! // lint:allow(print): CLI-facing output   <- standalone form targets the next line
//! ```
//!
//! A suppression without a reason, or naming an unknown rule, is itself
//! a finding (`bad-suppression`); one that matches nothing is flagged
//! `unused-suppression`. Doc comments and string literals never declare
//! suppressions, so this paragraph does not suppress anything.

pub mod locks;
pub mod rules;
pub mod scan;
pub mod walk;

pub use locks::{extract_lock_sequences, lock_order_violations, FnLocks, LOCK_ORDER_FILES};
pub use rules::{check_file, FileClass, Violation, RULE_IDS};
pub use scan::ScannedFile;
pub use walk::{find_workspace_root, lint_workspace, LintReport};
