//! CLI entry point: lint the workspace, print findings, exit nonzero on
//! any.

use std::path::PathBuf;
use std::process::ExitCode;

use adamove_lint::{find_workspace_root, lint_workspace, RULE_IDS};

const USAGE: &str = "\
adamove-lint: tidy-style workspace invariant checker

USAGE:
    adamove-lint [--root <dir>] [--list-rules]

OPTIONS:
    --root <dir>   Lint the workspace containing <dir> (default: cwd)
    --list-rules   Print the rule ids and exit
    --help         Print this help

Findings print as `path:line: [rule] message`. Suppress a finding with
`// lint:allow(<rule>): <reason>` on or above the offending line.";

fn main() -> ExitCode {
    let mut root_arg: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--list-rules" => {
                for rule in RULE_IDS {
                    println!("{rule}");
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(dir) => root_arg = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("error: unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let start = root_arg.unwrap_or_else(|| PathBuf::from("."));
    let Some(root) = find_workspace_root(&start) else {
        eprintln!(
            "error: no workspace Cargo.toml found above {}",
            start.display()
        );
        return ExitCode::from(2);
    };

    let report = lint_workspace(&root);
    for v in &report.violations {
        println!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
    }
    if report.violations.is_empty() {
        println!(
            "adamove-lint: {} files clean ({} rules)",
            report.files,
            RULE_IDS.len()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "adamove-lint: {} finding(s) across {} files",
            report.violations.len(),
            report.files
        );
        ExitCode::FAILURE
    }
}
