//! atomics-ordering fixture: strong orderings and Relaxed control
//! stores must carry `// ordering:` justifications.
use std::sync::atomic::Ordering;

fn unjustified_acquire(&self) -> bool {
    self.stopping.load(Ordering::Acquire)
}

fn justified_release(&self) {
    self.stopping.store(true, Ordering::Release); // ordering: publishes queue writes to workers
}

fn justified_above(&self) -> u64 {
    // ordering: pairs with the Release store in shutdown()
    self.cursor.load(Ordering::Acquire)
}

fn unjustified_relaxed_store(&self) {
    self.degraded.store(true, Ordering::Relaxed);
}

fn relaxed_loads_are_free(&self) -> u64 {
    self.seq.fetch_add(1, Ordering::Relaxed) + self.seq.load(Ordering::Relaxed)
}

fn justified_relaxed_store(&self) {
    self.counter.store(0, Ordering::Relaxed); // ordering: single-owner reset, readers only sample
}

fn suppressed_seqcst(&self) {
    // lint:allow(atomics-ordering): fixture — migrating legacy code, tracked separately
    self.legacy.store(1, Ordering::SeqCst);
}

// A doc comment mentioning Ordering::SeqCst never fires, and neither
// does a string: "Ordering::AcqRel".
fn mentions_only(&self) -> &str {
    "uses Ordering::AcqRel in prose"
}

#[cfg(test)]
mod tests {
    fn tests_are_exempt() {
        x.store(1, Ordering::SeqCst);
    }
}
