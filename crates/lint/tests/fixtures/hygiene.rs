//! Planted hygiene violations: a hard tab and trailing whitespace.

pub fn tabbed() -> u32 {
	42 // line 4: hard tab fires
}

pub fn trailing() -> u32 { 
    7
}
