//! Planted `entropy` violations. Mentions of thread_rng in doc comments
//! must not fire.

pub fn bad_rng() -> u64 {
    let mut rng = rand::thread_rng(); // line 5: fires
    rng.gen()
}

pub fn bad_clock() -> u64 {
    let now = std::time::SystemTime::now(); // line 10: fires
    now.elapsed().map(|d| d.as_nanos() as u64).unwrap_or(0)
}

pub fn sanctioned() -> u64 {
    let mut rng = rand::thread_rng(); // lint:allow(entropy): fixture demonstrating a reasoned suppression
    rng.gen()
}

pub fn string_mention() -> &'static str {
    "calling thread_rng here would be bad" // literal: must not fire
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_use_entropy() {
        let _ = rand::thread_rng(); // cfg(test): must not fire
    }
}
