//! Planted `metric-name` violations.

pub fn register(reg: &Registry) {
    let _a = reg.counter("requests"); // line 4: fires — no _total
    let _b = reg.counter("requests_total"); // conformant
    let _c = reg.histogram("latency"); // line 6: fires — no unit suffix
    let _d = reg.histogram("latency_ns"); // conformant
    let _e = reg.histogram("loss_millinats"); // conformant
    let name = dynamic_name();
    let _f = reg.counter(name); // dynamic: skipped
    let _g = reg.counter("evictions"); // lint:allow(metric-name): fixture demonstrating suppression
}
