//! Planted `unsorted-export` violations; checked under an export-path
//! rel path.

use std::collections::BTreeMap;
use std::collections::HashMap; // line 5: fires

pub fn emit(metrics: &HashMap<String, u64>) -> String {
    let sorted: BTreeMap<_, _> = metrics.iter().collect(); // conformant
    format!("{sorted:?}")
}

// lint:allow(unsorted-export): fixture — size query, iteration order never escapes
pub fn suppressed(set: &std::collections::HashSet<u32>) -> usize {
    set.len()
}
