//! Planted `print` violations.

pub fn bad_stdout() {
    println!("library code must not print"); // line 4: fires
}

pub fn bad_stderr() {
    eprintln!("nor write stderr"); // line 8: fires
}

pub fn suppressed() {
    eprintln!("sanctioned sink"); // lint:allow(print): fixture — the one sanctioned emitter
}

pub fn string_mention() -> &'static str {
    "println! inside a string must not fire"
}
