//! Planted `sleep-in-test` violations; checked under a tests/ rel path.

#[test]
fn flaky_wait() {
    std::thread::sleep(std::time::Duration::from_millis(50)); // line 5: fires
}

#[test]
fn suppressed_wait() {
    // lint:allow(sleep-in-test): fixture — exercising a real timer edge
    std::thread::sleep(std::time::Duration::from_millis(1));
}
