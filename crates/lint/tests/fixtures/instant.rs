//! Planted `instant-now` violations.

use std::time::Instant;

pub fn bad_timer() -> Instant {
    Instant::now() // line 6: fires outside the allowlist
}

pub fn suppressed_timer() -> Instant {
    // lint:allow(instant-now): fixture demonstrating the standalone suppression form
    Instant::now()
}
