//! lock-order fixture: `take_both` nests alpha before beta, while
//! `take_reversed` nests beta before alpha — a textbook inversion. The
//! suppressed pair (gamma/delta) shows a documented benign cycle.

fn take_both(&self) {
    let a = lock(&self.alpha);
    let b = self.slots[shard].beta.lock();
    drop((a, b));
}

fn take_reversed(&self) {
    let b = lock(&self.beta);
    let a = self.alpha.try_lock();
    drop((b, a));
}

fn documented_pair(&self) {
    let g = lock(&self.gamma);
    // lint:allow(lock-order): fixture — ordered by the shard token, invisible to the scanner
    let d = lock(&self.delta);
    drop((g, d));
}

fn documented_reversed(&self) {
    let d = lock(&self.delta);
    // lint:allow(lock-order): fixture — ordered by the shard token, invisible to the scanner
    let g = lock(&self.gamma);
    drop((d, g));
}

fn single_lock_is_fine(&self) {
    let j = self.journals[shard].lock();
    drop(j);
}
