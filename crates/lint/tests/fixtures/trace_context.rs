//! Fixture for the trace-context rule: by-value only, never global.
use adamove_obs::TraceContext;

pub fn by_ref(ctx: &TraceContext) -> u64 {
    ctx.request_id
}

pub static mut LAST_CTX: Option<TraceContext> = None;

pub fn by_value(ctx: TraceContext) -> u64 {
    // A doc or comment mention of &TraceContext stays quiet.
    ctx.request_id
}

// lint:allow(trace-context): fixture justification
pub fn suppressed(ctx: &mut TraceContext) {
    ctx.parent_id = 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    pub fn test_only(ctx: &TraceContext) -> u64 {
        ctx.parent_id
    }
}
