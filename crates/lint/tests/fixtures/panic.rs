//! Planted `panic-path` violations; checked under a panic-free rel path.

pub fn bad_unwrap(x: Option<u32>) -> u32 {
    x.unwrap() // line 4: fires
}

pub fn bad_expect(x: Option<u32>) -> u32 {
    x.expect("present") // line 8: fires
}

pub fn bad_panic() {
    panic!("boom"); // line 12: fires
}

pub fn sanctioned_poison(m: &std::sync::Mutex<u32>) -> u32 {
    *m.lock().unwrap_or_else(|p| p.into_inner()) // idiom: must not fire
}

pub fn suppressed(x: Option<u32>) -> u32 {
    x.expect("invariant") // lint:allow(panic-path): fixture — construction invariant, not a runtime condition
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let _ = Some(1).unwrap(); // cfg(test): must not fire
    }
}
