//! Planted suppression misuse: missing reason, unknown rule, unused.

pub fn missing_reason() {
    println!("x"); // lint:allow(print)
}

pub fn unknown_rule() {
    // lint:allow(made-up-rule): no such rule
    let _ = 1;
}

pub fn unused() {
    let _ = 2; // lint:allow(entropy): nothing here uses entropy
}
