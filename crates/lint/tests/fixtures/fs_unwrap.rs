//! Planted `fs-unwrap` violations; checked under a plain library path.

pub fn bad_read(path: &std::path::Path) -> String {
    std::fs::read_to_string(path).unwrap() // line 4: fires
}

pub fn bad_sync(file: &std::fs::File) {
    file.sync_all().unwrap(); // line 8: fires
}

pub fn non_fs_unwrap(x: Option<u32>) -> u32 {
    x.unwrap() // no fs marker: must not fire
}

pub fn handled_read(path: &std::path::Path) -> std::io::Result<String> {
    std::fs::read_to_string(path) // propagated: must not fire
}

pub fn suppressed(path: &std::path::Path) -> Vec<u8> {
    std::fs::read(path).unwrap() // lint:allow(fs-unwrap): fixture — path is a build-time constant checked in CI
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_assume_a_healthy_disk() {
        let dir = std::env::temp_dir();
        std::fs::read_dir(dir).unwrap(); // cfg(test): must not fire
    }
}
