//! Each rule must fire on its planted fixture, honor reasoned
//! suppressions, and stay quiet on the false-positive guards
//! (comments, string literals, `#[cfg(test)]` regions).

use adamove_lint::{check_file, Violation};

fn fire_lines(violations: &[Violation], rule: &str) -> Vec<usize> {
    violations
        .iter()
        .filter(|v| v.rule == rule)
        .map(|v| v.line)
        .collect()
}

#[test]
fn entropy_fires_and_respects_guards() {
    let v = check_file(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/entropy.rs"),
    );
    assert_eq!(fire_lines(&v, "entropy"), vec![5, 10]);
    // Suppressed use, doc-comment mention, string mention, cfg(test)
    // use: none of those lines appear.
    assert!(v.iter().all(|f| f.rule == "entropy"), "{v:?}");
}

#[test]
fn instant_now_fires_outside_allowlist_only() {
    let src = include_str!("fixtures/instant.rs");
    let v = check_file("crates/core/src/fixture.rs", src);
    assert_eq!(fire_lines(&v, "instant-now"), vec![6]);
    // Same content under an allowlisted crate: clean.
    let v_obs = check_file("crates/obs/src/fixture.rs", src);
    assert!(fire_lines(&v_obs, "instant-now").is_empty());
    // The suppression is unused there, which is itself flagged.
    assert_eq!(fire_lines(&v_obs, "unused-suppression"), vec![10]);
}

#[test]
fn panic_path_fires_only_in_panic_free_files() {
    let src = include_str!("fixtures/panic.rs");
    let v = check_file("crates/core/src/streaming.rs", src);
    assert_eq!(fire_lines(&v, "panic-path"), vec![4, 8, 12]);
    // The poisoned-lock idiom and the suppressed expect stay quiet.
    // Outside the panic-free list the rule never applies.
    let elsewhere = check_file("crates/core/src/model.rs", src);
    assert!(fire_lines(&elsewhere, "panic-path").is_empty());
}

#[test]
fn fs_unwrap_fires_on_fs_lines_outside_tests() {
    let src = include_str!("fixtures/fs_unwrap.rs");
    let v = check_file("crates/core/src/fixture.rs", src);
    assert_eq!(fire_lines(&v, "fs-unwrap"), vec![4, 8]);
    // The non-fs unwrap, the propagated Result, the suppressed read,
    // and the cfg(test) region all stay quiet.
    assert!(v.iter().all(|f| f.rule == "fs-unwrap"), "{v:?}");
    // Test targets are exempt wholesale (library-scope rule).
    let v_test = check_file("crates/core/tests/fixture.rs", src);
    assert!(fire_lines(&v_test, "fs-unwrap").is_empty());
}

#[test]
fn metric_name_checks_literal_names_only() {
    let v = check_file(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/metrics.rs"),
    );
    assert_eq!(fire_lines(&v, "metric-name"), vec![4, 6]);
}

#[test]
fn print_fires_in_lib_code_not_in_bins() {
    let src = include_str!("fixtures/print.rs");
    let v = check_file("crates/core/src/fixture.rs", src);
    assert_eq!(fire_lines(&v, "print"), vec![4, 8]);
    // Bin targets and examples are CLI surfaces: exempt.
    let v_bin = check_file("crates/bench/src/bin/fixture.rs", src);
    assert!(fire_lines(&v_bin, "print").is_empty());
    let v_ex = check_file("crates/core/examples/fixture.rs", src);
    assert!(fire_lines(&v_ex, "print").is_empty());
}

#[test]
fn sleep_fires_in_test_code_only() {
    let src = include_str!("fixtures/sleep.rs");
    let v = check_file("crates/core/tests/fixture.rs", src);
    assert_eq!(fire_lines(&v, "sleep-in-test"), vec![5]);
    // In library scope the planted sleeps sit outside cfg(test), so the
    // test-scope rule stays quiet.
    let v_lib = check_file("crates/core/src/fixture.rs", src);
    assert!(fire_lines(&v_lib, "sleep-in-test").is_empty());
}

#[test]
fn trace_context_fires_on_refs_and_globals_only() {
    let src = include_str!("fixtures/trace_context.rs");
    let v = check_file("crates/serve/src/fixture.rs", src);
    // Line 4: by-reference parameter. Line 8: static storage. The
    // by-value fn, comment mention, suppressed &mut, and cfg(test)
    // region all stay quiet.
    assert_eq!(fire_lines(&v, "trace-context"), vec![4, 8]);
    // Test scope is exempt (library-scope rule).
    let v_test = check_file("crates/serve/tests/fixture.rs", src);
    assert!(fire_lines(&v_test, "trace-context").is_empty());
}

#[test]
fn unsorted_export_fires_on_export_paths_only() {
    let src = include_str!("fixtures/export.rs");
    let v = check_file("crates/obs/src/export.rs", src);
    assert_eq!(fire_lines(&v, "unsorted-export"), vec![5, 7]);
    let elsewhere = check_file("crates/obs/src/fixture.rs", src);
    assert!(fire_lines(&elsewhere, "unsorted-export").is_empty());
}

#[test]
fn lock_order_flags_inversions_and_honors_suppressions() {
    let src = include_str!("fixtures/lock_order.rs");
    // engine.rs participates in the lock-order graph; a single file
    // holding both orders is a complete cycle.
    let v = check_file("crates/core/src/engine.rs", src);
    // Line 7: beta acquired while alpha held; line 13: the inversion.
    // The gamma/delta pair is suppressed at both edge sites.
    assert_eq!(fire_lines(&v, "lock-order"), vec![7, 13]);
    assert!(
        fire_lines(&v, "unused-suppression").is_empty(),
        "both suppressions cover real cycle edges: {v:?}"
    );
    let msg = &v.iter().find(|f| f.rule == "lock-order").unwrap().message;
    assert!(msg.contains("pick one global order"), "{msg}");
    // Files outside the lock-order set never run the pass (their
    // suppressions go unused, which is flagged as usual).
    let elsewhere = check_file("crates/core/src/model.rs", src);
    assert!(fire_lines(&elsewhere, "lock-order").is_empty());
}

#[test]
fn lock_order_cycles_span_files() {
    use adamove_lint::{extract_lock_sequences, lock_order_violations, ScannedFile};
    let engine = "fn send(&self) {\n    let l = lock(&self.link);\n    \
                  let j = self.journals[shard].lock();\n    drop((l, j));\n}\n";
    let recovery = "fn replay(&self) {\n    let j = lock(&rec.journals[shard]);\n    \
                    let l = self.slots[shard].link.lock();\n    drop((j, l));\n}\n";
    let mut fns = extract_lock_sequences("crates/core/src/engine.rs", &ScannedFile::scan(engine));
    fns.extend(extract_lock_sequences(
        "crates/core/src/recovery.rs",
        &ScannedFile::scan(recovery),
    ));
    let v = lock_order_violations(&fns);
    assert_eq!(v.len(), 2, "one finding per edge of the cycle: {v:?}");
    let files: Vec<&str> = v.iter().map(|x| x.file.as_str()).collect();
    assert!(files.contains(&"crates/core/src/engine.rs"));
    assert!(files.contains(&"crates/core/src/recovery.rs"));
    // Each finding cites the counter-acquisition site in the other file.
    let engine_finding = v.iter().find(|x| x.file.ends_with("engine.rs")).unwrap();
    assert!(
        engine_finding.message.contains("recovery.rs:3"),
        "{}",
        engine_finding.message
    );
}

#[test]
fn atomics_ordering_requires_justifications() {
    let src = include_str!("fixtures/atomics_ordering.rs");
    let v = check_file("crates/core/src/fixture.rs", src);
    // Line 6: bare Acquire. Line 19: bare Relaxed store. Same-line and
    // preceding-line `// ordering:` comments, Relaxed loads/RMWs, the
    // suppressed SeqCst, comment/string mentions, and the cfg(test)
    // region all stay quiet.
    assert_eq!(fire_lines(&v, "atomics-ordering"), vec![6, 19]);
    assert!(v.iter().all(|f| f.rule == "atomics-ordering"), "{v:?}");
    // Test targets are exempt wholesale (library-scope rule).
    let v_test = check_file("crates/core/tests/fixture.rs", src);
    assert!(fire_lines(&v_test, "atomics-ordering").is_empty());
}

#[test]
fn hygiene_fires_everywhere_including_tests() {
    let src = include_str!("fixtures/hygiene.rs");
    let v = check_file("crates/core/tests/fixture.rs", src);
    assert_eq!(fire_lines(&v, "tab"), vec![4]);
    assert_eq!(fire_lines(&v, "trailing-ws"), vec![7]);
}

#[test]
fn file_length_fires_past_the_budget() {
    let long = "// filler\n".repeat(3001);
    let v = check_file("crates/core/src/fixture.rs", &long);
    assert_eq!(fire_lines(&v, "file-length"), vec![1]);
    // A reasoned suppression on line 1 silences it.
    let suppressed = format!(
        "// lint:allow(file-length): fixture justification\n{}",
        "// filler\n".repeat(3001)
    );
    let v2 = check_file("crates/core/src/fixture.rs", &suppressed);
    assert!(fire_lines(&v2, "file-length").is_empty(), "{v2:?}");
}

#[test]
fn suppression_misuse_is_flagged() {
    let v = check_file(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/suppression.rs"),
    );
    // Missing reason and unknown rule are both bad-suppression...
    assert_eq!(fire_lines(&v, "bad-suppression"), vec![4, 8]);
    // ...and a reasonless suppression does not actually suppress.
    assert_eq!(fire_lines(&v, "print"), vec![4]);
    // A reasoned suppression matching nothing is flagged unused.
    assert_eq!(fire_lines(&v, "unused-suppression"), vec![13]);
}

#[test]
fn doc_comments_may_cite_the_syntax() {
    let src = "/// Suppress with `// lint:allow(print): why`.\npub fn f() {}\n";
    let v = check_file("crates/core/src/fixture.rs", src);
    assert!(v.is_empty(), "{v:?}");
}
