//! The real workspace must lint clean — this is the same gate
//! `scripts/check.sh` runs via the binary, enforced as a test so
//! `cargo test --workspace` alone catches policy drift.

use std::path::Path;

use adamove_lint::lint_workspace;

#[test]
fn workspace_has_zero_unsuppressed_violations() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate sits two levels below the workspace root");
    assert!(
        root.join("Cargo.toml").is_file(),
        "workspace root not found at {}",
        root.display()
    );
    let report = lint_workspace(root);
    assert!(
        report.files > 20,
        "scan looks truncated: {} files",
        report.files
    );
    let rendered: Vec<String> = report
        .violations
        .iter()
        .map(|v| format!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message))
        .collect();
    assert!(
        rendered.is_empty(),
        "workspace lint violations:\n{}",
        rendered.join("\n")
    );
}
