//! Model checks for the real `adamove-obs` lock-free structures — the
//! crown jewels the admission controller and breaker act on. Only
//! meaningful under `--cfg adamove_verify`, where obs is compiled
//! against the scheduler-routed shims (see scripts/check.sh).
//!
//! Each model is deliberately tiny (2–3 threads, a handful of ops):
//! exhaustiveness over a small model beats sampling over a big one.
//! Models whose concurrent section is dominated by the 37-bucket
//! snapshot loop use a CHESS-style preemption bound — the documented
//! trade-off is that ≤2 preemptions catch almost all schedule bugs
//! while keeping exploration in the thousands of schedules.
#![cfg(adamove_verify)]

use adamove_obs::{AnomalyKind, FlightRecord, FlightRecorder, Histogram, WindowedHistogram};
use adamove_verify::{require, thread, Checker};
use std::sync::Arc;

fn snapshots_equal(a: &adamove_obs::HistogramSnapshot, b: &adamove_obs::HistogramSnapshot) -> bool {
    a.counts == b.counts && a.sum == b.sum && a.count == b.count
}

/// Jewel 1a: concurrent `record`s are lossless — every increment lands
/// in its bucket, the sum, and the count, under every interleaving.
#[test]
fn histogram_concurrent_records_are_lossless() {
    let explored = Checker::new()
        .check(|| {
            let h = Histogram::new();
            let h2 = h.clone();
            let t = thread::spawn(move || h2.record(100));
            h.record(1);
            t.join().unwrap();
            let snap = h.snapshot();
            require(snap.count == 2, "count keeps both records");
            require(snap.sum == 101, "sum keeps both records");
            require(snap.counts[0] == 1, "value 1 lands in bucket 0");
            require(
                snap.counts.iter().sum::<u64>() == 2,
                "exactly two bucket increments",
            );
        })
        .assert_pass();
    assert!(explored > 1, "expected multiple schedules, got {explored}");
}

/// Jewel 1b: snapshots taken *during* a record never tear backwards.
/// A snapshot is internally consistent (count == Σ buckets by
/// construction), never exceeds what was recorded, and successive
/// snapshots by one observer are monotone per cell; after the join the
/// totals are exact.
#[test]
fn histogram_snapshot_is_tear_free() {
    Checker::new()
        .preemption_bound(2)
        .check(|| {
            let h = Histogram::new();
            let h2 = h.clone();
            let t = thread::spawn(move || {
                let s1 = h2.snapshot();
                let s2 = h2.snapshot();
                for (a, b) in s1.counts.iter().zip(s2.counts.iter()) {
                    require(a <= b, "per-bucket monotone across snapshots");
                }
                require(s1.count <= s2.count, "count monotone");
                require(s1.sum <= s2.sum, "sum monotone");
                for s in [&s1, &s2] {
                    require(s.count <= 1, "never more than the one record");
                    require(s.sum <= 100, "sum bounded by the one record");
                }
            });
            h.record(100);
            t.join().unwrap();
            let fin = h.snapshot();
            require(fin.count == 1 && fin.sum == 100, "exact after join");
        })
        .assert_pass();
}

/// Jewel 2a: FlightRecorder under slot contention (capacity 1, both
/// records race for the same slot). `try_lock` never blocks — no
/// schedule deadlocks — and a contended write is counted dropped, not
/// lost silently: cursor, dropped and retained always reconcile.
#[test]
fn flight_ring_contention_counts_drops() {
    let saw_drop = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let saw_keep_both_writes = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let (sd, sk) = (saw_drop.clone(), saw_keep_both_writes.clone());
    Checker::new()
        .check(move || {
            let ring = Arc::new(FlightRecorder::new(1));
            let r2 = ring.clone();
            let t = thread::spawn(move || {
                r2.record(FlightRecord::event(AnomalyKind::Error, 2, 0));
            });
            ring.record(FlightRecord::event(AnomalyKind::SlowRequest, 1, 0));
            t.join().unwrap();
            require(ring.recorded() == 2, "cursor claims both sequence numbers");
            let dropped = ring.dropped();
            require(dropped <= 1, "at most one drop for two writers");
            let dump = ring.dump();
            require(dump.len() == 1, "capacity-1 ring retains one record");
            // Outside-the-model std counters: prove both outcomes are
            // actually explored across schedules.
            if dropped == 1 {
                sd.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            } else {
                sk.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        })
        .assert_pass();
    assert!(
        saw_drop.load(std::sync::atomic::Ordering::Relaxed) > 0,
        "some schedule must hit slot contention"
    );
    assert!(
        saw_keep_both_writes.load(std::sync::atomic::Ordering::Relaxed) > 0,
        "some schedule must complete both writes uncontended"
    );
}

/// Jewel 2b: wraparound without contention (capacity 2, two writers,
/// distinct slots): nothing dropped, nothing duplicated, dump ordered
/// oldest-first by claimed sequence.
#[test]
fn flight_ring_wraparound_no_duplication() {
    Checker::new()
        .check(|| {
            let ring = Arc::new(FlightRecorder::new(2));
            let r2 = ring.clone();
            let t = thread::spawn(move || {
                r2.record(FlightRecord::event(AnomalyKind::Error, 2, 7));
            });
            ring.record(FlightRecord::event(AnomalyKind::SlowRequest, 1, 3));
            t.join().unwrap();
            require(ring.recorded() == 2, "both claims visible");
            require(ring.dropped() == 0, "distinct slots never contend");
            let dump = ring.dump();
            require(dump.len() == 2, "both records retained");
            require(
                dump[0].ctx.request_id != dump[1].ctx.request_id,
                "no duplicated record",
            );
        })
        .assert_pass();
}

/// Jewel 3: WindowedHistogram partition law under concurrent observes:
/// however records interleave with rolls, after a final roll the merged
/// windows equal the cumulative histogram — no record is double-counted
/// or dropped by the delta arithmetic.
#[test]
fn windowed_histogram_partitions_under_concurrent_observes() {
    Checker::new()
        .preemption_bound(2)
        .check(|| {
            let w = Arc::new(WindowedHistogram::new(4));
            let w2 = w.clone();
            let t = thread::spawn(move || {
                w2.record(1);
                w2.record(100);
            });
            w.roll();
            w.roll();
            t.join().unwrap();
            w.roll();
            let merged = w.merged();
            let cumulative = w.cumulative();
            require(
                snapshots_equal(&merged, &cumulative),
                "windows partition the record stream",
            );
            require(
                cumulative.count == 2 && cumulative.sum == 101,
                "records kept",
            );
        })
        .assert_pass();
}

/// Jewel 3 continued: `around()` on a shared histogram — rolls and a
/// concurrent recorder on the *underlying* cells still partition, and
/// `window()`/`windows()` never exceed capacity.
#[test]
fn windowed_around_shared_cells() {
    Checker::new()
        .preemption_bound(2)
        .check(|| {
            let h = Histogram::new();
            let w = Arc::new(WindowedHistogram::around(h.clone(), 1));
            let t = thread::spawn(move || h.record(5));
            w.roll();
            t.join().unwrap();
            w.roll();
            // Capacity 1: only the newest window is retained; the
            // *ring* law bounds retention, so merged() may undercount —
            // but never overcount — the cumulative stream.
            require(w.windows() == 1, "ring bounded at capacity");
            let merged = w.merged();
            let cumulative = w.cumulative();
            require(cumulative.count == 1, "record kept cumulatively");
            require(merged.count <= cumulative.count, "ring never overcounts");
            // The record landed in exactly one of the two windows; the
            // retained one is the second, so merged matches it exactly.
            require(
                snapshots_equal(&merged, &w.window()),
                "merged of one window is that window",
            );
        })
        .assert_pass();
}
