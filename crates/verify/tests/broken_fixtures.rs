//! Deliberately-broken fixture models: each removes one real guard
//! from a modelled invariant, and the checker must find a failing
//! schedule, report it deterministically, and replay it exactly.
//! This is the checker's own acceptance test — a model checker that
//! cannot find planted bugs proves nothing by passing.
#![cfg(adamove_verify)]

use adamove_verify::sync::{AtomicU64, Mutex, Ordering};
use adamove_verify::{require, thread, Checker, Failure};
use std::sync::Arc;

/// Explore twice and replay once; the failure must be found, be
/// identical across explorations (deterministic DFS), and reproduce
/// under replay of the reported schedule.
fn assert_deterministic_failure<F, M>(mk: M, expect_msg: &str) -> Failure
where
    F: Fn() + Send + Sync + 'static,
    M: Fn() -> F,
{
    let first = Checker::new().check(mk());
    let failure = first
        .failure()
        .unwrap_or_else(|| panic!("planted bug not found (wanted {expect_msg:?})"))
        .clone();
    assert!(
        failure.message.contains(expect_msg),
        "wrong failure: {}",
        failure.message
    );
    let second = Checker::new().check(mk());
    assert_eq!(
        second.failure().expect("found again").schedule,
        failure.schedule,
        "exploration must be deterministic across runs"
    );
    let replayed = Checker::new().replay(mk(), &failure.schedule);
    let re = replayed.failure().expect("replay reproduces the failure");
    assert_eq!(re.message, failure.message);
    assert!(!failure.trace.is_empty(), "failure carries an op trace");
    failure
}

/// Histogram losslessness with the guard removed: a load+store
/// read-modify-write instead of `fetch_add` (the bug the real
/// `Histogram::record` avoids). Some schedule loses an increment.
#[test]
fn broken_histogram_increment_loses_updates() {
    let f = assert_deterministic_failure(
        || {
            || {
                let count = Arc::new(AtomicU64::new(0));
                let c2 = count.clone();
                let t = thread::spawn(move || {
                    let v = c2.load(Ordering::Relaxed);
                    c2.store(v + 1, Ordering::Relaxed);
                });
                let v = count.load(Ordering::Relaxed);
                count.store(v + 1, Ordering::Relaxed);
                t.join().unwrap();
                require(count.load(Ordering::Relaxed) == 2, "an increment was lost");
            }
        },
        "an increment was lost",
    );
    // The failing schedule must actually interleave the two threads.
    assert!(f.schedule.len() > 3, "schedule: {:?}", f.schedule);
}

/// Journal order == queue order with the guard removed: the append
/// happens *outside* the send lock (the bug `observe_once` avoids by
/// appending under the slot mutex). Some schedule swaps the orders.
#[test]
fn broken_journal_append_outside_lock_diverges() {
    assert_deterministic_failure(
        || {
            || {
                let journal = Arc::new(Mutex::new(Vec::<u64>::new()));
                let queue = Arc::new(Mutex::new(Vec::<u64>::new()));
                let send_lock = Arc::new(Mutex::new(()));
                let observe = |user: u64| {
                    let journal = journal.clone();
                    let queue = queue.clone();
                    let send_lock = send_lock.clone();
                    move || {
                        // BUG: journal append outside the send lock.
                        let id = {
                            let mut j = journal.lock();
                            let id = j.len() as u64;
                            j.push(user);
                            id
                        };
                        let guard = send_lock.lock();
                        queue.lock().push(id);
                        drop(guard);
                    }
                };
                let t1 = thread::spawn(observe(10));
                let t2 = thread::spawn(observe(20));
                t1.join().unwrap();
                t2.join().unwrap();
                let q = queue.lock().clone();
                require(q == vec![0, 1], "journal/queue order diverged");
            }
        },
        "journal/queue order diverged",
    );
}

/// Seq handshake with the guard removed: the respawned incarnation
/// resets `seq` to zero instead of sharing the slot's cell, so the
/// `KillAt` fault fires twice (every schedule, but the checker proves
/// the *existence* deterministically).
#[test]
fn broken_seq_reset_fires_fault_twice() {
    assert_deterministic_failure(
        || {
            || {
                let kill_at = 1u64;
                let run = |seq: Arc<AtomicU64>, requests: u64| {
                    move || {
                        let mut fired = 0u64;
                        for _ in 0..requests {
                            let s = seq.fetch_add(1, Ordering::Relaxed);
                            if s == kill_at {
                                fired += 1;
                                break;
                            }
                        }
                        fired
                    }
                };
                let seq1 = Arc::new(AtomicU64::new(0));
                let w1 = thread::spawn(run(seq1, 3));
                let fired1 = w1.join().unwrap();
                // BUG: fresh seq for the respawn instead of the shared
                // slot cell — numbering restarts at zero.
                let seq2 = Arc::new(AtomicU64::new(0));
                let w2 = thread::spawn(run(seq2, 3));
                let fired2 = w2.join().unwrap();
                require(fired1 + fired2 <= 1, "fault fired more than once");
            }
        },
        "fault fired more than once",
    );
}

/// Windowed-histogram partition law with the guard removed: the roll
/// reads the cumulative snapshot *after* updating `last` from a second
/// read (double-read instead of the single snapshot `roll()` takes), so
/// a record landing between the reads is dropped from every window.
#[test]
fn broken_double_read_roll_drops_records() {
    assert_deterministic_failure(
        || {
            || {
                // Distilled single-bucket windowed view.
                let cell = Arc::new(AtomicU64::new(0));
                let last = Arc::new(Mutex::new(0u64));
                let windows = Arc::new(Mutex::new(Vec::<u64>::new()));

                let recorder = {
                    let cell = cell.clone();
                    thread::spawn(move || {
                        cell.fetch_add(1, Ordering::Relaxed);
                    })
                };
                // BUG: reads the source twice; `roll()` snapshots once.
                let delta = {
                    let mut l = last.lock();
                    let first = cell.load(Ordering::Relaxed);
                    let again = cell.load(Ordering::Relaxed);
                    let delta = first.saturating_sub(*l);
                    *l = again; // a record between the reads vanishes
                    delta
                };
                windows.lock().push(delta);
                recorder.join().unwrap();
                // Final roll after join, correct single-read form.
                let delta = {
                    let mut l = last.lock();
                    let cur = cell.load(Ordering::Relaxed);
                    let d = cur.saturating_sub(*l);
                    *l = cur;
                    d
                };
                windows.lock().push(delta);
                let merged: u64 = windows.lock().iter().sum();
                require(
                    merged == cell.load(Ordering::Relaxed),
                    "windows no longer partition the stream",
                );
            }
        },
        "windows no longer partition the stream",
    );
}
