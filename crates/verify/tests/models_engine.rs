//! Distilled models of the two engine-slot concurrency contracts
//! (`crates/core/src/engine.rs`), built directly on the shim types the
//! real slot structs use. Only meaningful under `--cfg adamove_verify`.
//!
//! 1. **Seq-counter crash-detection handshake.** A shard's `seq` cell
//!    is shared across worker incarnations (it lives in the `ShardSlot`,
//!    not the worker): every request claims a sequence number with one
//!    `fetch_add`, deterministic fault schedules are keyed on those
//!    numbers, and a respawned worker continues the numbering — so a
//!    `KillAt(k)` disturbance fires exactly once per shard, ever.
//!
//! 2. **Journal order == queue order.** `observe_once` appends to the
//!    journal *under the slot's send lock*, then enqueues before
//!    releasing it, so journal ids and queue order agree — the replay
//!    invariant every recovery test leans on.
#![cfg(adamove_verify)]

use adamove_verify::sync::{AtomicBool, AtomicU64, Mutex, Ordering};
use adamove_verify::{require, thread, Checker};
use std::sync::Arc;

/// The slot state shared across incarnations, as in `ShardSlot`.
struct Slot {
    seq: Arc<AtomicU64>,
    degraded: Arc<AtomicBool>,
}

/// One worker incarnation: claim sequence numbers, die at the faulted
/// one (marking the shard degraded, as a panicked worker's state loss
/// does). Returns how many faults fired in this incarnation.
fn incarnation(slot: &Slot, requests: u64, kill_at: u64) -> u64 {
    for _ in 0..requests {
        let s = slot.seq.fetch_add(1, Ordering::Relaxed);
        if s == kill_at {
            slot.degraded.store(true, Ordering::Relaxed);
            return 1;
        }
    }
    0
}

/// The handshake: worker dies at seq 1; the supervisor joins the
/// corpse (the `handle.is_finished()` + join path of `heal_shard`) and
/// respawns sharing the same cells. A concurrent metrics reader sees
/// seq strictly monotone. The fault fires exactly once across both
/// incarnations because numbering never restarts.
#[test]
fn seq_handshake_fault_fires_exactly_once() {
    Checker::new()
        .check(|| {
            let slot = Arc::new(Slot {
                seq: Arc::new(AtomicU64::new(0)),
                degraded: Arc::new(AtomicBool::new(false)),
            });
            let kill_at = 1;

            // A metrics/snapshot thread racing both incarnations: seq
            // reads must be monotone (fetch_add only ever goes up).
            let seq_reader = slot.seq.clone();
            let reader = thread::spawn(move || {
                let a = seq_reader.load(Ordering::Relaxed);
                let b = seq_reader.load(Ordering::Relaxed);
                require(a <= b, "seq monotone under concurrent observes");
            });

            let s1 = slot.clone();
            let w1 = thread::spawn(move || incarnation(&s1, 3, kill_at));
            let fired1 = w1.join().unwrap();
            require(fired1 == 1, "incarnation 1 reaches the faulted seq");
            require(
                slot.degraded.load(Ordering::Relaxed),
                "death marked the shard degraded",
            );

            // Respawn: same cells, numbering continues (heal_shard).
            slot.degraded.store(false, Ordering::Relaxed);
            let s2 = slot.clone();
            let w2 = thread::spawn(move || incarnation(&s2, 2, kill_at));
            let fired2 = w2.join().unwrap();
            require(fired2 == 0, "respawn never replays a claimed seq");

            reader.join().unwrap();
            require(
                slot.seq.load(Ordering::Relaxed) == 4,
                "2 requests before death + 2 after, no number reused",
            );
            require(
                !slot.degraded.load(Ordering::Relaxed),
                "healed shard serves non-degraded",
            );
        })
        .assert_pass();
}

/// Journal-append-under-send-lock: two producers observe concurrently;
/// each appends to the journal and pushes to the queue inside one send
/// lock critical section. Journal order must equal queue order for
/// every interleaving — this is what makes replay deterministic.
#[test]
fn journal_order_equals_queue_order() {
    let explored = Checker::new()
        .check(|| {
            // journal: append returns the next id. queue: the mpsc
            // channel stand-in. send_lock: the slot `link` mutex.
            let journal = Arc::new(Mutex::new(Vec::<u64>::new()));
            let queue = Arc::new(Mutex::new(Vec::<u64>::new()));
            let send_lock = Arc::new(Mutex::new(()));

            let observe = |user: u64| {
                let journal = journal.clone();
                let queue = queue.clone();
                let send_lock = send_lock.clone();
                move || {
                    let guard = send_lock.lock();
                    let id = {
                        let mut j = journal.lock();
                        let id = j.len() as u64;
                        j.push(user);
                        id
                    };
                    queue.lock().push(id);
                    drop(guard);
                }
            };

            let t1 = thread::spawn(observe(10));
            let t2 = thread::spawn(observe(20));
            t1.join().unwrap();
            t2.join().unwrap();

            let q = queue.lock().clone();
            require(q == vec![0, 1], "queue order equals journal id order");
            require(journal.lock().len() == 2, "both observes journaled");
        })
        .assert_pass();
    assert!(explored > 1, "both producer orders explored ({explored})");
}
