//! Self-tests for the model checker: known-racy programs must fail
//! with deterministic, replayable schedules; known-correct ones must
//! pass exhaustively. Only meaningful under `--cfg adamove_verify`
//! (see scripts/check.sh); the plain build compiles an empty test.
#![cfg(adamove_verify)]

use adamove_verify::sync::{AtomicU64, Mutex, Ordering};
use adamove_verify::{require, thread, Checker, Outcome};
use std::sync::Arc;

/// Two atomic fetch_adds are lossless under every interleaving.
#[test]
fn fetch_add_is_lossless() {
    let explored = Checker::new()
        .check(|| {
            let c = Arc::new(AtomicU64::new(0));
            let c2 = c.clone();
            let t = thread::spawn(move || {
                c2.fetch_add(1, Ordering::Relaxed);
            });
            c.fetch_add(1, Ordering::Relaxed);
            t.join().unwrap();
            require(c.load(Ordering::Relaxed) == 2, "both increments kept");
        })
        .assert_pass();
    // Exhaustive means more than one schedule: the two increments
    // must have been tried in both orders.
    assert!(explored >= 2, "expected >1 schedule, got {explored}");
}

/// The classic lost update: load+store read-modify-write races.
/// The checker must find it, and the schedule must replay.
#[test]
fn lost_update_is_found_and_replays() {
    fn racy() -> impl Fn() + Send + Sync + 'static {
        || {
            let c = Arc::new(AtomicU64::new(0));
            let c2 = c.clone();
            let t = thread::spawn(move || {
                let v = c2.load(Ordering::Relaxed);
                c2.store(v + 1, Ordering::Relaxed);
            });
            let v = c.load(Ordering::Relaxed);
            c.store(v + 1, Ordering::Relaxed);
            t.join().unwrap();
            require(c.load(Ordering::Relaxed) == 2, "an increment was lost");
        }
    }
    let outcome = Checker::new().check(racy());
    let failure = outcome
        .failure()
        .expect("lost update must be found")
        .clone();
    assert!(failure.message.contains("an increment was lost"));
    // Replaying the reported schedule reproduces the failure exactly.
    let replayed = Checker::new().replay(racy(), &failure.schedule);
    let refailure = replayed.failure().expect("replay must reproduce");
    assert_eq!(refailure.message, failure.message);
    assert_eq!(refailure.schedule, failure.schedule);
    // And a second full exploration reports the identical schedule:
    // exploration order is deterministic.
    let again = Checker::new().check(racy());
    assert_eq!(again.failure().expect("again").schedule, failure.schedule);
}

/// AB-BA lock ordering deadlocks; the checker reports it as such.
#[test]
fn ab_ba_deadlock_is_detected() {
    let outcome = Checker::new().check(|| {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        let (a2, b2) = (a.clone(), b.clone());
        let t = thread::spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
        });
        let _gb = b.lock();
        let _ga = a.lock();
        drop((_ga, _gb));
        t.join().unwrap();
    });
    let failure = outcome.failure().expect("deadlock must be found");
    assert!(failure.message.contains("deadlock"), "{}", failure.message);
}

/// try_lock never deadlocks: under contention it observes WouldBlock,
/// and some schedule must actually exercise the contended arm.
#[test]
fn try_lock_contends_but_never_blocks() {
    let contended = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let contended2 = contended.clone();
    Checker::new()
        .check(move || {
            let m = Arc::new(Mutex::new(0u32));
            let m2 = m.clone();
            let seen = contended2.clone();
            let t = thread::spawn(move || {
                match m2.try_lock() {
                    Ok(mut g) => *g += 1,
                    // Count contentions outside the model (std atomic:
                    // not a scheduling point, survives across runs).
                    Err(_) => {
                        seen.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                }
            });
            let mut g = m.lock();
            *g += 1;
            drop(g);
            t.join().unwrap();
        })
        .assert_pass();
    assert!(
        contended.load(std::sync::atomic::Ordering::Relaxed) > 0,
        "some schedule must hit the contended try_lock arm"
    );
}

/// A preemption bound of 0 still covers the non-preemptive schedules
/// (and so still runs to completion), just fewer of them.
#[test]
fn preemption_bound_shrinks_the_space() {
    let model = || {
        let c = Arc::new(AtomicU64::new(0));
        let c2 = c.clone();
        let t = thread::spawn(move || {
            c2.fetch_add(1, Ordering::Relaxed);
            c2.fetch_add(1, Ordering::Relaxed);
        });
        c.fetch_add(1, Ordering::Relaxed);
        c.fetch_add(1, Ordering::Relaxed);
        t.join().unwrap();
        require(c.load(Ordering::Relaxed) == 4, "all increments kept");
    };
    let full = Checker::new().check(model).assert_pass();
    let bounded = Checker::new()
        .preemption_bound(0)
        .check(model)
        .assert_pass();
    assert!(
        bounded < full,
        "bound 0 ({bounded}) must explore fewer schedules than unbounded ({full})"
    );
}

/// Mutexes serialize: a guarded read-modify-write is never lost.
#[test]
fn mutex_protects_rmw() {
    Checker::new()
        .check(|| {
            let m = Arc::new(Mutex::new(0u64));
            let m2 = m.clone();
            let t = thread::spawn(move || {
                let mut g = m2.lock();
                let v = *g;
                *g = v + 1;
            });
            {
                let mut g = m.lock();
                let v = *g;
                *g = v + 1;
            }
            t.join().unwrap();
            require(*m.lock() == 2, "mutex-guarded increments kept");
        })
        .assert_pass();
}

/// Three threads on one cell: the sleep-set reduction prunes some
/// executions but the race is still found.
#[test]
fn three_thread_race_found_with_reduction() {
    let outcome = Checker::new().check(|| {
        let c = Arc::new(AtomicU64::new(0));
        let mk = |c: &Arc<AtomicU64>| {
            let c = c.clone();
            thread::spawn(move || {
                let v = c.load(Ordering::Relaxed);
                c.store(v + 1, Ordering::Relaxed);
            })
        };
        let (t1, t2) = (mk(&c), mk(&c));
        t1.join().unwrap();
        t2.join().unwrap();
        require(c.load(Ordering::Relaxed) == 2, "increment lost");
    });
    assert!(
        outcome.failure().is_some(),
        "3-thread lost update must be found"
    );
}

/// Sleep sets prune commutations: independent counters need far fewer
/// executions than the full interleaving product, and still pass.
#[test]
fn independent_ops_are_pruned() {
    let outcome = Checker::new().check(|| {
        let a = Arc::new(AtomicU64::new(0));
        let b = Arc::new(AtomicU64::new(0));
        let b2 = b.clone();
        let t = thread::spawn(move || {
            b2.fetch_add(1, Ordering::Relaxed);
            b2.fetch_add(1, Ordering::Relaxed);
        });
        a.fetch_add(1, Ordering::Relaxed);
        a.fetch_add(1, Ordering::Relaxed);
        t.join().unwrap();
        require(
            a.load(Ordering::Relaxed) == 2 && b.load(Ordering::Relaxed) == 2,
            "independent counters intact",
        );
    });
    match outcome {
        Outcome::Pass { schedules, pruned } => {
            assert!(
                pruned > 0,
                "sleep sets should prune commutations ({schedules} runs)"
            );
        }
        Outcome::Fail(f) => panic!("{}", f.render()),
    }
}
