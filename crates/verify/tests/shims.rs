//! Shim behaviour outside a model: identical to the std types under
//! both cfgs (with the repo's poison-recovery idiom baked into lock).
//! These run in the plain build too, so the tier-1 gate covers the
//! exact wrappers production code links.

use adamove_verify::sync::{AtomicBool, AtomicU64, AtomicUsize, Mutex, Ordering, WouldBlock};
use std::sync::Arc;

#[test]
fn atomics_passthrough() {
    let c = AtomicU64::new(7);
    assert_eq!(c.load(Ordering::Relaxed), 7);
    assert_eq!(c.fetch_add(5, Ordering::Relaxed), 7);
    assert_eq!(c.fetch_sub(2, Ordering::Relaxed), 12);
    c.store(1, Ordering::Release);
    assert_eq!(c.swap(9, Ordering::AcqRel), 1);
    assert_eq!(
        c.compare_exchange(9, 10, Ordering::SeqCst, Ordering::Relaxed),
        Ok(9)
    );
    assert_eq!(
        c.compare_exchange(9, 11, Ordering::SeqCst, Ordering::Relaxed),
        Err(10)
    );
    let mut cur = c.load(Ordering::Relaxed);
    while let Err(now) = c.compare_exchange_weak(cur, cur + 1, Ordering::Relaxed, Ordering::Relaxed)
    {
        cur = now;
    }
    assert_eq!(c.load(Ordering::Relaxed), 11);

    let u = AtomicUsize::new(3);
    assert_eq!(u.fetch_add(1, Ordering::Relaxed), 3);
    let b = AtomicBool::new(false);
    assert!(!b.swap(true, Ordering::Relaxed));
    assert!(b.load(Ordering::Acquire));
}

#[test]
fn mutex_lock_and_try_lock() {
    let m = Mutex::new(41);
    *m.lock() += 1;
    assert_eq!(*m.lock(), 42);
    {
        let _g = m.lock();
        // A second owner on the same thread would deadlock with lock();
        // try_lock reports the contention instead.
        assert_eq!(m.try_lock().err(), Some(WouldBlock));
    }
    assert_eq!(*m.try_lock().expect("free again"), 42);
    let mut m = m;
    *m.get_mut() += 1;
    assert_eq!(m.into_inner(), 43);
}

#[test]
fn mutex_recovers_from_poison() {
    let m = Arc::new(Mutex::new(0u32));
    let m2 = m.clone();
    let t = std::thread::spawn(move || {
        let _g = m2.lock();
        panic!("poison the lock");
    });
    assert!(t.join().is_err());
    // The sanctioned idiom: a panicking holder never wedges the lock.
    *m.lock() += 1;
    assert_eq!(*m.lock(), 1);
    assert_eq!(*m.try_lock().expect("poisoned-but-free recovers"), 1);
}

#[test]
fn shared_across_real_threads() {
    let c = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let c = c.clone();
            std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(c.load(Ordering::Relaxed), 4000);
}
