//! Exhaustive schedule exploration: stateless DFS with replay.
//!
//! Each execution replays a prefix of scheduling choices, then takes
//! the first fresh branch at every new decision point and records the
//! remaining alternatives. Backtracking pops exhausted decision points
//! and advances the deepest one with alternatives left — classic
//! stateless model checking. Two reductions keep the space tractable:
//!
//! * **Sleep sets (DPOR-lite):** siblings already explored from a state
//!   are put to sleep when the state is revisited and only woken by a
//!   conflicting operation; an execution whose every enabled thread is
//!   asleep is a pure commutation of one already explored and is pruned.
//! * **Preemption bounding (CHESS-style):** optionally cap the number
//!   of *involuntary* switches (away from a thread that could keep
//!   running); most concurrency bugs need very few preemptions.
//!
//! Everything is deterministic: thread ids are assigned in spawn order,
//! candidates are tried in tid order, and a reported failing schedule
//! replays the identical execution via [`Checker::replay`].

use crate::sched::{spawn_root, ExecResult, Scheduler};
use std::sync::Arc;

/// A failing execution: the exact schedule (thread id granted at each
/// scheduling decision, replayable with [`Checker::replay`]), the
/// failure message, and the human-readable op trace.
#[derive(Debug, Clone)]
pub struct Failure {
    pub schedule: Vec<usize>,
    pub message: String,
    pub trace: Vec<String>,
}

impl Failure {
    /// Multi-line report: message, replay schedule, and op trace.
    pub fn render(&self) -> String {
        let mut out = format!(
            "model failure: {}\nreplay schedule ({} decisions): {:?}\ntrace:\n",
            self.message,
            self.schedule.len(),
            self.schedule
        );
        for line in &self.trace {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

/// Result of checking a model.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// Every schedule passed. `schedules` counts executions run;
    /// `pruned` of those were cut short by the sleep-set reduction
    /// (pure commutations of schedules already explored).
    Pass {
        schedules: usize,
        pruned: usize,
    },
    Fail(Failure),
}

impl Outcome {
    /// Panic with the rendered failure unless the model passed;
    /// returns the number of schedules explored.
    pub fn assert_pass(&self) -> usize {
        match self {
            Outcome::Pass { schedules, .. } => *schedules,
            Outcome::Fail(f) => panic!("{}", f.render()),
        }
    }

    pub fn failure(&self) -> Option<&Failure> {
        match self {
            Outcome::Fail(f) => Some(f),
            Outcome::Pass { .. } => None,
        }
    }
}

struct DecisionNode {
    /// Branches taken from this state so far; the last one is the
    /// current path, the earlier ones seed the sleep set on replay.
    explored: Vec<usize>,
    /// Branches not yet taken.
    pending: Vec<usize>,
}

/// The model checker. Build one, tune bounds, then [`Checker::check`] a
/// model closure — typically via the [`model`] convenience wrapper.
#[derive(Debug, Clone)]
pub struct Checker {
    preemption_bound: Option<usize>,
    max_schedules: usize,
    max_steps: usize,
}

impl Default for Checker {
    fn default() -> Self {
        Checker {
            preemption_bound: None,
            max_schedules: 500_000,
            max_steps: 10_000,
        }
    }
}

impl Checker {
    pub fn new() -> Self {
        Self::default()
    }

    /// Cap involuntary context switches per execution (None = unbounded
    /// = fully exhaustive). Bugs overwhelmingly need ≤2 preemptions;
    /// bounding keeps bigger models tractable.
    pub fn preemption_bound(mut self, bound: usize) -> Self {
        self.preemption_bound = Some(bound);
        self
    }

    /// Abort (panic) if exploration exceeds this many executions — the
    /// model should be shrunk or preemption-bounded instead.
    pub fn max_schedules(mut self, n: usize) -> Self {
        self.max_schedules = n;
        self
    }

    /// Per-execution step cap; exceeding it is reported as a failure
    /// (livelock or unbounded model).
    pub fn max_steps(mut self, n: usize) -> Self {
        self.max_steps = n;
        self
    }

    fn run_once(
        &self,
        f: &Arc<dyn Fn() + Send + Sync>,
        schedule: Vec<usize>,
        seeds: Vec<Vec<usize>>,
    ) -> ExecResult {
        let sched = Arc::new(Scheduler::new(
            schedule,
            seeds,
            self.preemption_bound,
            self.max_steps,
        ));
        let root = spawn_root(&sched, f.clone());
        sched.kick();
        sched.wait_done();
        // The root thread unwinds with a quiet token on aborted
        // executions; either way it has passed the token before `done`.
        let _ = root.join();
        sched.take_result()
    }

    /// Exhaustively explore `f` (modulo the configured bounds).
    pub fn check<F>(&self, f: F) -> Outcome
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let mut stack: Vec<DecisionNode> = Vec::new();
        let mut schedules = 0usize;
        let mut pruned = 0usize;
        loop {
            let schedule: Vec<usize> = stack
                .iter()
                .map(|d| *d.explored.last().expect("non-empty explored"))
                .collect();
            let seeds: Vec<Vec<usize>> = stack
                .iter()
                .map(|d| d.explored[..d.explored.len() - 1].to_vec())
                .collect();
            let res = self.run_once(&f, schedule, seeds);
            schedules += 1;
            pruned += usize::from(res.pruned);
            if let Some(message) = res.failure {
                return Outcome::Fail(Failure {
                    schedule: res.choices,
                    message,
                    trace: res.trace,
                });
            }
            assert!(
                schedules < self.max_schedules,
                "explored {schedules} schedules without exhausting the model — \
                 shrink it or set a preemption bound"
            );
            for d in res.fresh {
                stack.push(DecisionNode {
                    explored: vec![d.chosen],
                    pending: d.alternatives,
                });
            }
            // Backtrack to the deepest decision with untried branches.
            loop {
                match stack.last_mut() {
                    None => return Outcome::Pass { schedules, pruned },
                    Some(top) if !top.pending.is_empty() => {
                        let next = top.pending.remove(0);
                        top.explored.push(next);
                        break;
                    }
                    Some(_) => {
                        stack.pop();
                    }
                }
            }
        }
    }

    /// Re-run one exact schedule (e.g. from [`Failure::schedule`]) and
    /// report its outcome. Deterministic: the same schedule always
    /// reproduces the same execution.
    pub fn replay<F>(&self, f: F, schedule: &[usize]) -> Outcome
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let seeds = vec![Vec::new(); schedule.len()];
        let res = self.run_once(&f, schedule.to_vec(), seeds);
        match res.failure {
            Some(message) => Outcome::Fail(Failure {
                schedule: res.choices,
                message,
                trace: res.trace,
            }),
            None => Outcome::Pass {
                schedules: 1,
                pruned: usize::from(res.pruned),
            },
        }
    }
}

/// Check `f` under the default (fully exhaustive) checker and panic
/// with a rendered replayable failure if any schedule breaks.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    Checker::new().check(f).assert_pass();
}
