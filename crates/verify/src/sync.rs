//! Drop-in sync shims: `std::sync` types in production, scheduler-routed
//! operations under `--cfg adamove_verify`.
//!
//! The API is the intersection of what the workspace's lock-free hot
//! path actually uses, plus the repo's sanctioned locking idiom baked
//! in: [`Mutex::lock`] recovers from poison (a panicking holder must
//! never wedge metrics/serving, see `adamove_obs::sync::lock`), and
//! [`Mutex::try_lock`] reports contention as [`WouldBlock`] without
//! ever blocking.
//!
//! Constructors are `const fn` under both cfgs so shimmed types can sit
//! anywhere the std types could.

pub use std::sync::atomic::Ordering;

/// `try_lock` would have blocked: the lock is held by another thread.
/// (Poisoned-but-free locks are recovered, matching [`Mutex::lock`].)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WouldBlock;

#[cfg(not(adamove_verify))]
mod imp {
    use super::WouldBlock;
    use std::sync::atomic::Ordering;

    macro_rules! passthrough_atomic {
        ($name:ident, $std:ty, $val:ty) => {
            /// Production passthrough: compiles to the bare std atomic.
            #[derive(Debug, Default)]
            pub struct $name(std::sync::atomic::$name);

            impl $name {
                #[inline]
                pub const fn new(v: $val) -> Self {
                    Self(<$std>::new(v))
                }
                #[inline]
                pub fn load(&self, o: Ordering) -> $val {
                    self.0.load(o)
                }
                #[inline]
                pub fn store(&self, v: $val, o: Ordering) {
                    self.0.store(v, o)
                }
                #[inline]
                pub fn swap(&self, v: $val, o: Ordering) -> $val {
                    self.0.swap(v, o)
                }
                #[inline]
                pub fn compare_exchange(
                    &self,
                    cur: $val,
                    new: $val,
                    ok: Ordering,
                    err: Ordering,
                ) -> Result<$val, $val> {
                    self.0.compare_exchange(cur, new, ok, err)
                }
                #[inline]
                pub fn compare_exchange_weak(
                    &self,
                    cur: $val,
                    new: $val,
                    ok: Ordering,
                    err: Ordering,
                ) -> Result<$val, $val> {
                    self.0.compare_exchange_weak(cur, new, ok, err)
                }
            }
        };
    }

    passthrough_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    passthrough_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    passthrough_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);

    macro_rules! passthrough_fetch_arith {
        ($name:ident, $val:ty) => {
            impl $name {
                #[inline]
                pub fn fetch_add(&self, v: $val, o: Ordering) -> $val {
                    self.0.fetch_add(v, o)
                }
                #[inline]
                pub fn fetch_sub(&self, v: $val, o: Ordering) -> $val {
                    self.0.fetch_sub(v, o)
                }
            }
        };
    }

    passthrough_fetch_arith!(AtomicU64, u64);
    passthrough_fetch_arith!(AtomicUsize, usize);

    /// Production passthrough mutex with the repo's poison-recovery
    /// idiom built into [`Mutex::lock`].
    #[derive(Debug, Default)]
    pub struct Mutex<T>(std::sync::Mutex<T>);

    impl<T> Mutex<T> {
        #[inline]
        pub const fn new(t: T) -> Self {
            Self(std::sync::Mutex::new(t))
        }

        /// Lock, recovering from poison: the data is plain counters and
        /// ring buffers that stay internally consistent even if a
        /// holder panicked mid-update.
        #[inline]
        pub fn lock(&self) -> MutexGuard<'_, T> {
            MutexGuard(self.0.lock().unwrap_or_else(|p| p.into_inner()))
        }

        /// Try to lock without blocking. Contention (the only condition
        /// the flight-recorder hot path cares about) is [`WouldBlock`];
        /// a poisoned-but-free lock is recovered like [`Mutex::lock`].
        #[inline]
        pub fn try_lock(&self) -> Result<MutexGuard<'_, T>, WouldBlock> {
            match self.0.try_lock() {
                Ok(g) => Ok(MutexGuard(g)),
                Err(std::sync::TryLockError::Poisoned(p)) => Ok(MutexGuard(p.into_inner())),
                Err(std::sync::TryLockError::WouldBlock) => Err(WouldBlock),
            }
        }

        #[inline]
        pub fn get_mut(&mut self) -> &mut T {
            self.0.get_mut().unwrap_or_else(|p| p.into_inner())
        }

        #[inline]
        pub fn into_inner(self) -> T {
            self.0.into_inner().unwrap_or_else(|p| p.into_inner())
        }
    }

    pub struct MutexGuard<'a, T>(std::sync::MutexGuard<'a, T>);

    impl<T> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        #[inline]
        fn deref(&self) -> &T {
            &self.0
        }
    }

    impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
        #[inline]
        fn deref_mut(&mut self) -> &mut T {
            &mut self.0
        }
    }

    impl<T: std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            (**self).fmt(f)
        }
    }
}

#[cfg(adamove_verify)]
mod imp {
    use super::WouldBlock;
    use crate::sched::{self, OpKind};
    use std::sync::atomic::Ordering;
    use std::sync::OnceLock;

    // Object ids are assigned lazily on first *scheduled* operation, so
    // constructors stay `const fn`. First-touch order is serialized by
    // the scheduler, hence deterministic per schedule; ids only feed
    // equality checks (conflict detection) and trace labels, so label
    // drift across schedules cannot perturb exploration order.

    macro_rules! model_atomic {
        ($name:ident, $val:ty, $label:literal) => {
            /// Model-checking build: every operation is a scheduler
            /// yield point when a model is active, a std passthrough
            /// otherwise.
            #[derive(Debug, Default)]
            pub struct $name {
                inner: std::sync::atomic::$name,
                obj: OnceLock<u64>,
            }

            impl $name {
                pub const fn new(v: $val) -> Self {
                    Self {
                        inner: std::sync::atomic::$name::new(v),
                        obj: OnceLock::new(),
                    }
                }

                fn yield_for(&self, kind: OpKind) {
                    sched::yield_op(&self.obj, $label, kind);
                }

                pub fn load(&self, o: Ordering) -> $val {
                    self.yield_for(OpKind::Read);
                    self.inner.load(o)
                }

                pub fn store(&self, v: $val, o: Ordering) {
                    self.yield_for(OpKind::Write);
                    self.inner.store(v, o)
                }

                pub fn swap(&self, v: $val, o: Ordering) -> $val {
                    self.yield_for(OpKind::Write);
                    self.inner.swap(v, o)
                }

                pub fn compare_exchange(
                    &self,
                    cur: $val,
                    new: $val,
                    ok: Ordering,
                    err: Ordering,
                ) -> Result<$val, $val> {
                    self.yield_for(OpKind::Write);
                    self.inner.compare_exchange(cur, new, ok, err)
                }

                pub fn compare_exchange_weak(
                    &self,
                    cur: $val,
                    new: $val,
                    ok: Ordering,
                    err: Ordering,
                ) -> Result<$val, $val> {
                    self.yield_for(OpKind::Write);
                    self.inner.compare_exchange_weak(cur, new, ok, err)
                }
            }
        };
    }

    model_atomic!(AtomicU64, u64, "AtomicU64");
    model_atomic!(AtomicUsize, usize, "AtomicUsize");
    model_atomic!(AtomicBool, bool, "AtomicBool");

    macro_rules! model_fetch_arith {
        ($name:ident, $val:ty) => {
            impl $name {
                pub fn fetch_add(&self, v: $val, o: Ordering) -> $val {
                    self.yield_for(OpKind::Write);
                    self.inner.fetch_add(v, o)
                }
                pub fn fetch_sub(&self, v: $val, o: Ordering) -> $val {
                    self.yield_for(OpKind::Write);
                    self.inner.fetch_sub(v, o)
                }
            }
        };
    }

    model_fetch_arith!(AtomicU64, u64);
    model_fetch_arith!(AtomicUsize, usize);

    /// Model-checking mutex: mutual exclusion is enforced by the
    /// scheduler (a granted `Lock` op marks the object held until the
    /// guard drops), and the inner std mutex is only ever acquired
    /// after the grant, so it never contends.
    #[derive(Debug, Default)]
    pub struct Mutex<T> {
        inner: std::sync::Mutex<T>,
        obj: OnceLock<u64>,
    }

    impl<T> Mutex<T> {
        pub const fn new(t: T) -> Self {
            Self {
                inner: std::sync::Mutex::new(t),
                obj: OnceLock::new(),
            }
        }

        fn guard(&self, routed: Option<u64>) -> MutexGuard<'_, T> {
            MutexGuard {
                inner: self.inner.lock().unwrap_or_else(|p| p.into_inner()),
                routed,
            }
        }

        pub fn lock(&self) -> MutexGuard<'_, T> {
            let routed = sched::lock_op(&self.obj, "Mutex");
            self.guard(routed)
        }

        pub fn try_lock(&self) -> Result<MutexGuard<'_, T>, WouldBlock> {
            match sched::try_lock_op(&self.obj, "Mutex") {
                sched::TryLockOutcome::Passthrough => match self.inner.try_lock() {
                    Ok(g) => Ok(MutexGuard {
                        inner: g,
                        routed: None,
                    }),
                    Err(std::sync::TryLockError::Poisoned(p)) => Ok(MutexGuard {
                        inner: p.into_inner(),
                        routed: None,
                    }),
                    Err(std::sync::TryLockError::WouldBlock) => Err(WouldBlock),
                },
                sched::TryLockOutcome::Acquired(id) => Ok(self.guard(Some(id))),
                sched::TryLockOutcome::Contended => Err(WouldBlock),
            }
        }

        pub fn get_mut(&mut self) -> &mut T {
            self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
        }

        pub fn into_inner(self) -> T {
            self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
        }
    }

    pub struct MutexGuard<'a, T> {
        inner: std::sync::MutexGuard<'a, T>,
        /// `Some(object id)` when the acquisition went through an
        /// active scheduler; the drop releases scheduler-side ownership.
        routed: Option<u64>,
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            if let Some(id) = self.routed {
                sched::unlock_op(id);
            }
        }
    }

    impl<T> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    impl<T: std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            (**self).fmt(f)
        }
    }
}

pub use imp::{AtomicBool, AtomicU64, AtomicUsize, Mutex, MutexGuard};
