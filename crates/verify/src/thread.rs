//! `std::thread`-shaped spawn/join for model closures.
//!
//! Inside a model, `spawn` registers the new thread with the active
//! scheduler (it parks until first granted) and `join` is a scheduling
//! point enabled once the target finished. Outside a model both
//! delegate to `std::thread`, so helpers shared with ordinary tests
//! behave normally.

use crate::sched;

pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<T>,
    tid: Option<usize>,
}

impl<T> JoinHandle<T> {
    /// Like `std::thread::JoinHandle::join`: `Err` carries the panic
    /// payload of the joined thread.
    pub fn join(self) -> std::thread::Result<T> {
        if let Some(tid) = self.tid {
            sched::join_op(tid);
        }
        self.inner.join()
    }
}

pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match sched::current_cx() {
        None => JoinHandle {
            inner: std::thread::spawn(f),
            tid: None,
        },
        Some(cx) => {
            let (inner, tid) = sched::spawn_in_model(&cx, f);
            JoinHandle {
                inner,
                tid: Some(tid),
            }
        }
    }
}
