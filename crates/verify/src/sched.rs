//! The cooperative scheduler behind the model-checking build.
//!
//! One *execution* runs the model closure and every thread it spawns on
//! real OS threads, but strictly serialized: exactly one model thread
//! holds the "token" (is `current`) at any instant. Every shim
//! operation is a *yield point* — the thread parks with its pending op,
//! the scheduler picks the next thread to grant (following the replay
//! schedule, then fresh DFS choices), and only the granted thread
//! proceeds to perform the underlying std operation. Mutual exclusion,
//! try_lock contention, joins, deadlocks and livelocks are all resolved
//! scheduler-side, so every scheduling decision is explicit, recorded,
//! and replayable.
//!
//! No `unsafe` anywhere (the workspace forbids it): parking is a plain
//! `Mutex<State>` + `Condvar`, and aborting an execution unwinds parked
//! threads via `resume_unwind` with a private [`AbortToken`] payload so
//! guards drop and the OS threads exit cleanly.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// Payload of a failed [`crate::require`]: recorded as the model
/// failure for the current schedule, without panic-hook noise.
pub struct ModelFailure(pub String);

/// Payload used to unwind parked threads when an execution aborts
/// (failure elsewhere, deadlock, or sleep-set prune). Never a failure
/// by itself.
pub struct AbortToken;

/// What a pending operation does, for enabledness and conflict checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// Thread created, waiting to run its closure for the first time.
    Start,
    /// Atomic load.
    Read,
    /// Atomic store or read-modify-write.
    Write,
    /// Blocking mutex acquisition: enabled only while the object is
    /// free; the grant records ownership.
    Lock,
    /// Non-blocking acquisition: always enabled; the grant resolves to
    /// acquired-or-contended without ever blocking.
    TryLock,
    /// Mutex release (guard drop). A scheduling point so other threads
    /// can be granted *inside* the critical section and observe the
    /// held lock (try_lock contention, lock blocking).
    Unlock,
    /// Join on the thread with this tid: enabled once it finished.
    Join(usize),
}

/// A pending shim operation: the unit the explorer interleaves.
#[derive(Clone, Copy, Debug)]
pub struct Op {
    pub obj: u64,
    pub kind: OpKind,
    pub label: &'static str,
}

/// Two ops *conflict* when their order can change an outcome — used to
/// wake sleep-set members (DPOR-lite): a sleeping thread stays asleep
/// until someone executes an op dependent on its pending one.
fn conflicts(a: &Op, b: &Op) -> bool {
    match (a.kind, b.kind) {
        (OpKind::Start | OpKind::Join(_), _) | (_, OpKind::Start | OpKind::Join(_)) => false,
        (OpKind::Read, OpKind::Read) => false,
        _ => a.obj == b.obj,
    }
}

#[derive(Clone, Debug)]
enum TState {
    Parked(Op),
    Running,
    Finished,
}

/// One fresh (beyond the replay prefix) scheduling decision: the branch
/// taken and the enabled-and-awake alternatives left for the DFS.
#[derive(Clone, Debug)]
pub struct Decision {
    pub chosen: usize,
    pub alternatives: Vec<usize>,
}

pub(crate) struct State {
    threads: Vec<TState>,
    current: Option<usize>,
    /// Mutex object id -> owning tid.
    held: HashMap<u64, usize>,
    /// Sleep set: tids that must not be scheduled until a conflicting
    /// op executes (they were already explored from this state).
    sleeping: Vec<usize>,
    next_object: u64,
    /// Replay prefix: choices to repeat, and per-step sleep-set seeds
    /// (the siblings already explored from that state).
    schedule: Vec<usize>,
    sleep_seeds: Vec<Vec<usize>>,
    step: usize,
    /// Every choice made this execution (prefix + fresh), for reports.
    choices: Vec<usize>,
    fresh: Vec<Decision>,
    preemption_bound: Option<usize>,
    preemptions: usize,
    max_steps: usize,
    trace: Vec<String>,
    failure: Option<String>,
    abort: bool,
    pruned: bool,
    done: bool,
    finished: usize,
    /// Per-tid result slot for a granted TryLock.
    try_results: Vec<Option<bool>>,
}

pub(crate) struct Scheduler {
    state: Mutex<State>,
    cv: Condvar,
    done_cv: Condvar,
}

/// Everything `explore` needs from a completed execution.
pub(crate) struct ExecResult {
    pub failure: Option<String>,
    pub pruned: bool,
    pub trace: Vec<String>,
    pub fresh: Vec<Decision>,
    pub choices: Vec<usize>,
}

#[derive(Clone)]
pub(crate) struct Cx {
    sched: Arc<Scheduler>,
    tid: usize,
}

thread_local! {
    static CX: RefCell<Option<Cx>> = const { RefCell::new(None) };
}

pub(crate) fn current_cx() -> Option<Cx> {
    CX.with(|c| c.borrow().clone())
}

/// True when the calling thread belongs to an active model execution.
pub fn in_model() -> bool {
    current_cx().is_some()
}

fn lock_state(sched: &Scheduler) -> MutexGuard<'_, State> {
    sched.state.lock().unwrap_or_else(|p| p.into_inner())
}

fn abort_unwind() -> ! {
    resume_unwind(Box::new(AbortToken))
}

fn describe(op: &Op, try_result: Option<bool>) -> String {
    match op.kind {
        OpKind::Start => "start".to_string(),
        OpKind::Join(t) => format!("join(t{t})"),
        OpKind::Read => format!("{}#{}.load", op.label, op.obj),
        OpKind::Write => format!("{}#{}.write", op.label, op.obj),
        OpKind::Lock => format!("{}#{}.lock", op.label, op.obj),
        OpKind::Unlock => format!("{}#{}.unlock", op.label, op.obj),
        OpKind::TryLock => format!(
            "{}#{}.try_lock -> {}",
            op.label,
            op.obj,
            if try_result == Some(true) {
                "acquired"
            } else {
                "contended"
            }
        ),
    }
}

impl Scheduler {
    pub(crate) fn new(
        schedule: Vec<usize>,
        sleep_seeds: Vec<Vec<usize>>,
        preemption_bound: Option<usize>,
        max_steps: usize,
    ) -> Self {
        Scheduler {
            state: Mutex::new(State {
                threads: vec![TState::Parked(Op {
                    obj: 0,
                    kind: OpKind::Start,
                    label: "root",
                })],
                current: None,
                held: HashMap::new(),
                sleeping: Vec::new(),
                next_object: 0,
                schedule,
                sleep_seeds,
                step: 0,
                choices: Vec::new(),
                fresh: Vec::new(),
                preemption_bound,
                preemptions: 0,
                max_steps,
                trace: Vec::new(),
                failure: None,
                abort: false,
                pruned: false,
                done: false,
                finished: 0,
                try_results: vec![None],
            }),
            cv: Condvar::new(),
            done_cv: Condvar::new(),
        }
    }

    fn enabled(&self, st: &State, tid: usize) -> bool {
        match &st.threads[tid] {
            TState::Parked(op) => match op.kind {
                OpKind::Lock => !st.held.contains_key(&op.obj),
                OpKind::Join(target) => matches!(st.threads[target], TState::Finished),
                _ => true,
            },
            _ => false,
        }
    }

    fn fail(&self, st: &mut State, msg: String) {
        if st.failure.is_none() {
            st.failure = Some(msg);
        }
        st.abort = true;
        self.cv.notify_all();
    }

    /// Pick and grant the next thread. Caller holds the state lock and
    /// has already parked (or finished) the yielding thread.
    /// `yielder` is `Some` when a still-live thread is passing the
    /// token (used for preemption accounting); finishing or blocked
    /// threads pass `None` / are not enabled, making the switch free.
    fn choose_next(&self, st: &mut State, yielder: Option<usize>) {
        st.current = None;
        if st.abort {
            self.cv.notify_all();
            return;
        }
        if st.finished == st.threads.len() {
            st.done = true;
            self.done_cv.notify_all();
            return;
        }
        if st.step >= st.max_steps {
            self.fail(
                st,
                format!(
                    "step cap {} exceeded — livelock or unbounded model",
                    st.max_steps
                ),
            );
            return;
        }
        // Seed the sleep set when replaying a decision point: siblings
        // already explored from this state must not be re-scheduled
        // until a conflicting op wakes them.
        if st.step < st.schedule.len() {
            for t in st.sleep_seeds[st.step].clone() {
                if matches!(st.threads[t], TState::Parked(_)) && !st.sleeping.contains(&t) {
                    st.sleeping.push(t);
                }
            }
        }
        let enabled: Vec<usize> = (0..st.threads.len())
            .filter(|&t| self.enabled(st, t))
            .collect();
        if enabled.is_empty() {
            let parked: Vec<String> = st
                .threads
                .iter()
                .enumerate()
                .filter_map(|(t, s)| match s {
                    TState::Parked(op) => Some(format!("t{t} waiting on {}", describe(op, None))),
                    _ => None,
                })
                .collect();
            self.fail(st, format!("deadlock: {}", parked.join("; ")));
            return;
        }
        let awake: Vec<usize> = enabled
            .iter()
            .copied()
            .filter(|t| !st.sleeping.contains(t))
            .collect();
        if awake.is_empty() {
            // Every enabled thread is asleep: this execution is a
            // reordering of one already explored — prune quietly.
            st.pruned = true;
            st.abort = true;
            self.cv.notify_all();
            return;
        }
        let mut candidates = awake;
        if let (Some(bound), Some(y)) = (st.preemption_bound, yielder) {
            // Switching away from a thread that could keep running is a
            // preemption; once the budget is spent, stay on it.
            if st.preemptions >= bound && candidates.contains(&y) {
                candidates = vec![y];
            }
        }
        let chosen = if st.step < st.schedule.len() {
            let c = st.schedule[st.step];
            if !enabled.contains(&c) {
                self.fail(
                    st,
                    format!(
                        "replay schedule chose t{c} at step {} but it is not enabled",
                        st.step
                    ),
                );
                return;
            }
            st.sleeping.retain(|&t| t != c);
            c
        } else {
            let c = candidates[0];
            st.fresh.push(Decision {
                chosen: c,
                alternatives: candidates[1..].to_vec(),
            });
            c
        };
        if let Some(y) = yielder {
            if chosen != y && enabled.contains(&y) {
                st.preemptions += 1;
            }
        }
        st.step += 1;
        st.choices.push(chosen);

        let op = match &st.threads[chosen] {
            TState::Parked(op) => *op,
            other => unreachable!("granted thread t{chosen} not parked: {other:?}"),
        };
        // Wake sleepers whose pending op depends on the one about to run.
        let woken: Vec<usize> = st
            .sleeping
            .iter()
            .copied()
            .filter(|&t| match &st.threads[t] {
                TState::Parked(p) => conflicts(&op, p),
                _ => true,
            })
            .collect();
        st.sleeping.retain(|t| !woken.contains(t));

        let mut try_result = None;
        match op.kind {
            OpKind::Lock => {
                st.held.insert(op.obj, chosen);
            }
            OpKind::Unlock => {
                st.held.remove(&op.obj);
            }
            OpKind::TryLock => {
                let acquired = !st.held.contains_key(&op.obj);
                if acquired {
                    st.held.insert(op.obj, chosen);
                }
                try_result = Some(acquired);
                st.try_results[chosen] = try_result;
            }
            _ => {}
        }
        st.trace
            .push(format!("t{chosen}: {}", describe(&op, try_result)));
        st.current = Some(chosen);
        self.cv.notify_all();
    }

    /// Grant the very first thread (the model closure, tid 0).
    pub(crate) fn kick(&self) {
        let mut st = lock_state(self);
        self.choose_next(&mut st, None);
    }

    pub(crate) fn wait_done(&self) {
        let mut st = lock_state(self);
        while !st.done {
            st = self.done_cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    pub(crate) fn take_result(&self) -> ExecResult {
        let mut st = lock_state(self);
        ExecResult {
            failure: st.failure.take(),
            pruned: st.pruned,
            trace: std::mem::take(&mut st.trace),
            fresh: std::mem::take(&mut st.fresh),
            choices: std::mem::take(&mut st.choices),
        }
    }

    fn finished(&self, tid: usize, failure: Option<String>) {
        let mut st = lock_state(self);
        let was_current = st.current == Some(tid);
        st.threads[tid] = TState::Finished;
        st.finished += 1;
        st.try_results[tid] = None;
        if let Some(msg) = failure {
            if !st.abort {
                self.fail(&mut st, msg);
            }
        }
        // A finish can enable joins; any sleeper pending one must wake.
        let wake: Vec<usize> = st
            .sleeping
            .iter()
            .copied()
            .filter(|&t| {
                matches!(&st.threads[t], TState::Parked(op) if matches!(op.kind, OpKind::Join(_)))
            })
            .collect();
        st.sleeping.retain(|t| !wake.contains(t));
        if st.finished == st.threads.len() {
            st.done = true;
            self.done_cv.notify_all();
            self.cv.notify_all();
        } else if was_current && !st.abort {
            self.choose_next(&mut st, None);
        } else {
            self.cv.notify_all();
        }
    }
}

impl Cx {
    /// Park at a yield point with `op` pending; return once granted.
    pub(crate) fn do_yield(&self, op: Op) {
        let mut st = lock_state(&self.sched);
        if st.abort {
            drop(st);
            abort_unwind();
        }
        st.threads[self.tid] = TState::Parked(op);
        self.sched.choose_next(&mut st, Some(self.tid));
        loop {
            if st.abort {
                drop(st);
                abort_unwind();
            }
            if st.current == Some(self.tid) {
                st.threads[self.tid] = TState::Running;
                return;
            }
            st = self.sched.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    fn register_object(&self) -> u64 {
        let mut st = lock_state(&self.sched);
        st.next_object += 1;
        st.next_object
    }
}

fn obj_id(cx: &Cx, obj: &OnceLock<u64>) -> u64 {
    *obj.get_or_init(|| cx.register_object())
}

/// Atomic-op yield point (no-op outside a model).
pub(crate) fn yield_op(obj: &OnceLock<u64>, label: &'static str, kind: OpKind) {
    if let Some(cx) = current_cx() {
        let id = obj_id(&cx, obj);
        cx.do_yield(Op {
            obj: id,
            kind,
            label,
        });
    }
}

/// Blocking-lock yield point. Returns the object id when the
/// acquisition was scheduler-routed (the guard must release it).
pub(crate) fn lock_op(obj: &OnceLock<u64>, label: &'static str) -> Option<u64> {
    current_cx().map(|cx| {
        let id = obj_id(&cx, obj);
        cx.do_yield(Op {
            obj: id,
            kind: OpKind::Lock,
            label,
        });
        id
    })
}

pub(crate) enum TryLockOutcome {
    /// No active model on this thread: fall back to the std try_lock.
    Passthrough,
    Acquired(u64),
    Contended,
}

/// Non-blocking-lock yield point: the grant resolves contention.
pub(crate) fn try_lock_op(obj: &OnceLock<u64>, label: &'static str) -> TryLockOutcome {
    let Some(cx) = current_cx() else {
        return TryLockOutcome::Passthrough;
    };
    let id = obj_id(&cx, obj);
    cx.do_yield(Op {
        obj: id,
        kind: OpKind::TryLock,
        label,
    });
    let mut st = lock_state(&cx.sched);
    let acquired = st.try_results[cx.tid].take().unwrap_or(false);
    drop(st);
    if acquired {
        TryLockOutcome::Acquired(id)
    } else {
        TryLockOutcome::Contended
    }
}

/// Release scheduler-side mutex ownership (guard drop). A yield point,
/// so contenders can be scheduled while the lock is held — except
/// during unwinding, where a fresh panic from a `Drop` would abort the
/// process; an aborting execution just releases ownership silently.
pub(crate) fn unlock_op(id: u64) {
    let Some(cx) = current_cx() else { return };
    if std::thread::panicking() {
        let mut st = lock_state(&cx.sched);
        st.held.remove(&id);
        return;
    }
    cx.do_yield(Op {
        obj: id,
        kind: OpKind::Unlock,
        label: "Mutex",
    });
}

fn classify_panic(p: &(dyn std::any::Any + Send)) -> Option<String> {
    if p.downcast_ref::<AbortToken>().is_some() {
        return None;
    }
    if let Some(f) = p.downcast_ref::<ModelFailure>() {
        return Some(f.0.clone());
    }
    if let Some(s) = p.downcast_ref::<String>() {
        return Some(format!("panic: {s}"));
    }
    if let Some(s) = p.downcast_ref::<&str>() {
        return Some(format!("panic: {s}"));
    }
    Some("panic with non-string payload".to_string())
}

/// Run `body` as model thread `tid` on the current OS thread: install
/// the thread-local context, wait for the first grant, run, then pass
/// the token on. Returns the closure result, re-raising panics so a
/// std `JoinHandle::join` sees them.
fn run_model_thread<T>(sched: Arc<Scheduler>, tid: usize, body: impl FnOnce() -> T) -> T {
    CX.with(|c| {
        *c.borrow_mut() = Some(Cx {
            sched: sched.clone(),
            tid,
        })
    });
    // Wait to be started.
    {
        let mut st = lock_state(&sched);
        loop {
            if st.abort {
                st.threads[tid] = TState::Finished;
                st.finished += 1;
                if st.finished == st.threads.len() {
                    st.done = true;
                    sched.done_cv.notify_all();
                }
                drop(st);
                CX.with(|c| *c.borrow_mut() = None);
                abort_unwind();
            }
            if st.current == Some(tid) {
                st.threads[tid] = TState::Running;
                break;
            }
            st = sched.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }
    let result = catch_unwind(AssertUnwindSafe(body));
    let failure = result
        .as_ref()
        .err()
        .and_then(|p| classify_panic(p.as_ref()));
    sched.finished(tid, failure);
    CX.with(|c| *c.borrow_mut() = None);
    match result {
        Ok(v) => v,
        Err(p) => resume_unwind(p),
    }
}

/// Spawn the model closure as tid 0. Used by the explorer.
pub(crate) fn spawn_root(
    sched: &Arc<Scheduler>,
    f: Arc<dyn Fn() + Send + Sync>,
) -> std::thread::JoinHandle<()> {
    let sched = sched.clone();
    std::thread::spawn(move || run_model_thread(sched.clone(), 0, move || f()))
}

/// Spawn a new model thread from inside a model (the `thread::spawn`
/// shim). Registers the tid with the scheduler; the OS thread parks
/// until first granted.
pub(crate) fn spawn_in_model<F, T>(cx: &Cx, f: F) -> (std::thread::JoinHandle<T>, usize)
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let tid = {
        let mut st = lock_state(&cx.sched);
        let tid = st.threads.len();
        st.threads.push(TState::Parked(Op {
            obj: tid as u64,
            kind: OpKind::Start,
            label: "spawn",
        }));
        st.try_results.push(None);
        tid
    };
    let sched = cx.sched.clone();
    let handle = std::thread::spawn(move || run_model_thread(sched.clone(), tid, f));
    (handle, tid)
}

/// Join yield point for the `thread::spawn` shim's handle.
pub(crate) fn join_op(tid: usize) {
    if let Some(cx) = current_cx() {
        cx.do_yield(Op {
            obj: tid as u64,
            kind: OpKind::Join(tid),
            label: "thread",
        });
    }
}
