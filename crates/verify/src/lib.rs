//! `adamove-verify`: deterministic concurrency model checking for the
//! hand-rolled lock-free structures in this workspace.
//!
//! The crate has two faces, switched by the custom `--cfg adamove_verify`
//! flag (registered as a known cfg in the workspace lints):
//!
//! * **Production (cfg off, the default):** [`sync`] exposes newtype
//!   wrappers over `std::sync::atomic::{AtomicU64, AtomicUsize,
//!   AtomicBool}` and `std::sync::Mutex` whose every method is an
//!   `#[inline]` passthrough. `adamove-obs` and the engine slot structs
//!   build on these wrappers, and release binaries compile them down to
//!   the bare std types — pinned by the `--ignored` overhead test in
//!   `crates/obs/tests/overhead.rs`.
//!
//! * **Model checking (`RUSTFLAGS="--cfg adamove_verify"`):** the same
//!   wrappers route every load/store/rmw/lock/try_lock through a
//!   cooperative [`sched`]uler that serializes the model's threads and
//!   lets the [`explore`] driver enumerate interleavings exhaustively —
//!   a mini-loom: DFS over schedules with optional preemption bounding
//!   (CHESS-style) and a sleep-set reduction (DPOR-lite). A failing
//!   invariant is reported as the exact schedule (a `Vec<usize>` of
//!   thread ids, one per scheduling decision) plus a human-readable op
//!   trace, and [`Checker::replay`] re-runs that schedule verbatim.
//!
//! What the checker does and does not prove: threads are interleaved at
//! every shim operation, so all *schedule*-dependent behaviours of the
//! modelled code are enumerated — lost updates, torn snapshots,
//! try_lock contention windows, deadlocks. Each execution is sequentially
//! consistent, so weak-memory reorderings are *not* explored; the
//! `atomics-ordering` lint rule (every non-`Relaxed` ordering carries a
//! `// ordering:` justification) and the best-effort TSan job cover that
//! axis instead. See DESIGN.md § "Memory-ordering contract".
//!
//! Code outside an active model (production binaries with the cfg off,
//! or any thread that isn't registered with a running scheduler even
//! with the cfg on) always takes the passthrough path, so the whole
//! workspace can be built and tested under `--cfg adamove_verify`
//! without behavioural change outside the model tests.

pub mod sync;

#[cfg(adamove_verify)]
pub mod sched;

#[cfg(adamove_verify)]
pub mod explore;

#[cfg(adamove_verify)]
pub mod thread;

#[cfg(adamove_verify)]
pub use explore::{Checker, Failure, Outcome};

/// Assert a model invariant.
///
/// Inside a model this unwinds with a quiet payload (no panic-hook
/// backtrace spew) that the checker records as the model failure for the
/// current schedule; outside a model it behaves like `assert!`.
#[cfg(adamove_verify)]
pub fn require(cond: bool, msg: &str) {
    if !cond {
        if sched::in_model() {
            std::panic::resume_unwind(Box::new(sched::ModelFailure(msg.to_string())));
        }
        panic!("requirement failed: {msg}");
    }
}

/// Production build: a plain assertion, kept so model helpers shared
/// with non-model tests compile under both cfgs.
#[cfg(not(adamove_verify))]
pub fn require(cond: bool, msg: &str) {
    assert!(cond, "requirement failed: {msg}");
}
