//! Deterministic disk-fault injection for the durability layer.
//!
//! [`FaultFs`] wraps the production [`RealFs`] behind the same
//! [`Fs`]/[`FsFile`] seam [`DurableStore`](adamove::DurableStore) writes
//! through, and injects faults at **op indices**: the Nth append (across
//! every file the store opens) can tear mid-record, flip a bit, or fail
//! with ENOSPC; the Nth read can come back short. Indices are plain
//! counters, so a fault plan replays bit-identically run after run —
//! every corruption mode in the chaos suite has a pinned typed outcome
//! instead of a flaky race against real disk failures.
//!
//! Plans are either explicit ([`FaultFs::fault_append`] /
//! [`FaultFs::fault_read`]) for pinned-outcome tests, or derived from a
//! seed ([`FaultFs::seeded`]) for corpus-style sweeps where the assertion
//! is "typed errors and quarantines, never a panic".

use adamove::{Fs, FsFile, RealFs};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// One injected disk fault, consumed by the op it is registered against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFault {
    /// The append keeps only the first `keep` bytes on disk, then errors
    /// — the on-disk image is exactly what a power cut mid-write leaves.
    TornWrite {
        /// Bytes that reach the file before the "crash".
        keep: usize,
    },
    /// The append (or read) silently flips bit `bit` (mod payload bits)
    /// and reports success — corruption only the CRC can catch.
    BitFlip {
        /// Which bit to flip, wrapped to the buffer length.
        bit: usize,
    },
    /// The read returns only the first `keep` bytes of the file.
    ShortRead {
        /// Bytes returned; the rest of the file is invisible.
        keep: usize,
    },
    /// The append fails up front with an ENOSPC-style error; no bytes
    /// reach the file.
    Enospc,
}

#[derive(Debug, Default)]
struct State {
    appends: AtomicU64,
    reads: AtomicU64,
    on_append: Mutex<HashMap<u64, DiskFault>>,
    on_read: Mutex<HashMap<u64, DiskFault>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A fault-injecting [`Fs`] for [`DurabilityConfig::fs`](adamove::DurabilityConfig).
///
/// Clone-cheap (shared state behind an `Arc`): keep one handle in the
/// test for registration/inspection and hand a clone to the store.
#[derive(Debug, Clone, Default)]
pub struct FaultFs {
    inner: RealFs,
    state: Arc<State>,
}

impl FaultFs {
    /// A transparent pass-through until faults are registered.
    pub fn new() -> Self {
        Self::default()
    }

    /// Derive a fault plan from `seed`: roughly one op in `period` is
    /// faulted (kind and parameters drawn from the seed) over the first
    /// `horizon` appends and reads. Same seed, same plan — a failing
    /// sweep reproduces from its seed alone.
    pub fn seeded(seed: u64, horizon: u64, period: u64) -> Self {
        let fs = Self::new();
        let period = period.max(1);
        let mut s = seed | 1;
        let mut next = move || {
            // SplitMix64: cheap, deterministic, and independent of the
            // workspace's (stubbed-in-offline-dev) `rand` crate.
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for idx in 0..horizon {
            let r = next();
            if r % period != 0 {
                continue;
            }
            match (r >> 8) % 4 {
                0 => fs.fault_append(
                    idx,
                    DiskFault::TornWrite {
                        keep: (r >> 16) as usize % 32,
                    },
                ),
                1 => fs.fault_append(
                    idx,
                    DiskFault::BitFlip {
                        bit: (r >> 16) as usize,
                    },
                ),
                2 => fs.fault_append(idx, DiskFault::Enospc),
                _ => fs.fault_read(
                    idx,
                    DiskFault::ShortRead {
                        keep: (r >> 16) as usize % 64,
                    },
                ),
            }
        }
        fs
    }

    /// Inject `fault` at append index `idx` (0-based, counted across all
    /// files). One-shot: consumed when hit.
    pub fn fault_append(&self, idx: u64, fault: DiskFault) {
        lock(&self.state.on_append).insert(idx, fault);
    }

    /// Inject `fault` at read index `idx` (0-based, counted across all
    /// files). One-shot: consumed when hit.
    pub fn fault_read(&self, idx: u64, fault: DiskFault) {
        lock(&self.state.on_read).insert(idx, fault);
    }

    /// Appends observed so far (fault indices are relative to this).
    pub fn appends(&self) -> u64 {
        // ordering: SeqCst keeps one total order over index claims, so
        // a fault armed at `appends()` hits exactly the next append.
        self.state.appends.load(Ordering::SeqCst)
    }

    /// Reads observed so far (fault indices are relative to this).
    pub fn reads(&self) -> u64 {
        // ordering: SeqCst — same total-order contract as appends().
        self.state.reads.load(Ordering::SeqCst)
    }
}

struct FaultFile {
    inner: Box<dyn FsFile>,
    state: Arc<State>,
}

impl FsFile for FaultFile {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        // ordering: SeqCst index claim — see appends().
        let idx = self.state.appends.fetch_add(1, Ordering::SeqCst);
        match lock(&self.state.on_append).remove(&idx) {
            None | Some(DiskFault::ShortRead { .. }) => self.inner.append(buf),
            Some(DiskFault::Enospc) => {
                Err(io::Error::other("injected ENOSPC: no space left on device"))
            }
            Some(DiskFault::TornWrite { keep }) => {
                let keep = keep.min(buf.len());
                self.inner.append(&buf[..keep])?;
                let _ = self.inner.sync();
                Err(io::Error::other(
                    "injected torn write: power cut mid-append",
                ))
            }
            Some(DiskFault::BitFlip { bit }) => {
                let mut corrupt = buf.to_vec();
                flip(&mut corrupt, bit);
                self.inner.append(&corrupt)
            }
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        self.inner.sync()
    }
}

fn flip(bytes: &mut [u8], bit: usize) {
    if !bytes.is_empty() {
        let b = bit % (bytes.len() * 8);
        bytes[b / 8] ^= 1 << (b % 8);
    }
}

impl Fs for FaultFs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn FsFile>> {
        Ok(Box::new(FaultFile {
            inner: self.inner.create(path)?,
            state: Arc::clone(&self.state),
        }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        // ordering: SeqCst index claim — see reads().
        let idx = self.state.reads.fetch_add(1, Ordering::SeqCst);
        let mut out = self.inner.read(path)?;
        match lock(&self.state.on_read).remove(&idx) {
            Some(DiskFault::ShortRead { keep }) => out.truncate(keep),
            Some(DiskFault::BitFlip { bit }) => flip(&mut out, bit),
            _ => {}
        }
        Ok(out)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.create_dir_all(path)
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        self.inner.list_dir(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        self.inner.sync_dir(path)
    }
}
