//! Dependency-free flat JSON for golden snapshot files.
//!
//! Golden baselines must load under every build of the workspace,
//! including the offline dev harness where `serde_json` is replaced by a
//! stub whose parser always errors. Snapshots therefore use the simplest
//! format that is still ordinary JSON: a single flat object whose values
//! are numbers or strings, written and read by the ~100 lines here.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A value in a flat golden object.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A JSON number (integers included; parsed as `f64`).
    Num(f64),
    /// A JSON string (no escapes beyond `\"` and `\\` are supported).
    Str(String),
}

impl Value {
    /// The number, or an error naming `key` (for diagnostics).
    pub fn as_num(&self, key: &str) -> Result<f64, String> {
        match self {
            Value::Num(v) => Ok(*v),
            Value::Str(_) => Err(format!("golden field {key:?} is a string, expected number")),
        }
    }

    /// The string, or an error naming `key`.
    pub fn as_str(&self, key: &str) -> Result<&str, String> {
        match self {
            Value::Str(s) => Ok(s),
            Value::Num(_) => Err(format!("golden field {key:?} is a number, expected string")),
        }
    }
}

/// Serialize a flat map as pretty-printed JSON with keys in sorted order
/// (BTreeMap iteration), one field per line — stable output, reviewable
/// diffs. Floats use Rust's shortest round-trip `Display`.
pub fn write_flat(fields: &BTreeMap<String, Value>) -> String {
    let mut out = String::from("{\n");
    let last = fields.len().saturating_sub(1);
    for (i, (k, v)) in fields.iter().enumerate() {
        let _ = match v {
            Value::Num(n) => write!(out, "  \"{}\": {}", escape(k), fmt_num(*n)),
            Value::Str(s) => write!(out, "  \"{}\": \"{}\"", escape(k), escape(s)),
        };
        out.push_str(if i == last { "\n" } else { ",\n" });
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn fmt_num(n: f64) -> String {
    if n == n.trunc() && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// Parse a flat JSON object of string/number fields. Rejects nesting,
/// arrays, booleans and nulls — golden files are flat by construction, and
/// a parse error on anything else is a feature (the snapshot was edited
/// into a shape the tolerance comparison cannot check).
pub fn parse_flat(text: &str) -> Result<BTreeMap<String, Value>, String> {
    let mut p = Parser {
        chars: text.char_indices().peekable(),
        text,
    };
    p.skip_ws();
    p.expect('{')?;
    let mut out = BTreeMap::new();
    p.skip_ws();
    if p.eat('}') {
        return p.finish(out);
    }
    loop {
        p.skip_ws();
        let key = p.string()?;
        p.skip_ws();
        p.expect(':')?;
        p.skip_ws();
        let value = p.value()?;
        if out.insert(key.clone(), value).is_some() {
            return Err(format!("duplicate golden field {key:?}"));
        }
        p.skip_ws();
        if p.eat(',') {
            continue;
        }
        p.expect('}')?;
        return p.finish(out);
    }
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    text: &'a str,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some((_, c)) if c.is_ascii_whitespace()) {
            self.chars.next();
        }
    }

    fn eat(&mut self, want: char) -> bool {
        if matches!(self.chars.peek(), Some((_, c)) if *c == want) {
            self.chars.next();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        match self.chars.next() {
            Some((_, c)) if c == want => Ok(()),
            Some((i, c)) => Err(format!("expected {want:?} at byte {i}, found {c:?}")),
            None => Err(format!("expected {want:?}, found end of input")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut s = String::new();
        loop {
            match self.chars.next() {
                Some((_, '"')) => return Ok(s),
                Some((i, '\\')) => match self.chars.next() {
                    Some((_, '"')) => s.push('"'),
                    Some((_, '\\')) => s.push('\\'),
                    other => return Err(format!("unsupported escape at byte {i}: {other:?}")),
                },
                Some((_, c)) => s.push(c),
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.chars.peek() {
            Some((_, '"')) => Ok(Value::Str(self.string()?)),
            Some((start, c)) if *c == '-' || c.is_ascii_digit() => {
                let start = *start;
                let mut end = start;
                while let Some((i, c)) = self.chars.peek() {
                    if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
                        end = i + c.len_utf8();
                        self.chars.next();
                    } else {
                        break;
                    }
                }
                let raw = &self.text[start..end];
                raw.parse::<f64>()
                    .map(Value::Num)
                    .map_err(|e| format!("bad number {raw:?}: {e}"))
            }
            Some((i, c)) => Err(format!("unsupported value at byte {i}: {c:?}")),
            None => Err("expected value, found end of input".into()),
        }
    }

    fn finish(&mut self, out: BTreeMap<String, Value>) -> Result<BTreeMap<String, Value>, String> {
        self.skip_ws();
        match self.chars.next() {
            None => Ok(out),
            Some((i, c)) => Err(format!("trailing content at byte {i}: {c:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(pairs: &[(&str, Value)]) -> BTreeMap<String, Value> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    #[test]
    fn round_trips_numbers_and_strings() {
        let m = map(&[
            ("dataset", Value::Str("nyc-mini".into())),
            ("frozen.rec1", Value::Num(0.348_214_3)),
            ("count", Value::Num(112.0)),
            ("neg", Value::Num(-1.5e-3)),
        ]);
        let text = write_flat(&m);
        assert_eq!(parse_flat(&text).unwrap(), m);
        // Integers serialize without a fractional part.
        assert!(text.contains("\"count\": 112"));
    }

    #[test]
    fn empty_object_round_trips() {
        let m = BTreeMap::new();
        assert_eq!(parse_flat(&write_flat(&m)).unwrap(), m);
        assert_eq!(parse_flat("  { }  ").unwrap(), m);
    }

    #[test]
    fn escaped_keys_round_trip() {
        let m = map(&[("we\"ird\\key", Value::Str("a\"b".into()))]);
        assert_eq!(parse_flat(&write_flat(&m)).unwrap(), m);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "{\"a\": }",
            "{\"a\": 1,}",
            "{\"a\": [1]}",
            "{\"a\": true}",
            "{\"a\": 1} x",
            "{\"a\": 1, \"a\": 2}",
            "{\"a\": 1 \"b\": 2}",
        ] {
            assert!(parse_flat(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn typed_accessors_report_the_field_name() {
        let m = parse_flat("{\"s\": \"x\", \"n\": 3}").unwrap();
        assert_eq!(m["s"].as_str("s").unwrap(), "x");
        assert_eq!(m["n"].as_num("n").unwrap(), 3.0);
        assert!(m["s"].as_num("s").unwrap_err().contains("\"s\""));
        assert!(m["n"].as_str("n").unwrap_err().contains("\"n\""));
    }
}
