//! Golden-trace snapshots: end-to-end pipelines pinned to checked-in
//! baselines.
//!
//! Each snapshot runs one seeded mini-city through the full AdaMove
//! pipeline — generate, preprocess, split, deterministically re-initialize
//! a LightMob, train, then evaluate frozen and PTTA-adapted — and records
//! the accuracy metrics. Every random draw on that path goes through the
//! in-repo SplitMix64 ([`DetRng`](adamove_tensor::det::DetRng) mini-stream
//! generation, [`deterministic_reinit`] weights, the trainer's shuffles),
//! so the numbers are a pure function of the configs below.
//!
//! Baselines live in `crates/testkit/tests/golden/*.json` (flat JSON, see
//! [`crate::json`]). Comparison uses explicit tolerances:
//! [`METRIC_TOLERANCE`] on the four accuracy metrics absorbs cross-platform
//! libm/ulp drift (a handful of rank flips at most), while sample counts
//! must match exactly — a count change means the pipeline itself changed
//! and the baseline must be regenerated deliberately:
//!
//! ```text
//! cargo test -p adamove-testkit -- --ignored regen
//! ```

use crate::json::{parse_flat, write_flat, Value};
use crate::reinit::deterministic_reinit;
use adamove::{
    evaluate, AdaMoveConfig, InferenceMode, LightMob, Metrics, PttaConfig, Trainer, TrainingConfig,
};
use adamove_autograd::ParamStore;
use adamove_mobility::ministream::{
    lymob_mini, mini_preprocess_config, nyc_mini, tky_mini, MiniCityConfig,
};
use adamove_mobility::{make_samples, preprocess, SampleConfig, Split};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Absolute tolerance on each of Acc@1 / Acc@5 / Acc@10 / MRR when
/// comparing a fresh run against a checked-in baseline. The metrics only
/// move when an integer rank crosses a top-k boundary, so on identical
/// code this is slack for floating-point library differences between
/// platforms — not for behavioural drift.
pub const METRIC_TOLERANCE: f32 = 0.02;

/// A registered snapshot city: its name and config builder.
pub type GoldenCity = (&'static str, fn() -> MiniCityConfig);

/// The three snapshot cities (name, config builder).
pub const GOLDEN_CITIES: [GoldenCity; 3] =
    [("nyc", nyc_mini), ("tky", tky_mini), ("lymob", lymob_mini)];

/// Everything a golden snapshot records about one end-to-end run.
#[derive(Debug, Clone, PartialEq)]
pub struct GoldenRecord {
    /// Mini-city name (e.g. `"nyc-mini"`).
    pub dataset: String,
    /// Location universe after preprocessing.
    pub num_locations: u32,
    /// Users surviving preprocessing.
    pub num_users: usize,
    /// Training samples fed to the trainer.
    pub train_samples: usize,
    /// Test samples evaluated.
    pub test_samples: usize,
    /// Frozen-model test metrics.
    pub frozen: Metrics,
    /// PTTA-adapted test metrics.
    pub ptta: Metrics,
}

fn put_metrics(fields: &mut BTreeMap<String, Value>, prefix: &str, m: &Metrics) {
    fields.insert(format!("{prefix}.rec1"), Value::Num(m.rec1 as f64));
    fields.insert(format!("{prefix}.rec5"), Value::Num(m.rec5 as f64));
    fields.insert(format!("{prefix}.rec10"), Value::Num(m.rec10 as f64));
    fields.insert(format!("{prefix}.mrr"), Value::Num(m.mrr as f64));
    fields.insert(format!("{prefix}.count"), Value::Num(m.count as f64));
}

fn get_metrics(fields: &BTreeMap<String, Value>, prefix: &str) -> Result<Metrics, String> {
    let num = |key: String| -> Result<f64, String> {
        fields
            .get(&key)
            .ok_or_else(|| format!("golden file is missing field {key:?}"))?
            .as_num(&key)
    };
    Ok(Metrics {
        rec1: num(format!("{prefix}.rec1"))? as f32,
        rec5: num(format!("{prefix}.rec5"))? as f32,
        rec10: num(format!("{prefix}.rec10"))? as f32,
        mrr: num(format!("{prefix}.mrr"))? as f32,
        count: num(format!("{prefix}.count"))? as usize,
    })
}

impl GoldenRecord {
    /// Serialize as flat JSON (see [`crate::json`]).
    pub fn to_json(&self) -> String {
        let mut fields = BTreeMap::new();
        fields.insert("dataset".into(), Value::Str(self.dataset.clone()));
        fields.insert(
            "num_locations".into(),
            Value::Num(self.num_locations as f64),
        );
        fields.insert("num_users".into(), Value::Num(self.num_users as f64));
        fields.insert(
            "train_samples".into(),
            Value::Num(self.train_samples as f64),
        );
        fields.insert("test_samples".into(), Value::Num(self.test_samples as f64));
        put_metrics(&mut fields, "frozen", &self.frozen);
        put_metrics(&mut fields, "ptta", &self.ptta);
        write_flat(&fields)
    }

    /// Parse the flat JSON produced by [`GoldenRecord::to_json`].
    pub fn from_json(text: &str) -> Result<Self, String> {
        let fields = parse_flat(text)?;
        let num = |key: &str| -> Result<f64, String> {
            fields
                .get(key)
                .ok_or_else(|| format!("golden file is missing field {key:?}"))?
                .as_num(key)
        };
        Ok(Self {
            dataset: fields
                .get("dataset")
                .ok_or("golden file is missing field \"dataset\"")?
                .as_str("dataset")?
                .to_string(),
            num_locations: num("num_locations")? as u32,
            num_users: num("num_users")? as usize,
            train_samples: num("train_samples")? as usize,
            test_samples: num("test_samples")? as usize,
            frozen: get_metrics(&fields, "frozen")?,
            ptta: get_metrics(&fields, "ptta")?,
        })
    }
}

/// Training schedule for snapshots: short (the point is reproducibility,
/// not accuracy) but long enough that the model clearly beats chance on
/// the schedule-structured mini-cities.
fn golden_training_config() -> TrainingConfig {
    TrainingConfig {
        max_epochs: 2,
        batch_size: 32,
        val_subsample: Some(80),
        seed: 11,
        verbose: false,
        ..TrainingConfig::default()
    }
}

/// Run the full pipeline for one mini-city and record the result. Every
/// draw is backend-independent, so two runs of this function — on any
/// platform, under any rand backend — produce rank-identical records.
pub fn run_golden_pipeline(city: &MiniCityConfig) -> GoldenRecord {
    let dataset = city.generate();
    let processed = preprocess(&dataset, &mini_preprocess_config());
    let train = make_samples(&processed, Split::Train, &SampleConfig::train());
    let val = make_samples(&processed, Split::Val, &SampleConfig::eval(2));
    let test = make_samples(&processed, Split::Test, &SampleConfig::eval(2));

    let mut store = ParamStore::new();
    // The StdRng draws are discarded by the reinit below; the model's
    // weights come entirely from the DetRng stream.
    let mut throwaway = StdRng::seed_from_u64(0);
    let model = LightMob::new(
        &mut store,
        AdaMoveConfig {
            lambda: 0.0,
            ..AdaMoveConfig::tiny()
        },
        processed.num_locations,
        processed.num_users() as u32,
        &mut throwaway,
    );
    deterministic_reinit(&mut store, city.seed ^ 0x60_1DE2);

    Trainer::new(golden_training_config()).fit(&model, None, &mut store, &train, &val);

    let frozen = evaluate(&model, &store, &test, &InferenceMode::Frozen).metrics;
    let ptta = evaluate(
        &model,
        &store,
        &test,
        &InferenceMode::Ptta(PttaConfig::default()),
    )
    .metrics;

    GoldenRecord {
        dataset: dataset.name,
        num_locations: processed.num_locations,
        num_users: processed.num_users(),
        train_samples: train.len(),
        test_samples: test.len(),
        frozen,
        ptta,
    }
}

/// Path of the checked-in baseline for `city` (`"nyc"`, `"tky"`,
/// `"lymob"`).
pub fn golden_path(city: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(format!("{city}.json"))
}

fn check_metrics(label: &str, got: &Metrics, want: &Metrics, errs: &mut Vec<String>) {
    let mut field = |name: &str, g: f32, w: f32| {
        if (g - w).abs() > METRIC_TOLERANCE {
            errs.push(format!(
                "{label}.{name}: got {g:.4}, baseline {w:.4} (tolerance {METRIC_TOLERANCE})"
            ));
        }
    };
    field("rec1", got.rec1, want.rec1);
    field("rec5", got.rec5, want.rec5);
    field("rec10", got.rec10, want.rec10);
    field("mrr", got.mrr, want.mrr);
    if got.count != want.count {
        errs.push(format!(
            "{label}.count: got {}, baseline {} (counts must match exactly)",
            got.count, want.count
        ));
    }
}

/// Compare a fresh record against a baseline: exact on identity and sample
/// counts, [`METRIC_TOLERANCE`] on the accuracy metrics. `Err` lists every
/// violated field.
pub fn compare_against_golden(got: &GoldenRecord, baseline: &GoldenRecord) -> Result<(), String> {
    let mut errs = Vec::new();
    if got.dataset != baseline.dataset {
        errs.push(format!(
            "dataset: got {:?}, baseline {:?}",
            got.dataset, baseline.dataset
        ));
    }
    for (name, g, w) in [
        (
            "num_locations",
            got.num_locations as usize,
            baseline.num_locations as usize,
        ),
        ("num_users", got.num_users, baseline.num_users),
        ("train_samples", got.train_samples, baseline.train_samples),
        ("test_samples", got.test_samples, baseline.test_samples),
    ] {
        if g != w {
            errs.push(format!("{name}: got {g}, baseline {w}"));
        }
    }
    check_metrics("frozen", &got.frozen, &baseline.frozen, &mut errs);
    check_metrics("ptta", &got.ptta, &baseline.ptta, &mut errs);
    if errs.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "golden drift for {:?}:\n  {}\n(if intentional, regenerate with \
             `cargo test -p adamove-testkit -- --ignored regen`)",
            baseline.dataset,
            errs.join("\n  ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> GoldenRecord {
        GoldenRecord {
            dataset: "toy".into(),
            num_locations: 9,
            num_users: 4,
            train_samples: 100,
            test_samples: 25,
            frozen: Metrics {
                rec1: 0.2,
                rec5: 0.4,
                rec10: 0.6,
                mrr: 0.3,
                count: 25,
            },
            ptta: Metrics {
                rec1: 0.24,
                rec5: 0.44,
                rec10: 0.64,
                mrr: 0.33,
                count: 25,
            },
        }
    }

    #[test]
    fn records_round_trip_through_flat_json() {
        let r = record();
        let parsed = GoldenRecord::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn comparison_accepts_drift_within_tolerance() {
        let base = record();
        let mut got = record();
        got.frozen.rec1 += METRIC_TOLERANCE * 0.9;
        got.ptta.mrr -= METRIC_TOLERANCE * 0.9;
        compare_against_golden(&got, &base).unwrap();
    }

    #[test]
    fn comparison_rejects_metric_drift_beyond_tolerance() {
        let base = record();
        let mut got = record();
        got.ptta.rec5 += METRIC_TOLERANCE * 2.0;
        let err = compare_against_golden(&got, &base).unwrap_err();
        assert!(err.contains("ptta.rec5"), "{err}");
        assert!(err.contains("regenerate"), "{err}");
    }

    #[test]
    fn comparison_rejects_count_and_shape_changes() {
        let base = record();
        let mut got = record();
        got.test_samples = 26;
        got.frozen.count = 26;
        let err = compare_against_golden(&got, &base).unwrap_err();
        assert!(err.contains("test_samples"), "{err}");
        assert!(err.contains("frozen.count"), "{err}");
    }

    #[test]
    fn missing_fields_are_named_in_parse_errors() {
        let text = record()
            .to_json()
            .replace("\"ptta.mrr\"", "\"ptta.mrr_gone\"");
        let err = GoldenRecord::from_json(&text).unwrap_err();
        assert!(err.contains("ptta.mrr"), "{err}");
    }
}
