//! Backend-independent model weight re-initialization.
//!
//! [`LightMob::new`](adamove::LightMob::new) draws its initial weights from
//! the external `rand` crate, whose stream the offline dev harness replaces
//! with a different one. Any snapshot of model *outputs* therefore has to
//! cut `rand` out of the loop: build the model normally (the draws are
//! discarded), then overwrite every parameter with values from the in-repo
//! SplitMix64 [`DetRng`] — making the whole parameter vector a pure
//! function of `(seed, parameter names, shapes)`.

use adamove_autograd::ParamStore;
use adamove_tensor::det::{mix64, DetRng};

/// FNV-1a over the parameter name: stable, dependency-free, and good
/// enough to decorrelate per-parameter streams.
fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Overwrite every parameter in `store` with Xavier-uniform values drawn
/// from a [`DetRng`] stream keyed by `(seed, parameter name)`.
///
/// Keying each parameter's stream by its *name* (not its registration
/// index) keeps the values stable when unrelated parameters are added or
/// reordered — only renaming or reshaping a parameter changes its weights.
/// Parameters sharing a name would share a stream; [`ParamStore`] names are
/// unique by construction in this workspace.
pub fn deterministic_reinit(store: &mut ParamStore, seed: u64) {
    let params: Vec<_> = store.iter().map(|(id, p)| (id, p.name.clone())).collect();
    for (id, name) in params {
        let mut rng = DetRng::new(mix64(seed ^ fnv64(&name)));
        let value = store.value_mut(id);
        let (rows, cols) = value.shape();
        let limit = (6.0 / (rows + cols) as f32).sqrt();
        for w in value.as_mut_slice() {
            *w = rng.uniform(-limit, limit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamove_tensor::Matrix;

    fn toy_store() -> ParamStore {
        let mut store = ParamStore::new();
        store.register("emb.loc", Matrix::zeros(6, 4));
        store.register("fc.w", Matrix::zeros(4, 6));
        store.register("fc.b", Matrix::zeros(1, 6));
        store
    }

    fn flat(store: &ParamStore) -> Vec<f32> {
        store
            .iter()
            .flat_map(|(_, p)| p.value.as_slice().to_vec())
            .collect()
    }

    #[test]
    fn reinit_is_deterministic_and_seed_sensitive() {
        let (mut a, mut b, mut c) = (toy_store(), toy_store(), toy_store());
        deterministic_reinit(&mut a, 42);
        deterministic_reinit(&mut b, 42);
        deterministic_reinit(&mut c, 43);
        assert_eq!(flat(&a), flat(&b));
        assert_ne!(flat(&a), flat(&c));
        // Every weight was actually written (zeros are measure-zero).
        assert!(flat(&a).iter().all(|w| *w != 0.0));
    }

    #[test]
    fn streams_are_keyed_by_name_not_registration_order() {
        let mut fwd = toy_store();
        let mut rev = ParamStore::new();
        rev.register("fc.b", Matrix::zeros(1, 6));
        rev.register("fc.w", Matrix::zeros(4, 6));
        rev.register("emb.loc", Matrix::zeros(6, 4));
        deterministic_reinit(&mut fwd, 7);
        deterministic_reinit(&mut rev, 7);
        let w_fwd = fwd.value(fwd.find("fc.w").unwrap()).as_slice().to_vec();
        let w_rev = rev.value(rev.find("fc.w").unwrap()).as_slice().to_vec();
        assert_eq!(w_fwd, w_rev);
    }

    #[test]
    fn weights_respect_the_xavier_bound() {
        let mut store = toy_store();
        deterministic_reinit(&mut store, 1);
        for (_, p) in store.iter() {
            let (rows, cols) = p.value.shape();
            let limit = (6.0 / (rows + cols) as f32).sqrt();
            assert!(p.value.as_slice().iter().all(|w| w.abs() <= limit));
        }
    }
}
