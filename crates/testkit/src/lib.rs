#![warn(missing_docs)]
//! Correctness harness for the AdaMove serving runtime.
//!
//! The workspace's guarantees — parallel evaluation is bit-identical to
//! sequential, the sharded engine is observationally equivalent to a
//! single [`StreamingPredictor`](adamove::StreamingPredictor), training
//! pipelines reproduce checked-in baselines — are easy to state and easy
//! to silently lose. This crate turns each of them into an executable
//! oracle:
//!
//! - [`oracle`] — **differential oracles**: run the same workload down two
//!   implementations that must agree ([`evaluate`](adamove::evaluate) vs
//!   [`evaluate_par`](adamove::evaluate_par) at several thread counts,
//!   including per-sample ranks; [`ShardedEngine`](adamove::ShardedEngine)
//!   vs [`StreamingPredictor`](adamove::StreamingPredictor); PTTA-adapted
//!   vs frozen scores on stable streams) and diff the results;
//! - [`golden`] — **golden-trace snapshots**: seeded mini-streams (from
//!   [`adamove_mobility::ministream`]) run end-to-end — train, adapt,
//!   predict — with the resulting Acc@1/Acc@5/MRR compared against
//!   checked-in `tests/golden/*.json` baselines under explicit tolerances;
//! - [`fault`] — **fault injection**: a deterministic, seed-driven
//!   [`FaultPlan`] plugged into the engine's [`Disturbance`](adamove::Disturbance)
//!   seam (worker panics, delayed replies, dropped observes), with suites
//!   asserting graceful degradation and typed errors, never hangs;
//! - [`faultfs`] — **disk-fault chaos**: a deterministic [`FaultFs`]
//!   behind the durability layer's [`Fs`](adamove::Fs) seam, injecting
//!   torn writes, bit flips, short reads and ENOSPC at seeded op
//!   indices so every corruption mode has a pinned typed outcome;
//! - [`reinit`] — backend-independent weight re-initialization, so model
//!   parameters (normally drawn from the pluggable external `rand`) become
//!   a pure function of a seed;
//! - [`json`] — a dependency-free flat JSON reader/writer for the golden
//!   files (the offline dev harness stubs `serde_json`, so snapshots must
//!   not rely on it).
//!
//! The integration suites live in `crates/testkit/tests/`. Golden baselines
//! are regenerated with
//! `cargo test -p adamove-testkit -- --ignored regen` (see `golden`).

pub mod fault;
pub mod faultfs;
pub mod golden;
pub mod json;
pub mod oracle;
pub mod reinit;

pub use fault::FaultPlan;
pub use faultfs::{DiskFault, FaultFs};
pub use golden::{
    compare_against_golden, golden_path, run_golden_pipeline, GoldenRecord, GOLDEN_CITIES,
    METRIC_TOLERANCE,
};
pub use oracle::{
    batched_sample_ranks, check_batched_equivalence, check_engine_matches_streaming,
    check_parallel_equivalence, oracle_batch_sizes, oracle_thread_counts, sample_ranks,
    top1_agreement, workload_from_dataset, StreamEvent,
};
pub use reinit::deterministic_reinit;
