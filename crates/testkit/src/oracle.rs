//! Differential oracles: two implementations, one workload, zero diffs.
//!
//! Each oracle here runs the same inputs down two code paths that must
//! agree and reports the first divergence as a human-readable `Err` rather
//! than panicking — so test suites can `assert!(ok)` while tools (e.g. the
//! bench harness's self-check) print the diagnosis and keep going.

use adamove::{
    available_threads, evaluate, evaluate_batched, evaluate_par, par_map, EngineConfig,
    InferenceMode, LightMob, Ptta, ShardedEngine, StreamingPredictor, T3a,
};
use adamove_autograd::ParamStore;
use adamove_mobility::types::HOUR;
use adamove_mobility::{Dataset, Point, Sample, Timestamp, UserId};
use adamove_tensor::matrix::argmax;
use adamove_tensor::stats::rank_of;
use std::sync::Arc;

/// Thread counts the parallel-equivalence oracle sweeps: sequential, the
/// smallest parallel case, an odd count that never divides the sample set
/// evenly, and whatever this machine actually has.
pub fn oracle_thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 7, available_threads()];
    counts.dedup();
    counts
}

/// Per-sample target ranks (1-based) for `samples` under `mode`, computed
/// with `threads` workers. Frozen and PTTA score samples independently and
/// fan out; T3A is stateful across the stream and always runs sequentially
/// (matching [`evaluate_par`]'s contract).
pub fn sample_ranks(
    model: &LightMob,
    store: &ParamStore,
    samples: &[Sample],
    mode: &InferenceMode,
    threads: usize,
) -> Vec<usize> {
    match mode {
        InferenceMode::Frozen => par_map(samples, threads, |s| {
            rank_of(
                &model.predict_scores(store, &s.recent, s.user),
                s.target.index(),
            )
        }),
        InferenceMode::Ptta(cfg) => {
            let ptta = Ptta::new(cfg.clone());
            par_map(samples, threads, |s| {
                rank_of(&ptta.predict_scores(model, store, s), s.target.index())
            })
        }
        InferenceMode::T3a(cfg) => {
            let mut t3a = T3a::new(model, store, cfg.clone());
            samples
                .iter()
                .map(|s| rank_of(&t3a.adapt_and_predict(model, store, s), s.target.index()))
                .collect()
        }
    }
}

/// Differential oracle: [`evaluate_par`] at `threads` workers must
/// reproduce [`evaluate`] exactly — aggregate metrics bit-for-bit *and*
/// every per-sample rank (aggregates can mask compensating errors; ranks
/// cannot). `Err` carries the first divergence found.
///
/// `evaluate` delegates to `evaluate_par(.., 1)`, so a bug on the shared
/// path would cancel out of a pure two-sided comparison; the coverage
/// check against `samples.len()` closes that blind spot for the most
/// likely shared failure (dropped samples).
pub fn check_parallel_equivalence(
    model: &LightMob,
    store: &ParamStore,
    samples: &[Sample],
    mode: &InferenceMode,
    threads: usize,
) -> Result<(), String> {
    let seq = evaluate(model, store, samples, mode);
    let par = evaluate_par(model, store, samples, mode, threads);
    if seq.metrics.count != samples.len() {
        return Err(format!(
            "sequential evaluation covered {} of {} samples — a shared-path coverage bug the \
             two-sided comparison below cannot see",
            seq.metrics.count,
            samples.len()
        ));
    }
    if par.metrics != seq.metrics {
        return Err(format!(
            "metrics diverge at {threads} threads: sequential {} vs parallel {}",
            seq.metrics.row(),
            par.metrics.row()
        ));
    }
    let seq_ranks = sample_ranks(model, store, samples, mode, 1);
    let par_ranks = sample_ranks(model, store, samples, mode, threads);
    if let Some(i) = (0..samples.len()).find(|&i| seq_ranks[i] != par_ranks[i]) {
        return Err(format!(
            "rank diverges at {threads} threads: sample {i} (user {}) sequential rank {} vs \
             parallel rank {}",
            samples[i].user.0, seq_ranks[i], par_ranks[i]
        ));
    }
    Ok(())
}

/// Batch sizes the batched-equivalence oracle sweeps for a workload of
/// `n` samples: the degenerate batch of one (the per-sample fallback), a
/// small odd size that never divides the workload evenly, a large
/// power of two, and the whole workload in one forward pass.
pub fn oracle_batch_sizes(n: usize) -> Vec<usize> {
    let mut sizes = vec![1, 7, 64, n.max(1)];
    sizes.sort_unstable();
    sizes.dedup();
    sizes
}

/// Per-sample target ranks (1-based) computed through the *batched*
/// scoring entry points, `batch` samples per forward pass. T3A has no
/// batched path and falls back to the sequential ranks.
pub fn batched_sample_ranks(
    model: &LightMob,
    store: &ParamStore,
    samples: &[Sample],
    mode: &InferenceMode,
    batch: usize,
) -> Vec<usize> {
    let batch = batch.max(1);
    match mode {
        InferenceMode::Frozen => {
            // The frozen batched entry point wants one shared sequence
            // length per call: bucket, score, scatter back.
            let mut buckets: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
            for (i, s) in samples.iter().enumerate() {
                buckets.entry(s.recent.len()).or_default().push(i);
            }
            let mut ranks = vec![0usize; samples.len()];
            for idxs in buckets.values() {
                for sub in idxs.chunks(batch) {
                    let items: Vec<(&[Point], UserId)> = sub
                        .iter()
                        .map(|&i| (samples[i].recent.as_slice(), samples[i].user))
                        .collect();
                    let scores = model.predict_scores_batch(store, &items);
                    for (&i, sc) in sub.iter().zip(scores) {
                        ranks[i] = rank_of(&sc, samples[i].target.index());
                    }
                }
            }
            ranks
        }
        InferenceMode::Ptta(cfg) => {
            let ptta = Ptta::new(cfg.clone());
            let mut ranks = Vec::with_capacity(samples.len());
            for chunk in samples.chunks(batch) {
                let refs: Vec<&Sample> = chunk.iter().collect();
                let scores = ptta.predict_scores_batch(model, store, &refs);
                for (s, sc) in chunk.iter().zip(scores) {
                    ranks.push(rank_of(&sc, s.target.index()));
                }
            }
            ranks
        }
        InferenceMode::T3a(_) => sample_ranks(model, store, samples, mode, 1),
    }
}

/// Differential oracle: [`evaluate_batched`] must reproduce [`evaluate`]
/// exactly — aggregate metrics bit-for-bit *and* every per-sample rank —
/// at the given `(threads, batch)` point. The batched kernels reassociate
/// nothing per sample (see `adamove_tensor::device`), so this holds with
/// strict equality, not tolerances. `Err` carries the first divergence.
pub fn check_batched_equivalence(
    model: &LightMob,
    store: &ParamStore,
    samples: &[Sample],
    mode: &InferenceMode,
    threads: usize,
    batch: usize,
) -> Result<(), String> {
    let seq = evaluate(model, store, samples, mode);
    if seq.metrics.count != samples.len() {
        return Err(format!(
            "sequential evaluation covered {} of {} samples — a shared-path coverage bug the \
             two-sided comparison below cannot see",
            seq.metrics.count,
            samples.len()
        ));
    }
    let batched = evaluate_batched(model, store, samples, mode, threads, batch);
    if batched.metrics != seq.metrics {
        return Err(format!(
            "metrics diverge at {threads} threads, batch {batch}: sequential {} vs batched {}",
            seq.metrics.row(),
            batched.metrics.row()
        ));
    }
    let seq_ranks = sample_ranks(model, store, samples, mode, 1);
    let batched_ranks = batched_sample_ranks(model, store, samples, mode, batch);
    if let Some(i) = (0..samples.len()).find(|&i| seq_ranks[i] != batched_ranks[i]) {
        return Err(format!(
            "rank diverges at batch {batch}: sample {i} (user {}, {} points) sequential rank {} \
             vs batched rank {}",
            samples[i].user.0,
            samples[i].recent.len(),
            seq_ranks[i],
            batched_ranks[i]
        ));
    }
    Ok(())
}

/// Fraction of samples where two inference modes pick the same top-1
/// location. The PTTA-vs-frozen agreement oracle runs this on stable
/// (non-shifted) streams, where adaptation should mostly confirm the
/// trained model rather than overrule it. Supports the stateless modes
/// (Frozen, PTTA); returns an error for T3A, whose per-sample scores
/// depend on stream position.
pub fn top1_agreement(
    model: &LightMob,
    store: &ParamStore,
    samples: &[Sample],
    a: &InferenceMode,
    b: &InferenceMode,
) -> Result<f64, String> {
    type Scorer<'m> = Box<dyn Fn(&Sample) -> Vec<f32> + 'm>;
    fn scorer<'m>(
        model: &'m LightMob,
        store: &'m ParamStore,
        mode: &InferenceMode,
    ) -> Result<Scorer<'m>, String> {
        match mode {
            InferenceMode::Frozen => Ok(Box::new(move |s: &Sample| {
                model.predict_scores(store, &s.recent, s.user)
            })),
            InferenceMode::Ptta(cfg) => {
                let ptta = Ptta::new(cfg.clone());
                Ok(Box::new(move |s: &Sample| {
                    ptta.predict_scores(model, store, s)
                }))
            }
            InferenceMode::T3a(_) => {
                Err("top1_agreement: T3A is stream-stateful, not per-sample".into())
            }
        }
    }
    if samples.is_empty() {
        return Err("top1_agreement: empty sample set".into());
    }
    let score_a = scorer(model, store, a)?;
    let score_b = scorer(model, store, b)?;
    let agree = samples
        .iter()
        .filter(|s| argmax(&score_a(s)) == argmax(&score_b(s)))
        .count();
    Ok(agree as f64 / samples.len() as f64)
}

/// One event in a per-user serving stream.
#[derive(Debug, Clone, Copy)]
pub enum StreamEvent {
    /// A check-in delivery.
    Observe(Point),
    /// A blocking prediction at the given wall-clock time.
    Predict(Timestamp),
}

/// Turn a (mini-stream) dataset into per-user serving workloads: every
/// point becomes an observe, with a prediction one hour after each
/// `predict_every`-th point. Each user contributes at most
/// `max_events_per_user` events (cost control for debug-mode tests).
pub fn workload_from_dataset(
    ds: &Dataset,
    predict_every: usize,
    max_events_per_user: usize,
) -> Vec<(UserId, Vec<StreamEvent>)> {
    assert!(predict_every > 0, "workload_from_dataset: predict_every");
    ds.trajectories
        .iter()
        .map(|tr| {
            let mut events = Vec::new();
            for (i, p) in tr.points.iter().enumerate() {
                if events.len() + 2 > max_events_per_user {
                    break;
                }
                events.push(StreamEvent::Observe(*p));
                if (i + 1) % predict_every == 0 {
                    events.push(StreamEvent::Predict(Timestamp(p.time.0 + HOUR)));
                }
            }
            (tr.user, events)
        })
        .collect()
}

/// Differential oracle: a [`ShardedEngine`] must be observationally
/// equivalent to a single sequential [`StreamingPredictor`] fed the same
/// per-user event sequences — same `Some`/`None` outcomes, bit-identical
/// scores, same top-1, same window lengths.
///
/// The engine side interleaves users round-robin (event `k` of every user
/// is submitted before event `k + 1` of any user), so cross-user
/// concurrency is exercised while each user's own order is preserved — the
/// engine's per-user FIFO guarantee is exactly what makes the comparison
/// legal. Returns the number of predictions compared (so callers can
/// assert the workload was not vacuous).
pub fn check_engine_matches_streaming(
    model: &Arc<LightMob>,
    store: &Arc<ParamStore>,
    config: EngineConfig,
    workload: &[(UserId, Vec<StreamEvent>)],
) -> Result<usize, String> {
    let context = config.context_sessions;
    let hours = config.session_hours;
    let ptta = config.ptta.clone();

    let engine = ShardedEngine::new(Arc::clone(model), Arc::clone(store), config);
    let mut engine_preds: Vec<Vec<Option<adamove::streaming::StreamPrediction>>> =
        vec![Vec::new(); workload.len()];
    let max_len = workload.iter().map(|(_, ev)| ev.len()).max().unwrap_or(0);
    for step in 0..max_len {
        for (ui, (user, events)) in workload.iter().enumerate() {
            match events.get(step) {
                Some(StreamEvent::Observe(p)) => engine
                    .try_observe(*user, *p)
                    .map_err(|e| format!("engine observe failed: {e}"))?,
                Some(StreamEvent::Predict(now)) => engine_preds[ui].push(
                    engine
                        .try_predict(*user, *now)
                        .map_err(|e| format!("engine predict failed: {e}"))?,
                ),
                None => {}
            }
        }
    }
    let report = engine.shutdown();
    if !report.healthy() {
        return Err(format!("engine unhealthy at shutdown: {}", report.row()));
    }

    let mut reference = StreamingPredictor::new(model, store, ptta, context, hours);
    let mut compared = 0usize;
    for (ui, (user, events)) in workload.iter().enumerate() {
        let mut ref_preds = Vec::new();
        for ev in events {
            match ev {
                StreamEvent::Observe(p) => {
                    reference.observe(*user, *p);
                }
                StreamEvent::Predict(now) => ref_preds.push(reference.predict(*user, *now)),
            }
        }
        if ref_preds.len() != engine_preds[ui].len() {
            return Err(format!(
                "user {}: engine answered {} predictions, reference {}",
                user.0,
                engine_preds[ui].len(),
                ref_preds.len()
            ));
        }
        for (k, (e, r)) in engine_preds[ui].iter().zip(&ref_preds).enumerate() {
            match (e, r) {
                (None, None) => {}
                (Some(e), Some(r)) => {
                    if e.scores != r.scores || e.top != r.top || e.window_len != r.window_len {
                        return Err(format!(
                            "user {} prediction {k}: engine (top {}, window {}) != reference \
                             (top {}, window {})",
                            user.0, e.top.0, e.window_len, r.top.0, r.window_len
                        ));
                    }
                }
                (e, r) => {
                    return Err(format!(
                        "user {} prediction {k}: engine answered {} but reference {}",
                        user.0,
                        if e.is_some() { "Some" } else { "None" },
                        if r.is_some() { "Some" } else { "None" }
                    ));
                }
            }
            compared += 1;
        }
    }
    Ok(compared)
}
