//! Deterministic seed-driven fault plans for the engine's
//! [`Disturbance`] seam.
//!
//! A [`FaultPlan`] is a pure function of `(shard, seq, kind)`: explicit
//! rules (panic the third request on shard 2) compose with probabilistic
//! ones (drop 20% of observes) whose coin flips come from SplitMix64 keyed
//! by the plan seed and the request coordinates — never from wall-clock
//! time or thread scheduling. Two engines running the same plan over the
//! same per-shard request sequences are disturbed identically, so fault
//! tests reproduce under `--test-threads=1` and under the default harness
//! alike.

use adamove::{Disturbance, FaultAction, RequestKind};
use adamove_tensor::det::mix64;
use std::time::Duration;

#[derive(Debug, Clone)]
struct DelayRule {
    shard: Option<usize>,
    kind: Option<RequestKind>,
    duration: Duration,
    probability: f64,
}

#[derive(Debug, Clone)]
struct DropRule {
    shard: Option<usize>,
    probability: f64,
}

/// A composable, deterministic disturbance schedule. Build with the
/// chainable constructors, wrap in an [`Arc`](std::sync::Arc), and pass to
/// [`ShardedEngine::with_disturbance`](adamove::ShardedEngine::with_disturbance).
///
/// Rule precedence per request: explicit panics, then observe drops, then
/// delays — a request disturbed by a higher-precedence rule never reaches
/// the lower ones (mirroring how a crashed worker cannot also be slow).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    panics: Vec<(usize, u64)>,
    drops: Vec<DropRule>,
    delays: Vec<DelayRule>,
}

impl FaultPlan {
    /// An empty plan (disturbs nothing) with the given coin-flip seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Panic `shard` when it receives its `seq`-th request (0-based).
    pub fn panic_at(mut self, shard: usize, seq: u64) -> Self {
        self.panics.push((shard, seq));
        self
    }

    /// Drop observes with the given probability; `shard = None` applies to
    /// every shard. Probability `1.0` drops deterministically.
    pub fn drop_observes(mut self, shard: Option<usize>, probability: f64) -> Self {
        self.drops.push(DropRule { shard, probability });
        self
    }

    /// Delay requests by `duration` with the given probability. `shard`
    /// and `kind` filter which requests are eligible (`None` = all).
    pub fn delay(
        mut self,
        shard: Option<usize>,
        kind: Option<RequestKind>,
        duration: Duration,
        probability: f64,
    ) -> Self {
        self.delays.push(DelayRule {
            shard,
            kind,
            duration,
            probability,
        });
        self
    }

    /// Deterministic coin flip in `[0, 1)` for one (rule, request) pair.
    /// Keyed by the plan seed, the request coordinates and a per-rule salt
    /// so stacked rules flip independent coins.
    fn coin(&self, shard: usize, seq: u64, salt: u64) -> f64 {
        let h = mix64(self.seed ^ mix64(shard as u64 ^ (salt << 32)) ^ mix64(seq));
        (h >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Disturbance for FaultPlan {
    fn action(&self, shard: usize, seq: u64, kind: RequestKind) -> FaultAction {
        if self.panics.iter().any(|&(s, q)| s == shard && q == seq) {
            return FaultAction::PanicShard;
        }
        if kind == RequestKind::Observe {
            for (i, rule) in self.drops.iter().enumerate() {
                if rule.shard.is_none_or(|s| s == shard)
                    && self.coin(shard, seq, 0x0D0D + i as u64) < rule.probability
                {
                    return FaultAction::DropObserve;
                }
            }
        }
        for (i, rule) in self.delays.iter().enumerate() {
            if rule.shard.is_none_or(|s| s == shard)
                && rule.kind.is_none_or(|k| k == kind)
                && self.coin(shard, seq, 0xDE1A + i as u64) < rule.probability
            {
                return FaultAction::Delay(rule.duration);
            }
        }
        FaultAction::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(plan: &FaultPlan) -> Vec<FaultAction> {
        let kinds = [
            RequestKind::Observe,
            RequestKind::Predict,
            RequestKind::Flush,
        ];
        let mut out = Vec::new();
        for shard in 0..4 {
            for seq in 0..64 {
                for kind in kinds {
                    out.push(plan.action(shard, seq, kind));
                }
            }
        }
        out
    }

    #[test]
    fn plans_are_pure_functions_of_request_coordinates() {
        let plan = FaultPlan::new(99)
            .panic_at(2, 5)
            .drop_observes(None, 0.3)
            .delay(
                Some(1),
                Some(RequestKind::Predict),
                Duration::from_millis(1),
                0.5,
            );
        assert_eq!(grid(&plan), grid(&plan.clone()));
        // Rebuilt from the same spec: identical schedule.
        let rebuilt = FaultPlan::new(99)
            .panic_at(2, 5)
            .drop_observes(None, 0.3)
            .delay(
                Some(1),
                Some(RequestKind::Predict),
                Duration::from_millis(1),
                0.5,
            );
        assert_eq!(grid(&plan), grid(&rebuilt));
        // A different seed reshuffles the probabilistic rules.
        let reseeded = FaultPlan::new(100)
            .panic_at(2, 5)
            .drop_observes(None, 0.3)
            .delay(
                Some(1),
                Some(RequestKind::Predict),
                Duration::from_millis(1),
                0.5,
            );
        assert_ne!(grid(&plan), grid(&reseeded));
    }

    #[test]
    fn empty_plan_disturbs_nothing() {
        assert!(grid(&FaultPlan::new(7))
            .iter()
            .all(|a| *a == FaultAction::None));
    }

    #[test]
    fn explicit_panic_beats_probabilistic_rules() {
        let plan = FaultPlan::new(1)
            .panic_at(0, 3)
            .drop_observes(Some(0), 1.0)
            .delay(Some(0), None, Duration::from_millis(1), 1.0);
        assert_eq!(
            plan.action(0, 3, RequestKind::Observe),
            FaultAction::PanicShard
        );
        // Off the panic coordinate the observe drop (next precedence) wins.
        assert_eq!(
            plan.action(0, 4, RequestKind::Observe),
            FaultAction::DropObserve
        );
        // Non-observes fall through to the delay.
        assert_eq!(
            plan.action(0, 4, RequestKind::Predict),
            FaultAction::Delay(Duration::from_millis(1))
        );
        // Other shards are untouched.
        assert_eq!(plan.action(1, 3, RequestKind::Observe), FaultAction::None);
    }

    #[test]
    fn probabilities_are_respected_roughly() {
        let plan = FaultPlan::new(5).drop_observes(None, 0.25);
        let drops = (0..10_000u64)
            .filter(|&seq| plan.action(0, seq, RequestKind::Observe) == FaultAction::DropObserve)
            .count();
        assert!((2000..3000).contains(&drops), "got {drops}");
        // Predicts never match an observe-drop rule.
        assert!(
            (0..1000u64).all(|seq| plan.action(0, seq, RequestKind::Predict) == FaultAction::None)
        );
    }

    #[test]
    fn full_probability_rules_are_deterministic() {
        let plan = FaultPlan::new(0).drop_observes(Some(1), 1.0).delay(
            Some(2),
            None,
            Duration::from_millis(2),
            1.0,
        );
        for seq in 0..100 {
            assert_eq!(
                plan.action(1, seq, RequestKind::Observe),
                FaultAction::DropObserve
            );
            assert_eq!(
                plan.action(2, seq, RequestKind::Observe),
                FaultAction::Delay(Duration::from_millis(2))
            );
            assert_eq!(plan.action(0, seq, RequestKind::Flush), FaultAction::None);
        }
    }
}
