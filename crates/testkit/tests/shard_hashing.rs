//! The user→shard hash is part of the engine's observable behaviour:
//! requests for a user must land on the same shard in every process, on
//! every run, forever — a changed assignment would silently split a user's
//! window across shards after a rolling restart. This suite pins the hash
//! three ways: the SplitMix64 constants it is built from, concrete
//! assignment vectors, and distributional properties over arbitrary ids.

use adamove::shard_of;
use adamove_mobility::UserId;
use adamove_tensor::det::{mix64, DetRng, GOLDEN_GAMMA};
use proptest::prelude::*;

/// The constants behind `shard_of`, pinned bit for bit. If this test fails,
/// the hash changed — which reshards every deployed user and invalidates
/// the assignment vectors below; that must never happen by accident.
#[test]
fn splitmix64_constants_are_pinned() {
    assert_eq!(GOLDEN_GAMMA, 0x9E37_79B9_7F4A_7C15);
    // Canonical SplitMix64 finalizer outputs (reference implementation).
    assert_eq!(mix64(0), 0xe220_a839_7b1d_cdaf);
    assert_eq!(mix64(1), 0x910a_2dec_8902_5cc1);
    assert_eq!(mix64(42), 0xbdd7_3226_2feb_6e95);
    assert_eq!(mix64(0xDEAD_BEEF), 0x4adf_b90f_68c9_eb9b);
    // The streaming generator is the same finalizer over a gamma walk.
    let mut rng = DetRng::new(0);
    assert_eq!(rng.next_u64(), 0xe220_a839_7b1d_cdaf);
    assert_eq!(rng.next_u64(), 0x6e78_9e6a_a1b9_65f4);
    assert_eq!(rng.next_u64(), 0x06c4_5d18_8009_454f);
}

/// Concrete shard assignments, checked in as data. These are the values
/// production windows are partitioned by today.
#[test]
fn shard_assignment_vectors_are_pinned() {
    let at =
        |shards: usize| -> Vec<usize> { (0..12).map(|u| shard_of(UserId(u), shards)).collect() };
    assert_eq!(at(2), vec![1, 1, 0, 1, 0, 0, 0, 1, 0, 0, 0, 1]);
    assert_eq!(at(7), vec![2, 2, 4, 2, 6, 3, 3, 2, 4, 2, 1, 1]);
    // One shard is the degenerate total function.
    assert!(at(1).iter().all(|&s| s == 0));
}

#[test]
fn ten_thousand_sequential_ids_spread_within_twice_ideal() {
    // Sequential ids are the adversarial-but-realistic workload (compact
    // remapped user ids count up from zero). For every shard width the
    // paper's deployments would use, no shard may exceed 2x its ideal
    // share, and none may starve below half of it.
    const IDS: u32 = 10_000;
    for shards in [2usize, 3, 4, 7, 8, 16, 32] {
        let mut counts = vec![0usize; shards];
        for u in 0..IDS {
            counts[shard_of(UserId(u), shards)] += 1;
        }
        let ideal = IDS as f64 / shards as f64;
        for (shard, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) <= 2.0 * ideal,
                "shards={shards}: shard {shard} holds {c} of {IDS} (ideal {ideal:.0})"
            );
            assert!(
                (c as f64) >= ideal / 2.0,
                "shards={shards}: shard {shard} starves at {c} of {IDS} (ideal {ideal:.0})"
            );
        }
        assert_eq!(counts.iter().sum::<usize>(), IDS as usize);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Stability: the assignment is a pure function of (user, shards) —
    /// same value on every call, in range, and exactly the documented
    /// `mix64(user) % shards` formula.
    #[test]
    fn assignment_is_stable_and_matches_the_documented_formula(
        user in 0u32..u32::MAX,
        shards in 1usize..64,
    ) {
        let s = shard_of(UserId(user), shards);
        prop_assert!(s < shards);
        prop_assert_eq!(s, shard_of(UserId(user), shards));
        prop_assert_eq!(s, (mix64(user as u64) % shards as u64) as usize);
    }

    /// Zero shards is rounded up rather than dividing by zero (mirrors the
    /// engine's `config.shards.max(1)`).
    #[test]
    fn zero_shards_degrades_to_one(user in 0u32..u32::MAX) {
        prop_assert_eq!(shard_of(UserId(user), 0), 0);
    }

    /// Arbitrary (not just sequential) id windows also spread: over any
    /// 4096-id contiguous window, no shard of 8 exceeds twice its share.
    #[test]
    fn arbitrary_id_windows_balance_across_eight_shards(start in 0u32..u32::MAX - 4096) {
        const SHARDS: usize = 8;
        let mut counts = [0usize; SHARDS];
        for u in start..start + 4096 {
            counts[shard_of(UserId(u), SHARDS)] += 1;
        }
        let ideal = 4096.0 / SHARDS as f64;
        for &c in &counts {
            prop_assert!((c as f64) <= 2.0 * ideal, "counts {:?}", counts);
        }
    }
}
