//! Golden-trace snapshots: each seeded mini-city runs the full pipeline
//! (generate → preprocess → train → evaluate frozen + PTTA) and the
//! resulting metrics are compared against checked-in JSON baselines with
//! explicit tolerances. A drift here means the numerical behaviour of the
//! pipeline changed — either fix the regression or, for an intentional
//! change, regenerate with:
//!
//! ```text
//! cargo test -p adamove-testkit -- --ignored regen
//! ```

use adamove_testkit::{
    compare_against_golden, golden_path, run_golden_pipeline, GoldenRecord, GOLDEN_CITIES,
};

#[test]
fn golden_baselines_exist_for_every_city() {
    for (name, _) in GOLDEN_CITIES {
        let path = golden_path(name);
        assert!(
            path.exists(),
            "missing golden baseline {} — run `cargo test -p adamove-testkit -- --ignored regen`",
            path.display()
        );
    }
}

fn check_city(name: &str) {
    let (_, city) = GOLDEN_CITIES
        .iter()
        .find(|(n, _)| *n == name)
        .expect("city is registered");
    let got = run_golden_pipeline(&city());
    let path = golden_path(name);
    let raw = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden baseline {}: {e} — run `cargo test -p adamove-testkit -- --ignored regen`",
            path.display()
        )
    });
    let baseline = GoldenRecord::from_json(&raw)
        .unwrap_or_else(|e| panic!("corrupt golden baseline {}: {e}", path.display()));
    compare_against_golden(&got, &baseline).unwrap_or_else(|e| panic!("{e}"));
}

#[test]
fn nyc_mini_trace_matches_golden() {
    check_city("nyc");
}

#[test]
fn tky_mini_trace_matches_golden() {
    check_city("tky");
}

#[test]
fn lymob_mini_trace_matches_golden() {
    check_city("lymob");
}

/// Regenerates every golden baseline in place. Ignored by default; run
/// explicitly after an *intentional* numerical change and commit the diff:
///
/// ```text
/// cargo test -p adamove-testkit -- --ignored regen
/// ```
#[test]
#[ignore = "writes tests/golden/*.json; run explicitly to regenerate baselines"]
fn regen_golden_baselines() {
    for (name, city) in GOLDEN_CITIES {
        let record = run_golden_pipeline(&city());
        let path = golden_path(name);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, record.to_json()).unwrap();
        // Round-trip through the parser so a regen can never check in a
        // baseline the comparing tests cannot read.
        let back = GoldenRecord::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        compare_against_golden(&record, &back).unwrap();
        println!("wrote {}", path.display());
    }
}
