//! Fault-injected engine tests: panics, losses and delays are contained,
//! surfaced as typed errors or report fields, and never hang. Every wait
//! in this suite is bounded (`predict_timeout` / `shutdown_timeout`), so a
//! regression shows up as a test failure, not a stuck harness; outcomes are
//! deterministic under `--test-threads=1` and the default harness alike
//! because every [`FaultPlan`] is a pure function of per-shard sequence
//! numbers, and each asserted request's position in its shard's queue is
//! fixed by the submission order.

use adamove::{
    AdaMoveConfig, EngineConfig, EngineError, LightMob, PttaConfig, RequestKind, ShardedEngine,
};
use adamove_autograd::ParamStore;
use adamove_mobility::{Point, Timestamp, UserId};
use adamove_testkit::FaultPlan;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

const LOCATIONS: u32 = 8;
const USERS: u32 = 64;

fn model() -> (Arc<ParamStore>, Arc<LightMob>) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut store = ParamStore::new();
    let model = LightMob::new(
        &mut store,
        AdaMoveConfig::tiny(),
        LOCATIONS,
        USERS,
        &mut rng,
    );
    (Arc::new(store), Arc::new(model))
}

fn engine_with(shards: usize, plan: FaultPlan) -> ShardedEngine {
    let (store, model) = model();
    ShardedEngine::with_disturbance(
        model,
        store,
        EngineConfig {
            shards,
            context_sessions: 2,
            session_hours: 24,
            ptta: PttaConfig::default(),
            ..EngineConfig::default()
        },
        Some(Arc::new(plan)),
    )
}

/// One user per shard, chosen deterministically via the pinned hash.
fn user_on_shard(engine: &ShardedEngine, shard: usize) -> UserId {
    (0..USERS)
        .map(UserId)
        .find(|u| engine.shard_of(*u) == shard)
        .expect("64 users cover every shard")
}

fn pt(loc: u32, hour: i64) -> Point {
    Point::new(loc, Timestamp::from_hours(hour))
}

#[test]
fn panicked_shard_is_contained_and_reported() {
    const DEAD: usize = 1;
    let engine = engine_with(4, FaultPlan::new(0).panic_at(DEAD, 0));
    let victim = user_on_shard(&engine, DEAD);

    // The victim's first request trips the panic; the queued predict's
    // reply channel is dropped with the worker, so the caller gets a typed
    // error instead of a hang.
    let _ = engine.try_observe(victim, pt(1, 0));
    assert_eq!(
        engine
            .try_predict(victim, Timestamp::from_hours(1))
            .unwrap_err(),
        EngineError::ShardDown { shard: DEAD }
    );
    // Once the worker is gone even enqueueing fails.
    assert_eq!(
        engine.try_observe(victim, pt(2, 1)),
        Err(EngineError::ShardDown { shard: DEAD })
    );

    // Every other shard keeps serving normally.
    for shard in [0, 2, 3] {
        let user = user_on_shard(&engine, shard);
        engine.observe(user, pt(3, 0));
        engine.observe(user, pt(4, 2));
        let pred = engine
            .predict_timeout(user, Timestamp::from_hours(3), Duration::from_secs(30))
            .unwrap()
            .expect("live shard with a fresh window must predict");
        assert_eq!(pred.window_len, 2);
    }

    let report = engine
        .shutdown_timeout(Duration::from_secs(30))
        .expect("healthy shards drain promptly");
    assert_eq!(report.failed_shards, vec![DEAD]);
    assert!(!report.healthy());
    assert!(report.row().contains("FAILED"));
    assert_eq!(report.observed, 6);
    assert_eq!(report.predictions, 3);
    assert_eq!(report.per_shard_users[DEAD], 0);
}

#[test]
fn dropped_observes_degrade_predictions_not_the_engine() {
    // Shard-wide delivery loss: every observe vanishes, predicts still work.
    let engine = engine_with(2, FaultPlan::new(7).drop_observes(None, 1.0));
    let (a, b) = (user_on_shard(&engine, 0), user_on_shard(&engine, 1));
    for user in [a, b] {
        engine.observe(user, pt(1, 0));
        engine.observe(user, pt(2, 1));
        // All observes were dropped: no window, so a graceful None.
        let pred = engine
            .predict_timeout(user, Timestamp::from_hours(2), Duration::from_secs(30))
            .unwrap();
        assert!(pred.is_none(), "prediction from dropped observes");
    }
    let report = engine
        .shutdown_timeout(Duration::from_secs(30))
        .expect("drops must not wedge shutdown");
    assert!(report.healthy());
    assert_eq!(report.observed, 0);
    assert_eq!(report.dropped_observes, 4);
    assert_eq!(report.predictions, 2);
    assert_eq!(report.users(), 0);
}

#[test]
fn partial_observe_loss_only_affects_the_lossy_shard() {
    const LOSSY: usize = 0;
    let engine = engine_with(2, FaultPlan::new(3).drop_observes(Some(LOSSY), 1.0));
    let lossy_user = user_on_shard(&engine, LOSSY);
    let clean_user = user_on_shard(&engine, 1);
    for user in [lossy_user, clean_user] {
        engine.observe(user, pt(1, 0));
    }
    assert!(engine
        .predict_timeout(
            lossy_user,
            Timestamp::from_hours(1),
            Duration::from_secs(30)
        )
        .unwrap()
        .is_none());
    assert!(engine
        .predict_timeout(
            clean_user,
            Timestamp::from_hours(1),
            Duration::from_secs(30)
        )
        .unwrap()
        .is_some());
    let report = engine.shutdown_timeout(Duration::from_secs(30)).unwrap();
    assert!(report.healthy());
    assert_eq!((report.observed, report.dropped_observes), (1, 1));
}

#[test]
fn delayed_reply_surfaces_a_typed_timeout() {
    const SLOW: usize = 0;
    // Delay only predicts, only on the slow shard, by more than the
    // caller's patience but far less than the test's own bounds.
    let engine = engine_with(
        2,
        FaultPlan::new(5).delay(
            Some(SLOW),
            Some(RequestKind::Predict),
            Duration::from_millis(400),
            1.0,
        ),
    );
    let slow_user = user_on_shard(&engine, SLOW);
    let fast_user = user_on_shard(&engine, 1);
    engine.observe(slow_user, pt(1, 0));
    engine.observe(fast_user, pt(1, 0));

    let err = engine
        .predict_timeout(
            slow_user,
            Timestamp::from_hours(1),
            Duration::from_millis(40),
        )
        .unwrap_err();
    assert_eq!(
        err,
        EngineError::Timeout {
            shard: SLOW,
            waited: Duration::from_millis(40)
        }
    );
    assert!(err.to_string().contains("did not reply"));

    // The un-delayed shard answers within the same patience.
    assert!(engine
        .predict_timeout(fast_user, Timestamp::from_hours(1), Duration::from_secs(30))
        .unwrap()
        .is_some());

    // A patient caller still gets the slow shard's (correct) answer.
    let pred = engine
        .predict_timeout(slow_user, Timestamp::from_hours(1), Duration::from_secs(30))
        .unwrap();
    assert!(pred.is_some());

    let report = engine.shutdown_timeout(Duration::from_secs(30)).unwrap();
    assert!(report.healthy());
    // The abandoned first predict was still processed by the shard.
    assert_eq!(report.predictions, 3);
}

#[test]
fn stuck_shard_yields_shutdown_error_not_a_hang() {
    const STUCK: usize = 1;
    // Every request on the stuck shard sleeps 250ms; queue up ~2s of work
    // so the drain cannot finish within the shutdown deadline.
    let engine = engine_with(
        3,
        FaultPlan::new(2).delay(Some(STUCK), None, Duration::from_millis(250), 1.0),
    );
    let stuck_user = user_on_shard(&engine, STUCK);
    for i in 0..8 {
        engine.observe(stuck_user, pt(1 + (i % 3), i as i64));
    }
    let err = engine
        .shutdown_timeout(Duration::from_millis(100))
        .expect_err("a draining backlog cannot finish in 100ms");
    assert_eq!(err.stuck_shards, vec![STUCK]);
    assert_eq!(err.timeout, Duration::from_millis(100));
    assert!(err.to_string().contains("still draining"));
    // The detached worker finishes its ~2s backlog on its own; nothing to
    // join here — the error already proved shutdown cannot hang.
}

#[test]
fn fault_free_plan_changes_nothing() {
    // An engine wired with an all-None plan must behave like a plain one:
    // same predictions, clean report.
    let (store, model) = model();
    let config = EngineConfig {
        shards: 2,
        context_sessions: 2,
        session_hours: 24,
        ptta: PttaConfig::default(),
        ..EngineConfig::default()
    };
    let disturbed = ShardedEngine::with_disturbance(
        Arc::clone(&model),
        Arc::clone(&store),
        config.clone(),
        Some(Arc::new(FaultPlan::new(0))),
    );
    let plain = ShardedEngine::new(model, store, config);
    let user = UserId(4);
    for engine in [&disturbed, &plain] {
        engine.observe(user, pt(1, 0));
        engine.observe(user, pt(2, 2));
    }
    let now = Timestamp::from_hours(3);
    let a = disturbed.predict(user, now).unwrap();
    let b = plain.predict(user, now).unwrap();
    assert_eq!(a.scores, b.scores);
    assert_eq!(a.top, b.top);
    let ra = disturbed.shutdown_timeout(Duration::from_secs(30)).unwrap();
    let rb = plain.shutdown_timeout(Duration::from_secs(30)).unwrap();
    assert!(ra.healthy() && rb.healthy());
    assert_eq!(ra.dropped_observes, 0);
    assert_eq!((ra.observed, ra.predictions), (rb.observed, rb.predictions));
}
