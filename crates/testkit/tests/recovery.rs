//! Self-healing acceptance tests: a [`FaultPlan`] kills shards mid-stream
//! and the engine must come back with nothing to show for it — journal
//! replay makes post-recovery predictions bit-identical to a run that
//! never crashed, checkpoint-less recovery degrades to population-prior
//! serving (typed, counted, never an unhandled error), and the PTTA
//! circuit breaker rolls adaptation back to frozen Θ on entropy spikes
//! and resumes once the signal settles. Every assertion is pinned to the
//! engine's own registry counters so the observability layer is tested
//! against provable ground truth, not against itself.

use adamove::ptta::score_entropy_millinats;
use adamove::{
    shard_of, AdaMoveConfig, BreakerConfig, EngineConfig, LightMob, PredictionQuality, PttaConfig,
    RecoveryConfig, RetryPolicy, ShardedEngine, StreamingPredictor,
};
use adamove_autograd::ParamStore;
use adamove_mobility::{LocationId, Point, Timestamp, UserId};
use adamove_testkit::FaultPlan;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const LOCATIONS: u32 = 8;
const USERS: u32 = 12;

fn model() -> (Arc<ParamStore>, Arc<LightMob>) {
    let mut rng = StdRng::seed_from_u64(11);
    let mut store = ParamStore::new();
    let model = LightMob::new(
        &mut store,
        AdaMoveConfig::tiny(),
        LOCATIONS,
        USERS,
        &mut rng,
    );
    (Arc::new(store), Arc::new(model))
}

fn pt(loc: u32, hour: i64) -> Point {
    Point::new(loc, Timestamp::from_hours(hour))
}

fn config(shards: usize, recovery: RecoveryConfig) -> EngineConfig {
    EngineConfig {
        shards,
        context_sessions: 2,
        session_hours: 24,
        ptta: PttaConfig::default(),
        recovery: Some(recovery),
        ..EngineConfig::default()
    }
}

fn counter(engine: &ShardedEngine, name: &str) -> u64 {
    engine
        .registry()
        .snapshot()
        .counters
        .get(name)
        .copied()
        .unwrap_or(0)
}

/// A shard killed mid-stream respawns and replays its journal; every
/// prediction afterwards is bit-identical to a run that never crashed.
#[test]
fn journal_replay_is_bit_identical_to_the_no_fault_run() {
    let (store, m) = model();
    let recovery = RecoveryConfig {
        checkpoint_interval: 6,
        journal_capacity: 4096,
        retry: RetryPolicy::default(),
        breaker: None,
        supervise_interval: None,
        durability: None,
    };
    const SHARDS: usize = 3;
    let victim = shard_of(UserId(0), SHARDS);

    let golden = ShardedEngine::new(
        Arc::clone(&m),
        Arc::clone(&store),
        config(SHARDS, recovery.clone()),
    );
    // The victim shard dies processing its 11th request — mid-stream,
    // well past the first checkpoint and with journalled observes beyond
    // it. The FaultPlan is a pure function of (shard, seq) and the seq
    // counter survives respawns, so the kill fires exactly once.
    let engine = ShardedEngine::with_disturbance(
        Arc::clone(&m),
        Arc::clone(&store),
        config(SHARDS, recovery),
        Some(Arc::new(FaultPlan::new(17).panic_at(victim, 10))),
    );
    for step in 0..16i64 {
        for u in 0..USERS {
            let p = pt((u + step as u32) % LOCATIONS, step);
            golden.observe(UserId(u), p);
            engine.observe(UserId(u), p);
        }
    }
    let now = Timestamp::from_hours(17);
    for u in 0..USERS {
        let reference = golden.predict(UserId(u), now).expect("golden window");
        let healed = engine.predict(UserId(u), now).expect("healed window");
        assert_eq!(healed.scores, reference.scores, "user {u}");
        assert_eq!(healed.top, reference.top, "user {u}");
        assert_eq!(healed.window_len, reference.window_len, "user {u}");
        assert_eq!(healed.quality, PredictionQuality::Adapted, "user {u}");
    }
    // Registry ground truth: exactly one respawn, some replay, zero
    // degradation, and checkpoints were actually being taken.
    assert_eq!(counter(&engine, "engine_respawns_total"), 1);
    assert!(counter(&engine, "engine_replayed_observes_total") > 0);
    assert_eq!(counter(&engine, "engine_degraded_predictions_total"), 0);
    assert!(counter(&engine, "engine_checkpoints_total") > 0);
    assert_eq!(counter(&engine, "engine_journal_overflows_total"), 0);
    let snap = engine.snapshot();
    assert!(snap.shards.iter().all(|s| s.alive && !s.degraded));
    golden.shutdown();
    let report = engine.shutdown();
    assert!(report.healthy(), "healed shard is not a casualty");
    assert_eq!(report.respawns, 1);
    assert_eq!(report.degraded_predictions, 0);
}

/// The same kill schedule run twice: with checkpointing the engine heals
/// to bit-identical predictions; with checkpointing disabled it serves
/// population-prior predictions tagged `Degraded` — never an unhandled
/// error — and the degraded-prediction counter matches ground truth.
#[test]
fn same_fault_heals_with_checkpoints_and_degrades_without() {
    let (store, m) = model();
    const SHARDS: usize = 2;
    let victim = shard_of(UserId(0), SHARDS);
    // Kill the victim while it processes its *last* observe so no later
    // observe rebuilds a window before the predicts arrive — the only
    // schedule under which degraded serving is actually observable.
    let victim_users: Vec<u32> = (0..USERS)
        .filter(|&u| shard_of(UserId(u), SHARDS) == victim)
        .collect();
    let kill_seq = victim_users.len() as u64 * 10 - 1;
    let plan = FaultPlan::new(3).panic_at(victim, kill_seq);
    // Skewed traffic gives the population prior a clear winner: location
    // 7 appears every other step for every user.
    let drive = |engine: &ShardedEngine| {
        for step in 0..10i64 {
            for u in 0..USERS {
                let loc = if step % 2 == 0 { 7 } else { u % 4 };
                engine.observe(UserId(u), pt(loc, step));
            }
        }
    };
    let now = Timestamp::from_hours(11);

    // Run A: checkpointing on. The kill is invisible in the output.
    let with_checkpoints = RecoveryConfig {
        checkpoint_interval: 5,
        journal_capacity: 4096,
        ..RecoveryConfig::default()
    };
    let golden = ShardedEngine::new(
        Arc::clone(&m),
        Arc::clone(&store),
        config(SHARDS, with_checkpoints.clone()),
    );
    let healed = ShardedEngine::with_disturbance(
        Arc::clone(&m),
        Arc::clone(&store),
        config(SHARDS, with_checkpoints),
        Some(Arc::new(plan.clone())),
    );
    drive(&golden);
    drive(&healed);
    for u in 0..USERS {
        let reference = golden.predict(UserId(u), now).expect("golden window");
        let recovered = healed.predict(UserId(u), now).expect("healed window");
        assert_eq!(recovered.scores, reference.scores, "user {u}");
        assert_eq!(recovered.quality, PredictionQuality::Adapted, "user {u}");
    }
    assert_eq!(counter(&healed, "engine_degraded_predictions_total"), 0);
    assert_eq!(counter(&healed, "engine_respawns_total"), 1);
    golden.shutdown();
    assert!(healed.shutdown().healthy());

    // Run B: same plan, same traffic, checkpointing disabled. The victim
    // shard's users degrade to the population prior instead of erroring.
    let degraded_engine = ShardedEngine::with_disturbance(
        Arc::clone(&m),
        Arc::clone(&store),
        config(
            SHARDS,
            RecoveryConfig {
                checkpoint_interval: 0,
                journal_capacity: 64,
                ..RecoveryConfig::default()
            },
        ),
        Some(Arc::new(plan)),
    );
    drive(&degraded_engine);
    let mut degraded = 0usize;
    for u in 0..USERS {
        let p = degraded_engine
            .try_predict(UserId(u), now)
            .expect("degradation must never surface an error")
            .expect("degradation must never lose a user");
        if shard_of(UserId(u), SHARDS) == victim {
            assert_eq!(p.quality, PredictionQuality::Degraded, "user {u}");
            assert_eq!(p.top, LocationId(7), "population-prior winner");
            assert_eq!(p.window_len, 0, "no per-user state survives");
            degraded += 1;
        } else {
            assert_eq!(p.quality, PredictionQuality::Adapted, "user {u}");
        }
    }
    assert_eq!(degraded, victim_users.len());
    assert!(degraded_engine.is_degraded(victim));
    assert_eq!(
        counter(&degraded_engine, "engine_degraded_predictions_total"),
        degraded as u64,
        "counter must match the observed degraded predictions exactly"
    );
    // Fresh observes rebuild real windows: the shard heals naturally.
    for step in 11..14i64 {
        for u in 0..USERS {
            degraded_engine.observe(UserId(u), pt((u + step as u32) % LOCATIONS, step));
        }
    }
    for u in 0..USERS {
        let p = degraded_engine
            .predict(UserId(u), Timestamp::from_hours(15))
            .expect("rebuilt window");
        assert_eq!(p.quality, PredictionQuality::Adapted, "user {u}");
    }
    let report = degraded_engine.shutdown();
    assert_eq!(report.degraded_predictions, degraded);
    assert!(report.healthy());
}

/// An injected entropy spike trips the per-user PTTA breaker: adapted
/// columns roll back to the frozen Θ classifier (bit-equal scores, so the
/// untouched-column invariant holds by construction), and adaptation
/// resumes once the drift signal settles below the threshold.
#[test]
fn breaker_trips_rolls_back_to_frozen_theta_and_resumes() {
    let (store, m) = model();
    let user = UserId(0);
    // A scattered window (every point a different location) produces a
    // high-entropy adapted prediction; a repetitive window at later hours
    // — after the 2x24h horizon slid past the noise — produces a settled
    // one. Measure both with a breaker-less predictor so the thresholds
    // are empirical, not guessed.
    let noisy = [pt(1, 0), pt(5, 2), pt(2, 4), pt(7, 6), pt(3, 8)];
    let calm = [pt(4, 100), pt(4, 102), pt(4, 104), pt(4, 106)];
    let hot_now = Timestamp::from_hours(9);
    let calm_now = Timestamp::from_hours(107);

    let mut probe = StreamingPredictor::new(&m, &store, PttaConfig::default(), 2, 24);
    for p in noisy {
        probe.observe(user, p);
    }
    let hot = score_entropy_millinats(&probe.predict(user, hot_now).unwrap().scores);
    for p in calm {
        probe.observe(user, p);
    }
    let calm_pred = probe.predict(user, calm_now).unwrap();
    assert_eq!(
        calm_pred.window_len,
        calm.len(),
        "the noisy session must have slid out of the window"
    );
    let settled = score_entropy_millinats(&calm_pred.scores);
    assert!(
        settled < hot,
        "repetitive window must have lower entropy ({settled} vs {hot})"
    );
    let threshold = settled + (hot - settled) / 2;

    // Same traffic through the engine with the breaker armed between the
    // two empirically-measured entropy levels.
    let engine = ShardedEngine::new(
        Arc::clone(&m),
        Arc::clone(&store),
        config(
            1,
            RecoveryConfig {
                breaker: Some(BreakerConfig {
                    entropy_threshold_millinats: threshold,
                    trip_after: 2,
                    cooldown: 1,
                }),
                ..RecoveryConfig::default()
            },
        ),
    );
    for p in noisy {
        engine.observe(user, p);
    }
    // Hot streak 1 of 2: still adapted.
    let p1 = engine.predict(user, hot_now).expect("window");
    assert_eq!(p1.quality, PredictionQuality::Adapted);
    // Hot streak 2: trips, and this prediction already rolls back to the
    // frozen classifier — bit-equal to frozen Θ over the same window, so
    // every adapted column has provably been abandoned.
    let p2 = engine.predict(user, hot_now).expect("window");
    assert_eq!(p2.quality, PredictionQuality::Frozen);
    let frozen = m.predict_scores(&store, &noisy, user);
    assert_eq!(p2.scores, frozen, "rollback must serve exactly frozen Θ");
    // Cooldown serve while open: still frozen.
    let p3 = engine.predict(user, hot_now).expect("window");
    assert_eq!(p3.quality, PredictionQuality::Frozen);
    assert_eq!(p3.scores, frozen);
    assert_eq!(counter(&engine, "ptta_breaker_trips_total"), 1);
    assert_eq!(counter(&engine, "ptta_breaker_rollbacks_total"), 2);
    assert_eq!(counter(&engine, "ptta_breaker_resets_total"), 0);

    // The signal settles: the repetitive session replaces the noise, the
    // cooldown has elapsed, so the next prediction is an adapted probe
    // that finds entropy below the threshold and closes the breaker.
    for p in calm {
        engine.observe(user, p);
    }
    let p4 = engine.predict(user, calm_now).expect("window");
    assert_eq!(
        p4.quality,
        PredictionQuality::Adapted,
        "settled probe must resume adaptation"
    );
    assert_eq!(p4.scores, calm_pred.scores, "resumed == breaker-less");
    // And it stays closed on the next prediction.
    let p5 = engine.predict(user, calm_now).expect("window");
    assert_eq!(p5.quality, PredictionQuality::Adapted);
    assert_eq!(counter(&engine, "ptta_breaker_resets_total"), 1);
    assert_eq!(counter(&engine, "ptta_breaker_rollbacks_total"), 2);
    assert!(engine.shutdown().healthy());
}
