//! The durability layer's corruption contract, pinned: every way a
//! segment or checkpoint file can be damaged — truncated anywhere,
//! any single bit flipped, replaced with garbage, starved of disk —
//! yields either a clean torn-tail recovery or an exact typed
//! [`SegmentError`], and **never** a panic. Store-level recovery must
//! account for every quarantined file in
//! `recovery_quarantined_segments_total`.

use adamove::durability::{
    decode_checkpoint, encode_checkpoint, encode_record, encode_segment_header, scan_segment,
    DurabilityConfig, DurableStore, SegmentError, SyncPolicy, RECORD_LEN, SEGMENT_HEADER_LEN,
};
use adamove::obs::Registry;
use adamove::{Fs, JournalEntry, ShardCheckpoint};
use adamove_mobility::{LocationId, Point, Timestamp, UserId};
use adamove_testkit::{DiskFault, FaultFs};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

fn entry(id: u64, user: u32, loc: u32, hour: i64) -> JournalEntry {
    JournalEntry {
        id,
        user: UserId(user),
        point: Point {
            loc: LocationId(loc),
            time: Timestamp::from_hours(hour),
        },
    }
}

/// A clean segment: header at `first_seq` plus `n` contiguous records.
fn segment(first_seq: u64, n: usize) -> Vec<u8> {
    let mut bytes = encode_segment_header(first_seq).to_vec();
    for i in 0..n {
        let seq = first_seq + i as u64;
        bytes.extend_from_slice(&encode_record(&entry(seq, seq as u32, 3, seq as i64)));
    }
    bytes
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("adamove-corruption-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn counter(registry: &Registry, name: &str) -> u64 {
    registry.snapshot().counters.get(name).copied().unwrap_or(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes are a total function into `Result` for both
    /// decoders: typed error or clean scan, never a panic.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u8..255, 0..512)) {
        let _ = scan_segment(&bytes);
        let _ = decode_checkpoint(&bytes);
    }

    /// Truncation only ever eats the tail, so *every* cut point of a
    /// valid segment recovers the intact record prefix via the torn-tail
    /// rule — `Ok`, with the partial record reported as torn bytes.
    #[test]
    fn any_truncation_recovers_the_intact_prefix(
        n in 1usize..8,
        cut_frac in 0.0f64..1.0,
    ) {
        let bytes = segment(1, n);
        let cut = (bytes.len() as f64 * cut_frac) as usize;
        let scan = scan_segment(&bytes[..cut]).expect("truncation is always torn-tail");
        let whole = cut.saturating_sub(SEGMENT_HEADER_LEN) / RECORD_LEN;
        prop_assert_eq!(scan.entries.len(), whole);
        for (i, e) in scan.entries.iter().enumerate() {
            prop_assert_eq!(e.id, 1 + i as u64);
        }
        if cut >= SEGMENT_HEADER_LEN {
            prop_assert_eq!(scan.torn_bytes, cut - SEGMENT_HEADER_LEN - whole * RECORD_LEN);
        }
    }
}

/// Every single-bit flip ahead of the final record is a typed error
/// (the damage is in the trusted region), and every flip *inside* the
/// final record is a torn tail (`Ok`, final record discarded).
#[test]
fn every_bit_flip_has_a_pinned_outcome() {
    let bytes = segment(1, 3);
    let final_start = SEGMENT_HEADER_LEN + 2 * RECORD_LEN;
    for byte in 0..bytes.len() {
        for bit in 0..8 {
            let mut mutant = bytes.clone();
            mutant[byte] ^= 1 << bit;
            match scan_segment(&mutant) {
                Err(_) => assert!(
                    byte < final_start,
                    "typed error for a final-record flip at byte {byte}"
                ),
                Ok(scan) => {
                    assert!(
                        byte >= final_start,
                        "flip at byte {byte} bit {bit} silently accepted"
                    );
                    assert_eq!(scan.entries.len(), 2, "byte {byte}");
                    assert_eq!(scan.torn_bytes, RECORD_LEN, "byte {byte}");
                }
            }
        }
    }
}

/// The exact variant for each hand-built corruption, byte offsets and
/// found-values included — the errors operators will grep logs for.
#[test]
fn hand_built_corruptions_yield_exact_variants() {
    // Garbage magic.
    let mut garbage = segment(1, 2);
    garbage[0..4].copy_from_slice(b"NOPE");
    assert_eq!(
        scan_segment(&garbage),
        Err(SegmentError::BadMagic {
            found: u32::from_le_bytes(*b"NOPE")
        })
    );

    // Future format version.
    let mut vnext = segment(1, 2);
    vnext[4..8].copy_from_slice(&9u32.to_le_bytes());
    assert_eq!(
        scan_segment(&vnext),
        Err(SegmentError::UnsupportedVersion { found: 9 })
    );

    // Impossible length in a non-final record.
    let mut badlen = segment(1, 3);
    badlen[SEGMENT_HEADER_LEN..SEGMENT_HEADER_LEN + 4]
        .copy_from_slice(&0xFFFF_FFFFu32.to_le_bytes());
    assert_eq!(
        scan_segment(&badlen),
        Err(SegmentError::BadLength {
            offset: SEGMENT_HEADER_LEN,
            len: 0xFFFF_FFFF
        })
    );

    // Payload flip in a non-final record: caught by the CRC.
    let mut flipped = segment(1, 3);
    flipped[SEGMENT_HEADER_LEN + 8] ^= 0x01;
    match scan_segment(&flipped) {
        Err(SegmentError::ChecksumMismatch { offset, .. }) => {
            assert_eq!(offset, SEGMENT_HEADER_LEN)
        }
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }

    // Valid CRC but non-contiguous sequence: record 7 where 6 belongs.
    let mut gap = encode_segment_header(5).to_vec();
    gap.extend_from_slice(&encode_record(&entry(5, 5, 1, 5)));
    gap.extend_from_slice(&encode_record(&entry(7, 7, 1, 7)));
    gap.extend_from_slice(&encode_record(&entry(8, 8, 1, 8)));
    assert_eq!(
        scan_segment(&gap),
        Err(SegmentError::SequenceGap {
            offset: SEGMENT_HEADER_LEN + RECORD_LEN,
            expected: 6,
            found: 7
        })
    );

    // Checkpoints: every truncation is typed too.
    let cp = ShardCheckpoint {
        users: vec![(UserId(1), vec![Point::new(2, Timestamp::from_hours(3))])],
        last_seen: 9,
    };
    let bytes = encode_checkpoint(&cp);
    for cut in 0..bytes.len() {
        assert!(decode_checkpoint(&bytes[..cut]).is_err(), "cut={cut}");
    }
}

/// A mid-file flip on disk: recovery quarantines the segment (renamed
/// aside, counted in `recovery_quarantined_segments_total`), keeps the
/// trusted prefix from earlier segments, flags the shard incomplete,
/// and never reuses a sequence number the damaged file may hold.
#[test]
fn on_disk_corruption_quarantines_and_is_counted() {
    let dir = temp_dir("quarantine");
    let shard_dir = dir.join("shard-0");
    std::fs::create_dir_all(&shard_dir).expect("mkdir");
    // Segment 1 (seqs 1..=2) clean; segment 2 (seqs 3..=6) flipped in
    // its first record — the three records after the damage are lost.
    std::fs::write(
        shard_dir.join("seg-00000000000000000001.log"),
        segment(1, 2),
    )
    .expect("write");
    let mut bad = segment(3, 4);
    bad[SEGMENT_HEADER_LEN + 10] ^= 0x40;
    std::fs::write(shard_dir.join("seg-00000000000000000003.log"), &bad).expect("write");

    let registry = Registry::new();
    let (_store, recovered) = DurableStore::open(DurabilityConfig::new(dir.clone()), 1, &registry);
    let rec = &recovered[0];
    assert_eq!(
        rec.entries.iter().map(|e| e.id).collect::<Vec<_>>(),
        vec![1, 2]
    );
    assert!(!rec.complete, "lost records must flag incomplete");
    assert_eq!(rec.quarantined, 1);
    assert!(
        rec.next_seq >= 7,
        "seqs inside the quarantined file stay burned"
    );
    assert_eq!(counter(&registry, "recovery_quarantined_segments_total"), 1);
    let names: Vec<String> = std::fs::read_dir(&shard_dir)
        .expect("read_dir")
        .filter_map(|e| e.ok()?.file_name().into_string().ok())
        .collect();
    assert!(
        names.iter().any(|n| n.ends_with(".quarantine")),
        "damaged file renamed aside, found {names:?}"
    );
    let _ = std::fs::remove_dir_all(dir);
}

/// Injected ENOSPC mid-stream: the append reports the error, the
/// failure is counted, later appends land in a fresh segment, and
/// recovery returns the contiguous prefix with the gap flagged.
#[test]
fn enospc_is_counted_and_recovery_keeps_the_contiguous_prefix() {
    let dir = temp_dir("enospc");
    let fs = FaultFs::new();
    // Op index 0 is the segment header; records 1 and 2 are ops 1-2;
    // the third record (op 3) hits the injected ENOSPC.
    fs.fault_append(3, DiskFault::Enospc);
    let cfg = DurabilityConfig {
        sync: SyncPolicy::PerRecord,
        fs: Arc::new(fs),
        ..DurabilityConfig::new(dir.clone())
    };
    let registry = Registry::new();
    {
        let (store, _) = DurableStore::open(cfg.clone(), 1, &registry);
        for id in 1..=2u64 {
            store.append(0, &entry(id, 1, 2, 3)).expect("clean append");
        }
        assert!(
            store.append(0, &entry(3, 1, 2, 3)).is_err(),
            "ENOSPC surfaces"
        );
        for id in 4..=5u64 {
            store.append(0, &entry(id, 1, 2, 3)).expect("fresh segment");
        }
    }
    assert_eq!(counter(&registry, "recovery_persist_errors_total"), 1);

    let registry2 = Registry::new();
    let (_store, recovered) = DurableStore::open(cfg, 1, &registry2);
    let rec = &recovered[0];
    assert_eq!(
        rec.entries.iter().map(|e| e.id).collect::<Vec<_>>(),
        vec![1, 2],
        "replay stops at the gap record 3 left"
    );
    assert!(!rec.complete);
    assert!(rec.next_seq >= 6);
    let _ = std::fs::remove_dir_all(dir);
}

/// A torn write mid-record: recovery discards the torn tail (counted
/// as a corrupt record), keeps everything acknowledged before it, and
/// flags the shard incomplete because the post-tear records are cut
/// off from the contiguous run.
#[test]
fn torn_write_truncates_cleanly_on_recovery() {
    let dir = temp_dir("torn");
    let fs = FaultFs::new();
    fs.fault_append(3, DiskFault::TornWrite { keep: 11 });
    let cfg = DurabilityConfig {
        sync: SyncPolicy::PerRecord,
        fs: Arc::new(fs),
        ..DurabilityConfig::new(dir.clone())
    };
    {
        let (store, _) = DurableStore::open(cfg.clone(), 1, &Registry::new());
        for id in 1..=2u64 {
            store.append(0, &entry(id, 1, 2, 3)).expect("clean append");
        }
        assert!(
            store.append(0, &entry(3, 1, 2, 3)).is_err(),
            "tear surfaces"
        );
        store.append(0, &entry(4, 1, 2, 3)).expect("fresh segment");
    }
    let registry = Registry::new();
    let (_store, recovered) = DurableStore::open(cfg, 1, &registry);
    let rec = &recovered[0];
    assert_eq!(
        rec.entries.iter().map(|e| e.id).collect::<Vec<_>>(),
        vec![1, 2]
    );
    assert!(!rec.complete);
    assert!(counter(&registry, "recovery_corrupt_records_total") >= 1);
    let _ = std::fs::remove_dir_all(dir);
}

/// Seeded chaos sweep: under a different fault plan per seed, recovery
/// always returns an internally-consistent state — contiguous replay
/// entries, burned sequence numbers, registry agreement on quarantines
/// — and never panics.
#[test]
fn seeded_chaos_recovery_is_always_consistent() {
    for seed in 0..6u64 {
        let dir = temp_dir(&format!("chaos-{seed}"));
        let fs = FaultFs::seeded(seed, 400, 7);
        let cfg = DurabilityConfig {
            sync: SyncPolicy::Batched { records: 8 },
            segment_max_records: 16,
            fs: Arc::new(fs),
            ..DurabilityConfig::new(dir.clone())
        };
        {
            let (store, _) = DurableStore::open(cfg.clone(), 2, &Registry::new());
            for id in 1..=120u64 {
                let shard = (id % 2) as usize;
                let _ = store.append(shard, &entry(id, id as u32, 2, 3));
                if id == 60 {
                    let cp = ShardCheckpoint {
                        users: vec![(UserId(7), vec![Point::new(1, Timestamp::from_hours(1))])],
                        last_seen: id,
                    };
                    let _ = store.write_checkpoint(0, &cp);
                }
            }
            let _ = store.sync_all();
        }
        // Reopen through the same fault plan (read faults may fire now).
        let registry = Registry::new();
        let (_store, recovered) = DurableStore::open(cfg, 2, &registry);
        let mut quarantined = 0;
        for rec in &recovered {
            quarantined += rec.quarantined;
            let base = rec.checkpoint.as_ref().map_or(0, |c| c.last_seen);
            let mut expect = base;
            for e in &rec.entries {
                assert!(e.id > base, "seed {seed}: replay below checkpoint");
                if expect > base {
                    assert_eq!(e.id, expect + 1, "seed {seed}: replay not contiguous");
                }
                expect = e.id;
            }
            assert!(
                rec.next_seq > expect,
                "seed {seed}: next_seq would reuse a live sequence"
            );
        }
        let counted = counter(&registry, "recovery_quarantined_segments_total")
            + counter(&registry, "recovery_quarantined_checkpoints_total");
        assert_eq!(
            counted as usize, quarantined,
            "seed {seed}: every quarantine must be accounted for"
        );
        let _ = std::fs::remove_dir_all(dir);
    }
}

/// The chaos fixture itself is deterministic: same seed, same plan,
/// byte-identical surviving files.
#[test]
fn faultfs_is_deterministic_per_seed() {
    let run = |tag: &str| -> Vec<(String, Vec<u8>)> {
        let dir = temp_dir(tag);
        let fs = FaultFs::seeded(42, 100, 4);
        let cfg = DurabilityConfig {
            sync: SyncPolicy::PerRecord,
            segment_max_records: 8,
            fs: Arc::new(fs),
            ..DurabilityConfig::new(dir.clone())
        };
        {
            let (store, _) = DurableStore::open(cfg, 1, &Registry::new());
            for id in 1..=40u64 {
                let _ = store.append(0, &entry(id, id as u32, 1, 2));
            }
        }
        let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir.join("shard-0"))
            .expect("read_dir")
            .filter_map(|e| {
                let e = e.ok()?;
                let name = e.file_name().into_string().ok()?;
                let bytes = std::fs::read(e.path()).ok()?;
                Some((name, bytes))
            })
            .collect();
        files.sort();
        let _ = std::fs::remove_dir_all(dir);
        files
    };
    assert_eq!(run("det-a"), run("det-b"));
}

/// `Fs` stays object-safe and swappable: the fault layer round-trips
/// directory listing and rename like the real thing.
#[test]
fn faultfs_passthrough_matches_realfs_semantics() {
    let dir = temp_dir("passthrough");
    let fs = FaultFs::new();
    fs.create_dir_all(&dir).expect("mkdir");
    let path = dir.join("a.bin");
    {
        let mut f = fs.create(&path).expect("create");
        f.append(b"hello").expect("append");
        f.sync().expect("sync");
    }
    assert_eq!(fs.read(&path).expect("read"), b"hello");
    let moved = dir.join("b.bin");
    fs.rename(&path, &moved).expect("rename");
    let listed = fs.list_dir(&dir).expect("list");
    assert_eq!(listed, vec![moved.clone()]);
    fs.remove_file(&moved).expect("remove");
    assert!(fs.list_dir(&dir).expect("list").is_empty());
    let _ = std::fs::remove_dir_all(dir);
}
