//! Telemetry ground-truth tests: the obs registry wired through the
//! sharded engine must agree exactly with what the fault-injection seam
//! provably did — every typed error has a matching fault counter, every
//! dropped observe is counted, and the mid-run `snapshot()` view matches
//! the post-shutdown report. The final test is the CI smoke path: engine
//! under load → registry snapshot → flat-JSON export → parse with the
//! testkit's serde-free parser → required keys present.

use adamove::{
    AdaMoveConfig, EngineConfig, EngineError, LightMob, PttaConfig, RequestKind, ShardedEngine,
};
use adamove_autograd::ParamStore;
use adamove_mobility::{Point, Timestamp, UserId};
use adamove_obs::to_flat_json;
use adamove_testkit::json::parse_flat;
use adamove_testkit::FaultPlan;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

const LOCATIONS: u32 = 8;
const USERS: u32 = 64;

fn model() -> (Arc<ParamStore>, Arc<LightMob>) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut store = ParamStore::new();
    let model = LightMob::new(
        &mut store,
        AdaMoveConfig::tiny(),
        LOCATIONS,
        USERS,
        &mut rng,
    );
    (Arc::new(store), Arc::new(model))
}

fn engine_with(shards: usize, plan: FaultPlan) -> ShardedEngine {
    let (store, model) = model();
    ShardedEngine::with_disturbance(
        model,
        store,
        EngineConfig {
            shards,
            context_sessions: 2,
            session_hours: 24,
            ptta: PttaConfig::default(),
            ..EngineConfig::default()
        },
        Some(Arc::new(plan)),
    )
}

fn user_on_shard(engine: &ShardedEngine, shard: usize) -> UserId {
    (0..USERS)
        .map(UserId)
        .find(|u| engine.shard_of(*u) == shard)
        .expect("64 users cover every shard")
}

fn pt(loc: u32, hour: i64) -> Point {
    Point::new(loc, Timestamp::from_hours(hour))
}

#[test]
fn shard_down_counter_matches_typed_errors() {
    const DEAD: usize = 1;
    let engine = engine_with(4, FaultPlan::new(0).panic_at(DEAD, 0));
    let victim = user_on_shard(&engine, DEAD);

    // The observe that trips the injected panic enqueues cleanly (the
    // worker dies processing it), so it is not an error at the caller.
    let _ = engine.try_observe(victim, pt(1, 0));
    // Two ShardDown errors observed by the caller...
    let mut shard_down_seen = 0;
    if engine
        .try_predict(victim, Timestamp::from_hours(1))
        .is_err()
    {
        shard_down_seen += 1;
    }
    if engine.try_observe(victim, pt(2, 1)).is_err() {
        shard_down_seen += 1;
    }
    assert_eq!(shard_down_seen, 2);

    // ...must be exactly what the registry counted.
    let snap = engine.registry().snapshot();
    assert_eq!(snap.counters["engine_shard_down_total"], 2);
    assert_eq!(snap.counters["engine_timeout_total"], 0);

    // The engine-level snapshot agrees and marks the shard dead; the
    // panicked shard died before processing anything. The caller sees
    // ShardDown at channel disconnect, while the worker thread may
    // still be unwinding — retire_shard joins the corpse as an explicit
    // handshake instead of polling `alive` until it flips.
    assert_eq!(
        engine.retire_shard(DEAD),
        Some(true),
        "the injected panic must show up as a panicked join"
    );
    let view = engine.snapshot();
    assert_eq!(view.shard_down_errors, 2);
    assert!(!view.shards[DEAD].alive);
    assert_eq!(view.shards[DEAD].observed, 0);

    let report = engine.shutdown_timeout(Duration::from_secs(30)).unwrap();
    assert_eq!(report.failed_shards, vec![DEAD]);
}

#[test]
fn timeout_counter_matches_typed_errors() {
    const SLOW: usize = 0;
    let engine = engine_with(
        2,
        FaultPlan::new(5).delay(
            Some(SLOW),
            Some(RequestKind::Predict),
            Duration::from_millis(400),
            1.0,
        ),
    );
    let slow_user = user_on_shard(&engine, SLOW);
    engine.observe(slow_user, pt(1, 0));

    let err = engine
        .predict_timeout(
            slow_user,
            Timestamp::from_hours(1),
            Duration::from_millis(40),
        )
        .unwrap_err();
    assert!(matches!(err, EngineError::Timeout { .. }));

    // A patient retry succeeds and must NOT bump the timeout counter.
    assert!(engine
        .predict_timeout(slow_user, Timestamp::from_hours(1), Duration::from_secs(30))
        .unwrap()
        .is_some());

    let snap = engine.registry().snapshot();
    assert_eq!(snap.counters["engine_timeout_total"], 1);
    assert_eq!(snap.counters["engine_shard_down_total"], 0);
    assert_eq!(engine.snapshot().timeout_errors, 1);

    let report = engine.shutdown_timeout(Duration::from_secs(30)).unwrap();
    assert!(report.healthy());
}

#[test]
fn dropped_observe_counters_match_injected_losses() {
    // Shard-wide delivery loss: every observe vanishes. Ground truth from
    // the fault plan: 4 observes dropped, 2 predicts processed.
    let engine = engine_with(2, FaultPlan::new(7).drop_observes(None, 1.0));
    let (a, b) = (user_on_shard(&engine, 0), user_on_shard(&engine, 1));
    for user in [a, b] {
        engine.observe(user, pt(1, 0));
        engine.observe(user, pt(2, 1));
        assert!(engine
            .predict_timeout(user, Timestamp::from_hours(2), Duration::from_secs(30))
            .unwrap()
            .is_none());
    }
    engine.flush();

    // Mid-run: the registry has already seen every drop.
    let view = engine.snapshot();
    assert_eq!(view.dropped_observes(), 4);
    assert_eq!(view.observed(), 0);
    assert_eq!(view.predictions(), 2);
    assert_eq!(view.predict_latency().count, 2);

    // Post-shutdown report (rebuilt from the same registry) agrees.
    let report = engine.shutdown_timeout(Duration::from_secs(30)).unwrap();
    assert_eq!(report.dropped_observes, 4);
    assert_eq!(report.observed, 0);
    assert_eq!(report.predictions, 2);
}

#[test]
fn export_of_loaded_engine_parses_with_required_keys() {
    // The CI smoke path: fault-free engine under load, snapshot, JSON
    // export, parse with the testkit's serde-free parser, assert keys.
    let (store, model) = model();
    let engine = ShardedEngine::new(
        model,
        store,
        EngineConfig {
            shards: 2,
            context_sessions: 2,
            session_hours: 24,
            ptta: PttaConfig::default(),
            ..EngineConfig::default()
        },
    );
    // Four users per shard so both shards provably see load.
    let users: Vec<UserId> = (0..2)
        .flat_map(|shard| {
            (0..USERS)
                .map(UserId)
                .filter(|u| engine.shard_of(*u) == shard)
                .take(4)
                .collect::<Vec<_>>()
        })
        .collect();
    assert_eq!(users.len(), 8);
    for (i, &user) in users.iter().enumerate() {
        let u = i as u32;
        engine.observe(user, pt(1 + u % 3, 0));
        engine.observe(user, pt(2 + u % 3, 2));
        engine.predict(user, Timestamp::from_hours(3));
    }
    engine.flush();

    let json = to_flat_json(&engine.registry().snapshot());
    let fields = parse_flat(&json).expect("obs export must parse with the testkit parser");
    let num = |key: &str| -> f64 {
        fields
            .get(key)
            .unwrap_or_else(|| panic!("missing key {key:?} in export"))
            .as_num(key)
            .unwrap()
    };

    // Totals across both shards match the submitted load exactly.
    let mut observed = 0.0;
    let mut predicted = 0.0;
    let mut latency_count = 0.0;
    for shard in ["0", "1"] {
        observed += num(&format!("engine_observes_total{{shard=\"{shard}\"}}"));
        predicted += num(&format!("engine_predicts_total{{shard=\"{shard}\"}}"));
        latency_count += num(&format!(
            "engine_predict_latency_ns_count{{shard=\"{shard}\"}}"
        ));
        // Histogram percentile keys are present and positive.
        assert!(
            num(&format!(
                "engine_predict_latency_ns_p99{{shard=\"{shard}\"}}"
            )) > 0.0
        );
        assert!(num(&format!("engine_flushes_total{{shard=\"{shard}\"}}")) >= 1.0);
    }
    assert_eq!(observed, 16.0);
    assert_eq!(predicted, 8.0);
    assert_eq!(latency_count, 8.0);
    assert_eq!(num("engine_shard_down_total"), 0.0);
    assert_eq!(num("engine_timeout_total"), 0.0);

    let report = engine.shutdown_timeout(Duration::from_secs(30)).unwrap();
    assert!(report.healthy());
    assert_eq!(report.observed, 16);
    assert_eq!(report.predictions, 8);
}

/// The first lost-durability moment is a flight-recorder event, not just
/// a counter: when a shard's journal wraps past the last checkpoint, the
/// `engine_journal_overflow` gauge transitions 0→1 exactly once and the
/// tracer emits one `journal_overflow` anomaly the recorder captures —
/// repeat overflows while already lossy stay silent.
#[test]
fn journal_overflow_transition_lands_in_the_flight_recorder_once() {
    use adamove::RecoveryConfig;
    use adamove_obs::{AnomalyKind, FlightRecorder, Registry, Tracer};

    let (store, model) = model();
    let recorder = Arc::new(FlightRecorder::new(16));
    // checkpoint_interval 0: nothing ever prunes the journal, so a tiny
    // capacity provably overflows partway through the stream.
    let engine = ShardedEngine::with_observability(
        model,
        store,
        EngineConfig {
            shards: 2,
            context_sessions: 2,
            session_hours: 24,
            ptta: PttaConfig::default(),
            recovery: Some(RecoveryConfig {
                checkpoint_interval: 0,
                journal_capacity: 4,
                ..RecoveryConfig::default()
            }),
            ..EngineConfig::default()
        },
        None,
        Arc::new(Registry::new()),
        Tracer::with_sink(Arc::clone(&recorder) as _),
    );
    let user = user_on_shard(&engine, 0);
    // 12 observes on one shard against capacity 4: overflowing from the
    // 5th observe onward, i.e. many lossy appends but ONE transition.
    for step in 0..12i64 {
        engine.observe(user, pt(step as u32 % LOCATIONS, step));
    }
    engine.flush();

    let json = to_flat_json(&engine.registry().snapshot());
    let fields = parse_flat(&json).expect("export parses");
    let shard = engine.shard_of(user);
    let gauge = fields
        .get(&format!("engine_journal_overflow{{shard=\"{shard}\"}}"))
        .expect("overflow gauge registered")
        .as_num("gauge")
        .unwrap();
    assert_eq!(gauge, 1.0, "gauge latches at 1 while replay is lossy");

    let overflows: Vec<_> = recorder
        .dump()
        .into_iter()
        .filter(|r| r.kind == AnomalyKind::JournalOverflow)
        .collect();
    assert_eq!(
        overflows.len(),
        1,
        "exactly one transition event despite repeated lossy appends"
    );
    assert_eq!(overflows[0].shard, shard as u64);
    engine.shutdown();
}
