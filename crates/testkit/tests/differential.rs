//! Differential oracles: parallel evaluation vs sequential, the sharded
//! engine vs the streaming predictor, and PTTA vs the frozen model on
//! stable streams.

use adamove::{
    AdaMoveConfig, EngineConfig, InferenceMode, LightMob, Ptta, PttaConfig, Trainer, TrainingConfig,
};
use adamove_autograd::ParamStore;
use adamove_mobility::ministream::{lymob_mini, mini_preprocess_config, nyc_mini};
use adamove_mobility::{make_samples, preprocess, Sample, SampleConfig, Split};
use adamove_testkit::{
    check_engine_matches_streaming, check_parallel_equivalence, deterministic_reinit,
    oracle_thread_counts, top1_agreement, workload_from_dataset,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// A deterministically re-initialized (untrained) LightMob over the given
/// universe — equivalence oracles compare two code paths on the *same*
/// model, so training would only add cost, not coverage.
fn reinit_model(num_locations: u32, num_users: u32, seed: u64) -> (ParamStore, LightMob) {
    let mut store = ParamStore::new();
    let mut throwaway = StdRng::seed_from_u64(0);
    let model = LightMob::new(
        &mut store,
        AdaMoveConfig::tiny(),
        num_locations,
        num_users,
        &mut throwaway,
    );
    deterministic_reinit(&mut store, seed);
    (store, model)
}

fn mini_test_samples(cap: usize) -> (ParamStore, LightMob, Vec<Sample>) {
    let cfg = nyc_mini();
    let processed = preprocess(&cfg.generate(), &mini_preprocess_config());
    let mut samples = make_samples(&processed, Split::Test, &SampleConfig::eval(2));
    samples.truncate(cap);
    assert!(samples.len() >= 50, "workload too small: {}", samples.len());
    let (store, model) = reinit_model(processed.num_locations, processed.num_users() as u32, 3);
    (store, model, samples)
}

#[test]
fn evaluate_par_matches_evaluate_on_metrics_and_ranks() {
    let (store, model, samples) = mini_test_samples(120);
    for mode in [
        InferenceMode::Frozen,
        InferenceMode::Ptta(PttaConfig::default()),
    ] {
        for threads in oracle_thread_counts() {
            check_parallel_equivalence(&model, &store, &samples, &mode, threads)
                .unwrap_or_else(|e| panic!("{mode:?}: {e}"));
        }
    }
}

#[test]
fn sharded_engine_matches_streaming_predictor() {
    let cfg = lymob_mini();
    let dataset = cfg.generate();
    let (store, model) = reinit_model(cfg.locations, cfg.users as u32, 5);
    let (model, store) = (Arc::new(model), Arc::new(store));
    let workload = workload_from_dataset(&dataset, 4, 40);
    assert!(workload.len() >= 8);
    for shards in [1, 3, 7] {
        let config = EngineConfig {
            shards,
            context_sessions: 2,
            session_hours: 24,
            ptta: PttaConfig::default(),
            ..EngineConfig::default()
        };
        let compared = check_engine_matches_streaming(&model, &store, config, &workload)
            .unwrap_or_else(|e| panic!("shards={shards}: {e}"));
        assert!(
            compared >= 50,
            "shards={shards}: only {compared} predictions"
        );
    }
}

#[test]
fn ptta_agrees_with_frozen_on_stable_streams() {
    // A stable (non-shifted) mini-city: train briefly, then check that
    // test-time adaptation mostly *confirms* the trained model instead of
    // overruling it — on in-distribution streams PTTA must be close to a
    // no-op at the decision level.
    let cfg = lymob_mini().stable();
    let processed = preprocess(&cfg.generate(), &mini_preprocess_config());
    let train = make_samples(&processed, Split::Train, &SampleConfig::train());
    let mut test = make_samples(&processed, Split::Test, &SampleConfig::eval(2));
    test.truncate(120);
    assert!(test.len() >= 50);

    let (mut store, model) = {
        let mut store = ParamStore::new();
        let mut throwaway = StdRng::seed_from_u64(0);
        let model = LightMob::new(
            &mut store,
            AdaMoveConfig {
                lambda: 0.0,
                ..AdaMoveConfig::tiny()
            },
            processed.num_locations,
            processed.num_users() as u32,
            &mut throwaway,
        );
        deterministic_reinit(&mut store, 21);
        (store, model)
    };
    let trainer = Trainer::new(TrainingConfig {
        max_epochs: 2,
        batch_size: 32,
        val_subsample: Some(60),
        seed: 13,
        ..TrainingConfig::default()
    });
    trainer.fit(&model, None, &mut store, &train, &[]);

    let agreement = top1_agreement(
        &model,
        &store,
        &test,
        &InferenceMode::Frozen,
        &InferenceMode::Ptta(PttaConfig::default()),
    )
    .unwrap();
    assert!(
        agreement >= 0.7,
        "PTTA overruled the trained model on {:.0}% of stable-stream samples",
        (1.0 - agreement) * 100.0
    );

    // The exact half of the agreement contract: adaptation only moves
    // scores of locations observed in the recent window — every other
    // column must match the frozen forward pass bit for bit.
    let ptta = Ptta::new(PttaConfig::default());
    for s in test.iter().take(20) {
        let frozen = model.predict_scores(&store, &s.recent, s.user);
        let adapted = ptta.predict_scores(&model, &store, s);
        let seen: std::collections::HashSet<u32> = s.recent.iter().map(|p| p.loc.0).collect();
        for (loc, (f, a)) in frozen.iter().zip(&adapted).enumerate() {
            if !seen.contains(&(loc as u32)) {
                assert!(
                    (f - a).abs() < 1e-5,
                    "unobserved location {loc} moved: frozen {f} adapted {a}"
                );
            }
        }
    }
}
