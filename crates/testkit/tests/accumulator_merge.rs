//! Merge-correctness suite for [`MetricAccumulator`]: the exact integer
//! rank histogram is what lets sharded and parallel evaluation report
//! bit-identical metrics. Partials built from any partition of a stream,
//! merged in any order — including empty partials from idle shards — must
//! equal one sequential pass.

use adamove::{MetricAccumulator, Metrics};
use adamove_tensor::det::DetRng;
use proptest::prelude::*;

/// Deterministic observation stream: `n` score vectors over `locs`
/// locations with targets cycling through the universe.
fn observations(n: usize, locs: usize, seed: u64) -> Vec<(Vec<f32>, usize)> {
    let mut rng = DetRng::new(seed);
    (0..n)
        .map(|i| {
            let scores: Vec<f32> = (0..locs).map(|_| rng.next_f32()).collect();
            (scores, i % locs)
        })
        .collect()
}

fn accumulate(obs: &[(Vec<f32>, usize)]) -> MetricAccumulator {
    let mut acc = MetricAccumulator::new();
    for (scores, target) in obs {
        acc.observe(scores, *target);
    }
    acc
}

/// Merge the partials at `order` into one accumulator.
fn merge_in_order(partials: &[MetricAccumulator], order: &[usize]) -> Metrics {
    let mut acc = MetricAccumulator::new();
    for &i in order {
        acc.merge(&partials[i]);
    }
    acc.finish()
}

#[test]
fn any_merge_order_matches_sequential_exactly() {
    let obs = observations(240, 30, 9);
    let sequential = accumulate(&obs).finish();

    // Six uneven partials, like six shards with skewed load.
    let bounds = [0usize, 7, 60, 61, 150, 200, 240];
    let partials: Vec<MetricAccumulator> = bounds
        .windows(2)
        .map(|w| accumulate(&obs[w[0]..w[1]]))
        .collect();

    let forward: Vec<usize> = (0..partials.len()).collect();
    let reverse: Vec<usize> = forward.iter().rev().copied().collect();
    assert_eq!(merge_in_order(&partials, &forward), sequential);
    assert_eq!(merge_in_order(&partials, &reverse), sequential);
    // A few shuffled orders (deterministic seeds).
    for seed in 0..5u64 {
        let mut order = forward.clone();
        DetRng::new(seed).shuffle(&mut order);
        assert_eq!(
            merge_in_order(&partials, &order),
            sequential,
            "order {order:?}"
        );
    }
}

#[test]
fn empty_shards_are_identity_elements() {
    let obs = observations(50, 12, 4);
    let sequential = accumulate(&obs).finish();

    // Interleave empty partials (idle shards) everywhere.
    let mut acc = MetricAccumulator::new();
    acc.merge(&MetricAccumulator::new());
    acc.merge(&accumulate(&obs[..20]));
    acc.merge(&MetricAccumulator::new());
    acc.merge(&accumulate(&obs[20..]));
    acc.merge(&MetricAccumulator::new());
    assert_eq!(acc.finish(), sequential);
    assert_eq!(acc.count(), 50);

    // All shards idle: still exactly the zero metrics.
    let mut idle = MetricAccumulator::new();
    for _ in 0..8 {
        idle.merge(&MetricAccumulator::new());
    }
    assert_eq!(idle.finish(), Metrics::zero());
}

#[test]
fn merge_is_associative_across_groupings() {
    // ((a + b) + c) == (a + (b + c)) on the metric level.
    let obs = observations(90, 15, 2);
    let (a, b, c) = (
        accumulate(&obs[..30]),
        accumulate(&obs[30..55]),
        accumulate(&obs[55..]),
    );
    let left = {
        let mut ab = MetricAccumulator::new();
        ab.merge(&a);
        ab.merge(&b);
        ab.merge(&c);
        ab.finish()
    };
    let right = {
        let mut bc = MetricAccumulator::new();
        bc.merge(&b);
        bc.merge(&c);
        let mut out = MetricAccumulator::new();
        out.merge(&a);
        out.merge(&bc);
        out.finish()
    };
    assert_eq!(left, right);
    assert_eq!(left, accumulate(&obs).finish());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any partition of any stream into up to 8 partials, merged in any
    /// rotation, equals the sequential pass bit for bit.
    #[test]
    fn random_partitions_merge_exactly(
        n in 1usize..120,
        locs in 11usize..40,
        seed in 0u64..1000,
        cuts in proptest::collection::vec(0usize..120, 0..7),
        rotate in 0usize..8,
    ) {
        let obs = observations(n, locs, seed);
        let sequential = accumulate(&obs).finish();

        let mut bounds: Vec<usize> = cuts.iter().map(|c| c % (n + 1)).collect();
        bounds.push(0);
        bounds.push(n);
        bounds.sort_unstable();
        let partials: Vec<MetricAccumulator> = bounds
            .windows(2)
            .map(|w| accumulate(&obs[w[0]..w[1]])) // empty when w[0] == w[1]
            .collect();

        let mut order: Vec<usize> = (0..partials.len()).collect();
        order.rotate_left(rotate % partials.len().max(1));
        prop_assert_eq!(merge_in_order(&partials, &order), sequential);
    }
}
