//! Differential oracle: batched evaluation must equal per-sample
//! evaluation — aggregate metrics bit-for-bit and every per-sample rank —
//! for every encoder, inference mode, batch size and thread count swept.
//!
//! This is the contract that makes the cache-blocked, batched device
//! kernels (see `adamove_tensor::device`) safe to serve from: batching
//! may only change throughput, never a single score bit.

use adamove::{AdaMoveConfig, EncoderKind, InferenceMode, LightMob, PttaConfig, T3aConfig};
use adamove_autograd::ParamStore;
use adamove_mobility::ministream::{mini_preprocess_config, nyc_mini};
use adamove_mobility::{make_samples, preprocess, Sample, SampleConfig, Split};
use adamove_testkit::{
    check_batched_equivalence, deterministic_reinit, oracle_batch_sizes, oracle_thread_counts,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministically re-initialized (untrained) model over the given
/// universe — the oracle compares two code paths on the *same* weights,
/// so training would only add cost, not coverage.
fn reinit_model(
    kind: EncoderKind,
    locations: u32,
    users: u32,
    seed: u64,
) -> (ParamStore, LightMob) {
    let mut store = ParamStore::new();
    let mut throwaway = StdRng::seed_from_u64(0);
    let cfg = AdaMoveConfig {
        encoder: kind,
        ..AdaMoveConfig::tiny()
    };
    let model = LightMob::new(&mut store, cfg, locations, users, &mut throwaway);
    deterministic_reinit(&mut store, seed);
    (store, model)
}

fn mini_test_samples(cap: usize) -> (u32, u32, Vec<Sample>) {
    let cfg = nyc_mini();
    let processed = preprocess(&cfg.generate(), &mini_preprocess_config());
    let mut samples = make_samples(&processed, Split::Test, &SampleConfig::eval(2));
    samples.truncate(cap);
    assert!(samples.len() >= 50, "workload too small: {}", samples.len());
    (
        processed.num_locations,
        processed.num_users() as u32,
        samples,
    )
}

#[test]
fn evaluate_batched_matches_evaluate_on_metrics_and_ranks() {
    let (locations, users, samples) = mini_test_samples(120);
    let (store, model) = reinit_model(EncoderKind::Lstm, locations, users, 3);
    for mode in [
        InferenceMode::Frozen,
        InferenceMode::Ptta(PttaConfig::default()),
    ] {
        for threads in oracle_thread_counts() {
            for batch in oracle_batch_sizes(samples.len()) {
                check_batched_equivalence(&model, &store, &samples, &mode, threads, batch)
                    .unwrap_or_else(|e| panic!("{mode:?}: {e}"));
            }
        }
    }
}

#[test]
fn every_encoder_kind_batches_bit_identically() {
    // The full sweep above is expensive; per-encoder coverage uses one
    // representative (threads, batch) point with both ragged and whole
    // batch sizes.
    let (locations, users, mut samples) = mini_test_samples(80);
    samples.truncate(60);
    for kind in [
        EncoderKind::Rnn,
        EncoderKind::Gru,
        EncoderKind::Lstm,
        EncoderKind::Transformer,
    ] {
        let (store, model) = reinit_model(kind, locations, users, 5);
        let mode = InferenceMode::Ptta(PttaConfig::default());
        for batch in [7, samples.len()] {
            check_batched_equivalence(&model, &store, &samples, &mode, 2, batch)
                .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        }
    }
}

#[test]
fn t3a_mode_falls_back_to_sequential_evaluation() {
    let (locations, users, mut samples) = mini_test_samples(60);
    samples.truncate(50);
    let (store, model) = reinit_model(EncoderKind::Gru, locations, users, 7);
    let mode = InferenceMode::T3a(T3aConfig::default());
    check_batched_equivalence(&model, &store, &samples, &mode, 4, 16)
        .unwrap_or_else(|e| panic!("{e}"));
}
