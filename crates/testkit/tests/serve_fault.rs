//! Socket-layer fault injection: a [`FaultPlan`] kills a shard while a
//! client is streaming over loopback TCP. With checkpointing on, the
//! connected client must observe *nothing* — every reply `Ok`, healed
//! predictions bit-identical to a never-crashed run. With checkpointing
//! off, the client gets typed `Degraded`-quality replies instead of
//! errors. In both runs the connection is never dropped, and the
//! engine/serve counters are pinned to ground truth so the wire path
//! provably neither invents nor swallows failures.

use adamove::{
    shard_of, AdaMoveConfig, EngineConfig, LightMob, PttaConfig, RecoveryConfig, RetryPolicy,
    ShardedEngine,
};
use adamove_autograd::ParamStore;
use adamove_mobility::{Point, Timestamp, UserId};
use adamove_serve::{serve, Quality, ServeConfig};
use adamove_testkit::FaultPlan;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const LOCATIONS: u32 = 8;
const USERS: u32 = 12;
const SHARDS: usize = 2;

fn model() -> (Arc<ParamStore>, Arc<LightMob>) {
    let mut rng = StdRng::seed_from_u64(11);
    let mut store = ParamStore::new();
    let model = LightMob::new(
        &mut store,
        AdaMoveConfig::tiny(),
        LOCATIONS,
        USERS,
        &mut rng,
    );
    (Arc::new(store), Arc::new(model))
}

fn config(recovery: RecoveryConfig) -> EngineConfig {
    EngineConfig {
        shards: SHARDS,
        context_sessions: 2,
        session_hours: 24,
        ptta: PttaConfig::default(),
        recovery: Some(recovery),
        ..EngineConfig::default()
    }
}

fn pt(loc: u32, hour: i64) -> Point {
    Point::new(loc, Timestamp::from_hours(hour))
}

fn counter(engine: &ShardedEngine, name: &str) -> u64 {
    engine
        .registry()
        .snapshot()
        .counters
        .get(name)
        .copied()
        .unwrap_or(0)
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        workers: 1,
        // Admission is off: these tests pin exact reply sequences, and
        // nothing here should ever be shed.
        admission: None,
        ..ServeConfig::default()
    }
}

/// A shard dies mid-connection while checkpointing is on: the client
/// sees only transparent retries — every reply `Ok`, post-heal
/// predictions bit-identical to a direct engine that never crashed —
/// and the respawn is visible *only* in the counters.
#[test]
fn shard_death_mid_connection_is_invisible_to_the_client() {
    let (store, m) = model();
    let recovery = RecoveryConfig {
        checkpoint_interval: 6,
        journal_capacity: 4096,
        retry: RetryPolicy::default(),
        breaker: None,
        supervise_interval: None,
        durability: None,
    };
    let victim = shard_of(UserId(0), SHARDS);

    // Reference: same model, same traffic, no faults, no sockets.
    let golden = ShardedEngine::new(Arc::clone(&m), Arc::clone(&store), config(recovery.clone()));

    // Served engine: the victim shard panics processing its 11th request,
    // mid-stream and past the first checkpoint.
    let engine = Arc::new(ShardedEngine::with_disturbance(
        Arc::clone(&m),
        Arc::clone(&store),
        config(recovery),
        Some(Arc::new(FaultPlan::new(17).panic_at(victim, 10))),
    ));
    let handle = serve(engine, serve_config()).expect("server start");
    let mut client = adamove_serve::Client::connect(handle.addr()).expect("connect");

    let mut observes = 0u64;
    for step in 0..16i64 {
        for u in 0..USERS {
            let p = pt((u + step as u32) % LOCATIONS, step);
            golden.observe(UserId(u), p);
            client
                .observe(u, p.loc.0, p.time.0)
                .expect("observe must survive the shard kill transparently");
            observes += 1;
        }
    }
    let now = Timestamp::from_hours(17);
    for u in 0..USERS {
        let reference = golden.predict(UserId(u), now).expect("golden window");
        let healed = client
            .predict(u, now.0, true)
            .expect("predict must survive the shard kill transparently")
            .expect("healed window");
        assert_eq!(
            healed
                .scores
                .iter()
                .map(|f| f.to_bits())
                .collect::<Vec<_>>(),
            reference
                .scores
                .iter()
                .map(|f| f.to_bits())
                .collect::<Vec<_>>(),
            "user {u}: healed wire scores must be bit-identical"
        );
        assert_eq!(healed.top, reference.top.0, "user {u}");
        assert_eq!(healed.window_len, reference.window_len as u32, "user {u}");
        assert_eq!(healed.quality, Quality::Adapted, "user {u}");
    }
    golden.shutdown();

    // The connection is still alive after everything above.
    client.observe(0, 1, now.0).expect("connection still alive");
    drop(client);

    let engine = handle.stop();
    // Ground truth: exactly one respawn, zero degradation, and the wire
    // layer surfaced zero errors while carrying the full request stream.
    assert_eq!(counter(&engine, "engine_respawns_total"), 1);
    assert_eq!(counter(&engine, "engine_degraded_predictions_total"), 0);
    assert!(counter(&engine, "engine_replayed_observes_total") > 0);
    assert_eq!(counter(&engine, "serve_errors_total"), 0);
    assert_eq!(counter(&engine, "serve_malformed_total"), 0);
    assert_eq!(counter(&engine, "serve_conn_rejected_total"), 0);
    assert_eq!(counter(&engine, "serve_connections_total"), 1);
    assert_eq!(counter(&engine, "serve_observes_total"), observes + 1);
    assert_eq!(counter(&engine, "serve_predicts_total"), u64::from(USERS));

    let engine = Arc::into_inner(engine).expect("sole engine ref");
    let report = engine.shutdown();
    assert!(report.healthy(), "healed shard is not a casualty");
    assert_eq!(report.respawns, 1);
}

/// The same kill with checkpointing disabled: the respawned shard cannot
/// replay, so connected clients get `Degraded`-quality replies for the
/// victim shard's users — typed on the wire, never an error frame, never
/// a dropped connection — and the degraded counter matches exactly.
#[test]
fn checkpointless_death_degrades_on_the_wire_without_dropping_the_connection() {
    let (store, m) = model();
    let victim = shard_of(UserId(0), SHARDS);
    let victim_users: Vec<u32> = (0..USERS)
        .filter(|&u| shard_of(UserId(u), SHARDS) == victim)
        .collect();
    // Kill the victim on its *last* observe so no later observe rebuilds
    // a window before the predicts arrive (mirrors the direct-engine
    // degradation test — the only schedule where degradation is visible).
    let kill_seq = victim_users.len() as u64 * 10 - 1;

    let engine = Arc::new(ShardedEngine::with_disturbance(
        Arc::clone(&m),
        Arc::clone(&store),
        config(RecoveryConfig {
            checkpoint_interval: 0,
            journal_capacity: 64,
            ..RecoveryConfig::default()
        }),
        Some(Arc::new(FaultPlan::new(3).panic_at(victim, kill_seq))),
    ));
    let handle = serve(engine, serve_config()).expect("server start");
    let mut client = adamove_serve::Client::connect(handle.addr()).expect("connect");

    // Skewed traffic gives the population prior a clear winner (loc 7).
    for step in 0..10i64 {
        for u in 0..USERS {
            let loc = if step % 2 == 0 { 7 } else { u % 4 };
            let p = pt(loc, step);
            client
                .observe(u, p.loc.0, p.time.0)
                .expect("observe must never error");
        }
    }
    let now = Timestamp::from_hours(11);
    let mut degraded = 0u64;
    for u in 0..USERS {
        let p = client
            .predict(u, now.0, false)
            .expect("degradation must be a typed reply, not an error frame")
            .expect("degradation must never lose a user");
        if shard_of(UserId(u), SHARDS) == victim {
            assert_eq!(p.quality, Quality::Degraded, "user {u}");
            assert_eq!(p.top, 7, "population-prior winner");
            assert_eq!(p.window_len, 0, "no per-user state survives");
            degraded += 1;
        } else {
            assert_eq!(p.quality, Quality::Adapted, "user {u}");
        }
    }
    assert_eq!(degraded, victim_users.len() as u64);

    // Fresh observes over the same (never-dropped) connection rebuild
    // real windows: the shard heals naturally under live traffic.
    for step in 11..14i64 {
        for u in 0..USERS {
            client
                .observe(
                    u,
                    (u + step as u32) % LOCATIONS,
                    Timestamp::from_hours(step).0,
                )
                .expect("post-degradation observe");
        }
    }
    for u in 0..USERS {
        let p = client
            .predict(u, Timestamp::from_hours(15).0, false)
            .expect("rebuilt predict")
            .expect("rebuilt window");
        assert_eq!(p.quality, Quality::Adapted, "user {u}");
    }
    drop(client);

    let engine = handle.stop();
    assert_eq!(counter(&engine, "engine_respawns_total"), 1);
    assert_eq!(
        counter(&engine, "engine_degraded_predictions_total"),
        degraded,
        "counter must match the observed degraded wire replies exactly"
    );
    assert_eq!(counter(&engine, "serve_errors_total"), 0);
    assert_eq!(counter(&engine, "serve_connections_total"), 1);

    let engine = Arc::into_inner(engine).expect("sole engine ref");
    let report = engine.shutdown();
    assert_eq!(report.degraded_predictions, degraded as usize);
    assert!(report.healthy());
}
