//! Slow-client acceptance: a peer that stops reading (or never starts)
//! must cost the server exactly one connection slot — never a worker,
//! never the acceptor. Pins the `reject_busy` contract from
//! `crates/serve/src/server.rs`: Busy replies to over-limit peers are
//! written under a timeout, write failures are counted in
//! `serve_reject_write_errors_total` instead of silently discarded, and
//! a stalled reader cannot wedge request service for anyone else.

use adamove::{AdaMoveConfig, EngineConfig, LightMob, ShardedEngine};
use adamove_autograd::ParamStore;
use adamove_serve::{encode_to_vec, serve, Client, ErrorCode, Frame, ServeConfig, ServerHandle};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn tiny_server(max_connections: usize) -> ServerHandle {
    let mut rng = StdRng::seed_from_u64(5);
    let mut store = ParamStore::new();
    let model = LightMob::new(&mut store, AdaMoveConfig::tiny(), 8, 12, &mut rng);
    let engine = Arc::new(ShardedEngine::new(
        Arc::new(model),
        Arc::new(store),
        EngineConfig {
            shards: 1,
            context_sessions: 2,
            session_hours: 24,
            ..EngineConfig::default()
        },
    ));
    serve(
        engine,
        ServeConfig {
            max_connections,
            workers: 1,
            ..ServeConfig::default()
        },
    )
    .expect("server start")
}

fn shutdown(handle: ServerHandle) {
    let engine = handle.stop();
    if let Some(engine) = Arc::into_inner(engine) {
        drop(engine.shutdown());
    }
}

fn counter(handle: &ServerHandle, name: &str) -> u64 {
    handle
        .registry()
        .snapshot()
        .counters
        .get(name)
        .copied()
        .unwrap_or(0)
}

/// A peer that floods predict requests and never reads a byte of the
/// replies: the kernel socket buffers fill, the server's write path goes
/// `WouldBlock`, and the reply backlog parks in that connection's
/// outbuf. The single worker must keep serving a well-behaved client at
/// full roundtrip fidelity the whole time.
#[test]
fn stalled_reader_never_wedges_the_worker() {
    let handle = tiny_server(8);
    let addr = handle.addr();

    // Prime a window so predict replies are big (dense score vectors).
    let mut setup = Client::connect(addr).expect("connect setup");
    for step in 0..6i64 {
        for u in 0..4u32 {
            setup
                .observe(u, (u + step as u32) % 8, step * 3600)
                .expect("observe");
        }
    }
    drop(setup);

    // The stalled reader: write a large burst of predict requests and
    // never read. Replies cannot drain, so the server-side outbuf for
    // this connection grows while the socket stays `WouldBlock`.
    let mut stalled = TcpStream::connect(addr).expect("connect stalled");
    let request = encode_to_vec(&Frame::Predict {
        user: 0,
        now: 7 * 3600,
        want_scores: true,
    });
    let mut burst = Vec::with_capacity(request.len() * 512);
    for _ in 0..512 {
        burst.extend_from_slice(&request);
    }
    stalled.write_all(&burst).expect("flood requests");

    // Meanwhile the well-behaved client keeps getting answers from the
    // same (only) worker, bounded by a client-side timeout so a wedged
    // worker fails the test instead of hanging it.
    let mut live = Client::connect(addr).expect("connect live");
    live.set_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    for round in 0..20 {
        let p = live
            .predict(1, 7 * 3600, true)
            .unwrap_or_else(|e| panic!("round {round}: worker wedged: {e}"))
            .expect("live window");
        assert!(!p.scores.is_empty(), "round {round}: scores missing");
    }

    // The stalled peer eventually reading proves its backlog was parked,
    // not dropped: the first reply is a well-formed prediction.
    stalled
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut first = [0u8; 2];
    stalled.read_exact(&mut first).expect("backlog drains");
    drop(stalled);
    drop(live);
    shutdown(handle);
}

/// Over-limit peers get a typed Busy reply and the write is accounted:
/// the success path leaves `serve_reject_write_errors_total` at zero,
/// and rejected connections never consume a slot from the live one.
#[test]
fn rejected_peers_get_busy_and_clean_writes_are_not_miscounted() {
    let handle = tiny_server(1);
    let addr = handle.addr();

    // Occupy the only slot with an idle (never-writing) connection.
    let hog = TcpStream::connect(addr).expect("connect hog");
    // The acceptor admits asynchronously; wait until the slot is held.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while counter(&handle, "serve_connections_total") < 1 {
        assert!(std::time::Instant::now() < deadline, "hog never admitted");
        // lint:allow(sleep-in-test): bounded backoff inside a deadline poll for async admission
        std::thread::sleep(Duration::from_millis(5));
    }

    // Every further peer is rejected with a Busy frame before close.
    for attempt in 0..4 {
        let mut rejected = TcpStream::connect(addr).expect("connect rejected");
        rejected
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("read timeout");
        let mut buf = Vec::new();
        let mut chunk = [0u8; 256];
        let frame = loop {
            match adamove_serve::decode(&buf, adamove_serve::DEFAULT_MAX_PAYLOAD) {
                Ok(Some((frame, _))) => break frame,
                Ok(None) => {}
                Err(e) => panic!("attempt {attempt}: bad Busy frame: {e}"),
            }
            let n = rejected.read(&mut chunk).expect("read Busy");
            assert!(n > 0, "attempt {attempt}: closed without a Busy frame");
            buf.extend_from_slice(&chunk[..n]);
        };
        match frame {
            Frame::Error {
                code,
                retry_after_ms,
                ..
            } => {
                assert_eq!(code, ErrorCode::Busy, "attempt {attempt}");
                assert!(retry_after_ms > 0, "attempt {attempt}");
            }
            other => panic!("attempt {attempt}: expected Busy error, got {other:?}"),
        }
    }

    assert_eq!(counter(&handle, "serve_conn_rejected_total"), 4);
    assert_eq!(
        counter(&handle, "serve_reject_write_errors_total"),
        0,
        "reading peers must not be miscounted as write failures"
    );

    // Releasing the hog frees the slot for a full roundtrip.
    drop(hog);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let mut client = loop {
        let mut c = Client::connect(addr).expect("reconnect");
        c.set_timeout(Some(Duration::from_secs(2)))
            .expect("timeout");
        match c.observe(1, 2, 3) {
            Ok(()) => break c,
            Err(_) => {
                // Raced the slot release (or drew one more Busy); retry.
                assert!(
                    std::time::Instant::now() < deadline,
                    "slot never came back after the hog disconnected"
                );
                // lint:allow(sleep-in-test): bounded backoff inside a deadline poll for the slot release
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    };
    client.observe(1, 3, 4).expect("slot reusable");
    drop(client);
    shutdown(handle);
}
