//! Wire-protocol acceptance: the codec round-trips every frame type
//! under property testing, and a live server answers a malformed-frame
//! corpus with typed errors — never a panic, never a leaked connection
//! slot.
//!
//! The malformed corpus drives raw bytes (not the [`Client`]) at a
//! server with a deliberately tiny connection cap, so slot leakage shows
//! up immediately: if an abused connection's slot were not reclaimed,
//! the follow-up well-formed connection could never be admitted.

use adamove::{AdaMoveConfig, EngineConfig, LightMob, ShardedEngine};
use adamove_autograd::ParamStore;
use adamove_serve::{
    decode, encode_to_vec, serve, Client, ErrorCode, Frame, Quality, ServeConfig, ServerHandle,
    DEFAULT_MAX_PAYLOAD, HEADER_LEN,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------------
// Property: encode → decode is the identity for every frame type.
// ---------------------------------------------------------------------

/// Build one frame from a discriminant plus generic raw material — keeps
/// the strategy to plain ranges/vecs so it runs under both real proptest
/// and the offline stub.
fn build_frame(kind: usize, a: u32, b: i64, flag: bool, scores: &[u32], text: &str) -> Frame {
    match kind {
        0 => Frame::Observe {
            user: a,
            loc: a.wrapping_mul(31),
            time: b,
        },
        1 => Frame::Predict {
            user: a,
            now: b,
            want_scores: flag,
        },
        2 => Frame::Snapshot,
        3 => Frame::ObserveOk,
        4 => Frame::Prediction {
            quality: match a % 3 {
                0 => Quality::Adapted,
                1 => Quality::Frozen,
                _ => Quality::Degraded,
            },
            top: a,
            window_len: a.wrapping_add(7),
            // Raw u32 bits -> f32: covers NaNs, infinities, subnormals.
            scores: scores.iter().map(|&bits| f32::from_bits(bits)).collect(),
        },
        5 => Frame::NoWindow,
        6 => Frame::SnapshotReply {
            json: text.to_string(),
        },
        _ => Frame::Error {
            code: match a % 9 {
                0 => ErrorCode::Malformed,
                1 => ErrorCode::BadVersion,
                2 => ErrorCode::UnknownFrame,
                3 => ErrorCode::Oversized,
                4 => ErrorCode::Shed,
                5 => ErrorCode::ShardDown,
                6 => ErrorCode::Timeout,
                7 => ErrorCode::Busy,
                _ => ErrorCode::Unexpected,
            },
            retry_after_ms: a,
            message: text.to_string(),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn encode_decode_roundtrip_identity(
        kind in 0usize..8,
        a in 0u32..u32::MAX,
        b in i64::MIN..i64::MAX,
        flag in proptest::bool::ANY,
        scores in proptest::collection::vec(0u32..u32::MAX, 0..24),
        text_bytes in proptest::collection::vec(0u32..128, 0..48),
    ) {
        let text: String = text_bytes
            .iter()
            .filter_map(|&c| char::from_u32(c))
            .collect();
        let frame = build_frame(kind, a, b, flag, &scores, &text);
        let bytes = encode_to_vec(&frame);
        let decoded = decode(&bytes, DEFAULT_MAX_PAYLOAD);
        prop_assert!(
            matches!(decoded, Ok(Some(_))),
            "frame did not decode: {:?}",
            decoded
        );
        let Ok(Some((back, consumed))) = decoded else {
            unreachable!()
        };
        prop_assert_eq!(consumed, bytes.len());
        // Score vectors may hold NaN (PartialEq-false); compare bits.
        match (&back, &frame) {
            (
                Frame::Prediction { scores: s1, quality: q1, top: t1, window_len: w1 },
                Frame::Prediction { scores: s2, quality: q2, top: t2, window_len: w2 },
            ) => {
                prop_assert_eq!(q1, q2);
                prop_assert_eq!(t1, t2);
                prop_assert_eq!(w1, w2);
                let b1: Vec<u32> = s1.iter().map(|f| f.to_bits()).collect();
                let b2: Vec<u32> = s2.iter().map(|f| f.to_bits()).collect();
                prop_assert_eq!(b1, b2);
            }
            _ => prop_assert_eq!(&back, &frame),
        }
    }

    /// Every prefix of a valid frame asks for more bytes rather than
    /// erroring or mis-decoding.
    #[test]
    fn prefixes_never_error(
        kind in 0usize..8,
        a in 0u32..u32::MAX,
        b in i64::MIN..i64::MAX,
    ) {
        let frame = build_frame(kind, a, b, true, &[1, 2, 3], "x");
        let bytes = encode_to_vec(&frame);
        for cut in 2..bytes.len() {
            prop_assert_eq!(decode(&bytes[..cut], DEFAULT_MAX_PAYLOAD), Ok(None));
        }
    }

    /// Arbitrary byte soup never panics the decoder: it yields a frame,
    /// asks for more, or fails with a typed error.
    #[test]
    fn decoder_is_total_on_garbage(
        bytes in proptest::collection::vec(0u32..256, 0..64),
    ) {
        let buf: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
        let _ = decode(&buf, DEFAULT_MAX_PAYLOAD);
    }
}

// ---------------------------------------------------------------------
// Live-server malformed corpus.
// ---------------------------------------------------------------------

fn tiny_server(max_connections: usize) -> ServerHandle {
    let mut rng = StdRng::seed_from_u64(5);
    let mut store = ParamStore::new();
    let model = LightMob::new(&mut store, AdaMoveConfig::tiny(), 8, 12, &mut rng);
    let engine = Arc::new(ShardedEngine::new(
        Arc::new(model),
        Arc::new(store),
        EngineConfig {
            shards: 1,
            context_sessions: 2,
            session_hours: 24,
            ..EngineConfig::default()
        },
    ));
    serve(
        engine,
        ServeConfig {
            max_connections,
            workers: 1,
            ..ServeConfig::default()
        },
    )
    .expect("server start")
}

fn shutdown(handle: ServerHandle) {
    let engine = handle.stop();
    if let Some(engine) = Arc::into_inner(engine) {
        drop(engine.shutdown());
    }
}

/// Read one frame from a raw socket (blocking, bounded).
fn read_frame(stream: &mut TcpStream) -> Result<Frame, String> {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| e.to_string())?;
    let mut buf = Vec::new();
    let mut chunk = [0u8; 512];
    loop {
        match decode(&buf, DEFAULT_MAX_PAYLOAD) {
            Ok(Some((frame, _))) => return Ok(frame),
            Ok(None) => {}
            Err(e) => return Err(format!("protocol: {e}")),
        }
        let n = stream.read(&mut chunk).map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("eof".to_string());
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// Read until EOF, asserting the server closed the connection.
fn expect_eof(stream: &mut TcpStream) {
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(_) => {}
            // A reset also proves the server dropped the connection.
            Err(_) => return,
        }
    }
}

/// Poll (no sleeps in tests) until `accepted` connections have been
/// admitted by the acceptor AND every open slot has drained. Requiring
/// the cumulative counter closes a race: a stream the client already
/// dropped can still sit unaccepted in the kernel backlog, where it
/// holds no slot yet — gauge 0 alone would declare victory early and a
/// follow-up connect could then race it for the free slots.
fn wait_drained(handle: &ServerHandle, accepted: u64) {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let snap = handle.registry().snapshot();
        let total = snap
            .counters
            .get("serve_connections_total")
            .copied()
            .unwrap_or(0);
        let open = snap
            .gauges
            .get("serve_connections_open")
            .copied()
            .unwrap_or(0.0);
        if total >= accepted && open <= 0.0 {
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "connection slots not reclaimed: {total}/{accepted} accepted, {open} open"
        );
        std::thread::yield_now();
    }
}

/// Each corpus entry: a byte payload and the typed error it must earn.
fn malformed_corpus() -> Vec<(Vec<u8>, ErrorCode)> {
    let valid = encode_to_vec(&Frame::Snapshot);
    let bad_version = {
        let mut v = valid.clone();
        v[2] = 0x63;
        v
    };
    let unknown_type = {
        let mut v = valid.clone();
        v[3] = 0x44;
        v
    };
    let oversized = {
        let mut v = valid.clone();
        v[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        v
    };
    let bad_payload = {
        // Observe frame whose declared length disagrees with the layout.
        let mut v = encode_to_vec(&Frame::Observe {
            user: 1,
            loc: 2,
            time: 3,
        });
        v[4..8].copy_from_slice(&6u32.to_le_bytes());
        v.truncate(HEADER_LEN + 6);
        v
    };
    let reply_as_request = encode_to_vec(&Frame::ObserveOk);
    vec![
        (
            b"GET / HTTP/1.1\r\nHost: x\r\n\r\n".to_vec(),
            ErrorCode::Malformed,
        ),
        (bad_version, ErrorCode::BadVersion),
        (unknown_type, ErrorCode::UnknownFrame),
        (oversized, ErrorCode::Oversized),
        (bad_payload, ErrorCode::Malformed),
        (reply_as_request, ErrorCode::Unexpected),
    ]
}

#[test]
fn malformed_frames_get_typed_errors_and_slots_are_reclaimed() {
    // Cap of 2 slots: any leak across the corpus would wedge admission.
    let handle = tiny_server(2);
    let addr = handle.addr();

    for (round, (bytes, expect)) in malformed_corpus().into_iter().enumerate() {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(&bytes).expect("write corpus");
        let frame =
            read_frame(&mut stream).unwrap_or_else(|e| panic!("round {round}: no reply ({e})"));
        match frame {
            Frame::Error { code, .. } => {
                assert_eq!(code, expect, "round {round}");
            }
            other => panic!("round {round}: expected error, got {other:?}"),
        }
        // `Unexpected` (a well-formed but wrong-direction frame) keeps
        // the connection; everything malformed closes it.
        if expect != ErrorCode::Unexpected {
            expect_eof(&mut stream);
        }
        drop(stream);
        wait_drained(&handle, round as u64 + 1);
    }

    // Mid-frame disconnect: a partial header then a hangup must also
    // free the slot without a reply. One at a time — with a cap of 2,
    // a burst of already-dropped connections could legitimately earn
    // Busy rejections before the workers reap them, and this test pins
    // the rejection counter to zero.
    for i in 0..4u64 {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(&[0xAD]).expect("write partial");
        drop(stream);
        wait_drained(&handle, 7 + i);
    }

    // After the whole corpus the server still serves: both remaining
    // slots admit fresh well-formed clients concurrently.
    let mut a = Client::connect(addr).expect("client a");
    let mut b = Client::connect(addr).expect("client b");
    a.observe(1, 3, 3_600).expect("observe after corpus");
    b.observe(2, 4, 3_600).expect("observe after corpus");
    assert!(a.predict(9, 7_200, false).expect("predict").is_none());

    let snap = handle.registry().snapshot();
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    assert_eq!(counter("serve_malformed_total"), 5);
    // 5 malformed + 1 unexpected-frame reply.
    assert_eq!(counter("serve_errors_total"), 6);
    assert_eq!(counter("serve_conn_rejected_total"), 0);

    drop((a, b));
    shutdown(handle);
}

#[test]
fn connection_cap_rejects_with_busy_and_recovers() {
    let handle = tiny_server(1);
    let addr = handle.addr();

    let mut first = Client::connect(addr).expect("first");
    first.observe(1, 2, 3_600).expect("observe");

    // Second connection while the slot is held: typed Busy with a
    // retry hint, then the server closes it.
    let mut stream = TcpStream::connect(addr).expect("second connect");
    match read_frame(&mut stream) {
        Ok(Frame::Error {
            code,
            retry_after_ms,
            ..
        }) => {
            assert_eq!(code, ErrorCode::Busy);
            assert!(retry_after_ms > 0, "busy replies carry a retry hint");
        }
        other => panic!("expected busy, got {other:?}"),
    }
    expect_eof(&mut stream);

    // Releasing the first slot re-admits new clients.
    drop(first);
    wait_drained(&handle, 1);
    let mut again = Client::connect(addr).expect("after release");
    again.observe(3, 1, 3_600).expect("observe after release");

    let snap = handle.registry().snapshot();
    assert_eq!(
        snap.counters.get("serve_conn_rejected_total").copied(),
        Some(1)
    );
    drop(again);
    shutdown(handle);
}

#[test]
fn pipelined_requests_reply_in_order() {
    let handle = tiny_server(4);
    let addr = handle.addr();
    let mut client = Client::connect(addr).expect("connect");
    // Send a burst without reading, then drain: replies must arrive in
    // request order (observe-ok, observe-ok, prediction-or-nowindow).
    client
        .send(&Frame::Observe {
            user: 1,
            loc: 2,
            time: 3_600,
        })
        .expect("send");
    client
        .send(&Frame::Observe {
            user: 1,
            loc: 3,
            time: 7_200,
        })
        .expect("send");
    client
        .send(&Frame::Predict {
            user: 1,
            now: 10_800,
            want_scores: true,
        })
        .expect("send");
    assert_eq!(client.recv().expect("r1"), Frame::ObserveOk);
    assert_eq!(client.recv().expect("r2"), Frame::ObserveOk);
    match client.recv().expect("r3") {
        Frame::Prediction { scores, .. } => assert!(!scores.is_empty()),
        Frame::NoWindow => panic!("two observes in-session must build a window"),
        other => panic!("unexpected {other:?}"),
    }
    // SNAPSHOT over the same pipe returns parseable flat JSON.
    let json = client.snapshot().expect("snapshot");
    let fields = adamove_testkit::json::parse_flat(&json).expect("snapshot parses");
    assert!(fields.contains_key("serve_frames_total"));
    drop(client);
    shutdown(handle);
}
