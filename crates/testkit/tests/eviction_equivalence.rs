//! PTTA-after-eviction equivalence: a user whose early context aged out of
//! the sliding window must be served *exactly* like a fresh user who only
//! ever produced the surviving suffix. Staleness eviction may change
//! nothing but the window contents — no residual adapter state, no
//! prediction drift.

use adamove::{AdaMoveConfig, LightMob, PttaConfig, StreamingPredictor};
use adamove_autograd::ParamStore;
use adamove_mobility::{Point, Timestamp, UserId};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn model(seed: u64) -> (ParamStore, LightMob) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut store = ParamStore::new();
    let model = LightMob::new(&mut store, AdaMoveConfig::tiny(), 10, 4, &mut rng);
    (store, model)
}

fn pt(loc: u32, hour: i64) -> Point {
    Point::new(loc, Timestamp::from_hours(hour))
}

#[test]
fn evicted_user_predicts_like_a_fresh_user_with_the_same_suffix() {
    let (store, model) = model(31);
    let user = UserId(2);
    // Window: 2 sessions x 24h = 48h horizon.
    let make = || StreamingPredictor::new(&model, &store, PttaConfig::default(), 2, 24);

    // The veteran lived a long history, went quiet, then produced a fresh
    // suffix; everything before hour 200 is beyond the horizon of the
    // queries below.
    let stale = [pt(1, 0), pt(2, 3), pt(3, 30), pt(1, 55), pt(4, 80)];
    let suffix = [pt(5, 200), pt(2, 205), pt(7, 210)];

    let mut veteran = make();
    for p in stale.iter().chain(&suffix) {
        veteran.observe(user, *p);
    }
    let mut fresh = make();
    for p in &suffix {
        fresh.observe(user, *p);
    }

    for query_hour in [211, 220, 240] {
        let now = Timestamp::from_hours(query_hour);
        let v = veteran.predict(user, now).expect("suffix is in horizon");
        let f = fresh.predict(user, now).expect("suffix is in horizon");
        assert_eq!(
            v.window_len,
            suffix.len(),
            "stale points leaked into the window"
        );
        assert_eq!(v.window_len, f.window_len);
        assert_eq!(
            v.scores, f.scores,
            "eviction changed PTTA's output at hour {query_hour}"
        );
        assert_eq!(v.top, f.top);
    }

    // The inspection seam agrees: after aging, the veteran's buffered
    // window is exactly the suffix.
    let window: Vec<Point> = veteran.window_of(user).unwrap().points().to_vec();
    assert_eq!(window, suffix.to_vec());
}

#[test]
fn full_eviction_resets_to_a_truly_fresh_user() {
    let (store, model) = model(33);
    let user = UserId(0);
    let make = || StreamingPredictor::new(&model, &store, PttaConfig::default(), 2, 24);

    let mut veteran = make();
    for p in [pt(1, 0), pt(2, 5), pt(3, 9)] {
        veteran.observe(user, p);
    }
    // A month of silence: everything is stale, so no prediction at all —
    // same as a user the predictor has never seen.
    let much_later = Timestamp::from_hours(24 * 30);
    assert!(veteran.predict(user, much_later).is_none());
    assert!(make().predict(user, much_later).is_none());

    // Both come back with the same single check-in: identical service.
    let back = pt(6, 24 * 30 + 1);
    let now = Timestamp::from_hours(24 * 30 + 2);
    veteran.observe(user, back);
    let mut fresh = make();
    fresh.observe(user, back);
    let v = veteran.predict(user, now).unwrap();
    let f = fresh.predict(user, now).unwrap();
    assert_eq!(v.window_len, 1);
    assert_eq!(v.scores, f.scores);
}

#[test]
fn partial_eviction_tracks_the_surviving_suffix_continuously() {
    // As the query time advances, points age out one by one; at every
    // stage the veteran must equal a fresh user fed only the survivors.
    let (store, model) = model(35);
    let user = UserId(1);
    let points = [pt(1, 0), pt(2, 20), pt(3, 40), pt(4, 60)];
    let make = || StreamingPredictor::new(&model, &store, PttaConfig::default(), 2, 24);

    let mut veteran = make();
    for p in &points {
        veteran.observe(user, *p);
    }
    for (query_hour, expect_survivors) in [(61, 3), (75, 2), (100, 1)] {
        let now = Timestamp::from_hours(query_hour);
        let survivors: Vec<Point> = points
            .iter()
            .copied()
            .filter(|p| p.time.0 > now.0 - 48 * 3600)
            .collect();
        assert_eq!(survivors.len(), expect_survivors, "scenario setup drifted");
        let mut fresh = make();
        for p in &survivors {
            fresh.observe(user, *p);
        }
        let v = veteran.predict(user, now).unwrap();
        let f = fresh.predict(user, now).unwrap();
        assert_eq!(v.window_len, expect_survivors, "at hour {query_hour}");
        assert_eq!(v.scores, f.scores, "at hour {query_hour}");
    }
}
