//! PTTA-after-eviction equivalence: a user whose early context aged out of
//! the sliding window must be served *exactly* like a fresh user who only
//! ever produced the surviving suffix. Staleness eviction may change
//! nothing but the window contents — no residual adapter state, no
//! prediction drift.

use adamove::obs::Registry;
use adamove::streaming::StreamObs;
use adamove::{AdaMoveConfig, LightMob, PttaConfig, RecentWindow, StreamingPredictor};
use adamove_autograd::ParamStore;
use adamove_mobility::{Point, Timestamp, UserId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

fn model(seed: u64) -> (ParamStore, LightMob) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut store = ParamStore::new();
    let model = LightMob::new(&mut store, AdaMoveConfig::tiny(), 10, 4, &mut rng);
    (store, model)
}

fn pt(loc: u32, hour: i64) -> Point {
    Point::new(loc, Timestamp::from_hours(hour))
}

#[test]
fn evicted_user_predicts_like_a_fresh_user_with_the_same_suffix() {
    let (store, model) = model(31);
    let user = UserId(2);
    // Window: 2 sessions x 24h = 48h horizon.
    let make = || StreamingPredictor::new(&model, &store, PttaConfig::default(), 2, 24);

    // The veteran lived a long history, went quiet, then produced a fresh
    // suffix; everything before hour 200 is beyond the horizon of the
    // queries below.
    let stale = [pt(1, 0), pt(2, 3), pt(3, 30), pt(1, 55), pt(4, 80)];
    let suffix = [pt(5, 200), pt(2, 205), pt(7, 210)];

    let mut veteran = make();
    for p in stale.iter().chain(&suffix) {
        veteran.observe(user, *p);
    }
    let mut fresh = make();
    for p in &suffix {
        fresh.observe(user, *p);
    }

    for query_hour in [211, 220, 240] {
        let now = Timestamp::from_hours(query_hour);
        let v = veteran.predict(user, now).expect("suffix is in horizon");
        let f = fresh.predict(user, now).expect("suffix is in horizon");
        assert_eq!(
            v.window_len,
            suffix.len(),
            "stale points leaked into the window"
        );
        assert_eq!(v.window_len, f.window_len);
        assert_eq!(
            v.scores, f.scores,
            "eviction changed PTTA's output at hour {query_hour}"
        );
        assert_eq!(v.top, f.top);
    }

    // The inspection seam agrees: after aging, the veteran's buffered
    // window is exactly the suffix.
    let window: Vec<Point> = veteran.window_of(user).unwrap().points().to_vec();
    assert_eq!(window, suffix.to_vec());
}

#[test]
fn full_eviction_resets_to_a_truly_fresh_user() {
    let (store, model) = model(33);
    let user = UserId(0);
    let make = || StreamingPredictor::new(&model, &store, PttaConfig::default(), 2, 24);

    let mut veteran = make();
    for p in [pt(1, 0), pt(2, 5), pt(3, 9)] {
        veteran.observe(user, p);
    }
    // A month of silence: everything is stale, so no prediction at all —
    // same as a user the predictor has never seen.
    let much_later = Timestamp::from_hours(24 * 30);
    assert!(veteran.predict(user, much_later).is_none());
    assert!(make().predict(user, much_later).is_none());

    // Both come back with the same single check-in: identical service.
    let back = pt(6, 24 * 30 + 1);
    let now = Timestamp::from_hours(24 * 30 + 2);
    veteran.observe(user, back);
    let mut fresh = make();
    fresh.observe(user, back);
    let v = veteran.predict(user, now).unwrap();
    let f = fresh.predict(user, now).unwrap();
    assert_eq!(v.window_len, 1);
    assert_eq!(v.scores, f.scores);
}

#[test]
fn partial_eviction_tracks_the_surviving_suffix_continuously() {
    // As the query time advances, points age out one by one; at every
    // stage the veteran must equal a fresh user fed only the survivors.
    let (store, model) = model(35);
    let user = UserId(1);
    let points = [pt(1, 0), pt(2, 20), pt(3, 40), pt(4, 60)];
    let make = || StreamingPredictor::new(&model, &store, PttaConfig::default(), 2, 24);

    let mut veteran = make();
    for p in &points {
        veteran.observe(user, *p);
    }
    for (query_hour, expect_survivors) in [(61, 3), (75, 2), (100, 1)] {
        let now = Timestamp::from_hours(query_hour);
        let survivors: Vec<Point> = points
            .iter()
            .copied()
            .filter(|p| p.time.0 > now.0 - 48 * 3600)
            .collect();
        assert_eq!(survivors.len(), expect_survivors, "scenario setup drifted");
        let mut fresh = make();
        for p in &survivors {
            fresh.observe(user, *p);
        }
        let v = veteran.predict(user, now).unwrap();
        let f = fresh.predict(user, now).unwrap();
        assert_eq!(v.window_len, expect_survivors, "at hour {query_hour}");
        assert_eq!(v.scores, f.scores, "at hour {query_hour}");
    }
}

#[test]
fn eviction_counts_stay_consistent_with_the_metrics_counter() {
    // Every eviction is reported twice: as the return value of
    // `observe` (push-time) and — for query-time aging inside `predict` —
    // through `stream_window_evictions_total`. Against an independent
    // per-user `RecentWindow` mirror driven by the same interleaved
    // multi-user stream, both accounts must agree exactly.
    let (store, model) = model(37);
    let registry = Registry::new();
    let mut sp = StreamingPredictor::new(&model, &store, PttaConfig::default(), 2, 24);
    sp.set_obs(StreamObs::register(&registry, &[]));

    let mut mirrors: HashMap<UserId, RecentWindow> = HashMap::new();
    let mut expected = 0usize;
    for step in 0..60i64 {
        for u in 0..4u32 {
            let user = UserId(u);
            // Irregular per-user cadence so windows age at different rates.
            let p = pt((u + step as u32) % 10, step * (3 + u as i64 % 3));
            let mirror = mirrors
                .entry(user)
                .or_insert_with(|| RecentWindow::new(2, 24));
            let from_mirror = mirror.push(p);
            let from_observe = sp.observe(user, p);
            assert_eq!(from_observe, from_mirror, "user {u} at step {step}");
            expected += from_observe;
        }
        // Periodic queries at an advanced clock exercise the predict-side
        // (`evict_before`) staleness path for every user.
        if step % 7 == 6 {
            let now = Timestamp::from_hours(step * 5 + 30);
            for u in 0..4u32 {
                let user = UserId(u);
                expected += mirrors.get_mut(&user).unwrap().evict_before(now);
                let _ = sp.predict(user, now);
            }
        }
    }
    // The mirrors and the predictor saw identical operations, so their
    // windows must be identical too — which makes the eviction ledger
    // above trustworthy.
    for (user, mirror) in &mirrors {
        assert_eq!(
            sp.window_of(*user).map(|w| w.points().to_vec()),
            Some(mirror.points().to_vec()),
            "window drift for {user:?}"
        );
    }
    assert!(
        expected > 0,
        "scenario never evicted — horizon too generous"
    );
    let snap = registry.snapshot();
    assert_eq!(
        snap.counters["stream_window_evictions_total"], expected as u64,
        "counter and returned eviction counts diverged"
    );
}
