//! Cold-start restore acceptance: an engine rebuilt from its
//! `--state-dir` must be **bit-identical** to one that never went down.
//! Three paths: pure journal replay (crash before any checkpoint),
//! checkpoint + journal suffix (crash mid-stream), and graceful drain
//! (`checkpoint_all`, after which restart replays nothing).

use adamove::{
    AdaMoveConfig, DurabilityConfig, EngineConfig, LightMob, PredictionQuality, PttaConfig,
    RecoveryConfig, ShardedEngine, SyncPolicy,
};
use adamove_autograd::ParamStore;
use adamove_mobility::{Point, Timestamp, UserId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::Arc;

const LOCATIONS: u32 = 8;
const USERS: u32 = 12;
const SHARDS: usize = 3;

fn model() -> (Arc<ParamStore>, Arc<LightMob>) {
    let mut rng = StdRng::seed_from_u64(11);
    let mut store = ParamStore::new();
    let model = LightMob::new(
        &mut store,
        AdaMoveConfig::tiny(),
        LOCATIONS,
        USERS,
        &mut rng,
    );
    (Arc::new(store), Arc::new(model))
}

fn pt(loc: u32, hour: i64) -> Point {
    Point::new(loc, Timestamp::from_hours(hour))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("adamove-restart-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(checkpoint_interval: usize, dir: Option<&PathBuf>) -> EngineConfig {
    EngineConfig {
        shards: SHARDS,
        context_sessions: 2,
        session_hours: 24,
        ptta: PttaConfig::default(),
        recovery: Some(RecoveryConfig {
            checkpoint_interval,
            durability: dir.map(|d| DurabilityConfig {
                sync: SyncPolicy::PerRecord,
                ..DurabilityConfig::new(d.clone())
            }),
            ..RecoveryConfig::default()
        }),
        ..EngineConfig::default()
    }
}

fn drive(engine: &ShardedEngine, steps: std::ops::Range<i64>) {
    for step in steps {
        for u in 0..USERS {
            engine.observe(UserId(u), pt((u + step as u32) % LOCATIONS, step));
        }
    }
}

fn counter(engine: &ShardedEngine, name: &str) -> u64 {
    engine
        .registry()
        .snapshot()
        .counters
        .get(name)
        .copied()
        .unwrap_or(0)
}

/// Every prediction (scores, top, window length, quality) must match the
/// golden engine bit for bit.
fn assert_bit_identical(restored: &ShardedEngine, golden: &ShardedEngine, now: Timestamp) {
    for u in 0..USERS {
        let reference = golden.predict(UserId(u), now).expect("golden window");
        let replayed = restored.predict(UserId(u), now).expect("restored window");
        assert_eq!(replayed.scores, reference.scores, "user {u}");
        assert_eq!(replayed.top, reference.top, "user {u}");
        assert_eq!(replayed.window_len, reference.window_len, "user {u}");
        assert_eq!(replayed.quality, PredictionQuality::Adapted, "user {u}");
    }
}

/// Crash with no checkpoint ever written: the whole stream comes back
/// from journal replay alone.
#[test]
fn crash_restart_replays_the_journal_bit_identically() {
    let dir = temp_dir("journal-only");
    let (store, m) = model();
    let golden = ShardedEngine::new(Arc::clone(&m), Arc::clone(&store), config(10_000, None));
    drive(&golden, 0..16);

    // "Crash": the engine goes down without checkpoint_all — disk holds
    // only what the per-observe appends wrote. checkpoint_interval is
    // high enough that no durable checkpoint exists at all.
    {
        let crashed = ShardedEngine::new(
            Arc::clone(&m),
            Arc::clone(&store),
            config(10_000, Some(&dir)),
        );
        drive(&crashed, 0..16);
        crashed.shutdown();
    }

    let restored = ShardedEngine::new(
        Arc::clone(&m),
        Arc::clone(&store),
        config(10_000, Some(&dir)),
    );
    restored.flush();
    assert_eq!(
        counter(&restored, "engine_replayed_observes_total"),
        16 * USERS as u64,
        "every observe must come back through replay"
    );
    assert_bit_identical(&restored, &golden, Timestamp::from_hours(17));
    let snap = restored.snapshot();
    assert!(snap.shards.iter().all(|s| s.alive && !s.degraded));
    restored.shutdown();
    golden.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

/// Crash mid-stream with periodic durable checkpoints: restore loads the
/// newest checkpoint and replays only the suffix.
#[test]
fn crash_restart_restores_checkpoint_plus_suffix() {
    let dir = temp_dir("ckpt-suffix");
    let (store, m) = model();
    let golden = ShardedEngine::new(Arc::clone(&m), Arc::clone(&store), config(7, None));
    drive(&golden, 0..16);

    {
        let crashed = ShardedEngine::new(Arc::clone(&m), Arc::clone(&store), config(7, Some(&dir)));
        drive(&crashed, 0..16);
        crashed.shutdown();
    }

    let restored = ShardedEngine::new(Arc::clone(&m), Arc::clone(&store), config(7, Some(&dir)));
    restored.flush();
    let replayed = counter(&restored, "engine_replayed_observes_total");
    assert!(
        replayed > 0 && replayed < 16 * USERS as u64,
        "checkpoints must shorten replay (got {replayed})"
    );
    assert_bit_identical(&restored, &golden, Timestamp::from_hours(17));
    restored.shutdown();
    golden.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

/// Graceful drain: `checkpoint_all` makes every shard durable, so the
/// restart replays zero records and still matches the golden run.
#[test]
fn graceful_drain_restart_replays_nothing() {
    let dir = temp_dir("drain");
    let (store, m) = model();
    let golden = ShardedEngine::new(Arc::clone(&m), Arc::clone(&store), config(10_000, None));
    drive(&golden, 0..16);

    {
        let drained = ShardedEngine::new(
            Arc::clone(&m),
            Arc::clone(&store),
            config(10_000, Some(&dir)),
        );
        drive(&drained, 0..16);
        assert_eq!(drained.checkpoint_all(), SHARDS);
        drained.shutdown();
    }

    let restored = ShardedEngine::new(
        Arc::clone(&m),
        Arc::clone(&store),
        config(10_000, Some(&dir)),
    );
    restored.flush();
    assert_eq!(
        counter(&restored, "engine_replayed_observes_total"),
        0,
        "a drained engine restores from checkpoints alone"
    );
    assert_bit_identical(&restored, &golden, Timestamp::from_hours(17));
    restored.shutdown();
    golden.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

/// Restart-of-a-restart: durability survives its own recovery path (the
/// restored engine keeps appending and can itself be restored).
#[test]
fn second_generation_restart_still_matches() {
    let dir = temp_dir("gen2");
    let (store, m) = model();
    let golden = ShardedEngine::new(Arc::clone(&m), Arc::clone(&store), config(6, None));
    drive(&golden, 0..8);
    drive(&golden, 8..16);

    {
        let gen0 = ShardedEngine::new(Arc::clone(&m), Arc::clone(&store), config(6, Some(&dir)));
        drive(&gen0, 0..8);
        gen0.shutdown();
    }
    {
        let gen1 = ShardedEngine::new(Arc::clone(&m), Arc::clone(&store), config(6, Some(&dir)));
        gen1.flush();
        drive(&gen1, 8..16);
        gen1.shutdown();
    }
    let gen2 = ShardedEngine::new(Arc::clone(&m), Arc::clone(&store), config(6, Some(&dir)));
    gen2.flush();
    assert_bit_identical(&gen2, &golden, Timestamp::from_hours(17));
    gen2.shutdown();
    golden.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}
