//! End-to-end tracing and flight-recorder guarantees over real loopback
//! TCP:
//!
//! 1. **Tracing is free-of-behavior**: driving one server traced and an
//!    identical twin untraced yields bit-identical replies (scores,
//!    quality, window lengths) and identical serve counters — the trace
//!    header changes the wire framing, never the answer.
//! 2. **The flight recorder is ground truth for anomalies**: with a
//!    `FaultPlan` shard kill producing `Degraded` replies, and with
//!    admission control shedding, every anomalous request's client-minted
//!    trace id appears in the DIAG dump exactly once, with per-stage
//!    timings that stay within the enclosing span.

use adamove::obs::TraceContext;
use adamove::{
    shard_of, AdaMoveConfig, EngineConfig, LightMob, PttaConfig, RecoveryConfig, ShardedEngine,
};
use adamove_autograd::ParamStore;
use adamove_mobility::{Timestamp, UserId};
use adamove_serve::{serve, AdmissionConfig, Client, ErrorCode, Frame, Quality, ServeConfig};
use adamove_testkit::json::{parse_flat, Value};
use adamove_testkit::FaultPlan;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

const LOCATIONS: u32 = 8;
const USERS: u32 = 12;
const SHARDS: usize = 2;

fn model(seed: u64) -> (Arc<ParamStore>, Arc<LightMob>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut store = ParamStore::new();
    let model = LightMob::new(
        &mut store,
        AdaMoveConfig::tiny(),
        LOCATIONS,
        USERS,
        &mut rng,
    );
    (Arc::new(store), Arc::new(model))
}

fn engine_config() -> EngineConfig {
    EngineConfig {
        shards: SHARDS,
        context_sessions: 2,
        session_hours: 24,
        ptta: PttaConfig::default(),
        recovery: None,
        ..EngineConfig::default()
    }
}

fn counter(snapshot: &adamove::obs::RegistrySnapshot, name: &str) -> u64 {
    snapshot.counters.get(name).copied().unwrap_or(0)
}

/// All flat-JSON numbers under `name{rec="..."}` keyed by record index.
fn per_record(fields: &BTreeMap<String, Value>, name: &str) -> BTreeMap<usize, f64> {
    let prefix = format!("{name}{{rec=\"");
    fields
        .iter()
        .filter_map(|(k, v)| {
            let rest = k.strip_prefix(&prefix)?;
            let idx: usize = rest.strip_suffix("\"}")?.parse().ok()?;
            Some((idx, v.as_num(k).ok()?))
        })
        .collect()
}

/// Two identical servers, one driven with client-minted trace contexts,
/// one without: every reply must be bit-identical and every trace
/// context must come back verbatim.
#[test]
fn traced_replies_are_bit_identical_to_untraced() {
    let mut handles = Vec::new();
    for _ in 0..2 {
        let (store, m) = model(11);
        let engine = Arc::new(ShardedEngine::new(m, store, engine_config()));
        handles.push(
            serve(
                engine,
                ServeConfig {
                    workers: 1,
                    admission: None,
                    ..ServeConfig::default()
                },
            )
            .expect("server start"),
        );
    }
    let mut untraced = Client::connect(handles[0].addr()).expect("connect untraced");
    let mut traced = Client::connect(handles[1].addr()).expect("connect traced");
    let mut next_id = 100u64;
    let mut mint = || {
        next_id += 1;
        TraceContext::root(next_id)
    };

    // Identical observe streams; the traced one asserts the echo.
    for step in 0..12i64 {
        for u in 0..USERS {
            let frame = Frame::Observe {
                user: u,
                loc: (u + step as u32) % LOCATIONS,
                time: Timestamp::from_hours(step).0,
            };
            untraced
                .observe(
                    u,
                    (u + step as u32) % LOCATIONS,
                    Timestamp::from_hours(step).0,
                )
                .expect("untraced observe");
            let ctx = mint();
            let (reply, echoed) = traced
                .roundtrip_traced(&frame, ctx)
                .expect("traced observe");
            assert_eq!(reply, Frame::ObserveOk);
            assert_eq!(echoed, Some(ctx), "reply must echo the request context");
        }
    }

    let now = Timestamp::from_hours(13);
    for u in 0..USERS {
        let plain = untraced
            .predict(u, now.0, true)
            .expect("untraced predict")
            .expect("untraced window");
        let ctx = mint();
        let (reply, echoed) = traced
            .roundtrip_traced(
                &Frame::Predict {
                    user: u,
                    now: now.0,
                    want_scores: true,
                },
                ctx,
            )
            .expect("traced predict");
        assert_eq!(echoed, Some(ctx), "user {u}: echo");
        let Frame::Prediction {
            quality,
            top,
            window_len,
            scores,
        } = reply
        else {
            panic!("user {u}: traced predict reply was {reply:?}");
        };
        assert_eq!(quality, plain.quality, "user {u}");
        assert_eq!(top, plain.top, "user {u}");
        assert_eq!(window_len, plain.window_len, "user {u}");
        assert_eq!(
            scores.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
            plain.scores.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
            "user {u}: traced scores must be bit-identical to untraced"
        );
    }
    drop((untraced, traced));

    // Same counters on both sides: tracing changed nothing the server
    // could measure except the wire framing.
    let snaps: Vec<_> = handles
        .into_iter()
        .map(|h| {
            let engine = h.stop();
            let snap = engine.registry().snapshot();
            if let Some(engine) = Arc::into_inner(engine) {
                drop(engine.shutdown());
            }
            snap
        })
        .collect();
    for name in [
        "serve_predicts_total",
        "serve_observes_total",
        "serve_errors_total",
        "serve_malformed_total",
    ] {
        assert_eq!(
            counter(&snaps[0], name),
            counter(&snaps[1], name),
            "{name} must match between untraced and traced runs"
        );
    }
}

/// A checkpointless shard kill produces `Degraded` replies; every one of
/// their client-minted trace ids must appear in the DIAG dump exactly
/// once, tagged `degraded`, with stage timings inside the span total.
#[test]
fn degraded_replies_land_in_the_diag_dump_exactly_once() {
    let (store, m) = model(11);
    let victim = shard_of(UserId(0), SHARDS);
    let victim_users: Vec<u32> = (0..USERS)
        .filter(|&u| shard_of(UserId(u), SHARDS) == victim)
        .collect();
    // Kill on the victim's last observe so no later observe rebuilds a
    // window before the predicts arrive (same schedule as serve_fault).
    let kill_seq = victim_users.len() as u64 * 10 - 1;
    let engine = Arc::new(ShardedEngine::with_disturbance(
        m,
        store,
        EngineConfig {
            recovery: Some(RecoveryConfig {
                checkpoint_interval: 0,
                journal_capacity: 64,
                ..RecoveryConfig::default()
            }),
            ..engine_config()
        },
        Some(Arc::new(FaultPlan::new(3).panic_at(victim, kill_seq))),
    ));
    let handle = serve(
        engine,
        ServeConfig {
            workers: 1,
            admission: None,
            flight_capacity: 256,
            ..ServeConfig::default()
        },
    )
    .expect("server start");
    let mut client = Client::connect(handle.addr()).expect("connect");

    for step in 0..10i64 {
        for u in 0..USERS {
            let loc = if step % 2 == 0 { 7 } else { u % 4 };
            client
                .observe(u, loc, Timestamp::from_hours(step).0)
                .expect("observe");
        }
    }
    let now = Timestamp::from_hours(11);
    let mut degraded_ids = Vec::new();
    for u in 0..USERS {
        let ctx = TraceContext::root(1000 + u64::from(u));
        let (reply, echoed) = client
            .roundtrip_traced(
                &Frame::Predict {
                    user: u,
                    now: now.0,
                    want_scores: false,
                },
                ctx,
            )
            .expect("traced predict");
        assert_eq!(echoed, Some(ctx), "user {u}: echo");
        let Frame::Prediction { quality, .. } = reply else {
            panic!("user {u}: predict reply was {reply:?}");
        };
        if quality == Quality::Degraded {
            degraded_ids.push(ctx.request_id);
        }
    }
    assert_eq!(
        degraded_ids.len(),
        victim_users.len(),
        "every victim-shard user must degrade"
    );

    let dump = client.diag().expect("DIAG over the wire");
    let fields = parse_flat(&dump).expect("flight dump must be parseable flat JSON");
    let ids = per_record(&fields, "flight_request_id");
    let kinds: BTreeMap<usize, String> = fields
        .iter()
        .filter_map(|(k, v)| {
            let idx: usize = k
                .strip_prefix("flight_kind{rec=\"")?
                .strip_suffix("\"}")?
                .parse()
                .ok()?;
            match v {
                Value::Str(s) => Some((idx, s.clone())),
                Value::Num(_) => None,
            }
        })
        .collect();
    let totals = per_record(&fields, "flight_total_ns");
    for want in &degraded_ids {
        let matching: Vec<usize> = ids
            .iter()
            .filter(|(_, id)| **id == *want as f64)
            .map(|(idx, _)| *idx)
            .collect();
        assert_eq!(
            matching.len(),
            1,
            "request id {want} must appear in the DIAG dump exactly once"
        );
        let rec = matching[0];
        assert_eq!(kinds.get(&rec).map(String::as_str), Some("degraded"));
        // Per-stage timings must nest inside the enclosing span: the sum
        // of every recorded stage cannot exceed the request total.
        let total = totals.get(&rec).copied().unwrap_or(0.0);
        let stage_prefix = format!("flight_stage_ns{{rec=\"{rec}\",");
        let stage_sum: f64 = fields
            .iter()
            .filter(|(k, _)| k.starts_with(&stage_prefix))
            .filter_map(|(k, v)| v.as_num(k).ok())
            .sum();
        assert!(stage_sum > 0.0, "record {rec}: span tree must have stages");
        assert!(
            stage_sum <= total,
            "record {rec}: stage sum {stage_sum} exceeds span total {total}"
        );
    }
    drop(client);
    let engine = handle.stop();
    if let Some(engine) = Arc::into_inner(engine) {
        drop(engine.shutdown());
    }
}

/// With admission forced into shedding, every shed request's trace id
/// lands in the DIAG dump exactly once, tagged `shed`, carrying the
/// admission stage.
#[test]
fn shed_requests_land_in_the_diag_dump_exactly_once() {
    let (store, m) = model(11);
    let engine = Arc::new(ShardedEngine::new(m, store, engine_config()));
    let handle = serve(
        engine,
        ServeConfig {
            workers: 1,
            // queue_high 0 sheds unconditionally at the first tick; the
            // long tick interval keeps the policy from re-evaluating
            // (and un-shedding an idle queue) during the test.
            admission: Some(AdmissionConfig {
                queue_high: 0,
                ..AdmissionConfig::default()
            }),
            tick_interval: Duration::from_secs(3600),
            flight_capacity: 256,
            ..ServeConfig::default()
        },
    )
    .expect("server start");
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Wait for the first tick to flip the policy to shedding.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let snap = client.snapshot().expect("snapshot");
        let fields = parse_flat(&snap).expect("snapshot parses");
        let shedding: f64 = fields
            .iter()
            .filter(|(k, _)| k.starts_with("serve_shedding"))
            .filter_map(|(k, v)| v.as_num(k).ok())
            .sum();
        if shedding >= SHARDS as f64 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "admission never started shedding"
        );
        // lint:allow(sleep-in-test): bounded backoff inside a deadline poll for the shed flip
        std::thread::sleep(Duration::from_millis(5));
    }

    let mut shed_ids = Vec::new();
    for u in 0..USERS {
        let ctx = TraceContext::root(2000 + u64::from(u));
        let (reply, echoed) = client
            .roundtrip_traced(
                &Frame::Predict {
                    user: u,
                    now: Timestamp::from_hours(1).0,
                    want_scores: false,
                },
                ctx,
            )
            .expect("traced predict under shed");
        assert_eq!(echoed, Some(ctx), "user {u}: echo");
        let Frame::Error { code, .. } = reply else {
            panic!("user {u}: expected a shed error, got {reply:?}");
        };
        assert_eq!(code, ErrorCode::Shed, "user {u}");
        shed_ids.push(ctx.request_id);
    }

    let dump = client.diag().expect("DIAG over the wire");
    let fields = parse_flat(&dump).expect("flight dump parses");
    let ids = per_record(&fields, "flight_request_id");
    for want in &shed_ids {
        let matching: Vec<usize> = ids
            .iter()
            .filter(|(_, id)| **id == *want as f64)
            .map(|(idx, _)| *idx)
            .collect();
        assert_eq!(
            matching.len(),
            1,
            "shed request id {want} must appear in the DIAG dump exactly once"
        );
        let rec = matching[0];
        let kind = fields.get(&format!("flight_kind{{rec=\"{rec}\"}}"));
        assert!(
            matches!(kind, Some(Value::Str(s)) if s == "shed"),
            "record {rec}: kind must be shed, got {kind:?}"
        );
        let op = fields.get(&format!("flight_op{{rec=\"{rec}\"}}"));
        assert!(
            matches!(op, Some(Value::Str(s)) if s == "predict"),
            "record {rec}: op must name the shed operation, got {op:?}"
        );
    }
    drop(client);
    let engine = handle.stop();
    if let Some(engine) = Arc::into_inner(engine) {
        drop(engine.shutdown());
    }
}
