//! End-to-end differential oracle for the serving front-end: a seeded
//! mini-city stream served over loopback TCP must be observationally
//! identical to the same stream driven directly through
//! [`ShardedEngine`] — bit-identical scores, same top-1 / window lengths
//! / `Some`-`None` outcomes, and equal engine-side counters.
//!
//! This extends the engine == streaming-predictor oracle family one
//! layer up: protocol framing, the connection state machine, and the
//! client/server byte path are all inside the compared loop, so any
//! f32 mangling or frame reordering in the serve crate breaks bit
//! equality here.

use adamove::{AdaMoveConfig, EngineConfig, LightMob, PttaConfig, ShardedEngine};
use adamove_autograd::ParamStore;
use adamove_mobility::ministream::lymob_mini;
use adamove_mobility::UserId;
use adamove_serve::{serve, Client, Quality, ServeConfig, WirePrediction};
use adamove_testkit::{deterministic_reinit, workload_from_dataset, StreamEvent};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::Arc;

fn reinit_model(num_locations: u32, num_users: u32, seed: u64) -> (ParamStore, LightMob) {
    let mut store = ParamStore::new();
    let mut throwaway = StdRng::seed_from_u64(0);
    let model = LightMob::new(
        &mut store,
        AdaMoveConfig::tiny(),
        num_locations,
        num_users,
        &mut throwaway,
    );
    deterministic_reinit(&mut store, seed);
    (store, model)
}

fn engine_config(shards: usize) -> EngineConfig {
    EngineConfig {
        shards,
        context_sessions: 2,
        session_hours: 24,
        ptta: PttaConfig::default(),
        ..EngineConfig::default()
    }
}

/// Deterministic engine-side counters and user gauges from a registry
/// snapshot — everything whose value is a function of the request
/// sequence alone. Latency histograms are excluded by construction
/// (wall-clock), but their `count` is restored via the counters they
/// shadow (`engine_predicts_total` etc. already pin request counts).
fn deterministic_state(registry: &adamove_obs::Registry) -> BTreeMap<String, String> {
    let snap = registry.snapshot();
    let mut out = BTreeMap::new();
    for (k, v) in &snap.counters {
        if k.starts_with("engine_") || k.starts_with("stream_") || k.starts_with("ptta_") {
            out.insert(k.clone(), v.to_string());
        }
    }
    for (k, v) in &snap.gauges {
        if k.starts_with("engine_users") || k.starts_with("engine_queue_depth") {
            out.insert(k.clone(), format!("{v}"));
        }
    }
    for (k, h) in &snap.histograms {
        if k.starts_with("engine_") || k.starts_with("ptta_") {
            out.insert(format!("{k}#count"), h.count.to_string());
        }
    }
    out
}

/// Round-robin the workload directly through an engine (the reference).
fn run_direct(
    model: &Arc<LightMob>,
    store: &Arc<ParamStore>,
    shards: usize,
    workload: &[(UserId, Vec<StreamEvent>)],
) -> (Vec<Vec<Option<WirePrediction>>>, BTreeMap<String, String>) {
    let engine = ShardedEngine::new(Arc::clone(model), Arc::clone(store), engine_config(shards));
    let mut preds: Vec<Vec<Option<WirePrediction>>> = vec![Vec::new(); workload.len()];
    let max_len = workload.iter().map(|(_, ev)| ev.len()).max().unwrap_or(0);
    for step in 0..max_len {
        for (ui, (user, events)) in workload.iter().enumerate() {
            match events.get(step) {
                Some(StreamEvent::Observe(p)) => {
                    engine.try_observe(*user, *p).expect("direct observe")
                }
                Some(StreamEvent::Predict(now)) => {
                    let pred = engine.try_predict(*user, *now).expect("direct predict");
                    preds[ui].push(pred.map(|p| WirePrediction {
                        quality: p.quality.into(),
                        top: p.top.0,
                        window_len: p.window_len as u32,
                        scores: p.scores,
                    }));
                }
                None => {}
            }
        }
    }
    engine.flush();
    let state = deterministic_state(engine.registry());
    let report = engine.shutdown();
    assert!(report.healthy(), "direct engine unhealthy");
    (preds, state)
}

/// The same round-robin, but over loopback TCP through the server.
fn run_served(
    model: &Arc<LightMob>,
    store: &Arc<ParamStore>,
    shards: usize,
    workload: &[(UserId, Vec<StreamEvent>)],
) -> (Vec<Vec<Option<WirePrediction>>>, BTreeMap<String, String>) {
    let engine = Arc::new(ShardedEngine::new(
        Arc::clone(model),
        Arc::clone(store),
        engine_config(shards),
    ));
    // No admission control: the oracle compares request-for-request, so
    // nothing may be shed. (Admission behaviour has its own tests.)
    let handle = serve(
        engine,
        ServeConfig {
            workers: 2,
            admission: None,
            ..ServeConfig::default()
        },
    )
    .expect("server start");
    let mut client = Client::connect(handle.addr()).expect("connect");

    let mut preds: Vec<Vec<Option<WirePrediction>>> = vec![Vec::new(); workload.len()];
    let max_len = workload.iter().map(|(_, ev)| ev.len()).max().unwrap_or(0);
    for step in 0..max_len {
        for (ui, (user, events)) in workload.iter().enumerate() {
            match events.get(step) {
                Some(StreamEvent::Observe(p)) => client
                    .observe(user.0, p.loc.0, p.time.0)
                    .expect("served observe"),
                Some(StreamEvent::Predict(now)) => {
                    preds[ui].push(client.predict(user.0, now.0, true).expect("served predict"));
                }
                None => {}
            }
        }
    }
    let engine = handle.stop();
    engine.flush();
    let state = deterministic_state(engine.registry());
    let engine = Arc::into_inner(engine).expect("sole engine ref");
    let report = engine.shutdown();
    assert!(report.healthy(), "served engine unhealthy");
    (preds, state)
}

#[test]
fn loopback_serving_is_bit_identical_to_direct_engine() {
    let cfg = lymob_mini();
    let dataset = cfg.generate();
    let (store, model) = reinit_model(cfg.locations, cfg.users as u32, 9);
    let (model, store) = (Arc::new(model), Arc::new(store));
    let workload = workload_from_dataset(&dataset, 4, 40);
    assert!(workload.len() >= 8, "workload too small");

    for shards in [1usize, 4] {
        let (direct, direct_state) = run_direct(&model, &store, shards, &workload);
        let (served, served_state) = run_served(&model, &store, shards, &workload);

        let mut compared = 0usize;
        for (ui, (user, _)) in workload.iter().enumerate() {
            assert_eq!(
                direct[ui].len(),
                served[ui].len(),
                "shards={shards} user {}: prediction count",
                user.0
            );
            for (k, (d, s)) in direct[ui].iter().zip(&served[ui]).enumerate() {
                match (d, s) {
                    (None, None) => {}
                    (Some(d), Some(s)) => {
                        assert_eq!(
                            d.scores.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                            s.scores.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                            "shards={shards} user {} prediction {k}: scores",
                            user.0
                        );
                        assert_eq!(d.top, s.top, "shards={shards} user {} pred {k}", user.0);
                        assert_eq!(
                            d.window_len, s.window_len,
                            "shards={shards} user {} pred {k}",
                            user.0
                        );
                        assert_eq!(d.quality, Quality::Adapted);
                        assert_eq!(s.quality, Quality::Adapted);
                    }
                    (d, s) => panic!(
                        "shards={shards} user {} prediction {k}: direct {} vs served {}",
                        user.0,
                        if d.is_some() { "Some" } else { "None" },
                        if s.is_some() { "Some" } else { "None" }
                    ),
                }
                compared += 1;
            }
        }
        assert!(
            compared >= 50,
            "shards={shards}: only {compared} predictions"
        );
        assert_eq!(
            direct_state, served_state,
            "shards={shards}: engine-side deterministic metrics diverged"
        );
    }
}
