//! CI smoke for the DIAG wire path: stand up a real loopback server,
//! force one deterministic anomaly of each reachable class (a shed via a
//! zero-threshold admission policy, then a typed error via a
//! reply-type-as-request frame), and verify the flight-recorder dump
//! fetched over the wire parses as flat JSON and carries those records.
//!
//! ```text
//! cargo run --release -p adamove-testkit --example diag_smoke
//! ```
//!
//! Exits nonzero (via panic) on any failed expectation, so the gate
//! scripts can call it directly.

use adamove::obs::TraceContext;
use adamove::{AdaMoveConfig, EngineConfig, LightMob, ShardedEngine};
use adamove_autograd::ParamStore;
use adamove_serve::{serve, AdmissionConfig, Client, ErrorCode, Frame, ServeConfig};
use adamove_testkit::json::{parse_flat, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let mut rng = StdRng::seed_from_u64(5);
    let mut store = ParamStore::new();
    let model = LightMob::new(&mut store, AdaMoveConfig::tiny(), 16, 8, &mut rng);
    let engine = Arc::new(ShardedEngine::new(
        Arc::new(model),
        Arc::new(store),
        EngineConfig {
            shards: 2,
            ..EngineConfig::default()
        },
    ));
    let handle = serve(
        engine,
        ServeConfig {
            workers: 1,
            // queue_high 0: the first tick flips every shard to shedding;
            // the hour-long tick keeps it there for the whole smoke.
            admission: Some(AdmissionConfig {
                queue_high: 0,
                ..AdmissionConfig::default()
            }),
            tick_interval: Duration::from_secs(3600),
            flight_capacity: 32,
            ..ServeConfig::default()
        },
    )
    .expect("server start");
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Wait for the shed policy to engage.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let snap = client.snapshot().expect("snapshot");
        let fields = parse_flat(&snap).expect("snapshot parses");
        let shedding: f64 = fields
            .iter()
            .filter(|(k, _)| k.starts_with("serve_shedding"))
            .filter_map(|(k, v)| v.as_num(k).ok())
            .sum();
        if shedding >= 2.0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "admission never started shedding"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // One traced predict: deterministically shed, id 42 must be ringed.
    let ctx = TraceContext::root(42);
    let (reply, echoed) = client
        .roundtrip_traced(
            &Frame::Predict {
                user: 0,
                now: 3600,
                want_scores: false,
            },
            ctx,
        )
        .expect("traced predict");
    assert_eq!(echoed, Some(ctx), "trace context must echo");
    assert!(
        matches!(
            reply,
            Frame::Error {
                code: ErrorCode::Shed,
                ..
            }
        ),
        "zero-threshold admission must shed, got {reply:?}"
    );

    // A reply-type frame sent as a request: typed Unexpected error, also
    // an anomaly the recorder must capture.
    let err = client
        .roundtrip(&Frame::ObserveOk)
        .expect("unexpected-frame roundtrip");
    assert!(
        matches!(
            err,
            Frame::Error {
                code: ErrorCode::Unexpected,
                ..
            }
        ),
        "reply-as-request must get a typed error, got {err:?}"
    );

    let dump = client.diag().expect("DIAG over the wire");
    let fields = parse_flat(&dump).expect("flight dump must parse as flat JSON");
    let recorded = fields
        .get("flight_recorded_total")
        .and_then(|v| v.as_num("flight_recorded_total").ok())
        .expect("dump carries flight_recorded_total");
    assert!(
        recorded >= 2.0,
        "expected >= 2 flight records, got {recorded}"
    );
    let shed_with_id_42 = fields.iter().any(|(k, v)| {
        k.starts_with("flight_request_id") && matches!(v, Value::Num(n) if *n == 42.0)
    });
    assert!(shed_with_id_42, "shed request id 42 missing from DIAG dump");
    let has_shed_kind = fields
        .iter()
        .any(|(k, v)| k.starts_with("flight_kind") && matches!(v, Value::Str(s) if s == "shed"));
    assert!(has_shed_kind, "no record tagged shed in DIAG dump");

    drop(client);
    let engine = handle.stop();
    if let Some(engine) = Arc::into_inner(engine) {
        drop(engine.shutdown());
    }
    println!(
        "diag_smoke: OK ({} flight records, shed id 42 present, dump parseable)",
        recorded
    );
}
