//! Backend-independent deterministic randomness.
//!
//! The workspace's external `rand` dependency is pluggable (the offline dev
//! harness substitutes an API-compatible stub with a *different* stream),
//! so anything whose output is snapshotted — golden traces, checked-in
//! metric baselines, shard assignment — must not consume `rand` at all.
//! [`DetRng`] is a self-contained SplitMix64 generator whose stream is a
//! pure function of the seed and of this file, identical under every rand
//! backend, platform, and build profile.
//!
//! [`mix64`] exposes the bare SplitMix64 finalizer step; the serving
//! engine's user→shard hash is defined in terms of it, which pins the
//! shard assignment to the constants tested below.

/// The SplitMix64 increment (golden-ratio gamma).
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// One full SplitMix64 step from state `x`: add [`GOLDEN_GAMMA`], then run
/// the avalanche finalizer. Cheap, well-mixed, and stable across runs —
/// suitable as a hash for deterministic partitioning (`mix64(key) % n`).
#[inline]
pub fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(GOLDEN_GAMMA);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic SplitMix64 generator. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Generator seeded with `seed` (the raw SplitMix64 initial state).
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `f32` in `[0, 1)` (24 mantissa bits).
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Uniform `f32` in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        lo + self.next_f32() * (hi - lo)
    }

    /// Uniform index in `[0, n)`. Panics on `n == 0`. The modulo bias is
    /// below 2^-32 for any `n` this workspace uses (tiny vs. 2^64).
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "DetRng::below: empty range");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform value in `[lo, hi)` over integers.
    #[inline]
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "DetRng::range_i64: empty range");
        lo + (self.next_u64() % (hi - lo) as u64) as i64
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// A child generator whose stream is independent of this one's
    /// continuation (seeded by one draw mixed with a label).
    pub fn fork(&mut self, label: u64) -> DetRng {
        DetRng::new(self.next_u64() ^ mix64(label))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Canonical SplitMix64 vectors (reference implementation, seed 0).
    /// These pin the constants: any change to GOLDEN_GAMMA or the
    /// finalizer multipliers breaks golden traces and shard assignment.
    #[test]
    fn splitmix64_reference_vectors_seed_zero() {
        let mut r = DetRng::new(0);
        assert_eq!(r.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(r.next_u64(), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(r.next_u64(), 0x06c4_5d18_8009_454f);
        assert_eq!(r.next_u64(), 0xf88b_b8a8_724c_81ec);
    }

    #[test]
    fn splitmix64_reference_vectors_nonzero_seed() {
        let mut r = DetRng::new(12345);
        assert_eq!(r.next_u64(), 0x2211_8258_a9d1_11a0);
        assert_eq!(r.next_u64(), 0x346e_dce5_f713_f8ed);
    }

    #[test]
    fn mix64_matches_one_splitmix_step() {
        assert_eq!(mix64(0), 0xe220_a839_7b1d_cdaf);
        assert_eq!(mix64(1), 0x910a_2dec_8902_5cc1);
        assert_eq!(mix64(42), 0xbdd7_3226_2feb_6e95);
        assert_eq!(mix64(0xDEAD_BEEF), 0x4adf_b90f_68c9_eb9b);
        for x in [0u64, 1, 7, 1 << 40] {
            let mut r = DetRng::new(x);
            assert_eq!(mix64(x), r.next_u64());
        }
    }

    #[test]
    fn float_draws_are_in_range() {
        let mut r = DetRng::new(9);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            let g = r.next_f32();
            assert!((0.0..1.0).contains(&g));
            let u = r.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&u));
        }
    }

    #[test]
    fn below_and_range_cover_their_domains() {
        let mut r = DetRng::new(4);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.below(5)] = true;
            let v = r.range_i64(-3, 3);
            assert!((-3..3).contains(&v));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_dependent() {
        let base: Vec<usize> = (0..50).collect();
        let mut a = base.clone();
        let mut b = base.clone();
        DetRng::new(1).shuffle(&mut a);
        DetRng::new(1).shuffle(&mut b);
        assert_eq!(a, b, "same seed, same permutation");
        let mut c = base.clone();
        DetRng::new(2).shuffle(&mut c);
        assert_ne!(a, c, "different seed, different permutation");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, base);
    }

    #[test]
    fn chance_tracks_probability_roughly() {
        let mut r = DetRng::new(77);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = DetRng::new(5);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }
}
