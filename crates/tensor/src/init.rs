//! Weight initialisers.
//!
//! The paper's models are small, so initialisation matters for reproducing
//! training dynamics: we provide Xavier/Glorot uniform (used for linear and
//! recurrent weights, matching PyTorch's `nn.Linear`/`nn.LSTM` defaults in
//! spirit) and scaled normal (used for embeddings).

use crate::matrix::Matrix;
use rand::Rng;

/// Xavier/Glorot uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    let a = (6.0 / (rows + cols) as f32).sqrt();
    uniform(rows, cols, -a, a, rng)
}

/// Uniform `U(lo, hi)` initialisation.
pub fn uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut impl Rng) -> Matrix {
    assert!(lo <= hi, "uniform: lo must be <= hi");
    let data = (0..rows * cols).map(|_| rng.gen_range(lo..=hi)).collect();
    Matrix::from_vec(rows, cols, data)
}

/// Gaussian `N(0, std^2)` initialisation via Box–Muller.
pub fn normal(rows: usize, cols: usize, std: f32, rng: &mut impl Rng) -> Matrix {
    let n = rows * cols;
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        // Box–Muller transform: two uniforms -> two independent normals.
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(r * theta.cos() * std);
        if data.len() < n {
            data.push(r * theta.sin() * std);
        }
    }
    Matrix::from_vec(rows, cols, data)
}

/// Per-row-orthogonal-ish recurrent init: Xavier scaled by `1/sqrt(cols)`,
/// a cheap stand-in for orthogonal init that keeps recurrent dynamics stable.
pub fn recurrent(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    let scale = 1.0 / (cols as f32).sqrt();
    uniform(rows, cols, -scale, scale, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_bound_holds() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = xavier_uniform(20, 30, &mut rng);
        let a = (6.0f32 / 50.0).sqrt();
        assert!(m.as_slice().iter().all(|&v| v.abs() <= a + 1e-6));
        // Not all zero.
        assert!(m.frobenius_norm() > 0.0);
    }

    #[test]
    fn normal_has_roughly_right_moments() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = normal(100, 100, 0.5, &mut rng);
        let mean = m.mean();
        let var =
            m.as_slice().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / (m.len() - 1) as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 0.25).abs() < 0.02, "var {var}");
    }

    #[test]
    fn deterministic_under_same_seed() {
        let a = xavier_uniform(4, 4, &mut StdRng::seed_from_u64(7));
        let b = xavier_uniform(4, 4, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn recurrent_scale_bound() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = recurrent(8, 16, &mut rng);
        assert!(m.as_slice().iter().all(|&v| v.abs() <= 0.25 + 1e-6));
    }

    #[test]
    fn normal_odd_element_count() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = normal(3, 3, 1.0, &mut rng);
        assert_eq!(m.len(), 9);
        assert!(m.all_finite());
    }
}
