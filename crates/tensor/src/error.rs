//! Error types for shape mismatches.

use std::fmt;

/// Error produced when matrix operands have incompatible shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Name of the operation that failed, e.g. `"matmul"`.
    pub op: &'static str,
    /// Shape of the left-hand operand as `(rows, cols)`.
    pub lhs: (usize, usize),
    /// Shape of the right-hand operand as `(rows, cols)`.
    pub rhs: (usize, usize),
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shape mismatch in `{}`: lhs is {}x{}, rhs is {}x{}",
            self.op, self.lhs.0, self.lhs.1, self.rhs.0, self.rhs.1
        )
    }
}

impl std::error::Error for ShapeError {}

/// Convenience alias used throughout the tensor crate.
pub type TensorResult<T> = Result<T, ShapeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_op_and_shapes() {
        let e = ShapeError {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("2x3"));
        assert!(s.contains("4x5"));
    }
}
