#![warn(missing_docs)]
//! Dense `f32` matrix kernels for the AdaMove reproduction.
//!
//! This crate is the lowest layer of the from-scratch neural-network stack:
//! a row-major dense [`Matrix`], the handful of kernels the models need
//! (GEMM, transposed GEMM variants, row softmax, reductions), weight
//! initialisers, and the vector statistics the PTTA module is built on
//! (cosine similarity, entropy, top-k selection).
//!
//! Everything is plain safe Rust. The GEMM uses an `i-k-j` loop order so the
//! inner loop streams both operands contiguously, which is the standard
//! cache-friendly formulation for row-major data.
//!
//! [`det`] provides backend-independent deterministic randomness
//! ([`DetRng`], [`mix64`]) for anything whose output is snapshotted —
//! golden traces, shard assignment, reproducible shuffles.

pub mod det;
pub mod error;
pub mod init;
pub mod matrix;
pub mod stats;

pub use det::{mix64, DetRng};
pub use error::{ShapeError, TensorResult};
pub use matrix::Matrix;
