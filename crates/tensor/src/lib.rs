#![warn(missing_docs)]
//! Dense `f32` matrix kernels for the AdaMove reproduction.
//!
//! This crate is the lowest layer of the from-scratch neural-network stack:
//! a row-major dense [`Matrix`], the handful of kernels the models need
//! (GEMM, transposed GEMM variants, row softmax, reductions), weight
//! initialisers, and the vector statistics the PTTA module is built on
//! (cosine similarity, entropy, top-k selection).
//!
//! Everything is plain safe Rust. The reference GEMM on [`Matrix`] uses an
//! `i-k-j` loop order so the inner loop streams both operands contiguously;
//! the [`device`] module layers a [`Device`] abstraction on top, seeded by a
//! cache-blocked [`CpuDevice`] whose register-tiled kernels are pinned
//! bit-identical to the reference (see that module's bit-comparability
//! contract).
//!
//! [`det`] provides backend-independent deterministic randomness
//! ([`DetRng`], [`mix64`]) for anything whose output is snapshotted —
//! golden traces, shard assignment, reproducible shuffles.

pub mod det;
pub mod device;
pub mod error;
pub mod init;
pub mod matrix;
pub mod stats;

pub use det::{mix64, DetRng};
pub use device::{cpu, CpuDevice, Device};
pub use error::{ShapeError, TensorResult};
pub use matrix::Matrix;
