//! Device abstraction over the GEMM kernels.
//!
//! The autograd tape and every layer above it route their matrix products
//! through a [`Device`] rather than calling [`Matrix`] methods directly,
//! so the compute backend can be swapped (CPU today; an accelerator
//! later) without touching model code.
//!
//! The seed backend is [`CpuDevice`]: cache-blocked, register-tiled
//! kernels for `matmul`, `matmul_tn`, `matmul_nt` and a fused-bias
//! [`Device::gemm`] entry point used by batched forward passes.
//!
//! # Bit-comparability contract
//!
//! Every kernel here is **bit-identical** to the naive reference
//! implementation on [`Matrix`]. The tiles only re-order *independent*
//! output elements: each `out[i][j]` is produced by one accumulator,
//! initialised to `+0.0`, that adds the `k` products in strictly
//! ascending `k` order — exactly the reference's order. Blocking happens
//! over `i` and `j` only; the reduction dimension is never split, so no
//! f32 reassociation occurs. `gemm` adds the bias *after* the full `k`
//! reduction (at tile store time), matching `matmul` followed by
//! `Matrix::add_row_broadcast`. Differential tests pin exact equality
//! against the reference on every shape class (full tiles, ragged
//! edges, vectors) and on non-finite inputs.

use crate::error::{ShapeError, TensorResult};
use crate::matrix::Matrix;

/// A compute backend for the dense kernels the models need.
///
/// Implementations must be bit-identical to the [`Matrix`] reference
/// kernels (see the module docs for the accumulation-order contract) —
/// the differential oracles in `adamove-testkit` and the golden traces
/// rely on it.
pub trait Device: std::fmt::Debug + Send + Sync {
    /// Human-readable backend name (for logs and bench output).
    fn name(&self) -> &'static str;

    /// Matrix product `a * b`.
    fn matmul(&self, a: &Matrix, b: &Matrix) -> TensorResult<Matrix>;

    /// Transposed product `a^T * b` without materialising the transpose.
    fn matmul_tn(&self, a: &Matrix, b: &Matrix) -> TensorResult<Matrix>;

    /// Product `a * b^T` without materialising the transpose.
    fn matmul_nt(&self, a: &Matrix, b: &Matrix) -> TensorResult<Matrix>;

    /// Fused batched entry point: `a * b` plus an optional row-broadcast
    /// `bias` (shape `1 x b.cols`), added after the full reduction so the
    /// result equals `matmul` followed by `Matrix::add_row_broadcast`.
    /// This is the one-weight-pass kernel the `forward_batch` paths use:
    /// `a` is `batch x features`, `b` a weight matrix.
    fn gemm(&self, a: &Matrix, b: &Matrix, bias: Option<&Matrix>) -> TensorResult<Matrix>;
}

/// The process-wide CPU backend.
pub fn cpu() -> &'static dyn Device {
    static CPU: CpuDevice = CpuDevice;
    &CPU
}

/// Cache-blocked CPU backend.
///
/// Kernels tile the output `NR` columns at a time with the column loop
/// outermost: one `NR`-wide register accumulator per output row is
/// filled by a full pass over the reduction dimension, and every row of
/// the batch reuses the same `k x NR` tile of `b` while it is L1-hot.
/// `NR = 16` keeps the accumulator at four SSE registers, so the inner
/// loop never spills even on the baseline x86-64 target (a taller
/// multi-row accumulator tile was measured 2.5x *slower* here — 64 live
/// floats exhaust the 16 XMM registers and spill every iteration).
/// Full-width tiles run with constant loop bounds (the autovectorised
/// fast path); the ragged right edge shares the same loop structure
/// with runtime bounds, which keeps the accumulation order — and
/// therefore the bits — identical everywhere.
#[derive(Debug, Clone, Copy, Default)]
pub struct CpuDevice;

/// Output-tile width (columns per register accumulator).
const NR: usize = 16;

impl CpuDevice {
    fn shape_err(op: &'static str, a: &Matrix, b: &Matrix) -> ShapeError {
        ShapeError {
            op,
            lhs: a.shape(),
            rhs: b.shape(),
        }
    }
}

impl Device for CpuDevice {
    fn name(&self) -> &'static str {
        "cpu"
    }

    fn matmul(&self, a: &Matrix, b: &Matrix) -> TensorResult<Matrix> {
        if a.shape().1 != b.shape().0 {
            return Err(Self::shape_err("matmul", a, b));
        }
        Ok(mm_nn(a, b, None))
    }

    fn matmul_tn(&self, a: &Matrix, b: &Matrix) -> TensorResult<Matrix> {
        if a.shape().0 != b.shape().0 {
            return Err(Self::shape_err("matmul_tn", a, b));
        }
        Ok(mm_tn(a, b))
    }

    fn matmul_nt(&self, a: &Matrix, b: &Matrix) -> TensorResult<Matrix> {
        if a.shape().1 != b.shape().1 {
            return Err(Self::shape_err("matmul_nt", a, b));
        }
        Ok(mm_nt(a, b))
    }

    fn gemm(&self, a: &Matrix, b: &Matrix, bias: Option<&Matrix>) -> TensorResult<Matrix> {
        if a.shape().1 != b.shape().0 {
            return Err(Self::shape_err("gemm", a, b));
        }
        if let Some(bias) = bias {
            if bias.shape() != (1, b.shape().1) {
                return Err(Self::shape_err("gemm_bias", b, bias));
            }
        }
        Ok(mm_nn(a, b, bias.map(Matrix::as_slice)))
    }
}

/// `out = a * b (+ bias)`: for each `NR`-wide column tile (outermost, so
/// the `k x NR` slab of `b` stays L1-hot across the whole batch), each
/// output row accumulates in registers over the full reduction.
fn mm_nn(a: &Matrix, b: &Matrix, bias: Option<&[f32]>) -> Matrix {
    let (m, kd) = a.shape();
    let n = b.shape().1;
    let (ad, bd) = (a.as_slice(), b.as_slice());
    let mut out = Matrix::zeros(m, n);
    let od = out.as_mut_slice();
    let mut j0 = 0;
    while j0 < n {
        let nw = NR.min(n - j0);
        if nw == NR {
            // Fast path: constant bounds, fully unrollable.
            for i in 0..m {
                let arow = &ad[i * kd..(i + 1) * kd];
                let mut acc = [0.0f32; NR];
                for (p, &av) in arow.iter().enumerate() {
                    let brow = &bd[p * n + j0..p * n + j0 + NR];
                    for (o, &bv) in acc.iter_mut().zip(brow) {
                        *o += av * bv;
                    }
                }
                store_row(od, n, i, j0, nw, &acc, bias);
            }
        } else {
            for i in 0..m {
                let arow = &ad[i * kd..(i + 1) * kd];
                let mut acc = [0.0f32; NR];
                for (p, &av) in arow.iter().enumerate() {
                    let brow = &bd[p * n + j0..p * n + j0 + nw];
                    for (o, &bv) in acc.iter_mut().zip(brow) {
                        *o += av * bv;
                    }
                }
                store_row(od, n, i, j0, nw, &acc, bias);
            }
        }
        j0 += NR;
    }
    out
}

/// `out = a^T * b`: `a` is `k x m`, read down column `i` (stride `m`);
/// `b` streams row-major through the same column-tile structure as
/// [`mm_nn`].
fn mm_tn(a: &Matrix, b: &Matrix) -> Matrix {
    let (kd, m) = a.shape();
    let n = b.shape().1;
    let (ad, bd) = (a.as_slice(), b.as_slice());
    let mut out = Matrix::zeros(m, n);
    let od = out.as_mut_slice();
    let mut j0 = 0;
    while j0 < n {
        let nw = NR.min(n - j0);
        for i in 0..m {
            let mut acc = [0.0f32; NR];
            for p in 0..kd {
                let av = ad[p * m + i];
                let brow = &bd[p * n + j0..p * n + j0 + nw];
                for (o, &bv) in acc.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
            store_row(od, n, i, j0, nw, &acc, None);
        }
        j0 += NR;
    }
    out
}

/// `out = a * b^T`: a row of `a` against `NR` rows of `b` per tile; `b`
/// is read down its rows (stride `kd` per accumulator lane).
fn mm_nt(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, kd) = a.shape();
    let n = b.shape().0;
    let (ad, bd) = (a.as_slice(), b.as_slice());
    let mut out = Matrix::zeros(m, n);
    let od = out.as_mut_slice();
    let mut j0 = 0;
    while j0 < n {
        let nw = NR.min(n - j0);
        for i in 0..m {
            let arow = &ad[i * kd..(i + 1) * kd];
            let mut acc = [0.0f32; NR];
            for (p, &av) in arow.iter().enumerate() {
                for (c, o) in acc.iter_mut().take(nw).enumerate() {
                    *o += av * bd[(j0 + c) * kd + p];
                }
            }
            store_row(od, n, i, j0, nw, &acc, None);
        }
        j0 += NR;
    }
    out
}

/// Write one accumulator row into the output, adding the optional
/// row-broadcast bias after the completed reduction.
#[inline]
fn store_row(
    od: &mut [f32],
    n: usize,
    i: usize,
    j0: usize,
    nw: usize,
    acc: &[f32; NR],
    bias: Option<&[f32]>,
) {
    let dst = &mut od[i * n + j0..i * n + j0 + nw];
    match bias {
        Some(bias) => {
            let brow = &bias[j0..j0 + nw];
            for ((d, &v), &bv) in dst.iter_mut().zip(acc).zip(brow) {
                *d = v + bv;
            }
        }
        None => dst.copy_from_slice(&acc[..nw]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::det::DetRng;

    fn random(rows: usize, cols: usize, rng: &mut DetRng) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| rng.uniform(-2.0, 2.0))
    }

    fn bits(m: &Matrix) -> Vec<u32> {
        m.as_slice().iter().map(|v| v.to_bits()).collect()
    }

    /// Shape classes: vectors, tile-aligned, and ragged in every
    /// dimension (tiles are 4x16, so 5/17/33 exercise the edges).
    const SHAPES: [(usize, usize, usize); 8] = [
        (1, 1, 1),
        (1, 48, 192),
        (4, 16, 16),
        (5, 7, 3),
        (8, 32, 17),
        (13, 5, 33),
        (64, 52, 192),
        (3, 100, 1),
    ];

    #[test]
    fn blocked_matmul_is_bit_identical_to_reference() {
        let dev = cpu();
        let mut rng = DetRng::new(42);
        for &(m, k, n) in &SHAPES {
            let a = random(m, k, &mut rng);
            let b = random(k, n, &mut rng);
            let reference = a.matmul(&b).unwrap();
            let blocked = dev.matmul(&a, &b).unwrap();
            assert_eq!(bits(&blocked), bits(&reference), "matmul {m}x{k}x{n}");
        }
    }

    #[test]
    fn blocked_matmul_tn_is_bit_identical_to_reference() {
        let dev = cpu();
        let mut rng = DetRng::new(43);
        for &(m, k, n) in &SHAPES {
            let a = random(k, m, &mut rng);
            let b = random(k, n, &mut rng);
            let reference = a.matmul_tn(&b).unwrap();
            let blocked = dev.matmul_tn(&a, &b).unwrap();
            assert_eq!(bits(&blocked), bits(&reference), "matmul_tn {m}x{k}x{n}");
        }
    }

    #[test]
    fn blocked_matmul_nt_is_bit_identical_to_reference() {
        let dev = cpu();
        let mut rng = DetRng::new(44);
        for &(m, k, n) in &SHAPES {
            let a = random(m, k, &mut rng);
            let b = random(n, k, &mut rng);
            let reference = a.matmul_nt(&b).unwrap();
            let blocked = dev.matmul_nt(&a, &b).unwrap();
            assert_eq!(bits(&blocked), bits(&reference), "matmul_nt {m}x{k}x{n}");
        }
    }

    #[test]
    fn gemm_fuses_bias_exactly() {
        let dev = cpu();
        let mut rng = DetRng::new(45);
        for &(m, k, n) in &SHAPES {
            let a = random(m, k, &mut rng);
            let b = random(k, n, &mut rng);
            let bias = random(1, n, &mut rng);
            let reference = a.matmul(&b).unwrap().add_row_broadcast(&bias).unwrap();
            let fused = dev.gemm(&a, &b, Some(&bias)).unwrap();
            assert_eq!(bits(&fused), bits(&reference), "gemm {m}x{k}x{n}");
            // Without a bias, gemm is plain matmul.
            let plain = dev.gemm(&a, &b, None).unwrap();
            assert_eq!(bits(&plain), bits(&a.matmul(&b).unwrap()));
        }
    }

    #[test]
    fn non_finite_inputs_match_reference() {
        // NaN sign/payload is unspecified, so NaN matches any NaN;
        // everything else (including signed zeros and infinities) must
        // agree bit for bit with the reference kernels.
        fn same(a: &Matrix, b: &Matrix) -> bool {
            a.shape() == b.shape()
                && a.as_slice()
                    .iter()
                    .zip(b.as_slice())
                    .all(|(x, y)| (x.is_nan() && y.is_nan()) || x.to_bits() == y.to_bits())
        }
        let dev = cpu();
        let a = Matrix::from_vec(2, 3, vec![0.0, 1.0, -0.0, 2.0, 0.0, -3.0]);
        let b = Matrix::from_vec(
            3,
            2,
            vec![f32::NAN, 1.0, f32::INFINITY, -0.0, f32::NEG_INFINITY, 5.0],
        );
        assert!(same(&dev.matmul(&a, &b).unwrap(), &a.matmul(&b).unwrap()));
        assert!(same(
            &dev.matmul_nt(&a, &b.transpose()).unwrap(),
            &a.matmul_nt(&b.transpose()).unwrap()
        ));
        assert!(same(
            &dev.matmul_tn(&a.transpose(), &b).unwrap(),
            &a.transpose().matmul_tn(&b).unwrap()
        ));
    }

    #[test]
    fn shape_mismatches_error() {
        let dev = cpu();
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert_eq!(dev.matmul(&a, &b).unwrap_err().op, "matmul");
        assert_eq!(
            dev.matmul_tn(&a, &Matrix::zeros(3, 2)).unwrap_err().op,
            "matmul_tn"
        );
        assert_eq!(
            dev.matmul_nt(&a, &Matrix::zeros(3, 2)).unwrap_err().op,
            "matmul_nt"
        );
        assert_eq!(dev.gemm(&a, &b, None).unwrap_err().op, "gemm");
        let b_ok = Matrix::zeros(3, 4);
        let bad_bias = Matrix::zeros(1, 5);
        assert_eq!(
            dev.gemm(&a, &b_ok, Some(&bad_bias)).unwrap_err().op,
            "gemm_bias"
        );
    }

    #[test]
    fn device_reports_name() {
        assert_eq!(cpu().name(), "cpu");
    }
}
