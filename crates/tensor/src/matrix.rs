//! Row-major dense `f32` matrix and the kernels the NN stack is built on.

use crate::error::{ShapeError, TensorResult};
use serde::{Deserialize, Serialize};

/// A row-major dense matrix of `f32`.
///
/// Vectors are represented as `1 x n` (row vector) or `n x 1` matrices,
/// whichever is natural at the call site; most NN code here uses
/// `batch x features` layouts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Create a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Build from an explicit row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: buffer length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Build a `rows x cols` matrix by evaluating `f(r, c)` for each cell.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// A `1 x n` row vector.
    pub fn row_vector(data: Vec<f32>) -> Self {
        let cols = data.len();
        Self {
            rows: 1,
            cols,
            data,
        }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        Self::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy of column `c`.
    pub fn col(&self, c: usize) -> Vec<f32> {
        debug_assert!(c < self.cols);
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Iterate over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    fn shape_err(&self, op: &'static str, other: &Matrix) -> ShapeError {
        ShapeError {
            op,
            lhs: self.shape(),
            rhs: other.shape(),
        }
    }

    /// Matrix product `self * rhs`.
    ///
    /// Uses the cache-friendly `i-k-j` loop order: the inner loop walks one
    /// row of `rhs` and one row of the output contiguously.
    pub fn matmul(&self, rhs: &Matrix) -> TensorResult<Matrix> {
        if self.cols != rhs.rows {
            return Err(self.shape_err("matmul", rhs));
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            // No zero-coefficient skip: `0.0 * NaN` must stay NaN and
            // `0.0 * inf` must stay NaN, or this disagrees with
            // `matmul_nt` on non-finite inputs.
            for (k, &a_ik) in a_row.iter().enumerate() {
                let b_row = rhs.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a_ik * b;
                }
            }
        }
        Ok(out)
    }

    /// `self^T * rhs` without materialising the transpose.
    pub fn matmul_tn(&self, rhs: &Matrix) -> TensorResult<Matrix> {
        if self.rows != rhs.rows {
            return Err(self.shape_err("matmul_tn", rhs));
        }
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        // out[i][j] = sum_k self[k][i] * rhs[k][j]
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = rhs.row(k);
            // As in `matmul`: zero coefficients still multiply, so
            // non-finite values in `rhs` propagate.
            for (i, &a_ki) in a_row.iter().enumerate() {
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a_ki * b;
                }
            }
        }
        Ok(out)
    }

    /// `self * rhs^T` without materialising the transpose.
    pub fn matmul_nt(&self, rhs: &Matrix) -> TensorResult<Matrix> {
        if self.cols != rhs.cols {
            return Err(self.shape_err("matmul_nt", rhs));
        }
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = rhs.row(j);
                *o = dot(a_row, b_row);
            }
        }
        Ok(out)
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Element-wise sum; errors on shape mismatch.
    pub fn add(&self, rhs: &Matrix) -> TensorResult<Matrix> {
        self.zip_map(rhs, "add", |a, b| a + b)
    }

    /// Element-wise difference.
    pub fn sub(&self, rhs: &Matrix) -> TensorResult<Matrix> {
        self.zip_map(rhs, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, rhs: &Matrix) -> TensorResult<Matrix> {
        self.zip_map(rhs, "hadamard", |a, b| a * b)
    }

    fn zip_map(
        &self,
        rhs: &Matrix,
        op: &'static str,
        f: impl Fn(f32, f32) -> f32,
    ) -> TensorResult<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(self.shape_err(op, rhs));
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// In-place element-wise accumulate: `self += rhs`.
    pub fn add_assign(&mut self, rhs: &Matrix) -> TensorResult<()> {
        if self.shape() != rhs.shape() {
            return Err(self.shape_err("add_assign", rhs));
        }
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
        Ok(())
    }

    /// In-place scaled accumulate: `self += alpha * rhs` (the BLAS `axpy`).
    pub fn axpy(&mut self, alpha: f32, rhs: &Matrix) -> TensorResult<()> {
        if self.shape() != rhs.shape() {
            return Err(self.shape_err("axpy", rhs));
        }
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Scaled copy: `alpha * self`.
    pub fn scale(&self, alpha: f32) -> Matrix {
        self.map(|v| v * alpha)
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Element-wise map in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Add a `1 x cols` row vector to every row (broadcast), e.g. a bias.
    pub fn add_row_broadcast(&self, row: &Matrix) -> TensorResult<Matrix> {
        if row.rows != 1 || row.cols != self.cols {
            return Err(self.shape_err("add_row_broadcast", row));
        }
        let mut out = self.clone();
        for r in 0..out.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(&row.data) {
                *o += b;
            }
        }
        Ok(out)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Column-wise sum, producing a `1 x cols` row vector.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Row-wise softmax (numerically stable: subtracts the row max).
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..out.rows {
            softmax_inplace(out.row_mut(r));
        }
        out
    }

    /// Row-wise log-softmax (numerically stable).
    pub fn log_softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..out.rows {
            let row = out.row_mut(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let log_sum: f32 = row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln();
            for v in row.iter_mut() {
                *v = *v - max - log_sum;
            }
        }
        out
    }

    /// Index of the maximum element in each row.
    pub fn argmax_rows(&self) -> Vec<usize> {
        self.iter_rows().map(argmax).collect()
    }

    /// Stack row vectors (each `1 x cols` or plain slices) into one matrix.
    ///
    /// # Panics
    /// Panics if rows have differing lengths or the input is empty.
    pub fn stack_rows(rows: &[&[f32]]) -> Matrix {
        assert!(!rows.is_empty(), "stack_rows: empty input");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "stack_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Horizontal concatenation `[self | rhs]`.
    pub fn hcat(&self, rhs: &Matrix) -> TensorResult<Matrix> {
        if self.rows != rhs.rows {
            return Err(self.shape_err("hcat", rhs));
        }
        let mut out = Matrix::zeros(self.rows, self.cols + rhs.cols);
        for r in 0..self.rows {
            let dst = out.row_mut(r);
            dst[..self.cols].copy_from_slice(self.row(r));
            dst[self.cols..].copy_from_slice(rhs.row(r));
        }
        Ok(out)
    }

    /// True when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Numerically stable in-place softmax over a slice.
///
/// Degenerate rows fall back to the uniform distribution `1/n` instead of
/// being left unnormalised: a row of all `-inf` logits (max is non-finite,
/// so `exp(-inf - -inf)` would produce NaN), a row containing NaN, or a row
/// whose shifted exponentials all underflow to zero. The output is therefore
/// always a probability distribution for non-empty input.
pub fn softmax_inplace(row: &mut [f32]) {
    if row.is_empty() {
        return;
    }
    let uniform = 1.0 / row.len() as f32;
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if !max.is_finite() {
        // All -inf (no finite logit to anchor the shift) or some NaN.
        row.fill(uniform);
        return;
    }
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    // With a finite max at least one term is exp(0) = 1, so sum >= 1 unless
    // a NaN slipped through the fold; guard both that and underflow.
    if sum.is_finite() && sum > 0.0 {
        for v in row.iter_mut() {
            *v /= sum;
        }
    } else {
        row.fill(uniform);
    }
}

/// Index of the maximum element; 0 for an empty slice.
///
/// Ties resolve to the first (lowest-index) maximum, and NaN entries never
/// win (`v > best` is false for NaN) — an all-NaN row yields index 0.
pub fn argmax(row: &[f32]) -> usize {
    row.iter()
        .enumerate()
        .fold((0usize, f32::NEG_INFINITY), |(bi, bv), (i, &v)| {
            if v > bv {
                (i, v)
            } else {
                (bi, bv)
            }
        })
        .0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, data: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, data.to_vec())
    }

    #[test]
    fn constructors_and_accessors() {
        let a = Matrix::zeros(2, 3);
        assert_eq!(a.shape(), (2, 3));
        assert_eq!(a.len(), 6);
        assert!(a.as_slice().iter().all(|&v| v == 0.0));

        let b = Matrix::full(2, 2, 7.0);
        assert_eq!(b.get(1, 1), 7.0);

        let c = Matrix::from_fn(2, 2, |r, c| (r * 10 + c) as f32);
        assert_eq!(c.get(1, 0), 10.0);
        assert_eq!(c.row(1), &[10.0, 11.0]);

        let i = Matrix::identity(3);
        assert_eq!(i.get(0, 0), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_wrong_len_panics() {
        Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn matmul_known_result() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let err = a.matmul(&b).unwrap_err();
        assert_eq!(err.op, "matmul");
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = m(2, 2, &[1., 2., 3., 4.]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 4, &(0..12).map(|v| v as f32).collect::<Vec<_>>());
        let expected = a.transpose().matmul(&b).unwrap();
        assert_eq!(a.matmul_tn(&b).unwrap(), expected);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(4, 3, &(0..12).map(|v| v as f32).collect::<Vec<_>>());
        let expected = a.matmul(&b.transpose()).unwrap();
        assert_eq!(a.matmul_nt(&b).unwrap(), expected);
    }

    #[test]
    fn matmul_variants_agree_on_non_finite_inputs() {
        // Zero coefficients must still multiply: `0.0 * NaN` is NaN and
        // `0.0 * inf` is NaN, so a zero-skip fast path would silently
        // drop non-finite contributions and make the three product
        // variants disagree. NaN sign/payload is unspecified (LLVM may
        // pick either operand's), so NaN matches any NaN; everything
        // else — including -0.0 vs 0.0 and the sign of infinities —
        // must agree bit for bit.
        fn same(a: &Matrix, b: &Matrix) -> bool {
            a.shape() == b.shape()
                && a.as_slice()
                    .iter()
                    .zip(b.as_slice())
                    .all(|(x, y)| (x.is_nan() && y.is_nan()) || x.to_bits() == y.to_bits())
        }
        let a = m(
            2,
            3,
            &[0.0, 1.0, -0.0, 2.0, 0.0, -3.0], // zeros in every position a skip would take
        );
        let b = m(
            3,
            2,
            &[f32::NAN, 1.0, f32::INFINITY, -0.0, f32::NEG_INFINITY, 5.0],
        );
        let plain = a.matmul(&b).unwrap();
        assert!(
            plain.as_slice().iter().any(|v| v.is_nan()),
            "NaN contributions must propagate through zero coefficients"
        );
        assert!(same(&a.matmul_nt(&b.transpose()).unwrap(), &plain));
        assert!(same(&a.transpose().matmul_tn(&b).unwrap(), &plain));
    }

    #[test]
    fn transpose_round_trip() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = m(1, 3, &[1., 2., 3.]);
        let b = m(1, 3, &[4., 5., 6.]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5., 7., 9.]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[3., 3., 3.]);
        assert_eq!(a.hadamard(&b).unwrap().as_slice(), &[4., 10., 18.]);
        assert_eq!(a.scale(2.0).as_slice(), &[2., 4., 6.]);
    }

    #[test]
    fn add_assign_and_axpy() {
        let mut a = m(1, 2, &[1., 2.]);
        let b = m(1, 2, &[10., 20.]);
        a.add_assign(&b).unwrap();
        assert_eq!(a.as_slice(), &[11., 22.]);
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.as_slice(), &[16., 32.]);
        let c = m(2, 1, &[0., 0.]);
        assert!(a.add_assign(&c).is_err());
    }

    #[test]
    fn broadcast_bias() {
        let a = m(2, 2, &[1., 2., 3., 4.]);
        let bias = Matrix::row_vector(vec![10., 20.]);
        let out = a.add_row_broadcast(&bias).unwrap();
        assert_eq!(out.as_slice(), &[11., 22., 13., 24.]);
        let bad = Matrix::row_vector(vec![1.0; 3]);
        assert!(a.add_row_broadcast(&bad).is_err());
    }

    #[test]
    fn reductions() {
        let a = m(2, 2, &[1., 2., 3., 4.]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.sum_rows().as_slice(), &[4., 6.]);
        assert!((a.frobenius_norm() - 30f32.sqrt()).abs() < 1e-6);
        assert_eq!(Matrix::zeros(0, 0).mean(), 0.0);
    }

    #[test]
    fn softmax_rows_sums_to_one_and_is_stable() {
        let a = m(2, 3, &[1., 2., 3., 1000., 1000., 1000.]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {r} sums to {sum}");
        }
        // Large logits must not overflow into NaN.
        assert!(s.all_finite());
        // Uniform logits give a uniform distribution.
        assert!((s.get(1, 0) - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let a = m(1, 4, &[0.5, -1.0, 2.0, 0.0]);
        let ls = a.log_softmax_rows();
        let s = a.softmax_rows();
        for c in 0..4 {
            assert!((ls.get(0, c) - s.get(0, c).ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn argmax_rows_picks_first_on_ties() {
        let a = m(2, 3, &[1., 5., 5., -1., -2., -3.]);
        assert_eq!(a.argmax_rows(), vec![1, 0]);
        assert_eq!(argmax(&[]), 0);
    }

    #[test]
    fn argmax_ignores_nan_entries() {
        // NaN never compares greater, so it cannot win over a finite value.
        assert_eq!(argmax(&[f32::NAN, 2.0, 1.0]), 1);
        assert_eq!(argmax(&[0.5, f32::NAN, 3.0]), 2);
        // All-NaN falls through to the initial index.
        assert_eq!(argmax(&[f32::NAN, f32::NAN]), 0);
        // -inf loses to any finite value; all -inf picks the first.
        assert_eq!(argmax(&[f32::NEG_INFINITY, -1e30]), 1);
        assert_eq!(argmax(&[f32::NEG_INFINITY, f32::NEG_INFINITY]), 0);
    }

    #[test]
    fn softmax_inplace_degenerate_rows_become_uniform() {
        // All -inf: exp(-inf - -inf) would be NaN without the guard.
        let mut row = [f32::NEG_INFINITY; 4];
        softmax_inplace(&mut row);
        assert!(row.iter().all(|&v| (v - 0.25).abs() < 1e-7), "{row:?}");

        // A NaN logit poisons max; fall back to uniform, not a NaN row.
        let mut row = [1.0, f32::NAN, 0.0];
        softmax_inplace(&mut row);
        assert!(row.iter().all(|&v| (v - 1.0 / 3.0).abs() < 1e-7), "{row:?}");

        // Mixed -inf and finite logits still behave: the -inf column gets
        // probability zero and the rest normalise.
        let mut row = [f32::NEG_INFINITY, 0.0, 0.0];
        softmax_inplace(&mut row);
        assert_eq!(row[0], 0.0);
        assert!((row[1] - 0.5).abs() < 1e-6 && (row[2] - 0.5).abs() < 1e-6);

        // Empty rows are untouched.
        let mut empty: [f32; 0] = [];
        softmax_inplace(&mut empty);

        // Every non-empty output is a probability distribution.
        for logits in [[-1e30f32, -1e30, -1e30], [800.0, -800.0, 0.0]] {
            let mut row = logits;
            softmax_inplace(&mut row);
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "{logits:?} -> {row:?}");
            assert!(row.iter().all(|v| v.is_finite() && *v >= 0.0));
        }
    }

    #[test]
    fn stack_and_hcat() {
        let a = Matrix::stack_rows(&[&[1., 2.], &[3., 4.]]);
        assert_eq!(a.shape(), (2, 2));
        let b = m(2, 1, &[9., 9.]);
        let c = a.hcat(&b).unwrap();
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row(0), &[1., 2., 9.]);
        let bad = Matrix::zeros(3, 1);
        assert!(a.hcat(&bad).is_err());
    }

    #[test]
    fn dot_and_finiteness() {
        assert_eq!(dot(&[1., 2., 3.], &[4., 5., 6.]), 32.0);
        let mut a = m(1, 2, &[1.0, 2.0]);
        assert!(a.all_finite());
        a.set(0, 0, f32::NAN);
        assert!(!a.all_finite());
    }
}
