//! Vector statistics used by PTTA, T3A and the shift analysis.
//!
//! Cosine similarity (paper Eq. 1) drives PTTA's sample-importance filter;
//! Shannon entropy drives the T3A comparator's filter; the distribution
//! helpers back the Fig. 1 mobility-shift analysis.

/// Cosine similarity between two equal-length vectors (paper Eq. 1).
///
/// Returns 0 when either vector has zero norm, which matches the convention
/// that an all-zero mobility pattern is "similar to nothing".
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "cosine_similarity: length mismatch");
    let mut dot = 0.0f32;
    let mut na = 0.0f32;
    let mut nb = 0.0f32;
    for (&x, &y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

/// Shannon entropy of a probability distribution, in nats.
///
/// Zero-probability entries contribute zero (the `p log p -> 0` limit).
pub fn entropy(probs: &[f32]) -> f32 {
    probs
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| -p * p.ln())
        .sum()
}

/// Normalise non-negative counts into a probability distribution.
///
/// Returns a uniform distribution when the total mass is zero, so callers
/// never divide by zero downstream.
pub fn normalize(counts: &[f32]) -> Vec<f32> {
    let total: f32 = counts.iter().sum();
    if total <= 0.0 {
        if counts.is_empty() {
            return Vec::new();
        }
        return vec![1.0 / counts.len() as f32; counts.len()];
    }
    counts.iter().map(|&c| c / total).collect()
}

/// Indices of the `k` largest values, descending (first index wins ties).
///
/// Runs in `O(n log k)` using a bounded selection, mirroring the priority
/// queue argument in the paper's complexity analysis.
pub fn top_k_indices(values: &[f32], k: usize) -> Vec<usize> {
    if k == 0 || values.is_empty() {
        return Vec::new();
    }
    let k = k.min(values.len());
    // (value, index) pairs; sort by value desc, index asc for determinism.
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| {
        values[b]
            .partial_cmp(&values[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

/// Rank (1-based) of `target` within `scores` under descending order.
///
/// Ties are broken pessimistically: equal scores ahead of the target count
/// against it only when their index is smaller, matching a stable sort.
pub fn rank_of(scores: &[f32], target: usize) -> usize {
    let t = scores[target];
    let mut rank = 1;
    for (i, &s) in scores.iter().enumerate() {
        if s > t || (s == t && i < target) {
            rank += 1;
        }
    }
    rank
}

/// Arithmetic mean of a set of equal-length vectors (used by PTTA's
/// centroid weight update, Eq. 2).
///
/// # Panics
/// Panics when `vectors` is empty or ragged.
pub fn mean_vector(vectors: &[&[f32]]) -> Vec<f32> {
    assert!(!vectors.is_empty(), "mean_vector: empty input");
    let dim = vectors[0].len();
    let mut out = vec![0.0f32; dim];
    for v in vectors {
        assert_eq!(v.len(), dim, "mean_vector: ragged input");
        for (o, &x) in out.iter_mut().zip(*v) {
            *o += x;
        }
    }
    let n = vectors.len() as f32;
    for o in &mut out {
        *o /= n;
    }
    out
}

/// L2 norm.
pub fn l2_norm(v: &[f32]) -> f32 {
    v.iter().map(|x| x * x).sum::<f32>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_basic_cases() {
        assert!((cosine_similarity(&[1., 0.], &[1., 0.]) - 1.0).abs() < 1e-6);
        assert!((cosine_similarity(&[1., 0.], &[0., 1.])).abs() < 1e-6);
        assert!((cosine_similarity(&[1., 0.], &[-1., 0.]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine_similarity(&[0., 0.], &[1., 2.]), 0.0);
    }

    #[test]
    fn cosine_is_scale_invariant() {
        let a = [0.3, -1.2, 4.5];
        let b = [2.0, 0.1, -0.7];
        let s1 = cosine_similarity(&a, &b);
        let scaled: Vec<f32> = a.iter().map(|v| v * 17.0).collect();
        let s2 = cosine_similarity(&scaled, &b);
        assert!((s1 - s2).abs() < 1e-5);
    }

    #[test]
    fn entropy_uniform_is_log_n() {
        let p = [0.25; 4];
        assert!((entropy(&p) - 4f32.ln()).abs() < 1e-6);
        // Deterministic distribution has zero entropy.
        assert_eq!(entropy(&[1.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    fn normalize_handles_zero_mass() {
        assert_eq!(normalize(&[2.0, 2.0]), vec![0.5, 0.5]);
        assert_eq!(normalize(&[0.0, 0.0]), vec![0.5, 0.5]);
        assert!(normalize(&[]).is_empty());
    }

    #[test]
    fn top_k_orders_descending() {
        let v = [0.1, 0.9, 0.5, 0.9, 0.2];
        assert_eq!(top_k_indices(&v, 3), vec![1, 3, 2]);
        assert_eq!(top_k_indices(&v, 0), Vec::<usize>::new());
        assert_eq!(top_k_indices(&v, 10).len(), 5);
    }

    #[test]
    fn rank_of_counts_ties_stably() {
        let scores = [0.5, 0.9, 0.5, 0.1];
        assert_eq!(rank_of(&scores, 1), 1);
        assert_eq!(rank_of(&scores, 0), 2);
        assert_eq!(rank_of(&scores, 2), 3); // tied with index 0, which wins
        assert_eq!(rank_of(&scores, 3), 4);
    }

    #[test]
    fn mean_vector_is_centroid() {
        let a = [1.0f32, 2.0];
        let b = [3.0f32, 6.0];
        assert_eq!(mean_vector(&[&a, &b]), vec![2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "empty input")]
    fn mean_vector_rejects_empty() {
        mean_vector(&[]);
    }

    #[test]
    fn l2_norm_basics() {
        assert_eq!(l2_norm(&[3.0, 4.0]), 5.0);
        assert_eq!(l2_norm(&[]), 0.0);
    }
}
