//! Property-based tests for the matrix kernels: the algebraic identities
//! GEMM, transpose, softmax and the reductions must satisfy.

use adamove_tensor::{matrix::dot, Matrix};
use proptest::prelude::*;

/// Strategy: a matrix with the given shape and bounded entries.
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-5.0f32..5.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// Strategy: dimensions in a small range plus matching matrices for a chain
/// `A (m x k) * B (k x n)`.
fn matmul_pair() -> impl Strategy<Value = (Matrix, Matrix)> {
    (1usize..6, 1usize..6, 1usize..6).prop_flat_map(|(m, k, n)| (matrix(m, k), matrix(k, n)))
}

fn approx_eq(a: &Matrix, b: &Matrix, tol: f32) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn matmul_transpose_identity((a, b) in matmul_pair()) {
        // (A B)^T = B^T A^T
        let left = a.matmul(&b).unwrap().transpose();
        let right = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(approx_eq(&left, &right, 1e-4));
    }

    #[test]
    fn fused_transpose_variants_agree((a, b) in matmul_pair()) {
        // matmul_nt(A, B^T-shaped) == A * (B^T)^T ... check against explicit forms.
        let nt = a.matmul_nt(&b.transpose()).unwrap();
        let explicit = a.matmul(&b).unwrap();
        prop_assert!(approx_eq(&nt, &explicit, 1e-4));

        let tn = a.transpose().matmul_tn(&b.transpose().transpose()).unwrap();
        let explicit2 = a.matmul(&b).unwrap();
        prop_assert!(approx_eq(&tn, &explicit2, 1e-4));
    }

    #[test]
    fn matmul_distributes_over_addition(
        (a1, a2, b) in (1usize..5, 1usize..5, 1usize..5).prop_flat_map(|(m, k, n)| {
            (matrix(m, k), matrix(m, k), matrix(k, n))
        })
    ) {
        // (A1 + A2) B = A1 B + A2 B
        let left = a1.add(&a2).unwrap().matmul(&b).unwrap();
        let right = a1.matmul(&b).unwrap().add(&a2.matmul(&b).unwrap()).unwrap();
        prop_assert!(approx_eq(&left, &right, 1e-3));
    }

    #[test]
    fn transpose_is_involutive(m in matrix(4, 7)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn softmax_rows_are_distributions(m in matrix(5, 9)) {
        let s = m.softmax_rows();
        for r in 0..5 {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "row {r} sums to {sum}");
            prop_assert!(s.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn softmax_is_shift_invariant(m in matrix(3, 6), shift in -10.0f32..10.0) {
        let shifted = m.map(|v| v + shift);
        prop_assert!(approx_eq(&m.softmax_rows(), &shifted.softmax_rows(), 1e-3));
    }

    #[test]
    fn sum_rows_matches_total(m in matrix(4, 6)) {
        let by_cols: f32 = m.sum_rows().as_slice().iter().sum();
        prop_assert!((by_cols - m.sum()).abs() < 1e-3);
    }

    #[test]
    fn hadamard_is_commutative(a in matrix(3, 4), b in matrix(3, 4)) {
        prop_assert_eq!(
            a.hadamard(&b).unwrap(),
            b.hadamard(&a).unwrap()
        );
    }

    #[test]
    fn scale_then_norm_scales_norm(m in matrix(3, 3), alpha in 0.0f32..4.0) {
        let n1 = m.scale(alpha).frobenius_norm();
        let n2 = alpha * m.frobenius_norm();
        prop_assert!((n1 - n2).abs() < 1e-2 * (1.0 + n2));
    }

    #[test]
    fn dot_matches_matmul_1x1(v in prop::collection::vec(-3.0f32..3.0, 1..10)) {
        let row = Matrix::row_vector(v.clone());
        let out = row.matmul_nt(&row).unwrap();
        prop_assert!((out.get(0, 0) - dot(&v, &v)).abs() < 1e-3);
    }

    #[test]
    fn hcat_preserves_content(a in matrix(3, 2), b in matrix(3, 4)) {
        let c = a.hcat(&b).unwrap();
        prop_assert_eq!(c.shape(), (3, 6));
        for r in 0..3 {
            prop_assert_eq!(&c.row(r)[..2], a.row(r));
            prop_assert_eq!(&c.row(r)[2..], b.row(r));
        }
    }
}
