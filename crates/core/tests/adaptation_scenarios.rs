//! Behavioural scenario tests for PTTA: hand-constructed routines where we
//! can reason about what adaptation *should* do, independent of any
//! dataset or trained accuracy numbers.

use adamove::{
    evaluate_by, AdaMoveConfig, ImportanceStrategy, LabelStrategy, LightMob, Ptta, PttaConfig,
    Trainer, TrainingConfig,
};
use adamove_autograd::ParamStore;
use adamove_mobility::{LocationId, Point, Sample, Timestamp, UserId};
use adamove_tensor::stats::rank_of;
use rand::rngs::StdRng;
use rand::SeedableRng;

const L: u32 = 8;

/// Build a repeating daily routine as a point stream.
fn routine(days: i64, stops: &[(i64, u32)]) -> Vec<Point> {
    let mut pts = Vec::new();
    for d in 0..days {
        for &(h, loc) in stops {
            pts.push(Point::new(loc, Timestamp::from_hours(d * 24 + h)));
        }
    }
    pts
}

/// Sliding-window samples over a stream: window = one day.
fn day_samples(points: &[Point]) -> Vec<Sample> {
    let mut out = Vec::new();
    let mut day_start = 0;
    for i in 1..points.len() {
        if points[i].time.days() != points[day_start].time.days() {
            day_start = i;
            continue;
        }
        out.push(Sample {
            user: UserId(0),
            recent: points[day_start..i].to_vec(),
            history: vec![],
            target: points[i].loc,
            target_time: points[i].time,
        });
    }
    out
}

/// Train a small model on the OLD routine only.
fn trained_on(stops: &[(i64, u32)], seed: u64) -> (ParamStore, LightMob) {
    let train = day_samples(&routine(50, stops));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut store = ParamStore::new();
    let model = LightMob::new(
        &mut store,
        AdaMoveConfig {
            loc_dim: 12,
            time_dim: 6,
            user_dim: 4,
            hidden: 20,
            lambda: 0.0,
            ..AdaMoveConfig::default()
        },
        L,
        1,
        &mut rng,
    );
    let trainer = Trainer::new(TrainingConfig {
        max_epochs: 8,
        batch_size: 16,
        ..TrainingConfig::default()
    });
    let report = trainer.fit(&model, None, &mut store, &train, &train[..10]);
    assert!(report.best_val_accuracy > 0.8, "setup failed to learn");
    (store, model)
}

const OLD: [(i64, u32); 4] = [(8, 0), (9, 1), (19, 2), (22, 0)];
const NEW: [(i64, u32); 4] = [(8, 0), (9, 4), (19, 5), (22, 0)];

/// A query three days into the NEW routine, just after the new office,
/// whose ground truth is the new bar (location 5).
fn shifted_query() -> Sample {
    let mut recent = routine(3, &NEW);
    recent.push(Point::new(0, Timestamp::from_hours(3 * 24 + 8)));
    recent.push(Point::new(4, Timestamp::from_hours(3 * 24 + 9)));
    Sample {
        user: UserId(0),
        recent,
        history: vec![],
        target: LocationId(5),
        target_time: Timestamp::from_hours(3 * 24 + 19),
    }
}

#[test]
fn adaptation_promotes_new_routine_locations() {
    let (store, model) = trained_on(&OLD, 3);
    let q = shifted_query();
    let frozen = model.predict_scores(&store, &q.recent, q.user);
    let adapted = Ptta::default().predict_scores(&model, &store, &q);
    let fr = rank_of(&frozen, 5);
    let ar = rank_of(&adapted, 5);
    assert!(
        ar <= fr,
        "adaptation must not demote the new-routine target: {ar} vs {fr}"
    );
    // The new locations 4/5 must gain score mass relative to frozen.
    assert!(adapted[4] > frozen[4]);
    assert!(adapted[5] > frozen[5]);
}

#[test]
fn adaptation_is_neutral_on_unshifted_routine() {
    // When test-time behaviour matches training, PTTA's patterns agree
    // with the classifier and top-1 predictions stay correct.
    let (store, model) = trained_on(&OLD, 4);
    let eval_points = routine(4, &OLD);
    let samples = day_samples(&eval_points);
    let ptta = Ptta::default();
    let by_mode = evaluate_by(
        &samples,
        |_| "ptta",
        |s| ptta.predict_scores(&model, &store, s),
    );
    let frozen_by = evaluate_by(
        &samples,
        |_| "frozen",
        |s| model.predict_scores(&store, &s.recent, s.user),
    );
    let ptta_acc = by_mode["ptta"].rec1;
    let frozen_acc = frozen_by["frozen"].rec1;
    assert!(
        ptta_acc >= frozen_acc - 0.1,
        "adaptation harmed in-distribution accuracy: {ptta_acc} vs {frozen_acc}"
    );
}

#[test]
fn larger_capacity_uses_more_evidence() {
    let (store, model) = trained_on(&OLD, 5);
    let q = shifted_query();
    // With a long repetitive input, M = 1 vs M = 12 centroids differ.
    let small = Ptta::new(PttaConfig {
        capacity: 1,
        ..PttaConfig::default()
    })
    .adapted_columns(&model, &store, &q);
    let big = Ptta::new(PttaConfig {
        capacity: 12,
        ..PttaConfig::default()
    })
    .adapted_columns(&model, &store, &q);
    let mut small_keys: Vec<_> = small.keys().copied().collect();
    let mut big_keys: Vec<_> = big.keys().copied().collect();
    small_keys.sort_unstable();
    big_keys.sort_unstable();
    assert_eq!(small_keys, big_keys);
    let any_diff = small
        .iter()
        .any(|(k, v)| v.iter().zip(&big[k]).any(|(a, b)| (a - b).abs() > 1e-6));
    assert!(any_diff, "capacity had no effect on any adapted column");
}

#[test]
fn variant_strategies_produce_different_adaptations() {
    let (store, model) = trained_on(&OLD, 6);
    let q = shifted_query();
    let default = Ptta::default().predict_scores(&model, &store, &q);
    let ent = Ptta::new(PttaConfig {
        capacity: 1,
        importance: ImportanceStrategy::Entropy,
        labels: LabelStrategy::Real,
    })
    .predict_scores(&model, &store, &q);
    let pseudo = Ptta::new(PttaConfig {
        capacity: 5,
        importance: ImportanceStrategy::Similarity,
        labels: LabelStrategy::Pseudo,
    })
    .predict_scores(&model, &store, &q);
    // All are valid score vectors; the pseudo-label variant buckets by the
    // (old-routine) predictions, so it must differ from real labels under
    // shift — the mechanism behind the Fig. 4 gap.
    assert!(ent.iter().all(|v| v.is_finite()));
    assert_ne!(default, pseudo);
}

#[test]
fn per_user_breakdown_separates_shifted_from_stable() {
    // Two users share a model; user 0 keeps the old routine in test, user 1
    // shifts. The frozen model's per-user accuracy must split accordingly.
    let train0 = day_samples(&routine(50, &OLD));
    let mut rng = StdRng::seed_from_u64(9);
    let mut store = ParamStore::new();
    let model = LightMob::new(
        &mut store,
        AdaMoveConfig {
            loc_dim: 12,
            time_dim: 6,
            user_dim: 4,
            hidden: 20,
            lambda: 0.0,
            ..AdaMoveConfig::default()
        },
        L,
        2,
        &mut rng,
    );
    // Train both users on the OLD routine.
    let mut train = train0.clone();
    train.extend(train0.iter().map(|s| Sample {
        user: UserId(1),
        ..s.clone()
    }));
    Trainer::new(TrainingConfig {
        max_epochs: 8,
        batch_size: 16,
        ..TrainingConfig::default()
    })
    .fit(&model, None, &mut store, &train, &train[..10]);

    // Test: user 0 stays, user 1 shifts.
    let mut test = day_samples(&routine(4, &OLD));
    test.extend(day_samples(&routine(4, &NEW)).into_iter().map(|s| Sample {
        user: UserId(1),
        ..s
    }));
    let by_user = evaluate_by(
        &test,
        |s| s.user.0,
        |s| model.predict_scores(&store, &s.recent, s.user),
    );
    assert!(
        by_user[&0].rec1 > by_user[&1].rec1,
        "stable user should outscore shifted user on the frozen model: {} vs {}",
        by_user[&0].rec1,
        by_user[&1].rec1
    );
}
