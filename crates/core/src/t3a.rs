//! T3A: Test-Time Templates Adjuster (Iwasawa & Matsuo, NeurIPS 2021) —
//! the comparator PTTA is measured against in Fig. 4.
//!
//! T3A keeps a *global* support set per class across the test stream:
//! for each test sample it (1) encodes the input, (2) assigns the hidden
//! representation to the *predicted* class (pseudo-label), (3) keeps only
//! the `M` lowest-entropy supports per class, and (4) classifies with the
//! centroid of each class's supports (the original classifier column is the
//! first support).
//!
//! The two design decisions the paper identifies as weaknesses under large
//! shift — pseudo-label assignment and entropy filtering — are exactly what
//! [`crate::ptta`] replaces.

use crate::ptta::TtaModel;
use adamove_autograd::ParamStore;
use adamove_mobility::Sample;
use adamove_tensor::matrix::softmax_inplace;
use adamove_tensor::stats::entropy;
use serde::{Deserialize, Serialize};

/// T3A configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct T3aConfig {
    /// Maximum supports kept per class (lowest-entropy wins). The original
    /// paper calls this `M`; we default to the same budget PTTA uses.
    pub capacity: usize,
}

impl Default for T3aConfig {
    fn default() -> Self {
        Self { capacity: 5 }
    }
}

/// One support vector with its filter score.
#[derive(Debug, Clone)]
struct Support {
    /// Negative prediction entropy (higher = more confident = kept).
    neg_entropy: f32,
    hidden: Vec<f32>,
}

/// Stateful T3A adapter. Create once per test stream; feed samples in
/// arrival order.
#[derive(Debug, Clone)]
pub struct T3a {
    config: T3aConfig,
    /// Per-class supports. The classifier column `θ_l` is seeded as an
    /// unevictable prototype (stored separately so entropy filtering only
    /// applies to accumulated test supports).
    prototypes: Vec<Vec<f32>>,
    supports: Vec<Vec<Support>>,
    /// Cached centroids, invalidated per class on insert.
    centroids: Vec<Vec<f32>>,
}

impl T3a {
    /// Initialise from the trained classifier: class `l`'s support list
    /// starts with column `θ_l`.
    pub fn new<M: TtaModel>(model: &M, store: &ParamStore, config: T3aConfig) -> Self {
        let theta = store.value(model.theta_param());
        let num_classes = theta.cols();
        let prototypes: Vec<Vec<f32>> = (0..num_classes).map(|l| theta.col(l)).collect();
        let centroids = prototypes.clone();
        Self {
            config,
            prototypes,
            supports: vec![Vec::new(); num_classes],
            centroids,
        }
    }

    /// Number of accumulated (non-prototype) supports.
    pub fn num_supports(&self) -> usize {
        self.supports.iter().map(|s| s.len()).sum()
    }

    /// Process one sample: update the support set with its pseudo-labelled
    /// representation, then return centroid-based scores.
    pub fn adapt_and_predict<M: TtaModel>(
        &mut self,
        model: &M,
        store: &ParamStore,
        sample: &Sample,
    ) -> Vec<f32> {
        let patterns = model.patterns(store, sample);
        let hidden = patterns.row(patterns.rows() - 1).to_vec();

        // Pseudo-label and entropy from the *current* adjusted classifier.
        let scores = self.score(&hidden);
        let mut probs = scores.clone();
        softmax_inplace(&mut probs);
        let pseudo = adamove_tensor::matrix::argmax(&scores);
        let neg_entropy = -entropy(&probs);

        // Entropy filter: keep the M most confident supports per class.
        let list = &mut self.supports[pseudo];
        if list.len() < self.config.capacity {
            list.push(Support {
                neg_entropy,
                hidden: hidden.clone(),
            });
            self.refresh_centroid(pseudo);
        } else if let Some((idx, worst)) = list
            .iter()
            .enumerate()
            .map(|(i, s)| (i, s.neg_entropy))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        {
            if neg_entropy > worst {
                list[idx] = Support {
                    neg_entropy,
                    hidden: hidden.clone(),
                };
                self.refresh_centroid(pseudo);
            }
        }

        // Classify with (possibly updated) centroids.
        self.score(&hidden)
    }

    /// Centroid scores without updating state (pure inference).
    pub fn score(&self, hidden: &[f32]) -> Vec<f32> {
        self.centroids
            .iter()
            .map(|c| c.iter().zip(hidden).map(|(&cv, &hv)| cv * hv).sum())
            .collect()
    }

    fn refresh_centroid(&mut self, class: usize) {
        let proto = &self.prototypes[class];
        let supports = &self.supports[class];
        let mut centroid = proto.clone();
        for s in supports {
            for (c, &h) in centroid.iter_mut().zip(&s.hidden) {
                *c += h;
            }
        }
        let denom = (supports.len() + 1) as f32;
        for c in &mut centroid {
            *c /= denom;
        }
        self.centroids[class] = centroid;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AdaMoveConfig;
    use crate::lightmob::LightMob;
    use adamove_mobility::{LocationId, Point, Timestamp, UserId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample(locs: &[u32]) -> Sample {
        Sample {
            user: UserId(0),
            recent: locs
                .iter()
                .enumerate()
                .map(|(i, &l)| Point::new(l, Timestamp::from_hours(i as i64)))
                .collect(),
            history: vec![],
            target: LocationId(0),
            target_time: Timestamp::from_hours(50),
        }
    }

    fn model() -> (ParamStore, LightMob) {
        let mut rng = StdRng::seed_from_u64(33);
        let mut store = ParamStore::new();
        let m = LightMob::new(&mut store, AdaMoveConfig::tiny(), 8, 2, &mut rng);
        (store, m)
    }

    #[test]
    fn initial_centroids_match_classifier_columns() {
        let (store, m) = model();
        let t3a = T3a::new(&m, &store, T3aConfig::default());
        let theta = store.value(m.theta());
        for l in 0..8 {
            assert_eq!(t3a.centroids[l], theta.col(l));
        }
        assert_eq!(t3a.num_supports(), 0);
    }

    #[test]
    fn initial_scores_equal_frozen_scores_minus_bias() {
        let (store, m) = model();
        let t3a = T3a::new(&m, &store, T3aConfig::default());
        let s = sample(&[1, 2, 3]);
        let hidden = m.hidden_state(&store, &s.recent, s.user);
        let t3a_scores = t3a.score(&hidden);
        let frozen = m.predict_scores(&store, &s.recent, s.user);
        let bias_id = m.bias().unwrap();
        let bias = store.value(bias_id);
        for l in 0..8 {
            assert!((t3a_scores[l] + bias.get(0, l) - frozen[l]).abs() < 1e-4);
        }
    }

    #[test]
    fn supports_accumulate_under_pseudo_labels() {
        let (store, m) = model();
        let mut t3a = T3a::new(&m, &store, T3aConfig::default());
        for i in 0..4 {
            let s = sample(&[i % 3, (i + 1) % 3, (i + 2) % 3]);
            let scores = t3a.adapt_and_predict(&m, &store, &s);
            assert!(scores.iter().all(|v| v.is_finite()));
        }
        assert!(t3a.num_supports() >= 1);
        assert!(t3a.num_supports() <= 4);
    }

    #[test]
    fn capacity_bounds_supports_per_class() {
        let (store, m) = model();
        let mut t3a = T3a::new(&m, &store, T3aConfig { capacity: 2 });
        // Same input repeatedly lands in the same pseudo-class.
        for _ in 0..10 {
            let s = sample(&[1, 1, 1]);
            t3a.adapt_and_predict(&m, &store, &s);
        }
        for class in &t3a.supports {
            assert!(class.len() <= 2);
        }
    }

    #[test]
    fn adaptation_moves_centroid_toward_seen_representations() {
        let (store, m) = model();
        let mut t3a = T3a::new(&m, &store, T3aConfig::default());
        let s = sample(&[2, 2, 2, 2]);
        let hidden = m.hidden_state(&store, &s.recent, s.user);
        let before = t3a.score(&hidden);
        let pseudo = adamove_tensor::matrix::argmax(&before);
        t3a.adapt_and_predict(&m, &store, &s);
        let after = t3a.score(&hidden);
        // The pseudo-class centroid now contains `hidden`, raising its score
        // toward |h|^2 (positive), unless it was already the centroid.
        assert!(after[pseudo] != before[pseudo]);
    }
}
