//! Contrastive historical-knowledge incorporation (§III-C).
//!
//! During training only, LightMob's recent-trajectory representations are
//! pulled toward representations that *explicitly* fuse historical
//! trajectories through attention:
//!
//! - `K`/`V` are linear projections of the history hidden states, `Q` of the
//!   recent hidden states; attention weights are
//!   `softmax(Q K^T / sqrt(d_k))` (Eq. 7) and the history-enhanced recent
//!   representations are `H̃ = A V` (Eq. 8).
//! - The positive pair is `(h_N, h̃_N)`; negatives are history-enhanced
//!   prefix representations whose *next location differs from the target*
//!   (the filter at the end of §III-C avoids teaching the model to push
//!   away representations that predict the same place).
//! - The InfoNCE loss over these pairs (Eq. 9) is added to the
//!   classification loss with weight `lambda` (Eq. 11).

use crate::lightmob::LightMob;
use adamove_autograd::{Graph, ParamStore, Var};
use adamove_mobility::{LocationId, Sample};
use adamove_nn::{info_nce, Linear};
use rand::Rng;

/// The history-attention projections (Eqs. 7–8). Parameters are trained
/// jointly with the base model but are *not* used at inference time — that
/// is the entire point of LightMob.
#[derive(Debug, Clone)]
pub struct HistoryAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    hidden: usize,
}

impl HistoryAttention {
    /// Register projections of width `hidden`.
    pub fn new(store: &mut ParamStore, hidden: usize, rng: &mut impl Rng) -> Self {
        Self {
            wq: Linear::new(store, "history.wq", hidden, hidden, false, rng),
            wk: Linear::new(store, "history.wk", hidden, hidden, false, rng),
            wv: Linear::new(store, "history.wv", hidden, hidden, false, rng),
            hidden,
        }
    }

    /// History-enhanced recent representations `H̃_rec = A V`
    /// (`recent_len x hidden`).
    pub fn enhance(&self, g: &mut Graph, recent_hidden: Var, history_hidden: Var) -> Var {
        let q = self.wq.forward(g, recent_hidden);
        let k = self.wk.forward(g, history_hidden);
        let v = self.wv.forward(g, history_hidden);
        let scores = g.matmul_nt(q, k);
        let scaled = g.scale(scores, 1.0 / (self.hidden as f32).sqrt());
        let attn = g.softmax_rows(scaled);
        g.matmul(attn, v)
    }
}

/// Indices (into the recent sequence) usable as InfoNCE negatives for a
/// sample: positions `q` whose next location differs from the target.
///
/// Position `q < N-1` has next location `recent[q+1].loc`; the final
/// position's next location is the target itself, so it is never a negative.
pub fn negative_positions(sample: &Sample) -> Vec<usize> {
    let n = sample.recent.len();
    (0..n.saturating_sub(1))
        .filter(|&q| sample.recent[q + 1].loc != sample.target)
        .collect()
}

/// Build the InfoNCE loss for one sample (Eq. 9), or `None` when the sample
/// has no history or no valid negatives (the contrastive term is skipped,
/// matching the degenerate-case handling in `adamove_nn::loss`).
pub fn contrastive_loss(
    g: &mut Graph,
    model: &LightMob,
    attention: &HistoryAttention,
    sample: &Sample,
    max_history: usize,
) -> Option<Var> {
    if !has_contrastive_signal(sample) {
        return None;
    }
    let recent_hidden = model.encode_all(g, &sample.recent, sample.user);
    contrastive_loss_with(g, model, attention, sample, recent_hidden, max_history)
}

/// Like [`contrastive_loss`] but reuses already-encoded recent hidden
/// states (`recent_len x hidden`) — the training loop encodes the recent
/// trajectory once for both the classification and contrastive heads.
pub fn contrastive_loss_with(
    g: &mut Graph,
    model: &LightMob,
    attention: &HistoryAttention,
    sample: &Sample,
    recent_hidden: Var,
    max_history: usize,
) -> Option<Var> {
    if sample.history.is_empty() {
        return None;
    }
    let negatives = negative_positions(sample);
    if negatives.is_empty() {
        return None;
    }
    let history = if sample.history.len() > max_history {
        &sample.history[sample.history.len() - max_history..]
    } else {
        &sample.history[..]
    };

    let history_hidden = model.encode_all(g, history, sample.user);
    let enhanced = attention.enhance(g, recent_hidden, history_hidden);

    let n = sample.recent.len();
    let anchor = g.row(recent_hidden, n - 1);
    let positive = g.row(enhanced, n - 1);
    let neg_rows: Vec<Var> = negatives.iter().map(|&q| g.row(enhanced, q)).collect();
    let neg = g.concat_rows(&neg_rows);
    Some(info_nce(g, anchor, positive, Some(neg)))
}

/// Convenience for tests/diagnostics: does this sample contribute a
/// contrastive term?
pub fn has_contrastive_signal(sample: &Sample) -> bool {
    !sample.history.is_empty() && !negative_positions(sample).is_empty()
}

/// Count how many recent positions share the target as next location — the
/// positions the §III-C filter excludes.
pub fn filtered_positive_like(sample: &Sample) -> usize {
    let n = sample.recent.len();
    (0..n.saturating_sub(1))
        .filter(|&q| sample.recent[q + 1].loc == sample.target)
        .count()
}

#[allow(dead_code)]
fn location(sample: &Sample, q: usize) -> LocationId {
    sample.recent[q].loc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AdaMoveConfig;
    use adamove_mobility::{Point, Timestamp, UserId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pt(loc: u32, h: i64) -> Point {
        Point::new(loc, Timestamp::from_hours(h))
    }

    fn sample(recent_locs: &[u32], history_locs: &[u32], target: u32) -> Sample {
        let history: Vec<Point> = history_locs
            .iter()
            .enumerate()
            .map(|(i, &l)| pt(l, i as i64))
            .collect();
        let recent: Vec<Point> = recent_locs
            .iter()
            .enumerate()
            .map(|(i, &l)| pt(l, 100 + i as i64))
            .collect();
        Sample {
            user: UserId(0),
            recent,
            history,
            target: LocationId(target),
            target_time: Timestamp::from_hours(200),
        }
    }

    #[test]
    fn negative_positions_exclude_target_successors() {
        // recent = [1, 2, 3, 2], target = 2.
        // q=0 -> next 2 == target: excluded. q=1 -> next 3: negative.
        // q=2 -> next 2 == target: excluded. q=3 is the anchor: excluded.
        let s = sample(&[1, 2, 3, 2], &[0], 2);
        assert_eq!(negative_positions(&s), vec![1]);
        assert_eq!(filtered_positive_like(&s), 2);
    }

    #[test]
    fn single_point_recent_has_no_negatives() {
        let s = sample(&[1], &[0, 0], 2);
        assert!(negative_positions(&s).is_empty());
        assert!(!has_contrastive_signal(&s));
    }

    #[test]
    fn contrastive_loss_present_only_with_history_and_negatives() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let model = LightMob::new(&mut store, AdaMoveConfig::tiny(), 10, 2, &mut rng);
        let attn = HistoryAttention::new(&mut store, model.config.hidden, &mut rng);

        let with_signal = sample(&[1, 2, 3], &[4, 5, 6], 7);
        let no_history = sample(&[1, 2, 3], &[], 7);
        let no_negatives = sample(&[1, 7], &[4, 5], 7);

        let mut g = Graph::new(&store);
        assert!(contrastive_loss(&mut g, &model, &attn, &with_signal, 100).is_some());
        assert!(contrastive_loss(&mut g, &model, &attn, &no_history, 100).is_none());
        assert!(contrastive_loss(&mut g, &model, &attn, &no_negatives, 100).is_none());
    }

    #[test]
    fn contrastive_loss_is_finite_and_backpropagates() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut store = ParamStore::new();
        let model = LightMob::new(&mut store, AdaMoveConfig::tiny(), 10, 2, &mut rng);
        let attn = HistoryAttention::new(&mut store, model.config.hidden, &mut rng);
        let s = sample(&[1, 2, 3, 4], &[5, 6, 7, 8, 9], 0);

        let mut g = Graph::new(&store);
        let loss = contrastive_loss(&mut g, &model, &attn, &s, 100).unwrap();
        let value = g.scalar(loss);
        assert!(value.is_finite() && value > 0.0, "loss {value}");
        let grads = g.backward(loss);
        // Both the attention projections and the encoder receive gradients.
        assert!(grads.get(store.find("history.wq.w").unwrap()).is_some());
        assert!(grads.get(store.find("encoder.lstm.w").unwrap()).is_some());
        // The predictor head does not participate in the contrastive term.
        assert!(grads.get(store.find("predictor.w").unwrap()).is_none());
    }

    #[test]
    fn history_cap_truncates_oldest_points() {
        // With max_history = 2, only the last 2 history points feed the
        // attention. Verify by checking the loss differs from the uncapped
        // one (the representations change).
        let mut rng = StdRng::seed_from_u64(9);
        let mut store = ParamStore::new();
        let model = LightMob::new(&mut store, AdaMoveConfig::tiny(), 10, 2, &mut rng);
        let attn = HistoryAttention::new(&mut store, model.config.hidden, &mut rng);
        let s = sample(&[1, 2, 3], &[4, 5, 6, 7, 8], 9);
        let mut g = Graph::new(&store);
        let capped = contrastive_loss(&mut g, &model, &attn, &s, 2).unwrap();
        let full = contrastive_loss(&mut g, &model, &attn, &s, 100).unwrap();
        assert_ne!(g.scalar(capped), g.scalar(full));
    }

    #[test]
    fn enhanced_representations_have_recent_shape() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut store = ParamStore::new();
        let model = LightMob::new(&mut store, AdaMoveConfig::tiny(), 10, 2, &mut rng);
        let attn = HistoryAttention::new(&mut store, model.config.hidden, &mut rng);
        let s = sample(&[1, 2, 3], &[4, 5, 6, 7], 0);
        let mut g = Graph::new(&store);
        let rec = model.encode_all(&mut g, &s.recent, s.user);
        let hist = model.encode_all(&mut g, &s.history, s.user);
        let enhanced = attn.enhance(&mut g, rec, hist);
        assert_eq!(g.value(enhanced).shape(), (3, 16));
    }
}
