//! Model hyperparameters (§IV-A defaults).

use serde::{Deserialize, Serialize};

/// Trajectory-encoder families compared in Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EncoderKind {
    /// Elman RNN.
    Rnn,
    /// Gated recurrent unit (strongest in Fig. 5).
    Gru,
    /// LSTM — the paper's default.
    Lstm,
    /// Two-layer, 8-head Transformer encoder.
    Transformer,
}

impl EncoderKind {
    /// Short label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            EncoderKind::Rnn => "RNN",
            EncoderKind::Gru => "GRU",
            EncoderKind::Lstm => "LSTM",
            EncoderKind::Transformer => "Transformer",
        }
    }
}

/// LightMob hyperparameters. Defaults follow §IV-A: embedding dims
/// `{48, 8, 16}` for location/time/user, an LSTM encoder, and a hidden
/// width matching the concatenated embedding.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaMoveConfig {
    /// Location-embedding width (paper: 48).
    pub loc_dim: usize,
    /// Time-slot-embedding width (paper: 8).
    pub time_dim: usize,
    /// User-embedding width (paper: 16).
    pub user_dim: usize,
    /// Hidden width of the trajectory encoder.
    pub hidden: usize,
    /// Encoder family.
    pub encoder: EncoderKind,
    /// Transformer depth (only used by [`EncoderKind::Transformer`]).
    pub transformer_layers: usize,
    /// Transformer heads (only used by [`EncoderKind::Transformer`]).
    pub transformer_heads: usize,
    /// Contrastive trade-off `lambda` (Eq. 11; per-dataset in §IV-A:
    /// 0.8 NYC / 0.2 TKY / 0.6 LYMOB).
    pub lambda: f32,
    /// Cap on history length consumed by the training-time attention branch
    /// (cost control; the paper's historical trajectories are unbounded).
    pub max_history: usize,
}

impl Default for AdaMoveConfig {
    fn default() -> Self {
        Self {
            loc_dim: 48,
            time_dim: 8,
            user_dim: 16,
            hidden: 64,
            encoder: EncoderKind::Lstm,
            transformer_layers: 2,
            transformer_heads: 8,
            lambda: 0.6,
            max_history: 120,
        }
    }
}

impl AdaMoveConfig {
    /// A small configuration for unit tests and examples: tiny embeddings,
    /// fast to train, same code paths.
    pub fn tiny() -> Self {
        Self {
            loc_dim: 12,
            time_dim: 4,
            user_dim: 4,
            hidden: 16,
            transformer_heads: 4,
            ..Self::default()
        }
    }

    /// Input width of the encoder (concatenated embeddings, Eq. 4).
    pub fn input_dim(&self) -> usize {
        self.loc_dim + self.time_dim + self.user_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = AdaMoveConfig::default();
        assert_eq!(c.loc_dim, 48);
        assert_eq!(c.time_dim, 8);
        assert_eq!(c.user_dim, 16);
        assert_eq!(c.encoder, EncoderKind::Lstm);
        assert_eq!(c.input_dim(), 72);
        assert_eq!(c.transformer_layers, 2);
        assert_eq!(c.transformer_heads, 8);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> = [
            EncoderKind::Rnn,
            EncoderKind::Gru,
            EncoderKind::Lstm,
            EncoderKind::Transformer,
        ]
        .iter()
        .map(|k| k.label())
        .collect();
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn tiny_config_is_consistent() {
        let c = AdaMoveConfig::tiny();
        assert_eq!(c.input_dim(), 20);
        // Transformer head divisibility must hold for the tiny config too.
        assert_eq!(c.hidden % c.transformer_heads, 0);
    }
}
