//! Evaluation metrics: Rec@{1,5,10} and MRR@10 (§IV-A).

use adamove_tensor::stats::rank_of;
use serde::{Deserialize, Serialize};

/// Aggregated metrics over an evaluation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Recall@1 (accuracy).
    pub rec1: f32,
    /// Recall@5.
    pub rec5: f32,
    /// Recall@10.
    pub rec10: f32,
    /// Mean reciprocal rank, truncated at rank 10 (MRR@10).
    pub mrr: f32,
    /// Number of evaluated samples.
    pub count: usize,
}

impl Metrics {
    /// All-zero metrics (empty evaluation).
    pub fn zero() -> Self {
        Self {
            rec1: 0.0,
            rec5: 0.0,
            rec10: 0.0,
            mrr: 0.0,
            count: 0,
        }
    }

    /// Render as the paper's four-column row.
    pub fn row(&self) -> String {
        format!(
            "{:.4}  {:.4}  {:.4}  {:.4}",
            self.rec1, self.rec5, self.rec10, self.mrr
        )
    }
}

/// Streaming accumulator: feed `(scores, target)` pairs, then `finish`.
///
/// State is an exact integer histogram of target ranks, so accumulators are
/// mergeable without any floating-point drift: splitting a sample stream
/// into chunks, accumulating each chunk independently, and [`merge`]-ing
/// yields *bit-identical* metrics to one sequential pass, regardless of how
/// the stream was partitioned. All floating-point arithmetic (the MRR
/// reciprocal sum, in a fixed rank order) happens once, in [`finish`].
///
/// [`merge`]: MetricAccumulator::merge
#[derive(Debug, Default, Clone)]
pub struct MetricAccumulator {
    /// `rank_hits[r - 1]` counts observations whose target landed at
    /// (1-based) rank `r`; ranks beyond 10 only contribute to `n`.
    rank_hits: [usize; 10],
    n: usize,
}

impl MetricAccumulator {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one prediction. `scores` are unnormalised per-location scores
    /// (higher = better); `target` is the true location index.
    pub fn observe(&mut self, scores: &[f32], target: usize) {
        assert!(
            target < scores.len(),
            "observe: target {target} out of range {}",
            scores.len()
        );
        let rank = rank_of(scores, target);
        if (1..=10).contains(&rank) {
            self.rank_hits[rank - 1] += 1;
        }
        self.n += 1;
    }

    /// Fold another accumulator's observations into this one. Integer
    /// histogram addition: exact, order-independent, and associative, so
    /// parallel chunk evaluation reproduces sequential metrics bit for bit.
    pub fn merge(&mut self, other: &MetricAccumulator) {
        for (mine, theirs) in self.rank_hits.iter_mut().zip(&other.rank_hits) {
            *mine += theirs;
        }
        self.n += other.n;
    }

    /// Number of observations so far.
    pub fn count(&self) -> usize {
        self.n
    }

    /// Finalise into [`Metrics`].
    pub fn finish(&self) -> Metrics {
        if self.n == 0 {
            return Metrics::zero();
        }
        let hits = |upto: usize| -> usize { self.rank_hits[..upto].iter().sum() };
        // Fixed summation order (rank 1 to 10) keeps the f64 result a pure
        // function of the histogram.
        let mrr_sum: f64 = self
            .rank_hits
            .iter()
            .enumerate()
            .map(|(i, &c)| c as f64 / (i + 1) as f64)
            .sum();
        let n = self.n as f32;
        Metrics {
            rec1: hits(1) as f32 / n,
            rec5: hits(5) as f32 / n,
            rec10: hits(10) as f32 / n,
            mrr: (mrr_sum / self.n as f64) as f32,
            count: self.n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions_score_one() {
        let mut acc = MetricAccumulator::new();
        for t in 0..4usize {
            let mut scores = vec![0.0; 20];
            scores[t] = 1.0;
            acc.observe(&scores, t);
        }
        let m = acc.finish();
        assert_eq!(m.rec1, 1.0);
        assert_eq!(m.rec5, 1.0);
        assert_eq!(m.rec10, 1.0);
        assert_eq!(m.mrr, 1.0);
        assert_eq!(m.count, 4);
    }

    #[test]
    fn rank_buckets_are_respected() {
        // Target at rank 3: misses rec@1, hits rec@5/10, MRR contribution 1/3.
        let mut acc = MetricAccumulator::new();
        let scores = vec![0.9, 0.8, 0.5, 0.1]; // target idx 2 has rank 3
        acc.observe(&scores, 2);
        let m = acc.finish();
        assert_eq!(m.rec1, 0.0);
        assert_eq!(m.rec5, 1.0);
        assert!((m.mrr - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn rank_beyond_ten_contributes_nothing_to_mrr() {
        let mut acc = MetricAccumulator::new();
        let mut scores: Vec<f32> = (0..20).map(|i| 20.0 - i as f32).collect();
        scores[15] = -1.0; // target at rank 20
        acc.observe(&scores, 15);
        let m = acc.finish();
        assert_eq!(m.rec10, 0.0);
        assert_eq!(m.mrr, 0.0);
    }

    #[test]
    fn averages_over_observations() {
        let mut acc = MetricAccumulator::new();
        let hit = vec![1.0, 0.0];
        let miss = vec![0.0, 1.0];
        acc.observe(&hit, 0);
        acc.observe(&miss, 0); // rank 2
        let m = acc.finish();
        assert_eq!(m.rec1, 0.5);
        assert_eq!(m.rec5, 1.0);
        assert!((m.mrr - 0.75).abs() < 1e-6);
    }

    #[test]
    fn merge_matches_sequential_accumulation_exactly() {
        // Deterministic pseudo-random observations split across 3 chunks.
        let obs: Vec<(Vec<f32>, usize)> = (0..97u64)
            .map(|i| {
                let scores: Vec<f32> = (0..20)
                    .map(|c| {
                        let mut z = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(c as u64);
                        z ^= z >> 29;
                        (z % 1000) as f32 / 1000.0
                    })
                    .collect();
                (scores, (i % 20) as usize)
            })
            .collect();

        let mut sequential = MetricAccumulator::new();
        for (scores, t) in &obs {
            sequential.observe(scores, *t);
        }

        let mut merged = MetricAccumulator::new();
        for chunk in obs.chunks(obs.len() / 3) {
            let mut part = MetricAccumulator::new();
            for (scores, t) in chunk {
                part.observe(scores, *t);
            }
            merged.merge(&part);
        }

        // Bit-identical, not approximately equal.
        assert_eq!(sequential.finish(), merged.finish());
        assert_eq!(merged.count(), 97);

        // Merging in a different chunk order is also exact.
        let mut reversed = MetricAccumulator::new();
        for chunk in obs.chunks(obs.len() / 3).rev() {
            let mut part = MetricAccumulator::new();
            for (scores, t) in chunk {
                part.observe(scores, *t);
            }
            reversed.merge(&part);
        }
        assert_eq!(sequential.finish(), reversed.finish());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut acc = MetricAccumulator::new();
        acc.observe(&[1.0, 0.0], 0);
        let before = acc.finish();
        acc.merge(&MetricAccumulator::new());
        assert_eq!(acc.finish(), before);
    }

    #[test]
    fn empty_accumulator_is_zero() {
        let m = MetricAccumulator::new().finish();
        assert_eq!(m, Metrics::zero());
        assert_eq!(m.count, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn observe_rejects_bad_target() {
        MetricAccumulator::new().observe(&[0.1, 0.2], 5);
    }

    #[test]
    fn row_renders_four_columns() {
        let m = Metrics {
            rec1: 0.25,
            rec5: 0.5,
            rec10: 0.75,
            mrr: 0.4,
            count: 8,
        };
        assert_eq!(m.row(), "0.2500  0.5000  0.7500  0.4000");
    }
}
