//! Evaluation metrics: Rec@{1,5,10} and MRR@10 (§IV-A).

use adamove_tensor::stats::rank_of;
use serde::{Deserialize, Serialize};

/// Aggregated metrics over an evaluation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Recall@1 (accuracy).
    pub rec1: f32,
    /// Recall@5.
    pub rec5: f32,
    /// Recall@10.
    pub rec10: f32,
    /// Mean reciprocal rank, truncated at rank 10 (MRR@10).
    pub mrr: f32,
    /// Number of evaluated samples.
    pub count: usize,
}

impl Metrics {
    /// All-zero metrics (empty evaluation).
    pub fn zero() -> Self {
        Self {
            rec1: 0.0,
            rec5: 0.0,
            rec10: 0.0,
            mrr: 0.0,
            count: 0,
        }
    }

    /// Render as the paper's four-column row.
    pub fn row(&self) -> String {
        format!(
            "{:.4}  {:.4}  {:.4}  {:.4}",
            self.rec1, self.rec5, self.rec10, self.mrr
        )
    }
}

/// Streaming accumulator: feed `(scores, target)` pairs, then `finish`.
#[derive(Debug, Default, Clone)]
pub struct MetricAccumulator {
    hits1: usize,
    hits5: usize,
    hits10: usize,
    mrr_sum: f64,
    n: usize,
}

impl MetricAccumulator {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one prediction. `scores` are unnormalised per-location scores
    /// (higher = better); `target` is the true location index.
    pub fn observe(&mut self, scores: &[f32], target: usize) {
        assert!(
            target < scores.len(),
            "observe: target {target} out of range {}",
            scores.len()
        );
        let rank = rank_of(scores, target);
        if rank <= 1 {
            self.hits1 += 1;
        }
        if rank <= 5 {
            self.hits5 += 1;
        }
        if rank <= 10 {
            self.hits10 += 1;
            self.mrr_sum += 1.0 / rank as f64;
        }
        self.n += 1;
    }

    /// Number of observations so far.
    pub fn count(&self) -> usize {
        self.n
    }

    /// Finalise into [`Metrics`].
    pub fn finish(&self) -> Metrics {
        if self.n == 0 {
            return Metrics::zero();
        }
        let n = self.n as f32;
        Metrics {
            rec1: self.hits1 as f32 / n,
            rec5: self.hits5 as f32 / n,
            rec10: self.hits10 as f32 / n,
            mrr: (self.mrr_sum / self.n as f64) as f32,
            count: self.n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions_score_one() {
        let mut acc = MetricAccumulator::new();
        for t in 0..4usize {
            let mut scores = vec![0.0; 20];
            scores[t] = 1.0;
            acc.observe(&scores, t);
        }
        let m = acc.finish();
        assert_eq!(m.rec1, 1.0);
        assert_eq!(m.rec5, 1.0);
        assert_eq!(m.rec10, 1.0);
        assert_eq!(m.mrr, 1.0);
        assert_eq!(m.count, 4);
    }

    #[test]
    fn rank_buckets_are_respected() {
        // Target at rank 3: misses rec@1, hits rec@5/10, MRR contribution 1/3.
        let mut acc = MetricAccumulator::new();
        let scores = vec![0.9, 0.8, 0.5, 0.1]; // target idx 2 has rank 3
        acc.observe(&scores, 2);
        let m = acc.finish();
        assert_eq!(m.rec1, 0.0);
        assert_eq!(m.rec5, 1.0);
        assert!((m.mrr - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn rank_beyond_ten_contributes_nothing_to_mrr() {
        let mut acc = MetricAccumulator::new();
        let mut scores: Vec<f32> = (0..20).map(|i| 20.0 - i as f32).collect();
        scores[15] = -1.0; // target at rank 20
        acc.observe(&scores, 15);
        let m = acc.finish();
        assert_eq!(m.rec10, 0.0);
        assert_eq!(m.mrr, 0.0);
    }

    #[test]
    fn averages_over_observations() {
        let mut acc = MetricAccumulator::new();
        let hit = vec![1.0, 0.0];
        let miss = vec![0.0, 1.0];
        acc.observe(&hit, 0);
        acc.observe(&miss, 0); // rank 2
        let m = acc.finish();
        assert_eq!(m.rec1, 0.5);
        assert_eq!(m.rec5, 1.0);
        assert!((m.mrr - 0.75).abs() < 1e-6);
    }

    #[test]
    fn empty_accumulator_is_zero() {
        let m = MetricAccumulator::new().finish();
        assert_eq!(m, Metrics::zero());
        assert_eq!(m.count, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn observe_rejects_bad_target() {
        MetricAccumulator::new().observe(&[0.1, 0.2], 5);
    }

    #[test]
    fn row_renders_four_columns() {
        let m = Metrics {
            rec1: 0.25,
            rec5: 0.5,
            rec10: 0.75,
            mrr: 0.4,
            count: 8,
        };
        assert_eq!(m.row(), "0.2500  0.5000  0.7500  0.4000");
    }
}
