//! Teacher-student distillation — the extension sketched in the paper's
//! conclusion ("we aim to extend the base model in AdaMove to a more
//! powerful lightweight model that can distill knowledge comprehensively,
//! e.g., teacher-student model").
//!
//! A trained two-branch teacher (typically [`adamove_baselines`-style]
//! DeepMove, or any scorer) produces soft next-location distributions; the
//! LightMob student is trained on the standard hybrid objective plus a
//! soft cross-entropy against temperature-softened teacher probabilities
//! (Hinton et al., 2015):
//!
//! `L = (1 - alpha) * CE(student, y) + alpha * T^2 * CE_soft(student/T, teacher/T)`
//!
//! Like the contrastive branch, the teacher runs only at training time —
//! the student stays recent-only and PTTA-compatible at inference.

use crate::lightmob::LightMob;
use crate::metrics::MetricAccumulator;
use crate::train::{EpochLog, TrainReport, TrainingConfig};
use adamove_autograd::{Gradients, Graph, ParamStore, Var};
use adamove_mobility::Sample;
use adamove_nn::{Adam, Optimizer, PlateauScheduler};
use adamove_tensor::matrix::softmax_inplace;
use adamove_tensor::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Distillation hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DistillConfig {
    /// Softening temperature `T` (> 0); 2-4 is typical.
    pub temperature: f32,
    /// Mix between the hard CE (`alpha = 0`) and the soft teacher loss
    /// (`alpha = 1`).
    pub alpha: f32,
}

impl Default for DistillConfig {
    fn default() -> Self {
        Self {
            temperature: 2.0,
            alpha: 0.5,
        }
    }
}

/// Soft cross-entropy of a student's logits row against fixed teacher
/// probabilities (`1 x L` each): `-sum(p_t * log_softmax(z_s / T)) * T^2`.
pub fn soft_cross_entropy(
    g: &mut Graph,
    student_logits: Var,
    teacher_probs: Matrix,
    temperature: f32,
) -> Var {
    assert!(temperature > 0.0, "temperature must be positive");
    let scaled = g.scale(student_logits, 1.0 / temperature);
    let log_probs = g.log_softmax_rows(scaled);
    let p = g.constant(teacher_probs);
    let weighted = g.mul(p, log_probs);
    let total = g.sum_all(weighted);
    // Negative mean per row, times the standard T^2 gradient rescale.
    let rows = g.value(log_probs).rows() as f32;
    g.scale(total, -temperature * temperature / rows)
}

/// Temperature-softened probabilities from raw teacher scores.
pub fn soften(scores: &[f32], temperature: f32) -> Vec<f32> {
    let mut p: Vec<f32> = scores.iter().map(|&s| s / temperature).collect();
    softmax_inplace(&mut p);
    p
}

/// Train a LightMob student against an arbitrary teacher scorer.
///
/// `teacher` maps a sample to raw (unsoftened) scores over locations; it is
/// evaluated outside the graph, so any model — including non-differentiable
/// ones — can teach.
pub fn distill(
    student: &LightMob,
    store: &mut ParamStore,
    train: &[Sample],
    val: &[Sample],
    config: &DistillConfig,
    training: &TrainingConfig,
    mut teacher: impl FnMut(&Sample) -> Vec<f32>,
) -> TrainReport {
    assert!(!train.is_empty(), "distill: no training samples");
    assert!((0.0..=1.0).contains(&config.alpha), "alpha in [0, 1]");
    let mut rng = StdRng::seed_from_u64(training.seed);
    let mut optimizer = Adam::new();
    let mut scheduler = PlateauScheduler::new(
        training.initial_lr,
        training.lr_factor,
        training.lr_patience,
        training.min_lr,
    );

    // Teacher outputs are fixed: precompute once.
    let teacher_probs: Vec<Vec<f32>> = train
        .iter()
        .map(|s| soften(&teacher(s), config.temperature))
        .collect();

    let mut order: Vec<usize> = (0..train.len()).collect();
    let mut epochs = Vec::new();
    for epoch in 0..training.max_epochs {
        let epoch_start = adamove_obs::Stopwatch::start();
        order.shuffle(&mut rng);
        let lr = scheduler.lr();
        let mut loss_sum = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(training.batch_size) {
            let (loss_value, grads): (f32, Gradients) = {
                let mut g = Graph::new(store);
                let mut logit_rows = Vec::with_capacity(chunk.len());
                let mut targets = Vec::with_capacity(chunk.len());
                let mut soft_terms = Vec::with_capacity(chunk.len());
                for &i in chunk {
                    let s = &train[i];
                    let h = student.encode_last(&mut g, &s.recent, s.user);
                    let logits = student.logits(&mut g, h);
                    if config.alpha > 0.0 {
                        let probs =
                            Matrix::from_vec(1, teacher_probs[i].len(), teacher_probs[i].clone());
                        soft_terms.push(soft_cross_entropy(
                            &mut g,
                            logits,
                            probs,
                            config.temperature,
                        ));
                    }
                    logit_rows.push(logits);
                    targets.push(s.target.0);
                }
                let batch_logits = g.concat_rows(&logit_rows);
                let hard = g.cross_entropy_logits(batch_logits, &targets);
                let loss = if soft_terms.is_empty() {
                    hard
                } else {
                    let soft_stack = g.concat_rows(&soft_terms);
                    let soft_mean = g.mean_all(soft_stack);
                    let a = g.scale(soft_mean, config.alpha);
                    let b = g.scale(hard, 1.0 - config.alpha);
                    g.add(a, b)
                };
                (g.scalar(loss), g.backward(loss))
            };
            let mut grads = grads;
            grads.clip_global_norm(training.clip_norm);
            optimizer.step(store, &grads, lr);
            loss_sum += loss_value as f64;
            batches += 1;
        }

        // Validation with the student alone.
        let mut acc = MetricAccumulator::new();
        let mut idx: Vec<usize> = (0..val.len()).collect();
        if let Some(cap) = training.val_subsample {
            if idx.len() > cap {
                idx.shuffle(&mut rng);
                idx.truncate(cap);
            }
        }
        for &i in &idx {
            let s = &val[i];
            acc.observe(
                &student.predict_scores(store, &s.recent, s.user),
                s.target.index(),
            );
        }
        let val_acc = if idx.is_empty() {
            0.0
        } else {
            acc.finish().rec1
        };
        scheduler.observe(val_acc);
        epochs.push(EpochLog {
            epoch,
            train_loss: (loss_sum / batches.max(1) as f64) as f32,
            val_accuracy: val_acc,
            lr,
            epoch_secs: epoch_start.elapsed().as_secs_f32(),
        });
        if scheduler.exhausted() {
            break;
        }
    }

    TrainReport {
        epochs_run: epochs.len(),
        best_val_accuracy: scheduler.best(),
        epochs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AdaMoveConfig;
    use adamove_mobility::{LocationId, Point, Timestamp, UserId};

    fn pt(loc: u32, h: i64) -> Point {
        Point::new(loc, Timestamp::from_hours(h))
    }

    fn cycle_samples(n: usize) -> Vec<Sample> {
        (0..n)
            .map(|i| Sample {
                user: UserId(0),
                recent: (0..3)
                    .map(|k| pt(((i + k) % 4) as u32, (i * 3 + k) as i64))
                    .collect(),
                history: vec![],
                target: LocationId(((i + 3) % 4) as u32),
                target_time: Timestamp::from_hours((i * 3 + 3) as i64),
            })
            .collect()
    }

    #[test]
    fn soften_produces_distribution() {
        let p = soften(&[1.0, 2.0, 3.0], 2.0);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        // Higher temperature flattens.
        let p_hot = soften(&[1.0, 2.0, 3.0], 10.0);
        assert!(p_hot[0] > p[0]);
        assert!(p_hot[2] < p[2]);
    }

    #[test]
    fn soft_cross_entropy_minimal_when_distributions_match() {
        let store = ParamStore::new();
        let mut g = Graph::new(&store);
        let logits = g.constant(Matrix::from_vec(1, 3, vec![2.0, 0.0, -2.0]));
        let matching = soften(&[2.0, 0.0, -2.0], 2.0);
        let mismatched = soften(&[-2.0, 0.0, 2.0], 2.0);
        let good = soft_cross_entropy(&mut g, logits, Matrix::from_vec(1, 3, matching), 2.0);
        let bad = soft_cross_entropy(&mut g, logits, Matrix::from_vec(1, 3, mismatched), 2.0);
        assert!(g.scalar(good) < g.scalar(bad));
    }

    #[test]
    fn perfect_teacher_accelerates_the_student() {
        // Teacher = the ground truth distribution: distillation must reach
        // high accuracy within a tiny epoch budget.
        let samples = cycle_samples(60);
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let student = LightMob::new(&mut store, AdaMoveConfig::tiny(), 4, 1, &mut rng);
        let report = distill(
            &student,
            &mut store,
            &samples,
            &samples[..12],
            &DistillConfig {
                temperature: 2.0,
                alpha: 0.5,
            },
            &TrainingConfig {
                max_epochs: 10,
                batch_size: 16,
                ..TrainingConfig::default()
            },
            |s| {
                let mut scores = vec![0.0f32; 4];
                scores[s.target.index()] = 8.0;
                scores
            },
        );
        assert!(
            report.best_val_accuracy > 0.8,
            "accuracy {}",
            report.best_val_accuracy
        );
    }

    #[test]
    fn alpha_zero_reduces_to_hard_training() {
        let samples = cycle_samples(30);
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let student = LightMob::new(&mut store, AdaMoveConfig::tiny(), 4, 1, &mut rng);
        let report = distill(
            &student,
            &mut store,
            &samples,
            &samples[..6],
            &DistillConfig {
                temperature: 2.0,
                alpha: 0.0,
            },
            &TrainingConfig {
                max_epochs: 3,
                batch_size: 16,
                ..TrainingConfig::default()
            },
            |_| vec![0.25; 4], // teacher ignored at alpha = 0
        );
        assert_eq!(report.epochs_run, report.epochs.len());
        assert!(report.epochs.iter().all(|e| e.train_loss.is_finite()));
    }

    #[test]
    #[should_panic(expected = "alpha in [0, 1]")]
    fn rejects_invalid_alpha() {
        let samples = cycle_samples(4);
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let student = LightMob::new(&mut store, AdaMoveConfig::tiny(), 4, 1, &mut rng);
        distill(
            &student,
            &mut store,
            &samples,
            &samples,
            &DistillConfig {
                temperature: 1.0,
                alpha: 1.5,
            },
            &TrainingConfig::default(),
            |_| vec![0.25; 4],
        );
    }
}
