//! Evaluation harness: metrics + per-sample latency for any inference mode.
//!
//! Three modes cover the paper's comparisons: `Frozen` (the `w/o PTTA`
//! ablation and all non-TTA baselines), `Ptta` (AdaMove and its Fig. 4
//! variants via [`PttaConfig`]), and `T3a` (the comparator). Latency is
//! wall-clock per sample, feeding the Table III efficiency results.
//!
//! The `_par` variants fan samples out over worker threads (see
//! [`parallel`](crate::parallel)). PTTA adapts per sample with no state
//! carried across the stream, so chunked evaluation is legal; with the
//! exact accumulator merge the parallel metrics are bit-identical to the
//! sequential ones. T3A is stateful across the stream and always runs
//! sequentially.

use crate::lightmob::LightMob;
use crate::metrics::{MetricAccumulator, Metrics};
use crate::parallel::par_map_chunks;
use crate::ptta::{Ptta, PttaConfig};
use crate::t3a::{T3a, T3aConfig};
use adamove_autograd::ParamStore;
use adamove_mobility::Sample;
use adamove_obs::Stopwatch;
use std::time::Duration;

/// Latency distribution of an evaluation or serving run.
#[derive(Debug, Clone, Copy)]
pub struct LatencyProfile {
    /// Median per-sample latency in microseconds.
    pub p50_us: f64,
    /// 99th-percentile per-sample latency in microseconds.
    pub p99_us: f64,
    /// Completed samples per wall-clock second (reflects parallel speedup,
    /// unlike the per-sample percentiles which measure compute cost).
    pub throughput: f64,
    /// Number of samples measured.
    pub samples: usize,
}

impl LatencyProfile {
    /// All-zero profile (empty run).
    pub fn empty() -> Self {
        Self {
            p50_us: 0.0,
            p99_us: 0.0,
            throughput: 0.0,
            samples: 0,
        }
    }

    /// Build from an observability histogram of per-sample latencies in
    /// nanoseconds (see [`adamove_obs::Histogram`]) and the run's total
    /// wall-clock time. The sample count is exact; percentiles
    /// interpolate on rank within the holding bucket (see
    /// [`adamove_obs::HistogramSnapshot::percentile`]), which keeps the
    /// hot path free of per-sample `Vec` pushes at bucket resolution.
    pub fn from_histogram(hist: &adamove_obs::HistogramSnapshot, total: Duration) -> Self {
        if hist.count == 0 {
            return Self::empty();
        }
        let secs = total.as_secs_f64();
        Self {
            p50_us: hist.percentile(0.50) / 1_000.0,
            p99_us: hist.percentile(0.99) / 1_000.0,
            throughput: if secs > 0.0 {
                hist.count as f64 / secs
            } else {
                0.0
            },
            samples: hist.count as usize,
        }
    }

    /// Build from raw per-sample latencies (nanoseconds) and the run's
    /// total wall-clock time. Percentiles use the nearest-rank method.
    pub fn from_nanos(mut latencies: Vec<u64>, total: Duration) -> Self {
        latencies.sort_unstable();
        Self::from_sorted(&latencies, total)
    }

    /// [`LatencyProfile::from_nanos`] for latencies already sorted
    /// ascending — borrows the buffer instead of consuming it, so callers
    /// that keep the raw latencies around (see
    /// [`EvalOutcome::latencies_ns`]) don't pay a copy.
    pub fn from_sorted(latencies: &[u64], total: Duration) -> Self {
        if latencies.is_empty() {
            return Self::empty();
        }
        debug_assert!(latencies.is_sorted());
        let n = latencies.len();
        let pick = |q: f64| -> f64 {
            let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
            latencies[idx] as f64 / 1_000.0
        };
        let secs = total.as_secs_f64();
        Self {
            p50_us: pick(0.50),
            p99_us: pick(0.99),
            throughput: if secs > 0.0 { n as f64 / secs } else { 0.0 },
            samples: n,
        }
    }

    /// One-line human-readable rendering.
    pub fn row(&self) -> String {
        format!(
            "{:.0} samples/s  p50 {:.1} us  p99 {:.1} us",
            self.throughput, self.p50_us, self.p99_us
        )
    }
}

/// How scores are produced at test time.
#[derive(Debug, Clone)]
pub enum InferenceMode {
    /// Frozen parameters — plain forward pass.
    Frozen,
    /// Preference-aware test-time adaptation (Algorithm 1).
    Ptta(PttaConfig),
    /// The T3A comparator (stateful across the test stream).
    T3a(T3aConfig),
}

/// Result of an evaluation run.
#[derive(Debug, Clone)]
pub struct EvalOutcome {
    /// Accuracy metrics.
    pub metrics: Metrics,
    /// Mean per-sample inference time in microseconds (compute cost per
    /// sample, independent of how many workers ran).
    pub avg_latency_us: f64,
    /// Total wall-clock time.
    pub total_time: Duration,
    /// Per-sample latency percentiles and wall-clock throughput.
    pub latency: LatencyProfile,
    /// Raw per-sample latencies in nanoseconds, sorted ascending — lets
    /// callers feed an [`adamove_obs::Histogram`] or recompute percentiles
    /// at other quantiles.
    pub latencies_ns: Vec<u64>,
}

/// Score one chunk of samples, timing each, into a fresh accumulator.
fn score_chunk(
    chunk: &[Sample],
    mut score: impl FnMut(&Sample) -> Vec<f32>,
) -> (MetricAccumulator, Vec<u64>) {
    let mut acc = MetricAccumulator::new();
    let mut latencies = Vec::with_capacity(chunk.len());
    for s in chunk {
        let t0 = Stopwatch::start();
        let scores = score(s);
        latencies.push(t0.elapsed_ns());
        acc.observe(&scores, s.target.index());
    }
    (acc, latencies)
}

/// Assemble an outcome from an accumulator and its per-sample timings.
fn outcome(acc: &MetricAccumulator, mut latencies: Vec<u64>, total_time: Duration) -> EvalOutcome {
    let avg_latency_us = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / 1_000.0 / latencies.len() as f64
    };
    // Sort once; the profile borrows the buffer and the outcome then takes
    // ownership of it — no copy of the latency vector is made.
    latencies.sort_unstable();
    EvalOutcome {
        metrics: acc.finish(),
        avg_latency_us,
        total_time,
        latency: LatencyProfile::from_sorted(&latencies, total_time),
        latencies_ns: latencies,
    }
}

/// Evaluate an arbitrary scoring function over `samples` — the entry point
/// baselines use (Markov, DeepMove, DeepTTA, ...). The closure may be
/// stateful (e.g. a T3A-style adapter updating across the stream).
pub fn evaluate_fn(samples: &[Sample], score: impl FnMut(&Sample) -> Vec<f32>) -> EvalOutcome {
    let start = Stopwatch::start();
    let (acc, latencies) = score_chunk(samples, score);
    outcome(&acc, latencies, start.elapsed())
}

/// Parallel [`evaluate_fn`]: samples are split into contiguous chunks, one
/// worker per chunk, and the per-chunk accumulators are merged exactly —
/// metrics are bit-identical to the sequential run for any `threads`.
///
/// The scoring function must be stateless across samples (`Fn`, not
/// `FnMut`): per-sample adaptation like PTTA qualifies, stream-stateful
/// adapters like T3A do not.
pub fn evaluate_fn_par(
    samples: &[Sample],
    threads: usize,
    score: impl Fn(&Sample) -> Vec<f32> + Sync,
) -> EvalOutcome {
    let start = Stopwatch::start();
    let parts = par_map_chunks(samples, threads, |chunk| score_chunk(chunk, &score));
    let total_time = start.elapsed();
    let mut acc = MetricAccumulator::new();
    let mut latencies = Vec::with_capacity(samples.len());
    for (part, lat) in parts {
        acc.merge(&part);
        latencies.extend(lat);
    }
    outcome(&acc, latencies, total_time)
}

/// Evaluate a scoring function with per-cohort breakdown: samples are
/// grouped by `key` (e.g. shifted vs stable users, or per-user ids) and
/// metrics are reported per group. This is the analysis behind the paper's
/// case study — adaptation gains concentrate on the shifted cohort.
pub fn evaluate_by<K: Ord>(
    samples: &[Sample],
    mut key: impl FnMut(&Sample) -> K,
    mut score: impl FnMut(&Sample) -> Vec<f32>,
) -> std::collections::BTreeMap<K, Metrics> {
    let mut accs: std::collections::BTreeMap<K, MetricAccumulator> =
        std::collections::BTreeMap::new();
    for s in samples {
        let scores = score(s);
        accs.entry(key(s))
            .or_default()
            .observe(&scores, s.target.index());
    }
    accs.into_iter().map(|(k, a)| (k, a.finish())).collect()
}

/// Parallel [`evaluate_by`]: each worker builds per-key accumulators for
/// its chunk; the per-chunk maps are folded together with the exact
/// accumulator merge, so every cohort's metrics are bit-identical to the
/// sequential run.
pub fn evaluate_by_par<K: Ord + Send>(
    samples: &[Sample],
    threads: usize,
    key: impl Fn(&Sample) -> K + Sync,
    score: impl Fn(&Sample) -> Vec<f32> + Sync,
) -> std::collections::BTreeMap<K, Metrics> {
    let parts = par_map_chunks(samples, threads, |chunk| {
        let mut accs: std::collections::BTreeMap<K, MetricAccumulator> =
            std::collections::BTreeMap::new();
        for s in chunk {
            let scores = score(s);
            accs.entry(key(s))
                .or_default()
                .observe(&scores, s.target.index());
        }
        accs
    });
    let mut merged: std::collections::BTreeMap<K, MetricAccumulator> =
        std::collections::BTreeMap::new();
    for part in parts {
        for (k, a) in part {
            merged.entry(k).or_default().merge(&a);
        }
    }
    merged.into_iter().map(|(k, a)| (k, a.finish())).collect()
}

/// Evaluate `model` over `samples` under `mode`.
pub fn evaluate(
    model: &LightMob,
    store: &ParamStore,
    samples: &[Sample],
    mode: &InferenceMode,
) -> EvalOutcome {
    evaluate_par(model, store, samples, mode, 1)
}

/// Evaluate `model` over `samples` under `mode` with up to `threads`
/// workers.
///
/// `Frozen` and `Ptta` score each sample independently, so they fan out
/// and still produce metrics bit-identical to `threads = 1` (contiguous
/// chunks + exact accumulator merge). `T3a` carries adapter state across
/// the stream — sample order *is* the algorithm — so it always runs
/// sequentially regardless of `threads`.
pub fn evaluate_par(
    model: &LightMob,
    store: &ParamStore,
    samples: &[Sample],
    mode: &InferenceMode,
    threads: usize,
) -> EvalOutcome {
    match mode {
        InferenceMode::Frozen => evaluate_fn_par(samples, threads, |s| {
            model.predict_scores(store, &s.recent, s.user)
        }),
        InferenceMode::Ptta(cfg) => {
            let ptta = Ptta::new(cfg.clone());
            evaluate_fn_par(samples, threads, |s| ptta.predict_scores(model, store, s))
        }
        InferenceMode::T3a(cfg) => {
            let mut t3a = T3a::new(model, store, cfg.clone());
            evaluate_fn(samples, |s| t3a.adapt_and_predict(model, store, s))
        }
    }
}

/// Score one chunk with a batched scorer: samples are bucketed by
/// `recent.len()` (the batched encoder wants one shared sequence length),
/// scored in sub-batches of at most `batch`, and observed sub-batch by
/// sub-batch while the score vectors are still cache-hot.
///
/// Observation order does not matter for bit-identity: the accumulator is
/// an exact integer rank histogram (see [`MetricAccumulator::merge`]), so
/// bucketed order produces the same metrics as the per-sample path's
/// original order — and skipping the reorder avoids buffering every score
/// vector (`chunk x num_locations` floats) for a second, cache-cold pass.
///
/// Per-sample latency inside a sub-batch is the batch's wall-clock divided
/// evenly — individual samples are not timed separately (that is the point
/// of batching).
fn score_chunk_batched(
    chunk: &[Sample],
    batch: usize,
    score_batch: impl Fn(&[&Sample]) -> Vec<Vec<f32>>,
) -> (MetricAccumulator, Vec<u64>) {
    let mut buckets: std::collections::BTreeMap<usize, Vec<usize>> =
        std::collections::BTreeMap::new();
    for (i, s) in chunk.iter().enumerate() {
        buckets.entry(s.recent.len()).or_default().push(i);
    }
    let mut acc = MetricAccumulator::new();
    let mut latencies = vec![0u64; chunk.len()];
    for idxs in buckets.values() {
        for sub in idxs.chunks(batch) {
            let refs: Vec<&Sample> = sub.iter().map(|&i| &chunk[i]).collect();
            let t0 = Stopwatch::start();
            let out = score_batch(&refs);
            let per_sample_ns = t0.elapsed_ns() / sub.len() as u64;
            for (&i, sc) in sub.iter().zip(out) {
                acc.observe(&sc, chunk[i].target.index());
                latencies[i] = per_sample_ns;
            }
        }
    }
    (acc, latencies)
}

/// Batched [`evaluate_par`]: drains `samples` through the model's
/// `forward_batch` paths, up to `batch` samples per forward pass, with up
/// to `threads` workers over contiguous chunks.
///
/// The batched kernels are pinned bit-identical per sample to the
/// per-sample path (see `adamove_tensor::device`), and each chunk observes
/// its samples in original order, so **metrics are bit-identical to
/// [`evaluate_par`]** for any `batch`/`threads` combination — the testkit
/// differential oracles enforce this. Only the latency accounting differs:
/// a sub-batch's wall-clock is split evenly across its samples.
///
/// `batch <= 1` falls back to [`evaluate_par`] exactly; `T3a` is stateful
/// across the stream and always runs sequentially, unbatched.
pub fn evaluate_batched(
    model: &LightMob,
    store: &ParamStore,
    samples: &[Sample],
    mode: &InferenceMode,
    threads: usize,
    batch: usize,
) -> EvalOutcome {
    if batch <= 1 || matches!(mode, InferenceMode::T3a(_)) {
        return evaluate_par(model, store, samples, mode, threads);
    }
    let start = Stopwatch::start();
    let parts = match mode {
        InferenceMode::Frozen => par_map_chunks(samples, threads, |chunk| {
            score_chunk_batched(chunk, batch, |refs| {
                let items: Vec<(&[adamove_mobility::Point], adamove_mobility::UserId)> =
                    refs.iter().map(|s| (s.recent.as_slice(), s.user)).collect();
                model.predict_scores_batch(store, &items)
            })
        }),
        InferenceMode::Ptta(cfg) => {
            let ptta = Ptta::new(cfg.clone());
            par_map_chunks(samples, threads, |chunk| {
                score_chunk_batched(chunk, batch, |refs| {
                    ptta.predict_scores_batch(model, store, refs)
                })
            })
        }
        // Unreachable: T3a took the fallback return above. An empty part
        // list (empty outcome) keeps this arm panic-free regardless.
        InferenceMode::T3a(_) => Vec::new(),
    };
    let total_time = start.elapsed();
    let mut acc = MetricAccumulator::new();
    let mut latencies = Vec::with_capacity(samples.len());
    for (part, lat) in parts {
        acc.merge(&part);
        latencies.extend(lat);
    }
    outcome(&acc, latencies, total_time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AdaMoveConfig;
    use adamove_mobility::{LocationId, Point, Timestamp, UserId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn samples(n: usize) -> Vec<Sample> {
        (0..n)
            .map(|i| Sample {
                user: UserId(0),
                recent: (0..3)
                    .map(|k| {
                        Point::new(
                            ((i + k) % 5) as u32,
                            Timestamp::from_hours((i * 3 + k) as i64),
                        )
                    })
                    .collect(),
                history: vec![],
                target: LocationId(((i + 3) % 5) as u32),
                target_time: Timestamp::from_hours((i * 3 + 3) as i64),
            })
            .collect()
    }

    fn model() -> (ParamStore, LightMob) {
        let mut rng = StdRng::seed_from_u64(17);
        let mut store = ParamStore::new();
        let m = LightMob::new(&mut store, AdaMoveConfig::tiny(), 5, 1, &mut rng);
        (store, m)
    }

    #[test]
    fn all_modes_produce_metrics() {
        let (store, m) = model();
        let samples = samples(12);
        for mode in [
            InferenceMode::Frozen,
            InferenceMode::Ptta(PttaConfig::default()),
            InferenceMode::T3a(T3aConfig::default()),
        ] {
            let out = evaluate(&m, &store, &samples, &mode);
            assert_eq!(out.metrics.count, 12);
            assert!(out.metrics.rec10 >= out.metrics.rec5);
            assert!(out.metrics.rec5 >= out.metrics.rec1);
            assert!(out.avg_latency_us > 0.0);
        }
    }

    #[test]
    fn metric_ordering_invariant_holds() {
        let (store, m) = model();
        let out = evaluate(&m, &store, &samples(20), &InferenceMode::Frozen);
        let met = out.metrics;
        assert!(met.mrr <= met.rec10 + 1e-6, "MRR@10 <= Rec@10");
        assert!(met.mrr >= met.rec1 / 10.0);
    }

    #[test]
    fn empty_sample_set_is_handled() {
        let (store, m) = model();
        let out = evaluate(&m, &store, &[], &InferenceMode::Frozen);
        assert_eq!(out.metrics.count, 0);
        assert_eq!(out.avg_latency_us, 0.0);
    }

    #[test]
    fn parallel_metrics_are_bit_identical_to_sequential() {
        let (store, m) = model();
        let s = samples(37); // deliberately not a multiple of any thread count
        for mode in [
            InferenceMode::Frozen,
            InferenceMode::Ptta(PttaConfig::default()),
        ] {
            let seq = evaluate(&m, &store, &s, &mode);
            for threads in [2, 3, 4, 8] {
                let par = evaluate_par(&m, &store, &s, &mode, threads);
                // Exact equality — not approximate.
                assert_eq!(par.metrics, seq.metrics, "threads={threads}");
            }
        }
    }

    #[test]
    fn batched_evaluation_is_bit_identical_to_per_sample() {
        let (store, m) = model();
        // Mixed sequence lengths force the length-bucketing path.
        let mut s = samples(23);
        for (i, smp) in s.iter_mut().enumerate() {
            smp.recent.truncate(1 + (i % 3));
        }
        for mode in [
            InferenceMode::Frozen,
            InferenceMode::Ptta(PttaConfig::default()),
        ] {
            let seq = evaluate_par(&m, &store, &s, &mode, 1);
            for (threads, batch) in [(1, 4), (2, 7), (3, 64), (2, 1)] {
                let out = evaluate_batched(&m, &store, &s, &mode, threads, batch);
                assert_eq!(out.metrics, seq.metrics, "threads={threads} batch={batch}");
            }
        }
        // T3a is stream-stateful: the batched entry point falls back to
        // the sequential path and must match it exactly.
        let mode = InferenceMode::T3a(T3aConfig::default());
        let a = evaluate_par(&m, &store, &s, &mode, 1);
        let b = evaluate_batched(&m, &store, &s, &mode, 4, 8);
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn t3a_ignores_thread_count_and_stays_sequential() {
        // T3A's adapter state depends on stream order; the parallel entry
        // point must produce the same (sequential) result for any budget.
        let (store, m) = model();
        let s = samples(16);
        let mode = InferenceMode::T3a(T3aConfig::default());
        let one = evaluate_par(&m, &store, &s, &mode, 1);
        let many = evaluate_par(&m, &store, &s, &mode, 8);
        assert_eq!(one.metrics, many.metrics);
    }

    #[test]
    fn latency_profile_reports_percentiles_and_throughput() {
        let (store, m) = model();
        let out = evaluate(&m, &store, &samples(25), &InferenceMode::Frozen);
        let lat = out.latency;
        assert_eq!(lat.samples, 25);
        assert!(lat.p50_us > 0.0);
        assert!(lat.p99_us >= lat.p50_us);
        assert!(lat.throughput > 0.0);
        assert!(!lat.row().is_empty());

        // Known distribution: 1..=100 us.
        let nanos: Vec<u64> = (1..=100u64).map(|v| v * 1_000).collect();
        let p = LatencyProfile::from_nanos(nanos, Duration::from_secs(1));
        assert_eq!(p.p50_us, 50.0);
        assert_eq!(p.p99_us, 99.0);
        assert_eq!(p.samples, 100);
        assert!((p.throughput - 100.0).abs() < 1e-9);

        let e = LatencyProfile::from_nanos(vec![], Duration::from_secs(1));
        assert_eq!(e.samples, 0);
        assert_eq!(e.p50_us, 0.0);
    }

    #[test]
    fn latency_profile_from_histogram_keeps_exact_counts() {
        let h = adamove_obs::Histogram::new();
        for v in (1..=100u64).map(|v| v * 1_000) {
            h.record(v);
        }
        let p = LatencyProfile::from_histogram(&h.snapshot(), Duration::from_secs(1));
        assert_eq!(p.samples, 100);
        // Rank interpolation within the holding bucket: at bucket
        // resolution, never below the bucket's lower bound.
        assert!(p.p50_us >= 50.0);
        assert!(p.p99_us >= p.p50_us);
        assert!((p.throughput - 100.0).abs() < 1e-9);

        let empty = LatencyProfile::from_histogram(
            &adamove_obs::HistogramSnapshot::empty(),
            Duration::from_secs(1),
        );
        assert_eq!(empty.samples, 0);
        assert_eq!(empty.p50_us, 0.0);
    }

    #[test]
    fn evaluate_by_par_matches_sequential_cohorts() {
        let (store, m) = model();
        let s = samples(31);
        let ptta = Ptta::default();
        let seq = evaluate_by(&s, |x| x.target.0, |x| ptta.predict_scores(&m, &store, x));
        for threads in [2, 5] {
            let par = evaluate_by_par(
                &s,
                threads,
                |x| x.target.0,
                |x| ptta.predict_scores(&m, &store, x),
            );
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn ptta_is_slower_than_frozen_but_same_count() {
        // Adaptation does strictly more work per sample; on identical
        // inputs its latency must not be lower by a large margin. (Timing
        // assertions are flaky by nature, so only a weak sanity bound.)
        let (store, m) = model();
        let s = samples(30);
        let frozen = evaluate(&m, &store, &s, &InferenceMode::Frozen);
        let ptta = evaluate(&m, &store, &s, &InferenceMode::Ptta(PttaConfig::default()));
        assert_eq!(frozen.metrics.count, ptta.metrics.count);
        assert!(ptta.total_time.as_nanos() > 0);
    }
}

#[cfg(test)]
mod cohort_tests {
    use super::*;
    use adamove_mobility::{LocationId, Point, Timestamp, UserId};

    #[test]
    fn evaluate_by_groups_metrics_per_key() {
        // User 0 always predicted correctly, user 1 never.
        let samples: Vec<Sample> = (0..10)
            .map(|i| Sample {
                user: UserId((i % 2) as u32),
                recent: vec![Point::new(0, Timestamp(i as i64))],
                history: vec![],
                target: LocationId(0),
                target_time: Timestamp(100 + i as i64),
            })
            .collect();
        let by_user = evaluate_by(
            &samples,
            |s| s.user.0,
            |s| {
                if s.user.0 == 0 {
                    vec![1.0, 0.0] // correct
                } else {
                    vec![0.0, 1.0] // wrong
                }
            },
        );
        assert_eq!(by_user.len(), 2);
        assert_eq!(by_user[&0].rec1, 1.0);
        assert_eq!(by_user[&1].rec1, 0.0);
        assert_eq!(by_user[&0].count, 5);
    }

    #[test]
    fn evaluate_by_handles_empty_input() {
        let out = evaluate_by(&[], |s: &Sample| s.user.0, |_| vec![1.0]);
        assert!(out.is_empty());
    }
}
