//! Evaluation harness: metrics + per-sample latency for any inference mode.
//!
//! Three modes cover the paper's comparisons: `Frozen` (the `w/o PTTA`
//! ablation and all non-TTA baselines), `Ptta` (AdaMove and its Fig. 4
//! variants via [`PttaConfig`]), and `T3a` (the comparator). Latency is
//! wall-clock per sample, feeding the Table III efficiency results.

use crate::lightmob::LightMob;
use crate::metrics::{MetricAccumulator, Metrics};
use crate::ptta::{Ptta, PttaConfig};
use crate::t3a::{T3a, T3aConfig};
use adamove_autograd::ParamStore;
use adamove_mobility::Sample;
use std::time::{Duration, Instant};

/// How scores are produced at test time.
#[derive(Debug, Clone)]
pub enum InferenceMode {
    /// Frozen parameters — plain forward pass.
    Frozen,
    /// Preference-aware test-time adaptation (Algorithm 1).
    Ptta(PttaConfig),
    /// The T3A comparator (stateful across the test stream).
    T3a(T3aConfig),
}

/// Result of an evaluation run.
#[derive(Debug, Clone)]
pub struct EvalOutcome {
    /// Accuracy metrics.
    pub metrics: Metrics,
    /// Mean per-sample inference time in microseconds.
    pub avg_latency_us: f64,
    /// Total wall-clock time.
    pub total_time: Duration,
}

/// Evaluate an arbitrary scoring function over `samples` — the entry point
/// baselines use (Markov, DeepMove, DeepTTA, ...). The closure may be
/// stateful (e.g. a T3A-style adapter updating across the stream).
pub fn evaluate_fn(
    samples: &[Sample],
    mut score: impl FnMut(&Sample) -> Vec<f32>,
) -> EvalOutcome {
    let mut acc = MetricAccumulator::new();
    let start = Instant::now();
    for s in samples {
        let scores = score(s);
        acc.observe(&scores, s.target.index());
    }
    let total_time = start.elapsed();
    let avg_latency_us = if samples.is_empty() {
        0.0
    } else {
        total_time.as_micros() as f64 / samples.len() as f64
    };
    EvalOutcome {
        metrics: acc.finish(),
        avg_latency_us,
        total_time,
    }
}

/// Evaluate a scoring function with per-cohort breakdown: samples are
/// grouped by `key` (e.g. shifted vs stable users, or per-user ids) and
/// metrics are reported per group. This is the analysis behind the paper's
/// case study — adaptation gains concentrate on the shifted cohort.
pub fn evaluate_by<K: Ord>(
    samples: &[Sample],
    mut key: impl FnMut(&Sample) -> K,
    mut score: impl FnMut(&Sample) -> Vec<f32>,
) -> std::collections::BTreeMap<K, Metrics> {
    let mut accs: std::collections::BTreeMap<K, MetricAccumulator> =
        std::collections::BTreeMap::new();
    for s in samples {
        let scores = score(s);
        accs.entry(key(s))
            .or_default()
            .observe(&scores, s.target.index());
    }
    accs.into_iter().map(|(k, a)| (k, a.finish())).collect()
}

/// Evaluate `model` over `samples` under `mode`.
pub fn evaluate(
    model: &LightMob,
    store: &ParamStore,
    samples: &[Sample],
    mode: &InferenceMode,
) -> EvalOutcome {
    let mut acc = MetricAccumulator::new();
    let start = Instant::now();

    match mode {
        InferenceMode::Frozen => {
            for s in samples {
                let scores = model.predict_scores(store, &s.recent, s.user);
                acc.observe(&scores, s.target.index());
            }
        }
        InferenceMode::Ptta(cfg) => {
            let ptta = Ptta::new(cfg.clone());
            for s in samples {
                let scores = ptta.predict_scores(model, store, s);
                acc.observe(&scores, s.target.index());
            }
        }
        InferenceMode::T3a(cfg) => {
            let mut t3a = T3a::new(model, store, cfg.clone());
            for s in samples {
                let scores = t3a.adapt_and_predict(model, store, s);
                acc.observe(&scores, s.target.index());
            }
        }
    }

    let total_time = start.elapsed();
    let avg_latency_us = if samples.is_empty() {
        0.0
    } else {
        total_time.as_micros() as f64 / samples.len() as f64
    };
    EvalOutcome {
        metrics: acc.finish(),
        avg_latency_us,
        total_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AdaMoveConfig;
    use adamove_mobility::{LocationId, Point, Timestamp, UserId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn samples(n: usize) -> Vec<Sample> {
        (0..n)
            .map(|i| Sample {
                user: UserId(0),
                recent: (0..3)
                    .map(|k| Point::new(((i + k) % 5) as u32, Timestamp::from_hours((i * 3 + k) as i64)))
                    .collect(),
                history: vec![],
                target: LocationId(((i + 3) % 5) as u32),
                target_time: Timestamp::from_hours((i * 3 + 3) as i64),
            })
            .collect()
    }

    fn model() -> (ParamStore, LightMob) {
        let mut rng = StdRng::seed_from_u64(17);
        let mut store = ParamStore::new();
        let m = LightMob::new(&mut store, AdaMoveConfig::tiny(), 5, 1, &mut rng);
        (store, m)
    }

    #[test]
    fn all_modes_produce_metrics() {
        let (store, m) = model();
        let samples = samples(12);
        for mode in [
            InferenceMode::Frozen,
            InferenceMode::Ptta(PttaConfig::default()),
            InferenceMode::T3a(T3aConfig::default()),
        ] {
            let out = evaluate(&m, &store, &samples, &mode);
            assert_eq!(out.metrics.count, 12);
            assert!(out.metrics.rec10 >= out.metrics.rec5);
            assert!(out.metrics.rec5 >= out.metrics.rec1);
            assert!(out.avg_latency_us > 0.0);
        }
    }

    #[test]
    fn metric_ordering_invariant_holds() {
        let (store, m) = model();
        let out = evaluate(&m, &store, &samples(20), &InferenceMode::Frozen);
        let met = out.metrics;
        assert!(met.mrr <= met.rec10 + 1e-6, "MRR@10 <= Rec@10");
        assert!(met.mrr >= met.rec1 / 10.0);
    }

    #[test]
    fn empty_sample_set_is_handled() {
        let (store, m) = model();
        let out = evaluate(&m, &store, &[], &InferenceMode::Frozen);
        assert_eq!(out.metrics.count, 0);
        assert_eq!(out.avg_latency_us, 0.0);
    }

    #[test]
    fn ptta_is_slower_than_frozen_but_same_count() {
        // Adaptation does strictly more work per sample; on identical
        // inputs its latency must not be lower by a large margin. (Timing
        // assertions are flaky by nature, so only a weak sanity bound.)
        let (store, m) = model();
        let s = samples(30);
        let frozen = evaluate(&m, &store, &s, &InferenceMode::Frozen);
        let ptta = evaluate(&m, &store, &s, &InferenceMode::Ptta(PttaConfig::default()));
        assert_eq!(frozen.metrics.count, ptta.metrics.count);
        assert!(ptta.total_time.as_nanos() > 0);
    }
}

#[cfg(test)]
mod cohort_tests {
    use super::*;
    use adamove_mobility::{LocationId, Point, Timestamp, UserId};

    #[test]
    fn evaluate_by_groups_metrics_per_key() {
        // User 0 always predicted correctly, user 1 never.
        let samples: Vec<Sample> = (0..10)
            .map(|i| Sample {
                user: UserId((i % 2) as u32),
                recent: vec![Point::new(0, Timestamp(i as i64))],
                history: vec![],
                target: LocationId(0),
                target_time: Timestamp(100 + i as i64),
            })
            .collect();
        let by_user = evaluate_by(
            &samples,
            |s| s.user.0,
            |s| {
                if s.user.0 == 0 {
                    vec![1.0, 0.0] // correct
                } else {
                    vec![0.0, 1.0] // wrong
                }
            },
        );
        assert_eq!(by_user.len(), 2);
        assert_eq!(by_user[&0].rec1, 1.0);
        assert_eq!(by_user[&1].rec1, 0.0);
        assert_eq!(by_user[&0].count, 5);
    }

    #[test]
    fn evaluate_by_handles_empty_input() {
        let out = evaluate_by(&[], |s: &Sample| s.user.0, |_| vec![1.0]);
        assert!(out.is_empty());
    }
}
