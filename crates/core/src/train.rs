//! The §IV-A training loop.
//!
//! Adam with initial LR `1e-2`, batch size 50, at most 30 epochs; the LR
//! decays on validation-accuracy plateaus and training stops early once it
//! reaches `1e-4`. The objective is the hybrid loss of Eq. 11: batched
//! cross-entropy over next locations plus `lambda` times the per-sample
//! InfoNCE term (only for samples with history and valid negatives).

use crate::history::{contrastive_loss_with, HistoryAttention};
use crate::lightmob::LightMob;
use crate::metrics::MetricAccumulator;
use adamove_autograd::{Graph, ParamStore, Var};
use adamove_mobility::Sample;
use adamove_nn::{Adam, Optimizer, PlateauScheduler};
use adamove_obs::{event, Stopwatch, Tracer};
use adamove_tensor::det::DetRng;
use serde::{Deserialize, Serialize};

/// Training hyperparameters (§IV-A defaults).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainingConfig {
    /// Maximum epochs (paper: 30).
    pub max_epochs: usize,
    /// Minibatch size (paper: 50).
    pub batch_size: usize,
    /// Initial learning rate (paper: 1e-2).
    pub initial_lr: f32,
    /// Plateau decay factor.
    pub lr_factor: f32,
    /// Plateau patience in epochs.
    pub lr_patience: usize,
    /// Early-stop LR floor (paper: 1e-4).
    pub min_lr: f32,
    /// Global gradient-norm clip.
    pub clip_norm: f32,
    /// Cap on validation samples per epoch (cost control; `None` = all).
    pub val_subsample: Option<usize>,
    /// Shuffle/eval seed.
    pub seed: u64,
    /// Print per-epoch progress to stderr.
    pub verbose: bool,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        Self {
            max_epochs: 30,
            batch_size: 50,
            initial_lr: 1e-2,
            lr_factor: 0.5,
            lr_patience: 2,
            min_lr: 1e-4,
            clip_norm: 5.0,
            val_subsample: Some(500),
            seed: 7,
            verbose: false,
        }
    }
}

impl TrainingConfig {
    /// A fast configuration for tests: few epochs, tiny batches.
    pub fn fast() -> Self {
        Self {
            max_epochs: 4,
            batch_size: 16,
            val_subsample: Some(100),
            ..Self::default()
        }
    }
}

/// One epoch's telemetry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochLog {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss.
    pub train_loss: f32,
    /// Validation Rec@1.
    pub val_accuracy: f32,
    /// Learning rate used during the epoch.
    pub lr: f32,
    /// Wall-clock seconds the epoch took (training + validation).
    #[serde(default)]
    pub epoch_secs: f32,
}

/// Outcome of a training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainReport {
    /// Epochs actually run (early stop may cut the budget short).
    pub epochs_run: usize,
    /// Best validation Rec@1 observed.
    pub best_val_accuracy: f32,
    /// Per-epoch telemetry.
    pub epochs: Vec<EpochLog>,
}

/// Trains a [`LightMob`] model (with or without the contrastive branch).
#[derive(Debug, Clone)]
pub struct Trainer {
    /// Hyperparameters.
    pub config: TrainingConfig,
    tracer: Tracer,
}

impl Trainer {
    /// Trainer with the given configuration. Per-epoch progress goes to
    /// the tracer as structured `train_epoch` events: human-readable
    /// stderr lines when `config.verbose` is set (the historical
    /// behaviour), silence otherwise. Use [`Trainer::with_tracer`] to
    /// route the events elsewhere (e.g. a ring buffer).
    pub fn new(config: TrainingConfig) -> Self {
        let tracer = if config.verbose {
            Tracer::stderr()
        } else {
            Tracer::noop()
        };
        Self { config, tracer }
    }

    /// [`Trainer::new`] with an explicit event sink, overriding the
    /// `config.verbose` default.
    pub fn with_tracer(config: TrainingConfig, tracer: Tracer) -> Self {
        Self { config, tracer }
    }

    /// Run training. `attention = None` disables the contrastive branch
    /// (the `w/o LightMob` ablation — the bare base model); `lambda` comes
    /// from the model config.
    pub fn fit(
        &self,
        model: &LightMob,
        attention: Option<&HistoryAttention>,
        store: &mut ParamStore,
        train: &[Sample],
        val: &[Sample],
    ) -> TrainReport {
        assert!(!train.is_empty(), "Trainer::fit: no training samples");
        // Deterministic by construction: DetRng's stream is independent
        // of the external rand backend, so training order (and therefore
        // golden-trace snapshots) is a pure function of the seed.
        let mut rng = DetRng::new(self.config.seed);
        let mut optimizer = Adam::new();
        let mut scheduler = PlateauScheduler::new(
            self.config.initial_lr,
            self.config.lr_factor,
            self.config.lr_patience,
            self.config.min_lr,
        );
        let lambda = model.config.lambda;
        let max_history = model.config.max_history;

        let mut order: Vec<usize> = (0..train.len()).collect();
        let mut epochs = Vec::new();

        for epoch in 0..self.config.max_epochs {
            let epoch_start = Stopwatch::start();
            rng.shuffle(&mut order);
            let lr = scheduler.lr();
            let mut loss_sum = 0.0f64;
            let mut batches = 0usize;

            for chunk in order.chunks(self.config.batch_size) {
                let (loss_value, grads) = {
                    let mut g = Graph::new(store);
                    let loss = Self::batch_loss(
                        &mut g,
                        model,
                        attention,
                        train,
                        chunk,
                        lambda,
                        max_history,
                    );
                    (g.scalar(loss), g.backward(loss))
                };
                let mut grads = grads;
                grads.clip_global_norm(self.config.clip_norm);
                optimizer.step(store, &grads, lr);
                loss_sum += loss_value as f64;
                batches += 1;
            }

            let val_acc = self.validation_accuracy(model, store, val, &mut rng);
            scheduler.observe(val_acc);
            let log = EpochLog {
                epoch,
                train_loss: (loss_sum / batches.max(1) as f64) as f32,
                val_accuracy: val_acc,
                lr,
                epoch_secs: epoch_start.elapsed().as_secs_f32(),
            };
            event!(
                self.tracer,
                "train_epoch",
                epoch = log.epoch,
                loss = log.train_loss,
                val_acc = log.val_accuracy,
                lr = log.lr,
                secs = log.epoch_secs,
            );
            epochs.push(log);
            if scheduler.exhausted() {
                break;
            }
        }

        TrainReport {
            epochs_run: epochs.len(),
            best_val_accuracy: scheduler.best(),
            epochs,
        }
    }

    /// Generic training loop for any per-sample differentiable model —
    /// used by the baseline crate (DeepMove, MHSA, ...). `forward` returns
    /// the sample's `1 x L` logits plus an optional auxiliary loss term
    /// (weighted by `lambda`); `score` produces frozen inference scores for
    /// validation accuracy.
    pub fn fit_generic(
        &self,
        store: &mut ParamStore,
        train: &[Sample],
        val: &[Sample],
        lambda: f32,
        mut forward: impl FnMut(&mut Graph, &Sample) -> (Var, Option<Var>),
        mut score: impl FnMut(&ParamStore, &Sample) -> Vec<f32>,
    ) -> TrainReport {
        assert!(
            !train.is_empty(),
            "Trainer::fit_generic: no training samples"
        );
        // Deterministic by construction: DetRng's stream is independent
        // of the external rand backend, so training order (and therefore
        // golden-trace snapshots) is a pure function of the seed.
        let mut rng = DetRng::new(self.config.seed);
        let mut optimizer = Adam::new();
        let mut scheduler = PlateauScheduler::new(
            self.config.initial_lr,
            self.config.lr_factor,
            self.config.lr_patience,
            self.config.min_lr,
        );
        let mut order: Vec<usize> = (0..train.len()).collect();
        let mut epochs = Vec::new();

        for epoch in 0..self.config.max_epochs {
            let epoch_start = Stopwatch::start();
            rng.shuffle(&mut order);
            let lr = scheduler.lr();
            let mut loss_sum = 0.0f64;
            let mut batches = 0usize;

            for chunk in order.chunks(self.config.batch_size) {
                let (loss_value, grads) = {
                    let mut g = Graph::new(store);
                    let mut logit_rows = Vec::with_capacity(chunk.len());
                    let mut targets = Vec::with_capacity(chunk.len());
                    let mut aux_terms = Vec::new();
                    for &i in chunk {
                        let sample = &train[i];
                        let (logits, aux) = forward(&mut g, sample);
                        logit_rows.push(logits);
                        targets.push(sample.target.0);
                        if lambda != 0.0 {
                            if let Some(a) = aux {
                                aux_terms.push(a);
                            }
                        }
                    }
                    let batch_logits = g.concat_rows(&logit_rows);
                    let cls = g.cross_entropy_logits(batch_logits, &targets);
                    let loss = if aux_terms.is_empty() || lambda == 0.0 {
                        cls
                    } else {
                        let stacked = g.concat_rows(&aux_terms);
                        let mean = g.mean_all(stacked);
                        let scaled = g.scale(mean, lambda);
                        g.add(cls, scaled)
                    };
                    (g.scalar(loss), g.backward(loss))
                };
                let mut grads = grads;
                grads.clip_global_norm(self.config.clip_norm);
                optimizer.step(store, &grads, lr);
                loss_sum += loss_value as f64;
                batches += 1;
            }

            // Validation accuracy with the caller's scorer.
            let val_acc = {
                if val.is_empty() {
                    0.0
                } else {
                    let mut indices: Vec<usize> = (0..val.len()).collect();
                    if let Some(cap) = self.config.val_subsample {
                        if val.len() > cap {
                            rng.shuffle(&mut indices);
                            indices.truncate(cap);
                        }
                    }
                    let mut acc = MetricAccumulator::new();
                    for &i in &indices {
                        let s = &val[i];
                        acc.observe(&score(store, s), s.target.index());
                    }
                    acc.finish().rec1
                }
            };
            scheduler.observe(val_acc);
            let log = EpochLog {
                epoch,
                train_loss: (loss_sum / batches.max(1) as f64) as f32,
                val_accuracy: val_acc,
                lr,
                epoch_secs: epoch_start.elapsed().as_secs_f32(),
            };
            event!(
                self.tracer,
                "train_epoch",
                epoch = log.epoch,
                loss = log.train_loss,
                val_acc = log.val_accuracy,
                lr = log.lr,
                secs = log.epoch_secs,
            );
            epochs.push(log);
            if scheduler.exhausted() {
                break;
            }
        }

        TrainReport {
            epochs_run: epochs.len(),
            best_val_accuracy: scheduler.best(),
            epochs,
        }
    }

    /// Hybrid loss over one minibatch: batched cross-entropy plus the mean
    /// contrastive term (Eq. 11).
    fn batch_loss(
        g: &mut Graph,
        model: &LightMob,
        attention: Option<&HistoryAttention>,
        train: &[Sample],
        chunk: &[usize],
        lambda: f32,
        max_history: usize,
    ) -> Var {
        let mut last_hiddens = Vec::with_capacity(chunk.len());
        let mut targets = Vec::with_capacity(chunk.len());
        let mut con_terms = Vec::new();

        for &i in chunk {
            let sample = &train[i];
            let all = model.encode_all(g, &sample.recent, sample.user);
            let n = g.value(all).rows();
            let last = g.row(all, n - 1);
            last_hiddens.push(last);
            targets.push(sample.target.0);

            if lambda != 0.0 {
                if let Some(attn) = attention {
                    if let Some(con) =
                        contrastive_loss_with(g, model, attn, sample, all, max_history)
                    {
                        con_terms.push(con);
                    }
                }
            }
        }

        let hidden_batch = g.concat_rows(&last_hiddens);
        let logits = model.logits(g, hidden_batch);
        let cls = g.cross_entropy_logits(logits, &targets);

        if con_terms.is_empty() || lambda == 0.0 {
            return cls;
        }
        let stacked = g.concat_rows(&con_terms);
        let con_mean = g.mean_all(stacked);
        let scaled = g.scale(con_mean, lambda);
        g.add(cls, scaled)
    }

    /// Frozen-model Rec@1 over (a subsample of) the validation set.
    fn validation_accuracy(
        &self,
        model: &LightMob,
        store: &ParamStore,
        val: &[Sample],
        rng: &mut DetRng,
    ) -> f32 {
        if val.is_empty() {
            return 0.0;
        }
        let mut indices: Vec<usize> = (0..val.len()).collect();
        if let Some(cap) = self.config.val_subsample {
            if val.len() > cap {
                rng.shuffle(&mut indices);
                indices.truncate(cap);
            }
        }
        let mut acc = MetricAccumulator::new();
        for &i in &indices {
            let s = &val[i];
            let scores = model.predict_scores(store, &s.recent, s.user);
            acc.observe(&scores, s.target.index());
        }
        acc.finish().rec1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AdaMoveConfig;
    use adamove_mobility::{LocationId, Point, Timestamp, UserId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A deterministic toy task: each user cycles through a fixed location
    /// loop, so next-location prediction is learnable from short context.
    fn toy_samples(num_users: u32, per_user: usize) -> Vec<Sample> {
        let mut out = Vec::new();
        for u in 0..num_users {
            // User u's loop: u, u+1, u+2 (mod 6).
            let cycle = [u % 6, (u + 1) % 6, (u + 2) % 6];
            for i in 0..per_user {
                let recent: Vec<Point> = (0..3)
                    .map(|k| {
                        Point::new(
                            cycle[(i + k) % 3],
                            Timestamp::from_hours((i * 3 + k) as i64),
                        )
                    })
                    .collect();
                let target = cycle[i % 3]; // the element after recent's last
                out.push(Sample {
                    user: UserId(u),
                    recent,
                    history: vec![],
                    target: LocationId(target),
                    target_time: Timestamp::from_hours((i * 3 + 3) as i64),
                });
            }
        }
        out
    }

    #[test]
    fn training_learns_a_deterministic_cycle() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let model = LightMob::new(
            &mut store,
            AdaMoveConfig {
                lambda: 0.0,
                ..AdaMoveConfig::tiny()
            },
            6,
            3,
            &mut rng,
        );
        let samples = toy_samples(3, 30);
        // Interleave so every user appears in both train and val.
        let (train, val): (Vec<Sample>, Vec<Sample>) = {
            let mut tr = Vec::new();
            let mut va = Vec::new();
            for (i, s) in samples.into_iter().enumerate() {
                if i % 5 == 4 {
                    va.push(s);
                } else {
                    tr.push(s);
                }
            }
            (tr, va)
        };
        let (train, val) = (&train[..], &val[..]);
        let trainer = Trainer::new(TrainingConfig {
            max_epochs: 15,
            batch_size: 16,
            ..TrainingConfig::default()
        });
        let report = trainer.fit(&model, None, &mut store, train, val);
        assert!(
            report.best_val_accuracy > 0.85,
            "val accuracy {}",
            report.best_val_accuracy
        );
        // The loss must have decreased substantially.
        let first = report.epochs.first().unwrap().train_loss;
        let last = report.epochs.last().unwrap().train_loss;
        assert!(last < first * 0.5, "loss {first} -> {last}");
    }

    #[test]
    fn contrastive_branch_trains_without_errors() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let model = LightMob::new(
            &mut store,
            AdaMoveConfig {
                lambda: 0.5,
                ..AdaMoveConfig::tiny()
            },
            6,
            2,
            &mut rng,
        );
        let attn = HistoryAttention::new(&mut store, model.config.hidden, &mut rng);
        // Give samples history so the contrastive term activates.
        let mut samples = toy_samples(2, 12);
        for s in &mut samples {
            s.history = vec![
                Point::new(4, Timestamp::from_hours(0)),
                Point::new(5, Timestamp::from_hours(1)),
            ];
        }
        let (train, val) = samples.split_at(16);
        let trainer = Trainer::new(TrainingConfig::fast());
        let report = trainer.fit(&model, Some(&attn), &mut store, train, val);
        assert_eq!(report.epochs_run, report.epochs.len());
        assert!(report.epochs.iter().all(|e| e.train_loss.is_finite()));
    }

    #[test]
    fn early_stop_cuts_the_epoch_budget() {
        // An unlearnable task (random targets) plateaus immediately; with an
        // aggressive schedule the LR floor is hit well before max_epochs.
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let model = LightMob::new(&mut store, AdaMoveConfig::tiny(), 6, 1, &mut rng);
        let samples = toy_samples(1, 10);
        let trainer = Trainer::new(TrainingConfig {
            max_epochs: 50,
            batch_size: 8,
            initial_lr: 1e-3,
            lr_factor: 0.1,
            lr_patience: 0,
            min_lr: 0.99e-3, // floor ~ initial: exhausts after one decay
            ..TrainingConfig::default()
        });
        let report = trainer.fit(&model, None, &mut store, &samples, &samples);
        assert!(report.epochs_run < 50, "ran {} epochs", report.epochs_run);
    }

    #[test]
    #[should_panic(expected = "no training samples")]
    fn fit_rejects_empty_training_set() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let model = LightMob::new(&mut store, AdaMoveConfig::tiny(), 6, 1, &mut rng);
        Trainer::new(TrainingConfig::fast()).fit(&model, None, &mut store, &[], &[]);
    }

    #[test]
    fn tracer_captures_one_event_per_epoch() {
        use adamove_obs::{RingSink, Tracer};
        use std::sync::Arc;

        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let model = LightMob::new(&mut store, AdaMoveConfig::tiny(), 6, 1, &mut rng);
        let samples = toy_samples(1, 10);
        let sink = Arc::new(RingSink::new(64));
        let trainer = Trainer::with_tracer(
            TrainingConfig {
                max_epochs: 3,
                ..TrainingConfig::fast()
            },
            Tracer::with_sink(sink.clone()),
        );
        let report = trainer.fit(&model, None, &mut store, &samples, &samples);
        let events = sink.take();
        assert_eq!(events.len(), report.epochs_run);
        assert!(events.iter().all(|e| e.name == "train_epoch"));
        let fields: Vec<&str> = events[0].fields.iter().map(|(k, _)| *k).collect();
        assert_eq!(fields, ["epoch", "loss", "val_acc", "lr", "secs"]);
    }
}
