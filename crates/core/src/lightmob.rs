//! LightMob: the lightweight base mobility-prediction model (§III-C).
//!
//! The base model is `f_Φ` (trajectory encoder) followed by `g_Θ` (next-
//! location predictor):
//!
//! - each spatio-temporal point is embedded as the concatenation of its
//!   location, 48-slot time code and user embeddings (Eq. 4);
//! - an exchangeable sequence encoder produces hidden states (Eq. 5) —
//!   RNN/GRU/LSTM step over the sequence, the Transformer variant applies
//!   causally-masked self-attention so every row is a valid prefix
//!   representation (needed by PTTA's autoregressive pattern generation);
//! - a fully connected layer + softmax yields next-location scores (Eq. 6).
//!
//! At test time LightMob consumes only the recent trajectory; historical
//! knowledge is baked in during training by [`crate::history`].

use crate::config::{AdaMoveConfig, EncoderKind};
use adamove_autograd::{Graph, ParamId, ParamStore, Var};
use adamove_mobility::timecode::{time_code, NUM_TIME_SLOTS};
use adamove_mobility::{Point, UserId};
use adamove_nn::layers::{positional_encoding, TransformerEncoderLayer};
use adamove_nn::{Embedding, GruCell, Linear, LstmCell, Recurrent, RnnCell};
use adamove_tensor::Matrix;
use rand::Rng;

#[derive(Debug, Clone)]
enum EncoderImpl {
    Recurrent(Recurrent),
    Transformer {
        input_proj: Linear,
        layers: Vec<TransformerEncoderLayer>,
    },
}

/// The LightMob model: embeddings + trajectory encoder `f_Φ` + predictor
/// `g_Θ`. All weights live in the caller's [`ParamStore`].
#[derive(Debug, Clone)]
pub struct LightMob {
    /// Hyperparameters this model was built with.
    pub config: AdaMoveConfig,
    /// Location vocabulary size `L`.
    pub num_locations: u32,
    /// User vocabulary size.
    pub num_users: u32,
    loc_emb: Embedding,
    time_emb: Embedding,
    user_emb: Embedding,
    encoder: EncoderImpl,
    /// The output layer `g_Θ` (hidden -> L). PTTA reads and adjusts its
    /// weight columns.
    pub predictor: Linear,
}

impl LightMob {
    /// Register a fresh model in `store`.
    pub fn new(
        store: &mut ParamStore,
        config: AdaMoveConfig,
        num_locations: u32,
        num_users: u32,
        rng: &mut impl Rng,
    ) -> Self {
        let input = config.input_dim();
        let hidden = config.hidden;
        let encoder = match config.encoder {
            EncoderKind::Rnn => EncoderImpl::Recurrent(Recurrent::Rnn(RnnCell::new(
                store,
                "encoder.rnn",
                input,
                hidden,
                rng,
            ))),
            EncoderKind::Gru => EncoderImpl::Recurrent(Recurrent::Gru(GruCell::new(
                store,
                "encoder.gru",
                input,
                hidden,
                rng,
            ))),
            EncoderKind::Lstm => EncoderImpl::Recurrent(Recurrent::Lstm(LstmCell::new(
                store,
                "encoder.lstm",
                input,
                hidden,
                rng,
            ))),
            EncoderKind::Transformer => {
                let input_proj = Linear::new(store, "encoder.input_proj", input, hidden, true, rng);
                let layers = (0..config.transformer_layers)
                    .map(|i| {
                        TransformerEncoderLayer::new(
                            store,
                            &format!("encoder.layer{i}"),
                            hidden,
                            config.transformer_heads,
                            hidden * 4,
                            rng,
                        )
                    })
                    .collect();
                EncoderImpl::Transformer { input_proj, layers }
            }
        };
        Self {
            loc_emb: Embedding::new(
                store,
                "emb.loc",
                num_locations as usize,
                config.loc_dim,
                rng,
            ),
            time_emb: Embedding::new(
                store,
                "emb.time",
                NUM_TIME_SLOTS as usize,
                config.time_dim,
                rng,
            ),
            user_emb: Embedding::new(store, "emb.user", num_users as usize, config.user_dim, rng),
            predictor: Linear::new(
                store,
                "predictor",
                hidden,
                num_locations as usize,
                true,
                rng,
            ),
            encoder,
            config,
            num_locations,
            num_users,
        }
    }

    /// Embed a point sequence (Eq. 4): `seq_len x input_dim`.
    pub fn embed(&self, g: &mut Graph, points: &[Point], user: UserId) -> Var {
        assert!(!points.is_empty(), "LightMob::embed: empty sequence");
        let locs: Vec<u32> = points.iter().map(|p| p.loc.0).collect();
        let times: Vec<u32> = points.iter().map(|p| time_code(p.time)).collect();
        let users: Vec<u32> = vec![user.0; points.len()];
        let le = self.loc_emb.forward(g, &locs);
        let te = self.time_emb.forward(g, &times);
        let ue = self.user_emb.forward(g, &users);
        g.concat_cols(&[le, te, ue])
    }

    /// Encode a sequence into per-prefix hidden states (Eq. 5):
    /// `seq_len x hidden`, where row `k` represents the prefix `[0..=k]`.
    pub fn encode_all(&self, g: &mut Graph, points: &[Point], user: UserId) -> Var {
        let x = self.embed(g, points, user);
        match &self.encoder {
            EncoderImpl::Recurrent(rec) => rec.encode_all(g, x),
            EncoderImpl::Transformer { input_proj, layers } => {
                let projected = input_proj.forward(g, x);
                let pe = g.constant(positional_encoding(points.len(), self.config.hidden));
                let mut h = g.add(projected, pe);
                for layer in layers {
                    h = layer.forward_causal(g, h);
                }
                h
            }
        }
    }

    /// Encode a sequence into its final hidden state `h_N`: `1 x hidden`.
    pub fn encode_last(&self, g: &mut Graph, points: &[Point], user: UserId) -> Var {
        let all = self.encode_all(g, points, user);
        let last = g.value(all).rows() - 1;
        g.row(all, last)
    }

    /// Next-location logits (Eq. 6 before the softmax): `rows x L`.
    pub fn logits(&self, g: &mut Graph, hidden: Var) -> Var {
        self.predictor.forward(g, hidden)
    }

    /// The classifier weight `Θ ∈ R^{hidden x L}` PTTA adjusts.
    pub fn theta(&self) -> ParamId {
        self.predictor.w
    }

    /// The classifier bias (kept frozen by PTTA).
    pub fn bias(&self) -> Option<ParamId> {
        self.predictor.b
    }

    /// Inference helper: logits for the next location after `points`,
    /// without any adaptation. Returns a dense `L`-vector.
    pub fn predict_scores(&self, store: &ParamStore, points: &[Point], user: UserId) -> Vec<f32> {
        let mut g = Graph::new(store);
        let h = self.encode_last(&mut g, points, user);
        let logits = self.logits(&mut g, h);
        g.value(logits).row(0).to_vec()
    }

    /// The final hidden representation `h_N` as a plain vector (the mobility
    /// pattern PTTA compares against).
    pub fn hidden_state(&self, store: &ParamStore, points: &[Point], user: UserId) -> Vec<f32> {
        let mut g = Graph::new(store);
        let h = self.encode_last(&mut g, points, user);
        g.value(h).row(0).to_vec()
    }

    /// Hidden states for every prefix as plain vectors (PTTA's pattern
    /// generation input). Row `k` encodes `points[0..=k]`.
    pub fn prefix_hidden_states(
        &self,
        store: &ParamStore,
        points: &[Point],
        user: UserId,
    ) -> Matrix {
        let mut g = Graph::new(store);
        let h = self.encode_all(&mut g, points, user);
        g.value(h).clone()
    }

    // ---- batched inference (`forward_batch` paths) ------------------------
    //
    // All entry points below take same-length sequences (callers bucket by
    // length) and run them through the encoder in one weight pass per op:
    // each weight matrix streams through cache once per *batch* instead of
    // once per sample. The device kernels accumulate every output row
    // independently in the same reduction order as the per-sample path, so
    // sample `s` of any batched result is bit-identical to the per-sample
    // entry point on that sample — the testkit differential oracles pin
    // this.

    /// Batched [`LightMob::predict_scores`]: frozen next-location logits
    /// for `items` (same-length `(points, user)` pairs), one `L`-vector
    /// per item.
    pub fn predict_scores_batch(
        &self,
        store: &ParamStore,
        items: &[(&[Point], UserId)],
    ) -> Vec<Vec<f32>> {
        if items.is_empty() {
            return Vec::new();
        }
        let mut g = Graph::new(store);
        let last = match self.encode_batch(&mut g, items) {
            BatchHiddens::Steps(steps) => *steps.last().expect("non-empty sequence"),
            BatchHiddens::Stacked(h) => {
                let seq_len = items[0].0.len();
                let rows: Vec<Var> = (0..items.len())
                    .map(|s| g.row(h, s * seq_len + seq_len - 1))
                    .collect();
                if rows.len() == 1 {
                    rows[0]
                } else {
                    g.concat_rows(&rows)
                }
            }
        };
        let logits = self.logits(&mut g, last);
        let lv = g.value(logits);
        (0..items.len()).map(|s| lv.row(s).to_vec()).collect()
    }

    /// Batched [`LightMob::prefix_hidden_states`]: one `seq_len x hidden`
    /// pattern matrix per item (all items share `seq_len`).
    pub fn prefix_hidden_states_batch(
        &self,
        store: &ParamStore,
        items: &[(&[Point], UserId)],
    ) -> Vec<Matrix> {
        if items.is_empty() {
            return Vec::new();
        }
        let seq_len = items[0].0.len();
        let hidden = self.config.hidden;
        let mut g = Graph::new(store);
        match self.encode_batch(&mut g, items) {
            BatchHiddens::Steps(steps) => (0..items.len())
                .map(|s| {
                    let mut m = Matrix::zeros(seq_len, hidden);
                    for (t, &step) in steps.iter().enumerate() {
                        m.row_mut(t).copy_from_slice(g.value(step).row(s));
                    }
                    m
                })
                .collect(),
            BatchHiddens::Stacked(h) => {
                let hv = g.value(h);
                (0..items.len())
                    .map(|s| {
                        let mut m = Matrix::zeros(seq_len, hidden);
                        for t in 0..seq_len {
                            m.row_mut(t).copy_from_slice(hv.row(s * seq_len + t));
                        }
                        m
                    })
                    .collect()
            }
        }
    }

    /// Run the encoder over a batch of same-length sequences.
    ///
    /// Recurrent encoders step time-major (`steps[t]` is `batch x hidden`,
    /// row `s` = item `s`); the Transformer works on the sample-major
    /// stacking (`(batch * seq_len) x hidden`).
    fn encode_batch(&self, g: &mut Graph, items: &[(&[Point], UserId)]) -> BatchHiddens {
        let seq_len = items[0].0.len();
        assert!(seq_len > 0, "LightMob::encode_batch: empty sequence");
        assert!(
            items.iter().all(|(pts, _)| pts.len() == seq_len),
            "LightMob::encode_batch: items must share one sequence length"
        );
        match &self.encoder {
            EncoderImpl::Recurrent(rec) => {
                let steps: Vec<Var> = (0..seq_len)
                    .map(|t| {
                        let locs: Vec<u32> = items.iter().map(|(pts, _)| pts[t].loc.0).collect();
                        let times: Vec<u32> = items
                            .iter()
                            .map(|(pts, _)| time_code(pts[t].time))
                            .collect();
                        let users: Vec<u32> = items.iter().map(|(_, u)| u.0).collect();
                        let le = self.loc_emb.forward(g, &locs);
                        let te = self.time_emb.forward(g, &times);
                        let ue = self.user_emb.forward(g, &users);
                        g.concat_cols(&[le, te, ue])
                    })
                    .collect();
                BatchHiddens::Steps(rec.encode_steps(g, &steps))
            }
            EncoderImpl::Transformer { input_proj, layers } => {
                let locs: Vec<u32> = items
                    .iter()
                    .flat_map(|(pts, _)| pts.iter().map(|p| p.loc.0))
                    .collect();
                let times: Vec<u32> = items
                    .iter()
                    .flat_map(|(pts, _)| pts.iter().map(|p| time_code(p.time)))
                    .collect();
                let users: Vec<u32> = items
                    .iter()
                    .flat_map(|(_, u)| std::iter::repeat_n(u.0, seq_len))
                    .collect();
                let le = self.loc_emb.forward(g, &locs);
                let te = self.time_emb.forward(g, &times);
                let ue = self.user_emb.forward(g, &users);
                let x = g.concat_cols(&[le, te, ue]);
                let projected = input_proj.forward(g, x);
                // Tile the per-sample positional encoding over the batch.
                let pe = positional_encoding(seq_len, self.config.hidden);
                let pe_tiled =
                    Matrix::from_fn(items.len() * seq_len, self.config.hidden, |r, c| {
                        pe.get(r % seq_len, c)
                    });
                let pe_var = g.constant(pe_tiled);
                let mut h = g.add(projected, pe_var);
                for layer in layers {
                    h = layer.forward_causal_batch(g, h, items.len(), seq_len);
                }
                BatchHiddens::Stacked(h)
            }
        }
    }
}

/// Batched encoder output: per-step `batch x hidden` vars (recurrent) or
/// one sample-major `(batch * seq_len) x hidden` var (Transformer).
enum BatchHiddens {
    Steps(Vec<Var>),
    Stacked(Var),
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamove_mobility::Timestamp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn points(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new((i % 5) as u32, Timestamp::from_hours(i as i64 * 3)))
            .collect()
    }

    fn build(kind: EncoderKind) -> (ParamStore, LightMob) {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let cfg = AdaMoveConfig {
            encoder: kind,
            ..AdaMoveConfig::tiny()
        };
        let model = LightMob::new(&mut store, cfg, 10, 4, &mut rng);
        (store, model)
    }

    #[test]
    fn all_encoders_produce_correct_shapes() {
        for kind in [
            EncoderKind::Rnn,
            EncoderKind::Gru,
            EncoderKind::Lstm,
            EncoderKind::Transformer,
        ] {
            let (store, model) = build(kind);
            let pts = points(6);
            let mut g = Graph::new(&store);
            let all = model.encode_all(&mut g, &pts, UserId(1));
            assert_eq!(g.value(all).shape(), (6, 16), "{kind:?}");
            let h = model.encode_last(&mut g, &pts, UserId(1));
            assert_eq!(g.value(h).shape(), (1, 16), "{kind:?}");
            let logits = model.logits(&mut g, h);
            assert_eq!(g.value(logits).shape(), (1, 10), "{kind:?}");
        }
    }

    #[test]
    fn prefix_rows_match_prefix_encodings() {
        // Row k of encode_all must equal encode_last of the k+1 prefix —
        // the invariant PTTA's pattern generation relies on (Algorithm 1,
        // lines 3-5). Holds for every encoder kind, including the causal
        // Transformer.
        for kind in [
            EncoderKind::Rnn,
            EncoderKind::Gru,
            EncoderKind::Lstm,
            EncoderKind::Transformer,
        ] {
            let (store, model) = build(kind);
            let pts = points(5);
            let full = model.prefix_hidden_states(&store, &pts, UserId(0));
            for k in 0..5 {
                let prefix = model.hidden_state(&store, &pts[..=k], UserId(0));
                for (a, b) in full.row(k).iter().zip(&prefix) {
                    assert!((a - b).abs() < 1e-4, "{kind:?} prefix {k}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn different_users_get_different_representations() {
        let (store, model) = build(EncoderKind::Lstm);
        let pts = points(4);
        let h0 = model.hidden_state(&store, &pts, UserId(0));
        let h1 = model.hidden_state(&store, &pts, UserId(1));
        assert_ne!(h0, h1);
    }

    #[test]
    fn different_times_get_different_representations() {
        let (store, model) = build(EncoderKind::Lstm);
        let weekday = vec![Point::new(1, Timestamp::from_hours(10))];
        let weekend = vec![Point::new(1, Timestamp::from_hours(5 * 24 + 10))];
        let hd = model.hidden_state(&store, &weekday, UserId(0));
        let he = model.hidden_state(&store, &weekend, UserId(0));
        assert_ne!(hd, he);
    }

    #[test]
    fn predict_scores_covers_vocabulary() {
        let (store, model) = build(EncoderKind::Gru);
        let scores = model.predict_scores(&store, &points(3), UserId(2));
        assert_eq!(scores.len(), 10);
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn embed_rejects_empty_input() {
        let (store, model) = build(EncoderKind::Lstm);
        let mut g = Graph::new(&store);
        model.embed(&mut g, &[], UserId(0));
    }

    #[test]
    fn batched_paths_are_bit_identical_to_per_sample() {
        // The whole batching contract: row `s` of any batched entry point
        // must carry the exact bits the per-sample path produces.
        for kind in [
            EncoderKind::Rnn,
            EncoderKind::Gru,
            EncoderKind::Lstm,
            EncoderKind::Transformer,
        ] {
            let (store, model) = build(kind);
            let seqs: Vec<Vec<Point>> = (0..3)
                .map(|s| {
                    (0..4)
                        .map(|i| {
                            Point::new(
                                ((s * 3 + i * 2) % 5) as u32,
                                Timestamp::from_hours((s * 7 + i * 5) as i64),
                            )
                        })
                        .collect()
                })
                .collect();
            let items: Vec<(&[Point], UserId)> = seqs
                .iter()
                .enumerate()
                .map(|(s, pts)| (pts.as_slice(), UserId((s % 4) as u32)))
                .collect();
            let scores = model.predict_scores_batch(&store, &items);
            let patterns = model.prefix_hidden_states_batch(&store, &items);
            for (s, (pts, user)) in items.iter().enumerate() {
                let solo = model.predict_scores(&store, pts, *user);
                let bits = |xs: &[f32]| xs.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(&solo), bits(&scores[s]), "{kind:?} scores, sample {s}");
                let solo_h = model.prefix_hidden_states(&store, pts, *user);
                assert_eq!(
                    bits(solo_h.as_slice()),
                    bits(patterns[s].as_slice()),
                    "{kind:?} patterns, sample {s}"
                );
            }
            // A batch of one exercises the single-row concat short-cut.
            let one = model.predict_scores_batch(&store, &items[..1]);
            assert_eq!(one[0], scores[0], "{kind:?} batch of one");
        }
    }

    #[test]
    fn theta_shape_matches_paper() {
        // Θ ∈ R^{H x L} (§III-B knowledge-base construction).
        let (store, model) = build(EncoderKind::Lstm);
        assert_eq!(store.value(model.theta()).shape(), (16, 10));
        assert!(model.bias().is_some());
    }
}
