//! LightMob: the lightweight base mobility-prediction model (§III-C).
//!
//! The base model is `f_Φ` (trajectory encoder) followed by `g_Θ` (next-
//! location predictor):
//!
//! - each spatio-temporal point is embedded as the concatenation of its
//!   location, 48-slot time code and user embeddings (Eq. 4);
//! - an exchangeable sequence encoder produces hidden states (Eq. 5) —
//!   RNN/GRU/LSTM step over the sequence, the Transformer variant applies
//!   causally-masked self-attention so every row is a valid prefix
//!   representation (needed by PTTA's autoregressive pattern generation);
//! - a fully connected layer + softmax yields next-location scores (Eq. 6).
//!
//! At test time LightMob consumes only the recent trajectory; historical
//! knowledge is baked in during training by [`crate::history`].

use crate::config::{AdaMoveConfig, EncoderKind};
use adamove_autograd::{Graph, ParamId, ParamStore, Var};
use adamove_mobility::timecode::{time_code, NUM_TIME_SLOTS};
use adamove_mobility::{Point, UserId};
use adamove_nn::layers::{positional_encoding, TransformerEncoderLayer};
use adamove_nn::{Embedding, GruCell, Linear, LstmCell, Recurrent, RnnCell};
use adamove_tensor::Matrix;
use rand::Rng;

#[derive(Debug, Clone)]
enum EncoderImpl {
    Recurrent(Recurrent),
    Transformer {
        input_proj: Linear,
        layers: Vec<TransformerEncoderLayer>,
    },
}

/// The LightMob model: embeddings + trajectory encoder `f_Φ` + predictor
/// `g_Θ`. All weights live in the caller's [`ParamStore`].
#[derive(Debug, Clone)]
pub struct LightMob {
    /// Hyperparameters this model was built with.
    pub config: AdaMoveConfig,
    /// Location vocabulary size `L`.
    pub num_locations: u32,
    /// User vocabulary size.
    pub num_users: u32,
    loc_emb: Embedding,
    time_emb: Embedding,
    user_emb: Embedding,
    encoder: EncoderImpl,
    /// The output layer `g_Θ` (hidden -> L). PTTA reads and adjusts its
    /// weight columns.
    pub predictor: Linear,
}

impl LightMob {
    /// Register a fresh model in `store`.
    pub fn new(
        store: &mut ParamStore,
        config: AdaMoveConfig,
        num_locations: u32,
        num_users: u32,
        rng: &mut impl Rng,
    ) -> Self {
        let input = config.input_dim();
        let hidden = config.hidden;
        let encoder = match config.encoder {
            EncoderKind::Rnn => EncoderImpl::Recurrent(Recurrent::Rnn(RnnCell::new(
                store,
                "encoder.rnn",
                input,
                hidden,
                rng,
            ))),
            EncoderKind::Gru => EncoderImpl::Recurrent(Recurrent::Gru(GruCell::new(
                store,
                "encoder.gru",
                input,
                hidden,
                rng,
            ))),
            EncoderKind::Lstm => EncoderImpl::Recurrent(Recurrent::Lstm(LstmCell::new(
                store,
                "encoder.lstm",
                input,
                hidden,
                rng,
            ))),
            EncoderKind::Transformer => {
                let input_proj = Linear::new(store, "encoder.input_proj", input, hidden, true, rng);
                let layers = (0..config.transformer_layers)
                    .map(|i| {
                        TransformerEncoderLayer::new(
                            store,
                            &format!("encoder.layer{i}"),
                            hidden,
                            config.transformer_heads,
                            hidden * 4,
                            rng,
                        )
                    })
                    .collect();
                EncoderImpl::Transformer { input_proj, layers }
            }
        };
        Self {
            loc_emb: Embedding::new(
                store,
                "emb.loc",
                num_locations as usize,
                config.loc_dim,
                rng,
            ),
            time_emb: Embedding::new(
                store,
                "emb.time",
                NUM_TIME_SLOTS as usize,
                config.time_dim,
                rng,
            ),
            user_emb: Embedding::new(store, "emb.user", num_users as usize, config.user_dim, rng),
            predictor: Linear::new(
                store,
                "predictor",
                hidden,
                num_locations as usize,
                true,
                rng,
            ),
            encoder,
            config,
            num_locations,
            num_users,
        }
    }

    /// Embed a point sequence (Eq. 4): `seq_len x input_dim`.
    pub fn embed(&self, g: &mut Graph, points: &[Point], user: UserId) -> Var {
        assert!(!points.is_empty(), "LightMob::embed: empty sequence");
        let locs: Vec<u32> = points.iter().map(|p| p.loc.0).collect();
        let times: Vec<u32> = points.iter().map(|p| time_code(p.time)).collect();
        let users: Vec<u32> = vec![user.0; points.len()];
        let le = self.loc_emb.forward(g, &locs);
        let te = self.time_emb.forward(g, &times);
        let ue = self.user_emb.forward(g, &users);
        g.concat_cols(&[le, te, ue])
    }

    /// Encode a sequence into per-prefix hidden states (Eq. 5):
    /// `seq_len x hidden`, where row `k` represents the prefix `[0..=k]`.
    pub fn encode_all(&self, g: &mut Graph, points: &[Point], user: UserId) -> Var {
        let x = self.embed(g, points, user);
        match &self.encoder {
            EncoderImpl::Recurrent(rec) => rec.encode_all(g, x),
            EncoderImpl::Transformer { input_proj, layers } => {
                let projected = input_proj.forward(g, x);
                let pe = g.constant(positional_encoding(points.len(), self.config.hidden));
                let mut h = g.add(projected, pe);
                for layer in layers {
                    h = layer.forward_causal(g, h);
                }
                h
            }
        }
    }

    /// Encode a sequence into its final hidden state `h_N`: `1 x hidden`.
    pub fn encode_last(&self, g: &mut Graph, points: &[Point], user: UserId) -> Var {
        let all = self.encode_all(g, points, user);
        let last = g.value(all).rows() - 1;
        g.row(all, last)
    }

    /// Next-location logits (Eq. 6 before the softmax): `rows x L`.
    pub fn logits(&self, g: &mut Graph, hidden: Var) -> Var {
        self.predictor.forward(g, hidden)
    }

    /// The classifier weight `Θ ∈ R^{hidden x L}` PTTA adjusts.
    pub fn theta(&self) -> ParamId {
        self.predictor.w
    }

    /// The classifier bias (kept frozen by PTTA).
    pub fn bias(&self) -> Option<ParamId> {
        self.predictor.b
    }

    /// Inference helper: logits for the next location after `points`,
    /// without any adaptation. Returns a dense `L`-vector.
    pub fn predict_scores(&self, store: &ParamStore, points: &[Point], user: UserId) -> Vec<f32> {
        let mut g = Graph::new(store);
        let h = self.encode_last(&mut g, points, user);
        let logits = self.logits(&mut g, h);
        g.value(logits).row(0).to_vec()
    }

    /// The final hidden representation `h_N` as a plain vector (the mobility
    /// pattern PTTA compares against).
    pub fn hidden_state(&self, store: &ParamStore, points: &[Point], user: UserId) -> Vec<f32> {
        let mut g = Graph::new(store);
        let h = self.encode_last(&mut g, points, user);
        g.value(h).row(0).to_vec()
    }

    /// Hidden states for every prefix as plain vectors (PTTA's pattern
    /// generation input). Row `k` encodes `points[0..=k]`.
    pub fn prefix_hidden_states(
        &self,
        store: &ParamStore,
        points: &[Point],
        user: UserId,
    ) -> Matrix {
        let mut g = Graph::new(store);
        let h = self.encode_all(&mut g, points, user);
        g.value(h).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamove_mobility::Timestamp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn points(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new((i % 5) as u32, Timestamp::from_hours(i as i64 * 3)))
            .collect()
    }

    fn build(kind: EncoderKind) -> (ParamStore, LightMob) {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let cfg = AdaMoveConfig {
            encoder: kind,
            ..AdaMoveConfig::tiny()
        };
        let model = LightMob::new(&mut store, cfg, 10, 4, &mut rng);
        (store, model)
    }

    #[test]
    fn all_encoders_produce_correct_shapes() {
        for kind in [
            EncoderKind::Rnn,
            EncoderKind::Gru,
            EncoderKind::Lstm,
            EncoderKind::Transformer,
        ] {
            let (store, model) = build(kind);
            let pts = points(6);
            let mut g = Graph::new(&store);
            let all = model.encode_all(&mut g, &pts, UserId(1));
            assert_eq!(g.value(all).shape(), (6, 16), "{kind:?}");
            let h = model.encode_last(&mut g, &pts, UserId(1));
            assert_eq!(g.value(h).shape(), (1, 16), "{kind:?}");
            let logits = model.logits(&mut g, h);
            assert_eq!(g.value(logits).shape(), (1, 10), "{kind:?}");
        }
    }

    #[test]
    fn prefix_rows_match_prefix_encodings() {
        // Row k of encode_all must equal encode_last of the k+1 prefix —
        // the invariant PTTA's pattern generation relies on (Algorithm 1,
        // lines 3-5). Holds for every encoder kind, including the causal
        // Transformer.
        for kind in [
            EncoderKind::Rnn,
            EncoderKind::Gru,
            EncoderKind::Lstm,
            EncoderKind::Transformer,
        ] {
            let (store, model) = build(kind);
            let pts = points(5);
            let full = model.prefix_hidden_states(&store, &pts, UserId(0));
            for k in 0..5 {
                let prefix = model.hidden_state(&store, &pts[..=k], UserId(0));
                for (a, b) in full.row(k).iter().zip(&prefix) {
                    assert!((a - b).abs() < 1e-4, "{kind:?} prefix {k}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn different_users_get_different_representations() {
        let (store, model) = build(EncoderKind::Lstm);
        let pts = points(4);
        let h0 = model.hidden_state(&store, &pts, UserId(0));
        let h1 = model.hidden_state(&store, &pts, UserId(1));
        assert_ne!(h0, h1);
    }

    #[test]
    fn different_times_get_different_representations() {
        let (store, model) = build(EncoderKind::Lstm);
        let weekday = vec![Point::new(1, Timestamp::from_hours(10))];
        let weekend = vec![Point::new(1, Timestamp::from_hours(5 * 24 + 10))];
        let hd = model.hidden_state(&store, &weekday, UserId(0));
        let he = model.hidden_state(&store, &weekend, UserId(0));
        assert_ne!(hd, he);
    }

    #[test]
    fn predict_scores_covers_vocabulary() {
        let (store, model) = build(EncoderKind::Gru);
        let scores = model.predict_scores(&store, &points(3), UserId(2));
        assert_eq!(scores.len(), 10);
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn embed_rejects_empty_input() {
        let (store, model) = build(EncoderKind::Lstm);
        let mut g = Graph::new(&store);
        model.embed(&mut g, &[], UserId(0));
    }

    #[test]
    fn theta_shape_matches_paper() {
        // Θ ∈ R^{H x L} (§III-B knowledge-base construction).
        let (store, model) = build(EncoderKind::Lstm);
        assert_eq!(store.value(model.theta()).shape(), (16, 10));
        assert!(model.bias().is_some());
    }
}
