#![warn(missing_docs)]
//! AdaMove: efficient test-time adaptation for human mobility prediction.
//!
//! This crate implements the paper's contribution (ICDE 2025):
//!
//! - [`lightmob`] — **LightMob**, the lightweight base model: per-point
//!   embeddings (location / 48-slot time / user, Eq. 4), a pluggable
//!   trajectory encoder (Eq. 5; RNN/GRU/LSTM/Transformer, Fig. 5) and the
//!   FC next-location predictor (Eq. 6);
//! - [`history`] — the contrastive historical-knowledge incorporation used
//!   only at training time: history attention (Eqs. 7–8), contrastive pair
//!   construction and the InfoNCE objective (Eq. 9);
//! - [`train`] — the §IV-A training loop: Adam, hybrid loss (Eq. 11),
//!   accuracy-plateau LR decay, early stop;
//! - [`ptta`] — **PTTA**, preference-aware test-time adaptation
//!   (Algorithm 1): autoregressive pattern generation, the similarity-
//!   filtered top-M knowledge base, and the centroid weight update (Eq. 2),
//!   plus the `w/ ent` and `w/ pseudo-label` ablation variants of Fig. 4;
//! - [`t3a`] — the T3A comparator (Iwasawa & Matsuo, 2021) with its
//!   entropy filter and pseudo-labels;
//! - [`metrics`] — Rec@{1,5,10} and MRR@10, accumulated as an exact rank
//!   histogram so partial results merge without floating-point drift;
//! - [`eval`] — the evaluation harness tying a trained model, an inference
//!   mode (frozen / PTTA / T3A) and a sample set together, with per-sample
//!   timing for the Table III efficiency comparison;
//! - [`parallel`] — deterministic scoped-thread fan-out used by the `_par`
//!   evaluation entry points (bit-identical metrics at any thread count);
//! - [`engine`] — the sharded serving runtime: users hash-partitioned
//!   across worker shards, each owning its sliding windows and PTTA state;
//! - [`recovery`] — the self-healing layer behind
//!   [`EngineConfig::recovery`](engine::EngineConfig::recovery): checkpoint
//!   store, write-ahead journal, retry policy, population prior for
//!   degraded serving, and the per-user PTTA circuit breaker;
//! - [`durability`] — the opt-in crash-safe persistence layer under
//!   recovery: CRC32-framed journal segments with torn-write-tolerant
//!   tail truncation, atomic checkpoint snapshots with rotation, and
//!   cold-start restore that is bit-identical to the pre-crash engine.

//! # Example
//!
//! ```
//! use adamove::{AdaMoveConfig, LightMob, Ptta, PttaConfig};
//! use adamove_autograd::ParamStore;
//! use adamove_mobility::{LocationId, Point, Sample, Timestamp, UserId};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // A (toy, untrained) model over 10 locations and 2 users.
//! let mut rng = StdRng::seed_from_u64(1);
//! let mut store = ParamStore::new();
//! let model = LightMob::new(&mut store, AdaMoveConfig::tiny(), 10, 2, &mut rng);
//!
//! // A test trajectory: the recent points carry their own labels
//! // (every prefix's next location), which is what PTTA adapts from.
//! let sample = Sample {
//!     user: UserId(0),
//!     recent: (0..5).map(|i| Point::new(i % 3, Timestamp::from_hours(i as i64))).collect(),
//!     history: vec![],
//!     target: LocationId(1),
//!     target_time: Timestamp::from_hours(5),
//! };
//!
//! let ptta = Ptta::new(PttaConfig::default());
//! let scores = ptta.predict_scores(&model, &store, &sample);
//! assert_eq!(scores.len(), 10);
//! let frozen = model.predict_scores(&store, &sample.recent, sample.user);
//! // Adaptation only moves columns for locations observed in the input.
//! assert!((3..10).all(|l| (scores[l] - frozen[l]).abs() < 1e-5));
//! ```

pub mod config;
pub mod distill;
pub mod durability;
pub mod engine;
pub mod eval;
pub mod history;
pub mod kb;
pub mod lightmob;
pub mod metrics;
pub mod parallel;
pub mod ptta;
pub mod recovery;
pub mod streaming;
pub mod t3a;
pub mod train;

pub use adamove_obs as obs;
pub use config::{AdaMoveConfig, EncoderKind};
pub use distill::{distill, DistillConfig};
pub use durability::{
    scan_segment, DurabilityConfig, DurabilityObs, DurableStore, Fs, FsFile, RealFs,
    RecoveredShard, SegmentError, SegmentScan, SyncPolicy,
};
pub use engine::{
    shard_of, Disturbance, EngineConfig, EngineError, EngineReport, EngineSnapshot, EngineStages,
    FaultAction, RequestKind, ShardSnapshot, ShardedEngine, ShutdownError,
};
pub use eval::{
    evaluate, evaluate_batched, evaluate_by, evaluate_by_par, evaluate_fn, evaluate_fn_par,
    evaluate_par, EvalOutcome, InferenceMode, LatencyProfile,
};
pub use kb::{HeapTopM, LinearTopM, TopM};
pub use lightmob::LightMob;
pub use metrics::{MetricAccumulator, Metrics};
pub use parallel::{available_threads, par_map, par_map_chunks};
pub use ptta::{ImportanceStrategy, LabelStrategy, Ptta, PttaConfig, TtaModel};
pub use recovery::{
    BreakerConfig, BreakerDecision, CheckpointStore, Journal, JournalEntry, PopulationPrior,
    PttaBreaker, RecoveryConfig, RetryPolicy, ShardCheckpoint,
};
pub use streaming::{PredictionQuality, RecentWindow, StreamPrediction, StreamingPredictor};
pub use t3a::{T3a, T3aConfig};
pub use train::{TrainReport, Trainer, TrainingConfig};
