//! Real-time deployment: the sliding-window strategy of §III-B.
//!
//! "We only require a sequence of spatio-temporal points within the past
//! `cT` hours to construct `tr_rec`, which can be achieved by a sliding
//! window strategy in the memory for real-time applications."
//!
//! [`RecentWindow`] is that buffer (Definition 3 as a data structure);
//! [`StreamingPredictor`] wires one window per user to a trained model and
//! the PTTA adapter, exposing a `predict -> observe` loop for online use.

use crate::lightmob::LightMob;
use crate::ptta::{score_entropy_millinats, Ptta, PttaConfig, PttaObs};
use crate::recovery::{BreakerDecision, BreakerObs, PttaBreaker};
use adamove_autograd::ParamStore;
use adamove_mobility::types::HOUR;
use adamove_mobility::{LocationId, Point, Sample, Timestamp, UserId};
use adamove_obs::{Counter, Registry};
use std::collections::HashMap;

/// A bounded buffer of recent points: retains points within the last
/// `c * T` seconds of the newest point (paper Definition 3).
#[derive(Debug, Clone)]
pub struct RecentWindow {
    horizon_secs: i64,
    points: Vec<Point>,
}

impl RecentWindow {
    /// Window over the last `c` sessions of `t_hours` each.
    pub fn new(c: usize, t_hours: i64) -> Self {
        assert!(
            c > 0 && t_hours > 0,
            "RecentWindow: c and T must be positive"
        );
        Self {
            horizon_secs: c as i64 * t_hours * HOUR,
            points: Vec::new(),
        }
    }

    /// The paper's defaults: `c` sessions of `T = 72` hours.
    pub fn paper_default(c: usize) -> Self {
        Self::new(c, 72)
    }

    /// Append a point and evict everything older than the horizon.
    /// Returns the number of buffered points evicted.
    ///
    /// Out-of-order arrivals older than the newest point are inserted in
    /// order (mobile uplinks reorder events); arrivals older than the
    /// horizon are dropped (not counted as evictions — they were never
    /// buffered).
    pub fn push(&mut self, p: Point) -> usize {
        let newest = self.points.last().map_or(p.time, |q| q.time.max(p.time));
        let cutoff = newest.0 - self.horizon_secs;
        if p.time.0 < cutoff {
            return 0;
        }
        let pos = self.points.partition_point(|q| q.time <= p.time);
        self.points.insert(pos, p);
        let keep_from = self.points.partition_point(|q| q.time.0 < cutoff);
        self.points.drain(..keep_from);
        keep_from
    }

    /// Evict every point older than the horizon measured back from `now`.
    /// Returns the number of points evicted.
    ///
    /// `push` can only evict relative to the newest *buffered* point, so an
    /// idle user's stale points would otherwise survive forever; callers
    /// that query at a wall-clock time use this to age the window first.
    /// `now` earlier than the buffered points is a no-op (the `push` rule
    /// already bounds the window relative to its newest point).
    pub fn evict_before(&mut self, now: Timestamp) -> usize {
        let cutoff = now.0 - self.horizon_secs;
        let keep_from = self.points.partition_point(|q| q.time.0 < cutoff);
        self.points.drain(..keep_from);
        keep_from
    }

    /// Current window contents, chronological.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Number of buffered points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no points are buffered.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Drop all buffered points (e.g. on a known hard reset of the user's
    /// context).
    pub fn clear(&mut self) {
        self.points.clear();
    }
}

/// How a [`StreamPrediction`]'s scores were produced — the serving-side
/// quality tag the recovery layer attaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictionQuality {
    /// Full PTTA adaptation over the user's window (the normal path).
    Adapted,
    /// The PTTA circuit breaker is open for this user: scores come from
    /// the frozen Θ classifier (adaptation rolled back / paused).
    Frozen,
    /// The user's state was unrecoverable after a shard failure: scores
    /// are the global population prior, not a per-user prediction.
    Degraded,
}

/// Outcome of one streaming prediction.
#[derive(Debug, Clone)]
pub struct StreamPrediction {
    /// Dense per-location scores (higher = better).
    pub scores: Vec<f32>,
    /// Argmax of `scores`.
    pub top: LocationId,
    /// Number of window points the adaptation used.
    pub window_len: usize,
    /// How the scores were produced (adapted / frozen / degraded).
    pub quality: PredictionQuality,
}

/// Window/cache metric handles for one [`StreamingPredictor`] — attach
/// with [`StreamingPredictor::set_obs`]. All updates are relaxed atomics;
/// a predictor without obs pays one `Option` branch per event.
#[derive(Debug, Clone)]
pub struct StreamObs {
    /// Windows created for first-seen users (`stream_windows_created_total`).
    pub windows_created: Counter,
    /// Points evicted by horizon ageing, push- and query-time combined
    /// (`stream_window_evictions_total`).
    pub window_evictions: Counter,
    /// Predictions served from a live window (`stream_predict_hits_total`).
    pub predict_hits: Counter,
    /// Predictions refused for a missing or fully-aged window
    /// (`stream_predict_empty_total`).
    pub predict_empty: Counter,
}

impl StreamObs {
    /// Register the stream metrics in `registry`, with `labels` (e.g.
    /// `[("shard", "3")]`) rendered into every name.
    pub fn register(registry: &Registry, labels: &[(&str, &str)]) -> Self {
        let l = |name: &str| adamove_obs::labeled(name, labels);
        Self {
            windows_created: registry.counter(&l("stream_windows_created_total")),
            window_evictions: registry.counter(&l("stream_window_evictions_total")),
            predict_hits: registry.counter(&l("stream_predict_hits_total")),
            predict_empty: registry.counter(&l("stream_predict_empty_total")),
        }
    }
}

/// Online next-location predictor: one [`RecentWindow`] per user, PTTA
/// adaptation on every query.
pub struct StreamingPredictor<'m> {
    model: &'m LightMob,
    store: &'m ParamStore,
    ptta: Ptta,
    context_sessions: usize,
    session_hours: i64,
    windows: HashMap<UserId, RecentWindow>,
    obs: Option<StreamObs>,
    breaker: Option<PttaBreaker>,
    breaker_obs: Option<BreakerObs>,
}

impl<'m> StreamingPredictor<'m> {
    /// Wrap a trained model. `context_sessions` is the paper's `c`;
    /// `session_hours` is `T`.
    pub fn new(
        model: &'m LightMob,
        store: &'m ParamStore,
        config: PttaConfig,
        context_sessions: usize,
        session_hours: i64,
    ) -> Self {
        Self {
            model,
            store,
            ptta: Ptta::new(config),
            context_sessions,
            session_hours,
            windows: HashMap::new(),
            obs: None,
            breaker: None,
            breaker_obs: None,
        }
    }

    /// Attach window/cache metrics (see [`StreamObs::register`]).
    pub fn set_obs(&mut self, obs: StreamObs) {
        self.obs = Some(obs);
    }

    /// Attach adaptation metrics to the inner PTTA adapter (see
    /// [`PttaObs::register`]).
    pub fn set_ptta_obs(&mut self, obs: PttaObs) {
        self.ptta.set_obs(obs);
    }

    /// Cumulative nanoseconds spent in PTTA adaptation so far (see
    /// [`Ptta::adapt_ns_total`]; 0 until
    /// [`set_ptta_obs`](StreamingPredictor::set_ptta_obs) attaches
    /// metrics). The engine diffs this across a
    /// [`predict_batch`](StreamingPredictor::predict_batch) call to
    /// split the batch's wall time into forward vs adapt stages.
    pub fn adapt_ns_total(&self) -> u64 {
        self.ptta.adapt_ns_total()
    }

    /// Attach a per-user PTTA circuit breaker: predictions whose adapted
    /// entropy spikes past the breaker's threshold for long enough are
    /// rolled back to the frozen Θ classifier (tagged
    /// [`PredictionQuality::Frozen`]) until the signal settles.
    pub fn set_breaker(&mut self, breaker: PttaBreaker) {
        self.breaker = Some(breaker);
    }

    /// Attach breaker metrics (see [`BreakerObs::register`]).
    pub fn set_breaker_obs(&mut self, obs: BreakerObs) {
        self.breaker_obs = Some(obs);
    }

    /// Record an observed check-in for `user`. Returns the number of
    /// buffered points the push evicted from the user's window (see
    /// [`RecentWindow::push`]) — the same count added to
    /// `stream_window_evictions_total`.
    pub fn observe(&mut self, user: UserId, point: Point) -> usize {
        let (c, t) = (self.context_sessions, self.session_hours);
        let obs = &self.obs;
        let window = self.windows.entry(user).or_insert_with(|| {
            if let Some(o) = obs {
                o.windows_created.inc();
            }
            RecentWindow::new(c, t)
        });
        let evicted = window.push(point);
        if evicted > 0 {
            if let Some(o) = obs {
                o.window_evictions.add(evicted as u64);
            }
        }
        evicted
    }

    /// Re-apply a journalled observe during recovery. Identical window
    /// mutation to [`StreamingPredictor::observe`] but bypasses the
    /// stream metrics: the original enqueue was already counted, so a
    /// replay must not inflate `stream_*` / `engine_observes_total`
    /// (replays are tallied separately as
    /// `engine_replayed_observes_total`).
    pub fn restore_observe(&mut self, user: UserId, point: Point) {
        let (c, t) = (self.context_sessions, self.session_hours);
        self.windows
            .entry(user)
            .or_insert_with(|| RecentWindow::new(c, t))
            .push(point);
    }

    /// Restore one user's window from a checkpoint (points chronological,
    /// as produced by [`StreamingPredictor::export_windows`]). Metrics
    /// are bypassed for the same reason as
    /// [`StreamingPredictor::restore_observe`].
    pub fn restore_user(&mut self, user: UserId, points: &[Point]) {
        for &p in points {
            self.restore_observe(user, p);
        }
    }

    /// Snapshot every user's window contents for checkpointing, sorted by
    /// user id so the export is deterministic regardless of hash order.
    pub fn export_windows(&self) -> Vec<(UserId, Vec<Point>)> {
        let mut users: Vec<(UserId, Vec<Point>)> = self
            .windows
            .iter()
            .map(|(u, w)| (*u, w.points().to_vec()))
            .collect();
        users.sort_by_key(|(u, _)| u.0);
        users
    }

    /// Predict `user`'s next location from their current window, adapting
    /// the classifier to the window contents (Algorithm 1). Returns `None`
    /// when the window is empty (no evidence to encode).
    ///
    /// The window is aged relative to `now` before encoding: an idle user
    /// whose last check-in fell out of the `c * T` horizon gets `None`
    /// rather than a prediction from stale context (push-time eviction only
    /// ages relative to the newest point, which never advances while the
    /// user is silent).
    pub fn predict(&mut self, user: UserId, now: Timestamp) -> Option<StreamPrediction> {
        let Some(window) = self.windows.get_mut(&user) else {
            if let Some(o) = &self.obs {
                o.predict_empty.inc();
            }
            return None;
        };
        let evicted = window.evict_before(now);
        if evicted > 0 {
            if let Some(o) = &self.obs {
                o.window_evictions.add(evicted as u64);
            }
        }
        if window.is_empty() {
            if let Some(o) = &self.obs {
                o.predict_empty.inc();
            }
            return None;
        }
        let sample = Sample {
            user,
            recent: window.points().to_vec(),
            history: vec![],
            // The true next location is unknown at serving time; the
            // placeholder is never read by PTTA (labels come from within
            // `recent`).
            target: LocationId(0),
            target_time: now,
        };
        let (scores, quality) = self.score_sample(user, &sample);
        let top = LocationId(adamove_tensor::matrix::argmax(&scores) as u32);
        if let Some(o) = &self.obs {
            o.predict_hits.inc();
        }
        Some(StreamPrediction {
            window_len: sample.recent.len(),
            scores,
            top,
            quality,
        })
    }

    /// Batched [`StreamingPredictor::predict`]: answer several queries in
    /// one adaptation pass over the model's `forward_batch` paths. Entry
    /// `i` is bit-identical to calling `predict(queries[i].0,
    /// queries[i].1)` in sequence — window ageing runs in query order and
    /// the batched scorer is pinned to the per-sample path.
    ///
    /// Falls back to the sequential path when a circuit breaker is
    /// attached: the breaker consumes each prediction's drift signal in
    /// stream order, which is incompatible with scoring ahead of it.
    pub fn predict_batch(
        &mut self,
        queries: &[(UserId, Timestamp)],
    ) -> Vec<Option<StreamPrediction>> {
        if self.breaker.is_some() {
            return queries.iter().map(|&(u, t)| self.predict(u, t)).collect();
        }
        // Window prep is stateful (eviction), so it runs sequentially in
        // query order; only the scoring is batched.
        let mut samples: Vec<Option<Sample>> = Vec::with_capacity(queries.len());
        for &(user, now) in queries {
            let Some(window) = self.windows.get_mut(&user) else {
                if let Some(o) = &self.obs {
                    o.predict_empty.inc();
                }
                samples.push(None);
                continue;
            };
            let evicted = window.evict_before(now);
            if evicted > 0 {
                if let Some(o) = &self.obs {
                    o.window_evictions.add(evicted as u64);
                }
            }
            if window.is_empty() {
                if let Some(o) = &self.obs {
                    o.predict_empty.inc();
                }
                samples.push(None);
                continue;
            }
            samples.push(Some(Sample {
                user,
                recent: window.points().to_vec(),
                history: vec![],
                target: LocationId(0),
                target_time: now,
            }));
        }
        let live: Vec<&Sample> = samples.iter().flatten().collect();
        let mut scored = self
            .ptta
            .predict_scores_batch(self.model, self.store, &live)
            .into_iter();
        samples
            .iter()
            .map(|slot| {
                let sample = slot.as_ref()?;
                let scores = scored.next()?;
                let top = LocationId(adamove_tensor::matrix::argmax(&scores) as u32);
                if let Some(o) = &self.obs {
                    o.predict_hits.inc();
                }
                Some(StreamPrediction {
                    window_len: sample.recent.len(),
                    scores,
                    top,
                    quality: PredictionQuality::Adapted,
                })
            })
            .collect()
    }

    /// Score one sample, routing through the circuit breaker when one is
    /// attached. Serving frozen means scoring with the unadapted model —
    /// exactly the frozen Θ baseline, since PTTA never mutates the store.
    fn score_sample(&mut self, user: UserId, sample: &Sample) -> (Vec<f32>, PredictionQuality) {
        let Some(breaker) = self.breaker.as_mut() else {
            let scores = self.ptta.predict_scores(self.model, self.store, sample);
            return (scores, PredictionQuality::Adapted);
        };
        if breaker.is_open(user) && !breaker.probe_due(user) {
            breaker.note_frozen_served(user);
            if let Some(o) = &self.breaker_obs {
                o.rollbacks.inc();
            }
            let frozen = self.model.predict_scores(self.store, &sample.recent, user);
            return (frozen, PredictionQuality::Frozen);
        }
        let adapted = self.ptta.predict_scores(self.model, self.store, sample);
        let entropy = score_entropy_millinats(&adapted);
        match breaker.observe_adapted(user, entropy) {
            BreakerDecision::Adapt => (adapted, PredictionQuality::Adapted),
            BreakerDecision::Resumed => {
                if let Some(o) = &self.breaker_obs {
                    o.resets.inc();
                }
                (adapted, PredictionQuality::Adapted)
            }
            BreakerDecision::Tripped => {
                if let Some(o) = &self.breaker_obs {
                    o.trips.inc();
                    o.rollbacks.inc();
                }
                let frozen = self.model.predict_scores(self.store, &sample.recent, user);
                (frozen, PredictionQuality::Frozen)
            }
            BreakerDecision::StillOpen => {
                if let Some(o) = &self.breaker_obs {
                    o.rollbacks.inc();
                }
                let frozen = self.model.predict_scores(self.store, &sample.recent, user);
                (frozen, PredictionQuality::Frozen)
            }
        }
    }

    /// Number of users with active windows.
    pub fn active_users(&self) -> usize {
        self.windows.len()
    }

    /// Read-only view of `user`'s window, if one exists — an inspection
    /// seam for correctness tooling (the testkit's eviction-equivalence
    /// suite asserts on buffered contents without disturbing them).
    pub fn window_of(&self, user: UserId) -> Option<&RecentWindow> {
        self.windows.get(&user)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AdaMoveConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pt(loc: u32, h: i64) -> Point {
        Point::new(loc, Timestamp::from_hours(h))
    }

    #[test]
    fn window_evicts_beyond_horizon() {
        let mut w = RecentWindow::new(2, 24); // 48h horizon
        w.push(pt(1, 0));
        w.push(pt(2, 24));
        w.push(pt(3, 50)); // evicts the point at hour 0 (50 - 48 = 2)
        assert_eq!(w.len(), 2);
        assert_eq!(w.points()[0].loc, LocationId(2));
        assert!(!w.is_empty());
    }

    #[test]
    fn window_handles_out_of_order_arrivals() {
        let mut w = RecentWindow::new(1, 24);
        w.push(pt(1, 10));
        w.push(pt(3, 12));
        w.push(pt(2, 11)); // late arrival, still within horizon
        let locs: Vec<u32> = w.points().iter().map(|p| p.loc.0).collect();
        assert_eq!(locs, vec![1, 2, 3]);
        // A very late arrival beyond the horizon is dropped.
        w.push(pt(9, 12 - 30));
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn window_evicts_relative_to_query_time() {
        let mut w = RecentWindow::new(2, 24); // 48h horizon
        w.push(pt(1, 0));
        w.push(pt(2, 10));
        // Aging to a query time inside the horizon keeps everything.
        w.evict_before(Timestamp::from_hours(40));
        assert_eq!(w.len(), 2);
        // Aging past the first point drops it, past both empties the window.
        w.evict_before(Timestamp::from_hours(49));
        assert_eq!(w.points()[0].loc, LocationId(2));
        w.evict_before(Timestamp::from_hours(600));
        assert!(w.is_empty());
        // A query time before the buffered points must not evict anything.
        w.push(pt(3, 700));
        w.evict_before(Timestamp::from_hours(0));
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn window_clear_resets() {
        let mut w = RecentWindow::paper_default(5);
        w.push(pt(1, 0));
        w.clear();
        assert!(w.is_empty());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn window_rejects_zero_config() {
        RecentWindow::new(0, 24);
    }

    #[test]
    fn predict_batch_matches_sequential_predictions() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut store = ParamStore::new();
        let model = LightMob::new(&mut store, AdaMoveConfig::tiny(), 6, 3, &mut rng);
        let feed = |sp: &mut StreamingPredictor| {
            sp.observe(UserId(0), pt(1, 0));
            sp.observe(UserId(0), pt(2, 2));
            sp.observe(UserId(0), pt(4, 3));
            sp.observe(UserId(1), pt(3, 1));
            sp.observe(UserId(2), pt(5, 40));
        };
        let queries = [
            (UserId(0), Timestamp::from_hours(4)),
            (UserId(7), Timestamp::from_hours(4)), // unknown user
            (UserId(1), Timestamp::from_hours(4)),
            (UserId(2), Timestamp::from_hours(500)), // fully aged window
            (UserId(0), Timestamp::from_hours(5)),   // repeat user
        ];
        let mut a = StreamingPredictor::new(&model, &store, PttaConfig::default(), 2, 24);
        feed(&mut a);
        let batched = a.predict_batch(&queries);
        let mut b = StreamingPredictor::new(&model, &store, PttaConfig::default(), 2, 24);
        feed(&mut b);
        let sequential: Vec<_> = queries.iter().map(|&(u, t)| b.predict(u, t)).collect();
        assert_eq!(batched.len(), sequential.len());
        for (i, (x, y)) in batched.iter().zip(&sequential).enumerate() {
            match (x, y) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    assert_eq!(x.scores, y.scores, "query {i}");
                    assert_eq!(x.top, y.top, "query {i}");
                    assert_eq!(x.window_len, y.window_len, "query {i}");
                    assert_eq!(x.quality, y.quality, "query {i}");
                }
                _ => panic!("query {i}: presence mismatch"),
            }
        }
    }

    #[test]
    fn streaming_predictor_tracks_users_independently() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut store = ParamStore::new();
        let model = LightMob::new(&mut store, AdaMoveConfig::tiny(), 6, 3, &mut rng);
        let mut sp = StreamingPredictor::new(&model, &store, PttaConfig::default(), 2, 24);
        // No window yet -> no prediction.
        assert!(sp.predict(UserId(0), Timestamp::from_hours(1)).is_none());

        sp.observe(UserId(0), pt(1, 0));
        sp.observe(UserId(0), pt(2, 2));
        sp.observe(UserId(1), pt(3, 1));
        assert_eq!(sp.active_users(), 2);

        let p0 = sp.predict(UserId(0), Timestamp::from_hours(3)).unwrap();
        let p1 = sp.predict(UserId(1), Timestamp::from_hours(3)).unwrap();
        assert_eq!(p0.window_len, 2);
        assert_eq!(p1.window_len, 1);
        assert_eq!(p0.scores.len(), 6);
        assert!(p0.top.0 < 6);
        // Different users with different windows get different scores.
        assert_ne!(p0.scores, p1.scores);
    }

    #[test]
    fn idle_user_does_not_serve_stale_points() {
        // Regression: push-time eviction only ages the window relative to
        // its newest point, so a user who went silent kept serving
        // predictions from arbitrarily old context.
        let mut rng = StdRng::seed_from_u64(11);
        let mut store = ParamStore::new();
        let model = LightMob::new(&mut store, AdaMoveConfig::tiny(), 6, 1, &mut rng);
        let mut sp = StreamingPredictor::new(&model, &store, PttaConfig::default(), 2, 24);
        sp.observe(UserId(0), pt(1, 0));
        sp.observe(UserId(0), pt(2, 5));

        // Within the 48h horizon: both points are live.
        let fresh = sp.predict(UserId(0), Timestamp::from_hours(6)).unwrap();
        assert_eq!(fresh.window_len, 2);

        // 50h later the first point (hour 0) has aged out but the second
        // (hour 5) is still inside `now - 48`.
        let partial = sp.predict(UserId(0), Timestamp::from_hours(50)).unwrap();
        assert_eq!(partial.window_len, 1);

        // A week later everything is stale: no prediction at all.
        assert!(sp
            .predict(UserId(0), Timestamp::from_hours(24 * 7))
            .is_none());

        // The user comes back: the window restarts from the new point.
        sp.observe(UserId(0), pt(4, 24 * 7 + 1));
        let back = sp
            .predict(UserId(0), Timestamp::from_hours(24 * 7 + 2))
            .unwrap();
        assert_eq!(back.window_len, 1);
    }

    #[test]
    fn stream_obs_counts_windows_evictions_and_outcomes() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut store = ParamStore::new();
        let model = LightMob::new(&mut store, AdaMoveConfig::tiny(), 6, 2, &mut rng);
        let registry = Registry::new();
        let mut sp = StreamingPredictor::new(&model, &store, PttaConfig::default(), 2, 24);
        sp.set_obs(StreamObs::register(&registry, &[]));

        // Unknown user: an empty predict.
        assert!(sp.predict(UserId(1), Timestamp::from_hours(0)).is_none());
        // Two users -> two windows created.
        sp.observe(UserId(0), pt(1, 0));
        sp.observe(UserId(0), pt(2, 5));
        sp.observe(UserId(1), pt(3, 1));
        // Push-time eviction: hour 60 ages out hours 0 and 5 (48h horizon).
        sp.observe(UserId(0), pt(4, 60));
        // Hit for user 0; query-time eviction empties user 1's window.
        assert!(sp.predict(UserId(0), Timestamp::from_hours(61)).is_some());
        assert!(sp.predict(UserId(1), Timestamp::from_hours(600)).is_none());

        let snap = registry.snapshot();
        assert_eq!(snap.counters["stream_windows_created_total"], 2);
        assert_eq!(snap.counters["stream_window_evictions_total"], 3);
        assert_eq!(snap.counters["stream_predict_hits_total"], 1);
        assert_eq!(snap.counters["stream_predict_empty_total"], 2);
    }

    #[test]
    fn observe_returns_push_eviction_counts() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut store = ParamStore::new();
        let model = LightMob::new(&mut store, AdaMoveConfig::tiny(), 6, 1, &mut rng);
        let mut sp = StreamingPredictor::new(&model, &store, PttaConfig::default(), 2, 24);
        assert_eq!(sp.observe(UserId(0), pt(1, 0)), 0);
        assert_eq!(sp.observe(UserId(0), pt(2, 5)), 0);
        // Hour 60 ages out hours 0 and 5 (48h horizon): two evictions.
        assert_eq!(sp.observe(UserId(0), pt(3, 60)), 2);
        // A stale arrival beyond the horizon is dropped, not an eviction.
        assert_eq!(sp.observe(UserId(0), pt(4, 1)), 0);
    }

    #[test]
    fn export_and_restore_round_trip_preserves_windows_without_metrics() {
        let mut rng = StdRng::seed_from_u64(14);
        let mut store = ParamStore::new();
        let model = LightMob::new(&mut store, AdaMoveConfig::tiny(), 6, 3, &mut rng);
        let registry = Registry::new();
        let mut sp = StreamingPredictor::new(&model, &store, PttaConfig::default(), 2, 24);
        sp.observe(UserId(2), pt(1, 0));
        sp.observe(UserId(0), pt(2, 1));
        sp.observe(UserId(0), pt(3, 2));

        let exported = sp.export_windows();
        // Deterministic order: sorted by user id.
        assert_eq!(exported.len(), 2);
        assert_eq!(exported[0].0, UserId(0));
        assert_eq!(exported[0].1.len(), 2);
        assert_eq!(exported[1].0, UserId(2));

        // Restore into a fresh predictor with metrics attached: the
        // restore path must not count windows/evictions.
        let mut restored = StreamingPredictor::new(&model, &store, PttaConfig::default(), 2, 24);
        restored.set_obs(StreamObs::register(&registry, &[]));
        for (user, points) in &exported {
            restored.restore_user(*user, points);
        }
        assert_eq!(restored.active_users(), 2);
        assert_eq!(restored.export_windows(), {
            let mut e = exported.clone();
            e.sort_by_key(|(u, _)| u.0);
            e
        });
        let snap = registry.snapshot();
        assert_eq!(snap.counters["stream_windows_created_total"], 0);
        assert_eq!(snap.counters["stream_window_evictions_total"], 0);

        // And the restored predictor serves the same scores.
        let now = Timestamp::from_hours(3);
        let a = sp.predict(UserId(0), now).unwrap();
        let b = restored.predict(UserId(0), now).unwrap();
        assert_eq!(a.scores, b.scores);
        assert_eq!(a.quality, PredictionQuality::Adapted);
        assert_eq!(b.quality, PredictionQuality::Adapted);
    }

    #[test]
    fn breaker_rolls_back_to_frozen_scores() {
        use crate::recovery::{BreakerConfig, PttaBreaker};
        let mut rng = StdRng::seed_from_u64(15);
        let mut store = ParamStore::new();
        let model = LightMob::new(&mut store, AdaMoveConfig::tiny(), 8, 1, &mut rng);
        let user = UserId(0);
        let stream = [pt(1, 0), pt(5, 2), pt(2, 4), pt(7, 6), pt(3, 8)];

        // Measure the adapted entropy on this window with a breaker-less
        // predictor, then pick a threshold just below it so the breaker
        // provably trips on the same input.
        let mut probe = StreamingPredictor::new(&model, &store, PttaConfig::default(), 2, 24);
        for p in stream {
            probe.observe(user, p);
        }
        let now = Timestamp::from_hours(9);
        let adapted = probe.predict(user, now).unwrap();
        let hot = crate::ptta::score_entropy_millinats(&adapted.scores);
        assert!(hot > 0, "entropy of a multi-location window is positive");

        let mut sp = StreamingPredictor::new(&model, &store, PttaConfig::default(), 2, 24);
        sp.set_breaker(PttaBreaker::new(BreakerConfig {
            entropy_threshold_millinats: hot - 1,
            trip_after: 2,
            cooldown: 1,
        }));
        let registry = Registry::new();
        sp.set_breaker_obs(crate::recovery::BreakerObs::register(&registry, &[]));
        for p in stream {
            sp.observe(user, p);
        }
        // First hot prediction: streak 1 of 2, still adapted.
        let p1 = sp.predict(user, now).unwrap();
        assert_eq!(p1.quality, PredictionQuality::Adapted);
        assert_eq!(p1.scores, adapted.scores);
        // Second: trips and rolls back to the frozen classifier.
        let p2 = sp.predict(user, now).unwrap();
        assert_eq!(p2.quality, PredictionQuality::Frozen);
        let frozen = model.predict_scores(&store, &stream, user);
        assert_eq!(p2.scores, frozen);
        // Cooldown serve, still frozen.
        let p3 = sp.predict(user, now).unwrap();
        assert_eq!(p3.quality, PredictionQuality::Frozen);
        assert_eq!(p3.scores, frozen);

        let snap = registry.snapshot();
        assert_eq!(snap.counters["ptta_breaker_trips_total"], 1);
        assert_eq!(snap.counters["ptta_breaker_rollbacks_total"], 2);
        assert_eq!(snap.counters["ptta_breaker_resets_total"], 0);
    }

    #[test]
    fn streaming_prediction_matches_batch_ptta() {
        // The streaming path must be exactly Algorithm 1 over the window.
        let mut rng = StdRng::seed_from_u64(9);
        let mut store = ParamStore::new();
        let model = LightMob::new(&mut store, AdaMoveConfig::tiny(), 6, 1, &mut rng);
        let mut sp = StreamingPredictor::new(&model, &store, PttaConfig::default(), 3, 24);
        let stream = [pt(1, 0), pt(2, 3), pt(4, 6), pt(2, 9)];
        for p in stream {
            sp.observe(UserId(0), p);
        }
        let streamed = sp.predict(UserId(0), Timestamp::from_hours(10)).unwrap();

        let batch_sample = Sample {
            user: UserId(0),
            recent: stream.to_vec(),
            history: vec![],
            target: LocationId(0),
            target_time: Timestamp::from_hours(10),
        };
        let batch = Ptta::default().predict_scores(&model, &store, &batch_sample);
        assert_eq!(streamed.scores, batch);
    }
}
