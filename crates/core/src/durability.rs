//! Durable crash-safe fleet state (S26).
//!
//! PR 4's recovery layer keeps `CheckpointStore` + `Journal` in RAM, so a
//! process crash discards every adapted Θ column and history window. This
//! module puts a durability layer underneath it:
//!
//! * a checksummed, length-prefixed **segment format** for the write-ahead
//!   journal — CRC32 per record, sequence-numbered, torn-write tolerant:
//!   a short or corrupt *final* record is cleanly discarded on replay,
//!   while mid-file corruption yields a typed [`SegmentError`] and the
//!   whole segment is quarantined (renamed aside), never a panic;
//! * **atomic checkpoint snapshots** — write to a temp file, fsync, rename
//!   into place, fsync the parent directory — with rotation and journal
//!   pruning keyed to the last durable checkpoint sequence;
//! * a [`DurableStore`] that [`crate::ShardedEngine`] threads through as
//!   opt-in `RecoveryConfig::durability`, with per-record or
//!   interval-batched fsync ([`SyncPolicy`]).
//!
//! All filesystem access goes through the object-safe [`Fs`] trait so the
//! testkit can interpose a deterministic fault-injecting filesystem
//! (torn writes, bit flips, short reads, ENOSPC) without touching real
//! disks. Production uses [`RealFs`].
//!
//! ## On-disk layout (all integers little-endian)
//!
//! ```text
//! <root>/shard-<i>/seg-<first_seq:020>.log      journal segment
//! <root>/shard-<i>/ckpt-<last_seen:020>.ckpt    checkpoint snapshot
//! <root>/shard-<i>/<name>.quarantine            corrupt file, set aside
//!
//! segment  := header record*
//! header   := magic:u32 "AMSG" | version:u32 | first_seq:u64        (16 B)
//! record   := len:u32 (=24) | crc32:u32 (payload) | payload         (32 B)
//! payload  := seq:u64 | user:u32 | loc:u32 | time:i64               (24 B)
//!
//! checkpoint := magic:u32 "AMCK" | version:u32 | last_seen:u64
//!             | user_count:u32
//!             | { user:u32 | point_count:u32 | { loc:u32 | time:i64 }* }*
//!             | crc32:u32 (over all preceding bytes)
//! ```
//!
//! Persistence failures (ENOSPC, permission errors) are counted in
//! `recovery_persist_errors_total` and surfaced to the caller, but the
//! engine keeps serving: availability wins over durability, and the
//! recovery contract already tolerates an incomplete journal (degraded
//! replay) — losing the disk mid-flight degrades to exactly the
//! in-memory-only behaviour this module was added to improve on.

use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use adamove_mobility::{LocationId, Point, Timestamp, UserId};
use adamove_obs::{lock, Counter, Histogram, Registry, Stopwatch};

use crate::recovery::{JournalEntry, ShardCheckpoint};

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3 polynomial, table-driven, zero-dep)
// ---------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC32 (IEEE) of `bytes` — the checksum used by both segment records
/// and checkpoint files.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Wire constants
// ---------------------------------------------------------------------

/// Segment file magic: `"AMSG"` as a little-endian u32.
pub const SEGMENT_MAGIC: u32 = u32::from_le_bytes(*b"AMSG");
/// Checkpoint file magic: `"AMCK"` as a little-endian u32.
pub const CHECKPOINT_MAGIC: u32 = u32::from_le_bytes(*b"AMCK");
/// Current on-disk format version for both file kinds.
pub const FORMAT_VERSION: u32 = 1;
/// Segment header size: magic + version + first_seq.
pub const SEGMENT_HEADER_LEN: usize = 16;
/// Fixed payload size of one journal record.
pub const RECORD_PAYLOAD_LEN: usize = 24;
/// Fixed total size of one framed journal record.
pub const RECORD_LEN: usize = 8 + RECORD_PAYLOAD_LEN;

fn u32_at(b: &[u8], o: usize) -> u32 {
    let mut x = [0u8; 4];
    x.copy_from_slice(&b[o..o + 4]);
    u32::from_le_bytes(x)
}

fn u64_at(b: &[u8], o: usize) -> u64 {
    let mut x = [0u8; 8];
    x.copy_from_slice(&b[o..o + 8]);
    u64::from_le_bytes(x)
}

fn i64_at(b: &[u8], o: usize) -> i64 {
    u64_at(b, o) as i64
}

// ---------------------------------------------------------------------
// Typed corruption errors
// ---------------------------------------------------------------------

/// Typed decode failure for a segment or checkpoint file.
///
/// Every variant means *mid-file* (non-tail) corruption: the file cannot
/// be trusted and is quarantined by the recovery scan. A short or corrupt
/// final record is **not** an error — it is truncated as a torn tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentError {
    /// The file does not start with the expected magic number.
    BadMagic {
        /// The magic value actually found.
        found: u32,
    },
    /// The file magic is valid but the format version is unknown.
    UnsupportedVersion {
        /// The version actually found.
        found: u32,
    },
    /// A non-final record declares an impossible payload length.
    BadLength {
        /// Byte offset of the record frame.
        offset: usize,
        /// The length value actually found.
        len: u32,
    },
    /// A non-final record's payload does not match its stored CRC32.
    ChecksumMismatch {
        /// Byte offset of the record frame.
        offset: usize,
        /// The CRC stored in the frame.
        stored: u32,
        /// The CRC computed over the payload.
        computed: u32,
    },
    /// A non-final record's sequence number breaks the contiguous run.
    SequenceGap {
        /// Byte offset of the record frame.
        offset: usize,
        /// The sequence number that was expected.
        expected: u64,
        /// The sequence number actually found.
        found: u64,
    },
    /// A checkpoint file is shorter than its encoded contents require.
    Truncated {
        /// Minimum byte count the contents require.
        expected: usize,
        /// Byte count actually present.
        found: usize,
    },
}

impl fmt::Display for SegmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegmentError::BadMagic { found } => {
                write!(f, "bad magic 0x{found:08x}")
            }
            SegmentError::UnsupportedVersion { found } => {
                write!(f, "unsupported format version {found}")
            }
            SegmentError::BadLength { offset, len } => {
                write!(f, "bad record length {len} at offset {offset}")
            }
            SegmentError::ChecksumMismatch {
                offset,
                stored,
                computed,
            } => write!(
                f,
                "checksum mismatch at offset {offset}: stored 0x{stored:08x}, computed 0x{computed:08x}"
            ),
            SegmentError::SequenceGap {
                offset,
                expected,
                found,
            } => write!(
                f,
                "sequence gap at offset {offset}: expected {expected}, found {found}"
            ),
            SegmentError::Truncated { expected, found } => {
                write!(f, "truncated: need at least {expected} bytes, have {found}")
            }
        }
    }
}

impl std::error::Error for SegmentError {}

// ---------------------------------------------------------------------
// Record / segment codec
// ---------------------------------------------------------------------

/// Encode the 16-byte segment header for a segment whose first record
/// carries `first_seq`.
pub fn encode_segment_header(first_seq: u64) -> [u8; SEGMENT_HEADER_LEN] {
    let mut out = [0u8; SEGMENT_HEADER_LEN];
    out[0..4].copy_from_slice(&SEGMENT_MAGIC.to_le_bytes());
    out[4..8].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    out[8..16].copy_from_slice(&first_seq.to_le_bytes());
    out
}

/// Encode one journal entry as a framed, checksummed 32-byte record.
pub fn encode_record(entry: &JournalEntry) -> [u8; RECORD_LEN] {
    let mut payload = [0u8; RECORD_PAYLOAD_LEN];
    payload[0..8].copy_from_slice(&entry.id.to_le_bytes());
    payload[8..12].copy_from_slice(&entry.user.0.to_le_bytes());
    payload[12..16].copy_from_slice(&entry.point.loc.0.to_le_bytes());
    payload[16..24].copy_from_slice(&entry.point.time.0.to_le_bytes());
    let mut out = [0u8; RECORD_LEN];
    out[0..4].copy_from_slice(&(RECORD_PAYLOAD_LEN as u32).to_le_bytes());
    out[4..8].copy_from_slice(&crc32(&payload).to_le_bytes());
    out[8..].copy_from_slice(&payload);
    out
}

fn decode_payload(payload: &[u8]) -> JournalEntry {
    JournalEntry {
        id: u64_at(payload, 0),
        user: UserId(u32_at(payload, 8)),
        point: Point {
            loc: LocationId(u32_at(payload, 12)),
            time: Timestamp(i64_at(payload, 16)),
        },
    }
}

/// Result of scanning one segment file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentScan {
    /// First sequence number declared by the header (0 if the header
    /// itself was torn).
    pub first_seq: u64,
    /// Contiguously-sequenced, checksum-valid records.
    pub entries: Vec<JournalEntry>,
    /// Bytes discarded from the tail as a torn write (0 = clean file).
    pub torn_bytes: usize,
}

/// Scan a segment file, applying the torn-tail truncation rule.
///
/// Returns `Ok` with the valid prefix of records when the file is clean
/// or only its *final* record is short/corrupt (the torn tail is
/// discarded and reported via [`SegmentScan::torn_bytes`]). Returns a
/// typed [`SegmentError`] when any *non-final* byte range is corrupt —
/// the caller must quarantine the segment, because records after the
/// corruption cannot be trusted to be the ones that were acknowledged.
pub fn scan_segment(bytes: &[u8]) -> Result<SegmentScan, SegmentError> {
    if bytes.len() >= 4 {
        let magic = u32_at(bytes, 0);
        if magic != SEGMENT_MAGIC {
            return Err(SegmentError::BadMagic { found: magic });
        }
    }
    if bytes.len() >= 8 {
        let version = u32_at(bytes, 4);
        if version != FORMAT_VERSION {
            return Err(SegmentError::UnsupportedVersion { found: version });
        }
    }
    if bytes.len() < SEGMENT_HEADER_LEN {
        // Torn header: the create+header write never completed. No record
        // can have been acknowledged from this segment.
        return Ok(SegmentScan {
            first_seq: 0,
            entries: Vec::new(),
            torn_bytes: bytes.len(),
        });
    }
    let first_seq = u64_at(bytes, 8);
    let mut entries = Vec::new();
    let mut expected = first_seq;
    let mut o = SEGMENT_HEADER_LEN;
    loop {
        let rem = bytes.len() - o;
        if rem == 0 {
            return Ok(SegmentScan {
                first_seq,
                entries,
                torn_bytes: 0,
            });
        }
        if rem < RECORD_LEN {
            // Partial final frame: torn tail, discard.
            return Ok(SegmentScan {
                first_seq,
                entries,
                torn_bytes: rem,
            });
        }
        let is_final = rem == RECORD_LEN;
        let torn = |entries: Vec<JournalEntry>| {
            Ok(SegmentScan {
                first_seq,
                entries,
                torn_bytes: rem,
            })
        };
        let len = u32_at(bytes, o);
        if len as usize != RECORD_PAYLOAD_LEN {
            return if is_final {
                torn(entries)
            } else {
                Err(SegmentError::BadLength { offset: o, len })
            };
        }
        let stored = u32_at(bytes, o + 4);
        let payload = &bytes[o + 8..o + RECORD_LEN];
        let computed = crc32(payload);
        if stored != computed {
            return if is_final {
                torn(entries)
            } else {
                Err(SegmentError::ChecksumMismatch {
                    offset: o,
                    stored,
                    computed,
                })
            };
        }
        let entry = decode_payload(payload);
        if entry.id != expected {
            return if is_final {
                torn(entries)
            } else {
                Err(SegmentError::SequenceGap {
                    offset: o,
                    expected,
                    found: entry.id,
                })
            };
        }
        entries.push(entry);
        expected += 1;
        o += RECORD_LEN;
    }
}

// ---------------------------------------------------------------------
// Checkpoint codec
// ---------------------------------------------------------------------

/// Encode a shard checkpoint into its atomic on-disk representation
/// (magic, version, last_seen, per-user windows, trailing CRC32).
pub fn encode_checkpoint(cp: &ShardCheckpoint) -> Vec<u8> {
    let points: usize = cp.users.iter().map(|(_, w)| w.len()).sum();
    let mut out = Vec::with_capacity(20 + cp.users.len() * 8 + points * 12 + 4);
    out.extend_from_slice(&CHECKPOINT_MAGIC.to_le_bytes());
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&cp.last_seen.to_le_bytes());
    out.extend_from_slice(&(cp.users.len() as u32).to_le_bytes());
    for (user, window) in &cp.users {
        out.extend_from_slice(&user.0.to_le_bytes());
        out.extend_from_slice(&(window.len() as u32).to_le_bytes());
        for p in window {
            out.extend_from_slice(&p.loc.0.to_le_bytes());
            out.extend_from_slice(&p.time.0.to_le_bytes());
        }
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decode an atomic checkpoint file, verifying magic, version, byte
/// bounds and the trailing CRC32 before trusting any field.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<ShardCheckpoint, SegmentError> {
    if bytes.len() < 24 {
        return Err(SegmentError::Truncated {
            expected: 24,
            found: bytes.len(),
        });
    }
    let magic = u32_at(bytes, 0);
    if magic != CHECKPOINT_MAGIC {
        return Err(SegmentError::BadMagic { found: magic });
    }
    let version = u32_at(bytes, 4);
    if version != FORMAT_VERSION {
        return Err(SegmentError::UnsupportedVersion { found: version });
    }
    let body_len = bytes.len() - 4;
    let stored = u32_at(bytes, body_len);
    let computed = crc32(&bytes[..body_len]);
    if stored != computed {
        return Err(SegmentError::ChecksumMismatch {
            offset: body_len,
            stored,
            computed,
        });
    }
    let last_seen = u64_at(bytes, 8);
    let user_count = u32_at(bytes, 16) as usize;
    let mut users = Vec::with_capacity(user_count.min(1 << 16));
    let mut o = 20;
    for _ in 0..user_count {
        if o + 8 > body_len {
            return Err(SegmentError::Truncated {
                expected: o + 8 + 4,
                found: bytes.len(),
            });
        }
        let user = UserId(u32_at(bytes, o));
        let point_count = u32_at(bytes, o + 4) as usize;
        o += 8;
        let need = point_count.saturating_mul(12);
        if o + need > body_len {
            return Err(SegmentError::Truncated {
                expected: o + need + 4,
                found: bytes.len(),
            });
        }
        let mut window = Vec::with_capacity(point_count);
        for _ in 0..point_count {
            window.push(Point {
                loc: LocationId(u32_at(bytes, o)),
                time: Timestamp(i64_at(bytes, o + 4)),
            });
            o += 12;
        }
        users.push((user, window));
    }
    if o != body_len {
        return Err(SegmentError::Truncated {
            expected: o + 4,
            found: bytes.len(),
        });
    }
    Ok(ShardCheckpoint { last_seen, users })
}

// ---------------------------------------------------------------------
// Filesystem seam
// ---------------------------------------------------------------------

/// An open file handle created through [`Fs::create`].
pub trait FsFile: Send {
    /// Append `buf` in full (write_all semantics).
    fn append(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Flush buffered data (and size metadata) to stable storage — fsync.
    fn sync(&mut self) -> io::Result<()>;
}

/// Object-safe filesystem abstraction used by the durability layer.
///
/// Production uses [`RealFs`]; the testkit interposes a deterministic
/// fault-injecting implementation to exercise torn writes, bit flips,
/// short reads and ENOSPC without real disk faults.
pub trait Fs: fmt::Debug + Send + Sync {
    /// Create (or truncate) a file for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn FsFile>>;
    /// Read an entire file into memory.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Atomically rename `from` to `to` (same directory).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Remove a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Create a directory and all missing parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// List the entries of a directory (full paths, any order).
    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>>;
    /// Fsync a directory so renames/creates within it are durable.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;
}

/// The standard-library backed [`Fs`] used in production.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealFs;

struct RealFile(std::fs::File);

impl FsFile for RealFile {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        self.0.write_all(buf)
    }
    fn sync(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
}

impl Fs for RealFs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn FsFile>> {
        Ok(Box::new(RealFile(std::fs::File::create(path)?)))
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut f = std::fs::File::open(path)?;
        let mut out = Vec::new();
        f.read_to_end(&mut out)?;
        Ok(out)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }
    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(path)? {
            out.push(entry?.path());
        }
        Ok(out)
    }
    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        // On unix a directory can be opened read-only and fsync'd to make
        // renames within it durable. Where that is unsupported, treat the
        // rename itself as the durability point.
        match std::fs::File::open(path) {
            Ok(d) => d.sync_all(),
            Err(_) => Ok(()),
        }
    }
}

// ---------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------

/// When appended journal records are fsync'd.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Fsync after every record: an acknowledged observe is durable, at
    /// the cost of one fsync per write.
    PerRecord,
    /// Fsync once every `records` appends: bounded loss window (at most
    /// `records - 1` acknowledged observes) for near-zero overhead.
    Batched {
        /// Appends between fsyncs (clamped to at least 1).
        records: usize,
    },
}

impl SyncPolicy {
    /// Parse a CLI spelling: `per-record` or `batched:<N>`.
    pub fn parse(s: &str) -> Option<SyncPolicy> {
        if s == "per-record" {
            return Some(SyncPolicy::PerRecord);
        }
        let n = s.strip_prefix("batched:")?.parse::<usize>().ok()?;
        if n == 0 {
            return None;
        }
        Some(SyncPolicy::Batched { records: n })
    }
}

/// Opt-in durability settings carried in
/// [`crate::RecoveryConfig::durability`].
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Root state directory; each shard gets `<dir>/shard-<i>/`.
    pub dir: PathBuf,
    /// Fsync cadence for journal appends.
    pub sync: SyncPolicy,
    /// Records per segment before it is sealed and a new one started.
    pub segment_max_records: usize,
    /// Durable checkpoint snapshots retained per shard (newest first).
    pub keep_checkpoints: usize,
    /// Filesystem implementation (production: [`RealFs`]).
    pub fs: Arc<dyn Fs>,
}

impl DurabilityConfig {
    /// Durability under `dir` with production defaults: batched fsync
    /// every 64 records, 4096-record segments, 2 retained checkpoints.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            sync: SyncPolicy::Batched { records: 64 },
            segment_max_records: 4096,
            keep_checkpoints: 2,
            fs: Arc::new(RealFs),
        }
    }
}

// ---------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------

/// Durability metrics, registered once per engine.
#[derive(Debug, Clone)]
pub struct DurabilityObs {
    /// `recovery_fsync_latency_ns` — latency of each fsync call.
    pub fsync_latency: Histogram,
    /// `recovery_segments_sealed_total` — segments closed at max size.
    pub segments_sealed: Counter,
    /// `recovery_records_persisted_total` — journal records appended.
    pub records_persisted: Counter,
    /// `recovery_corrupt_records_total` — torn tails discarded plus
    /// segments rejected with a typed error during recovery.
    pub corrupt_records: Counter,
    /// `recovery_quarantined_segments_total` — segments renamed aside.
    pub quarantined_segments: Counter,
    /// `recovery_quarantined_checkpoints_total` — checkpoints renamed aside.
    pub quarantined_checkpoints: Counter,
    /// `recovery_checkpoints_persisted_total` — atomic snapshots written.
    pub checkpoints_persisted: Counter,
    /// `recovery_persist_errors_total` — I/O failures while persisting;
    /// the engine keeps serving but durability is degraded.
    pub persist_errors: Counter,
}

impl DurabilityObs {
    /// Register all durability metrics on `registry`.
    pub fn register(registry: &Registry) -> Self {
        DurabilityObs {
            fsync_latency: registry.histogram("recovery_fsync_latency_ns"),
            segments_sealed: registry.counter("recovery_segments_sealed_total"),
            records_persisted: registry.counter("recovery_records_persisted_total"),
            corrupt_records: registry.counter("recovery_corrupt_records_total"),
            quarantined_segments: registry.counter("recovery_quarantined_segments_total"),
            quarantined_checkpoints: registry.counter("recovery_quarantined_checkpoints_total"),
            checkpoints_persisted: registry.counter("recovery_checkpoints_persisted_total"),
            persist_errors: registry.counter("recovery_persist_errors_total"),
        }
    }
}

// ---------------------------------------------------------------------
// DurableStore
// ---------------------------------------------------------------------

/// State recovered for one shard during cold start.
#[derive(Debug, Clone)]
pub struct RecoveredShard {
    /// Newest valid durable checkpoint, if any.
    pub checkpoint: Option<ShardCheckpoint>,
    /// Contiguous journal suffix after the checkpoint, oldest first.
    pub entries: Vec<JournalEntry>,
    /// Next journal sequence number to assign (never reuses a sequence
    /// that may exist on disk, even inside quarantined segments).
    pub next_seq: u64,
    /// True when `checkpoint` + `entries` reconstruct the pre-crash
    /// engine exactly; false when corruption or loss left a gap.
    pub complete: bool,
    /// Segments and checkpoints quarantined during this recovery.
    pub quarantined: usize,
}

impl RecoveredShard {
    fn empty() -> Self {
        RecoveredShard {
            checkpoint: None,
            entries: Vec::new(),
            next_seq: 1,
            complete: true,
            quarantined: 0,
        }
    }

    /// True when there is anything at all to restore.
    pub fn has_state(&self) -> bool {
        self.checkpoint.is_some() || !self.entries.is_empty() || !self.complete
    }
}

struct SegmentWriter {
    file: Box<dyn FsFile>,
    path: PathBuf,
    first_seq: u64,
    last_seq: u64,
    records: usize,
}

struct ShardDisk {
    dir: PathBuf,
    writer: Option<SegmentWriter>,
    /// Sealed segments still on disk: (first_seq, last_seq, path).
    sealed: Vec<(u64, u64, PathBuf)>,
    /// Durable checkpoints on disk: (last_seen, path), oldest first.
    ckpts: Vec<(u64, PathBuf)>,
    next_seq: u64,
    unsynced: usize,
}

/// Per-engine durable store: one journal + checkpoint directory per
/// shard, all access serialized by a per-shard mutex.
pub struct DurableStore {
    cfg: DurabilityConfig,
    obs: DurabilityObs,
    shards: Vec<Mutex<ShardDisk>>,
}

impl fmt::Debug for DurableStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DurableStore")
            .field("dir", &self.cfg.dir)
            .field("shards", &self.shards.len())
            .finish()
    }
}

fn seg_name(first_seq: u64) -> String {
    format!("seg-{first_seq:020}.log")
}

fn ckpt_name(last_seen: u64) -> String {
    format!("ckpt-{last_seen:020}.ckpt")
}

fn parse_numbered(path: &Path, prefix: &str, suffix: &str) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let digits = name.strip_prefix(prefix)?.strip_suffix(suffix)?;
    digits.parse::<u64>().ok()
}

/// Rename a corrupt file aside as `<name>.quarantine`, best effort.
fn quarantine_file(fs: &dyn Fs, path: &Path, obs: &DurabilityObs) {
    let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
        return;
    };
    let target = path.with_file_name(format!("{name}.quarantine"));
    if fs.rename(path, &target).is_err() {
        obs.persist_errors.inc();
    }
}

impl DurableStore {
    /// Open (or create) the state directory, recovering every shard.
    ///
    /// Infallible by design: any I/O failure during recovery is counted
    /// in `recovery_persist_errors_total` and the affected shard comes up
    /// with whatever prefix of its state could be trusted (possibly
    /// nothing, flagged incomplete).
    pub fn open(
        cfg: DurabilityConfig,
        shards: usize,
        registry: &Registry,
    ) -> (Arc<Self>, Vec<RecoveredShard>) {
        let obs = DurabilityObs::register(registry);
        let mut disks = Vec::with_capacity(shards);
        let mut recovered = Vec::with_capacity(shards);
        for shard in 0..shards {
            let dir = cfg.dir.join(format!("shard-{shard}"));
            let (disk, rec) = recover_shard(&cfg, &obs, dir);
            disks.push(Mutex::new(disk));
            recovered.push(rec);
        }
        (
            Arc::new(DurableStore {
                cfg,
                obs,
                shards: disks,
            }),
            recovered,
        )
    }

    /// Durability metrics handle.
    pub fn obs(&self) -> &DurabilityObs {
        &self.obs
    }

    /// Append one journal record for `shard`, fsyncing per the
    /// configured [`SyncPolicy`]. On error the current segment is
    /// abandoned (a fresh one starts at the next append) and the failure
    /// is counted; the caller should keep serving.
    pub fn append(&self, shard: usize, entry: &JournalEntry) -> io::Result<()> {
        let Some(slot) = self.shards.get(shard) else {
            return Err(io::Error::new(io::ErrorKind::NotFound, "no such shard"));
        };
        let mut d = lock(slot);
        let res = append_inner(&self.cfg, &self.obs, &mut d, entry);
        // Advance even on failure so a later retry never reuses the id of
        // a record that may be partially on disk.
        d.next_seq = d.next_seq.max(entry.id.saturating_add(1));
        if res.is_err() {
            d.writer = None;
            d.unsynced = 0;
            self.obs.persist_errors.inc();
        }
        res
    }

    /// Atomically persist a checkpoint for `shard`, rotate old
    /// snapshots, and prune journal segments fully covered by it.
    pub fn write_checkpoint(&self, shard: usize, cp: &ShardCheckpoint) -> io::Result<()> {
        let Some(slot) = self.shards.get(shard) else {
            return Err(io::Error::new(io::ErrorKind::NotFound, "no such shard"));
        };
        let mut d = lock(slot);
        let res = checkpoint_inner(&self.cfg, &self.obs, &mut d, cp);
        if res.is_err() {
            self.obs.persist_errors.inc();
        }
        res
    }

    /// Fsync any batched-but-unsynced journal tail for every shard.
    pub fn sync_all(&self) -> io::Result<()> {
        let mut first_err = None;
        for slot in &self.shards {
            let mut d = lock(slot);
            if d.unsynced > 0 {
                if let Some(w) = d.writer.as_mut() {
                    let sw = Stopwatch::start();
                    match w.file.sync() {
                        Ok(()) => {
                            self.obs.fsync_latency.record(sw.elapsed_ns());
                            d.unsynced = 0;
                        }
                        Err(e) => {
                            self.obs.persist_errors.inc();
                            if first_err.is_none() {
                                first_err = Some(e);
                            }
                        }
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

fn recover_shard(
    cfg: &DurabilityConfig,
    obs: &DurabilityObs,
    dir: PathBuf,
) -> (ShardDisk, RecoveredShard) {
    let fs = cfg.fs.as_ref();
    let mut disk = ShardDisk {
        dir: dir.clone(),
        writer: None,
        sealed: Vec::new(),
        ckpts: Vec::new(),
        next_seq: 1,
        unsynced: 0,
    };
    let mut rec = RecoveredShard::empty();
    if fs.create_dir_all(&dir).is_err() {
        obs.persist_errors.inc();
        return (disk, rec);
    }
    let listing = match fs.list_dir(&dir) {
        Ok(l) => l,
        Err(_) => {
            obs.persist_errors.inc();
            return (disk, rec);
        }
    };
    let mut ckpt_files: Vec<(u64, PathBuf)> = Vec::new();
    let mut seg_files: Vec<(u64, PathBuf)> = Vec::new();
    for path in listing {
        if let Some(n) = parse_numbered(&path, "ckpt-", ".ckpt") {
            ckpt_files.push((n, path));
        } else if let Some(n) = parse_numbered(&path, "seg-", ".log") {
            seg_files.push((n, path));
        } else if path.extension().is_some_and(|e| e == "tmp") {
            // A checkpoint temp file that never got renamed: stale, drop.
            let _ = fs.remove_file(&path);
        }
    }
    // Newest valid checkpoint wins; corrupt newer ones are quarantined.
    ckpt_files.sort_by_key(|f| std::cmp::Reverse(f.0));
    let mut surviving_ckpts: Vec<(u64, PathBuf)> = Vec::new();
    for (n, path) in ckpt_files {
        if rec.checkpoint.is_some() {
            // Older than the chosen snapshot: keep for rotation to prune.
            surviving_ckpts.push((n, path));
            continue;
        }
        match fs.read(&path) {
            Ok(bytes) => match decode_checkpoint(&bytes) {
                Ok(cp) => {
                    rec.checkpoint = Some(cp);
                    surviving_ckpts.push((n, path));
                }
                Err(_) => {
                    obs.corrupt_records.inc();
                    obs.quarantined_checkpoints.inc();
                    quarantine_file(fs, &path, obs);
                    rec.quarantined += 1;
                }
            },
            Err(_) => {
                obs.persist_errors.inc();
                obs.quarantined_checkpoints.inc();
                quarantine_file(fs, &path, obs);
                rec.quarantined += 1;
            }
        }
    }
    surviving_ckpts.sort_by_key(|(n, _)| *n);
    disk.ckpts = surviving_ckpts;

    let base = rec.checkpoint.as_ref().map_or(0, |c| c.last_seen);
    let mut max_seen = base;
    let mut lost = false;
    seg_files.sort_by_key(|(n, _)| *n);
    for (name_seq, path) in seg_files {
        match fs.read(&path) {
            Ok(bytes) => {
                // Upper bound on sequences that may live in this file,
                // trusted even when the scan fails: never reuse them.
                let slots = (bytes.len().saturating_sub(SEGMENT_HEADER_LEN) / RECORD_LEN) as u64;
                match scan_segment(&bytes) {
                    Ok(scan) => {
                        if scan.torn_bytes > 0 {
                            obs.corrupt_records.inc();
                        }
                        if let Some(last) = scan.entries.last() {
                            max_seen = max_seen.max(last.id);
                            disk.sealed.push((scan.first_seq, last.id, path));
                        } else {
                            // Header-only (or torn-header) file: worthless,
                            // drop it rather than carry it forward.
                            let _ = fs.remove_file(&path);
                        }
                        rec.entries.extend(scan.entries);
                    }
                    Err(_) => {
                        obs.corrupt_records.inc();
                        obs.quarantined_segments.inc();
                        quarantine_file(fs, &path, obs);
                        rec.quarantined += 1;
                        max_seen = max_seen.max(name_seq.saturating_add(slots));
                        lost = true;
                    }
                }
            }
            Err(_) => {
                obs.persist_errors.inc();
                obs.quarantined_segments.inc();
                quarantine_file(fs, &path, obs);
                rec.quarantined += 1;
                max_seen = max_seen.max(name_seq);
                lost = true;
            }
        }
    }
    // Keep only the contiguous run base+1, base+2, ... — anything after a
    // gap cannot be replayed faithfully (the gap holds acknowledged
    // records we no longer have).
    let mut kept: Vec<JournalEntry> = Vec::with_capacity(rec.entries.len());
    let mut expected = base.saturating_add(1);
    for e in rec.entries.drain(..) {
        if e.id <= base {
            continue;
        }
        if e.id == expected {
            kept.push(e);
            expected += 1;
        } else {
            lost = true;
            break;
        }
    }
    rec.entries = kept;
    rec.next_seq = max_seen.saturating_add(1);
    rec.complete = !lost && base + rec.entries.len() as u64 == rec.next_seq - 1;
    disk.next_seq = rec.next_seq;
    (disk, rec)
}

fn append_inner(
    cfg: &DurabilityConfig,
    obs: &DurabilityObs,
    d: &mut ShardDisk,
    entry: &JournalEntry,
) -> io::Result<()> {
    if d.writer.is_none() {
        let path = d.dir.join(seg_name(entry.id));
        let mut file = cfg.fs.create(&path)?;
        file.append(&encode_segment_header(entry.id))?;
        // Make the new segment's directory entry durable so an acked
        // record can't vanish with its whole file.
        cfg.fs.sync_dir(&d.dir)?;
        d.writer = Some(SegmentWriter {
            file,
            path,
            first_seq: entry.id,
            last_seq: entry.id,
            records: 0,
        });
        d.unsynced = 0;
    }
    let Some(w) = d.writer.as_mut() else {
        return Err(io::Error::other("segment writer unavailable"));
    };
    w.file.append(&encode_record(entry))?;
    w.last_seq = entry.id;
    w.records += 1;
    obs.records_persisted.inc();
    d.unsynced += 1;
    let need_sync = match cfg.sync {
        SyncPolicy::PerRecord => true,
        SyncPolicy::Batched { records } => d.unsynced >= records.max(1),
    };
    let seal = w.records >= cfg.segment_max_records.max(1);
    if need_sync || seal {
        let sw = Stopwatch::start();
        w.file.sync()?;
        obs.fsync_latency.record(sw.elapsed_ns());
        d.unsynced = 0;
    }
    if seal {
        d.sealed.push((w.first_seq, w.last_seq, w.path.clone()));
        d.writer = None;
        obs.segments_sealed.inc();
    }
    Ok(())
}

fn checkpoint_inner(
    cfg: &DurabilityConfig,
    obs: &DurabilityObs,
    d: &mut ShardDisk,
    cp: &ShardCheckpoint,
) -> io::Result<()> {
    let bytes = encode_checkpoint(cp);
    let tmp = d.dir.join("ckpt.tmp");
    {
        let mut f = cfg.fs.create(&tmp)?;
        f.append(&bytes)?;
        let sw = Stopwatch::start();
        f.sync()?;
        obs.fsync_latency.record(sw.elapsed_ns());
    }
    let final_path = d.dir.join(ckpt_name(cp.last_seen));
    cfg.fs.rename(&tmp, &final_path)?;
    cfg.fs.sync_dir(&d.dir)?;
    obs.checkpoints_persisted.inc();
    if !d.ckpts.iter().any(|(n, _)| *n == cp.last_seen) {
        d.ckpts.push((cp.last_seen, final_path));
        d.ckpts.sort_by_key(|(n, _)| *n);
    }
    while d.ckpts.len() > cfg.keep_checkpoints.max(1) {
        let (_, old) = d.ckpts.remove(0);
        if cfg.fs.remove_file(&old).is_err() {
            obs.persist_errors.inc();
        }
    }
    // Prune journal segments fully covered by the durable snapshot. The
    // active segment counts too: if its newest record is covered, drop it
    // so a clean drain leaves an empty journal behind.
    if d.writer
        .as_ref()
        .is_some_and(|w| w.last_seq <= cp.last_seen)
    {
        if let Some(w) = d.writer.take() {
            let _ = cfg.fs.remove_file(&w.path);
            d.unsynced = 0;
        }
    }
    let fs = cfg.fs.as_ref();
    d.sealed.retain(|(_, last, path)| {
        if *last <= cp.last_seen {
            let _ = fs.remove_file(path);
            false
        } else {
            true
        }
    });
    Ok(())
}

/// Restore helper shared by the engine's cold start and the tests:
/// clamp recovered entries to the in-memory journal capacity, returning
/// `(entries, dropped_through)` where older overflowed entries raise
/// `dropped_through` exactly like live [`crate::Journal`] eviction.
pub fn clamp_to_capacity(
    entries: Vec<JournalEntry>,
    capacity: usize,
    mut dropped_through: u64,
) -> (Vec<JournalEntry>, u64) {
    let capacity = capacity.max(1);
    let mut deque: VecDeque<JournalEntry> = VecDeque::with_capacity(capacity.min(entries.len()));
    for e in entries {
        if deque.len() == capacity {
            if let Some(front) = deque.pop_front() {
                dropped_through = dropped_through.max(front.id);
            }
        }
        deque.push_back(e);
    }
    (deque.into_iter().collect(), dropped_through)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u64, user: u32, loc: u32, hour: i64) -> JournalEntry {
        JournalEntry {
            id,
            user: UserId(user),
            point: Point::new(loc, Timestamp::from_hours(hour)),
        }
    }

    fn segment_bytes(first: u64, n: u64) -> Vec<u8> {
        let mut out = encode_segment_header(first).to_vec();
        for i in 0..n {
            let id = first + i;
            out.extend_from_slice(&encode_record(&entry(id, id as u32, 7, id as i64)));
        }
        out
    }

    #[test]
    fn crc32_known_vector() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn record_round_trip() {
        let e = entry(42, 7, 99, 12);
        let bytes = encode_record(&e);
        assert_eq!(bytes.len(), RECORD_LEN);
        assert_eq!(decode_payload(&bytes[8..]), e);
    }

    #[test]
    fn clean_segment_scans_fully() {
        let bytes = segment_bytes(10, 5);
        let scan = scan_segment(&bytes).expect("clean");
        assert_eq!(scan.first_seq, 10);
        assert_eq!(scan.entries.len(), 5);
        assert_eq!(scan.torn_bytes, 0);
        assert_eq!(scan.entries[0].id, 10);
        assert_eq!(scan.entries[4].id, 14);
    }

    #[test]
    fn torn_tail_is_truncated_not_error() {
        let bytes = segment_bytes(1, 3);
        // Cut anywhere inside the final record: valid prefix survives.
        for cut in 1..RECORD_LEN {
            let truncated = &bytes[..bytes.len() - cut];
            let scan = scan_segment(truncated).expect("torn tail is ok");
            assert_eq!(scan.entries.len(), 2, "cut={cut}");
            assert_eq!(scan.torn_bytes, RECORD_LEN - cut);
        }
    }

    #[test]
    fn torn_header_yields_empty_scan() {
        let bytes = segment_bytes(5, 2);
        for cut in [0usize, 1, 3, 4, 7, 8, 15] {
            let scan = scan_segment(&bytes[..cut]).expect("torn header");
            assert!(scan.entries.is_empty(), "cut={cut}");
            assert_eq!(scan.torn_bytes, cut);
        }
    }

    #[test]
    fn corrupt_final_record_is_truncated() {
        let mut bytes = segment_bytes(1, 3);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40; // flip a bit inside the final payload
        let scan = scan_segment(&bytes).expect("corrupt tail is ok");
        assert_eq!(scan.entries.len(), 2);
        assert_eq!(scan.torn_bytes, RECORD_LEN);
    }

    #[test]
    fn mid_file_bit_flip_is_checksum_mismatch() {
        let mut bytes = segment_bytes(1, 4);
        // Flip a payload bit of the second record (offsets 16+32..16+64).
        bytes[SEGMENT_HEADER_LEN + RECORD_LEN + 12] ^= 0x01;
        match scan_segment(&bytes) {
            Err(SegmentError::ChecksumMismatch { offset, .. }) => {
                assert_eq!(offset, SEGMENT_HEADER_LEN + RECORD_LEN);
            }
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn mid_file_bad_length_is_typed() {
        let mut bytes = segment_bytes(1, 3);
        bytes[SEGMENT_HEADER_LEN] = 0xFF; // len field of record 1
        match scan_segment(&bytes) {
            Err(SegmentError::BadLength { offset, .. }) => {
                assert_eq!(offset, SEGMENT_HEADER_LEN);
            }
            other => panic!("expected bad length, got {other:?}"),
        }
    }

    #[test]
    fn sequence_gap_is_typed() {
        let mut bytes = encode_segment_header(1).to_vec();
        bytes.extend_from_slice(&encode_record(&entry(1, 1, 1, 1)));
        bytes.extend_from_slice(&encode_record(&entry(3, 3, 3, 3))); // gap!
        bytes.extend_from_slice(&encode_record(&entry(4, 4, 4, 4)));
        match scan_segment(&bytes) {
            Err(SegmentError::SequenceGap {
                expected, found, ..
            }) => {
                assert_eq!((expected, found), (2, 3));
            }
            other => panic!("expected sequence gap, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        assert!(matches!(
            scan_segment(b"garbage bytes here"),
            Err(SegmentError::BadMagic { .. })
        ));
        let mut bytes = segment_bytes(1, 1);
        bytes[4] = 9;
        assert!(matches!(
            scan_segment(&bytes),
            Err(SegmentError::UnsupportedVersion { found: 9 })
        ));
    }

    #[test]
    fn checkpoint_round_trip() {
        let cp = ShardCheckpoint {
            last_seen: 1234,
            users: vec![
                (UserId(1), vec![Point::new(5, Timestamp::from_hours(2))]),
                (
                    UserId(9),
                    vec![
                        Point::new(8, Timestamp::from_hours(3)),
                        Point::new(2, Timestamp::from_hours(4)),
                    ],
                ),
            ],
        };
        let bytes = encode_checkpoint(&cp);
        let back = decode_checkpoint(&bytes).expect("round trip");
        assert_eq!(back, cp);
    }

    #[test]
    fn checkpoint_corruption_is_typed_never_panics() {
        let cp = ShardCheckpoint {
            last_seen: 7,
            users: vec![(UserId(3), vec![Point::new(1, Timestamp::from_hours(1))])],
        };
        let bytes = encode_checkpoint(&cp);
        // Truncation at every length is a typed error, never a panic.
        for cut in 0..bytes.len() {
            assert!(decode_checkpoint(&bytes[..cut]).is_err(), "cut={cut}");
        }
        // Any single bit flip is caught by magic/version/CRC checks.
        for byte in 0..bytes.len() {
            let mut m = bytes.clone();
            m[byte] ^= 0x10;
            assert!(decode_checkpoint(&m).is_err(), "byte={byte}");
        }
    }

    fn temp_store(tag: &str, sync: SyncPolicy) -> (DurabilityConfig, Registry) {
        let dir =
            std::env::temp_dir().join(format!("adamove-durability-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = DurabilityConfig::new(dir);
        cfg.sync = sync;
        (cfg, Registry::new())
    }

    #[test]
    fn store_append_recover_round_trip() {
        let (cfg, registry) = temp_store("round", SyncPolicy::PerRecord);
        let dir = cfg.dir.clone();
        {
            let (store, recovered) = DurableStore::open(cfg.clone(), 2, &registry);
            assert!(recovered.iter().all(|r| r.complete && !r.has_state()));
            for id in 1..=10u64 {
                store
                    .append(0, &entry(id, id as u32, 3, id as i64))
                    .expect("append");
            }
            store.append(1, &entry(1, 99, 4, 5)).expect("append");
        }
        let registry2 = Registry::new();
        let (_store, recovered) = DurableStore::open(cfg, 2, &registry2);
        assert_eq!(recovered[0].entries.len(), 10);
        assert!(recovered[0].complete);
        assert_eq!(recovered[0].next_seq, 11);
        assert_eq!(recovered[1].entries.len(), 1);
        assert_eq!(recovered[1].entries[0].user, UserId(99));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn store_checkpoint_prunes_and_rotates() {
        let (mut cfg, registry) = temp_store("prune", SyncPolicy::PerRecord);
        cfg.keep_checkpoints = 1;
        cfg.segment_max_records = 4;
        let dir = cfg.dir.clone();
        {
            let (store, _) = DurableStore::open(cfg.clone(), 1, &registry);
            for id in 1..=10u64 {
                store.append(0, &entry(id, 1, 2, 3)).expect("append");
            }
            let cp = ShardCheckpoint {
                last_seen: 6,
                users: vec![(UserId(1), vec![Point::new(2, Timestamp::from_hours(3))])],
            };
            store.write_checkpoint(0, &cp).expect("checkpoint");
            let cp2 = ShardCheckpoint {
                last_seen: 10,
                users: vec![(UserId(1), vec![Point::new(2, Timestamp::from_hours(3))])],
            };
            store.write_checkpoint(0, &cp2).expect("checkpoint 2");
        }
        // Rotation kept only the newest snapshot; pruning removed every
        // segment (all records covered by last_seen = 10).
        let names: Vec<String> = std::fs::read_dir(dir.join("shard-0"))
            .expect("dir")
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert!(
            names.iter().all(|n| !n.starts_with("seg-")),
            "journal not pruned: {names:?}"
        );
        assert_eq!(
            names.iter().filter(|n| n.starts_with("ckpt-")).count(),
            1,
            "rotation failed: {names:?}"
        );
        let registry2 = Registry::new();
        let (_s, recovered) = DurableStore::open(cfg, 1, &registry2);
        assert!(recovered[0].complete);
        assert!(recovered[0].entries.is_empty());
        assert_eq!(recovered[0].next_seq, 11);
        assert_eq!(
            recovered[0].checkpoint.as_ref().map(|c| c.last_seen),
            Some(10)
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn quarantined_segment_marks_incomplete() {
        let (mut cfg, registry) = temp_store("quarantine", SyncPolicy::PerRecord);
        cfg.segment_max_records = 3;
        let dir = cfg.dir.clone();
        {
            let (store, _) = DurableStore::open(cfg.clone(), 1, &registry);
            for id in 1..=9u64 {
                store.append(0, &entry(id, 1, 2, 3)).expect("append");
            }
        }
        // Corrupt a middle record of the SECOND segment (seqs 4..6).
        let victim = dir.join("shard-0").join(seg_name(4));
        let mut bytes = std::fs::read(&victim).expect("read victim");
        bytes[SEGMENT_HEADER_LEN + 10] ^= 0x08;
        std::fs::write(&victim, &bytes).expect("write victim");

        let registry2 = Registry::new();
        let (store, recovered) = DurableStore::open(cfg, 1, &registry2);
        let r = &recovered[0];
        // Records 1..=3 survive; the gap at 4 cuts off 7..=9 as well.
        assert_eq!(r.entries.len(), 3);
        assert!(!r.complete);
        assert_eq!(r.quarantined, 1);
        assert_eq!(r.next_seq, 10, "sequences after the gap are never reused");
        assert_eq!(store.obs().quarantined_segments.get(), 1);
        assert!(dir
            .join("shard-0")
            .join(format!("{}.quarantine", seg_name(4)))
            .exists());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn torn_tail_on_disk_recovers_prefix() {
        let (cfg, registry) = temp_store("torn", SyncPolicy::PerRecord);
        let dir = cfg.dir.clone();
        {
            let (store, _) = DurableStore::open(cfg.clone(), 1, &registry);
            for id in 1..=5u64 {
                store.append(0, &entry(id, 1, 2, 3)).expect("append");
            }
        }
        let victim = dir.join("shard-0").join(seg_name(1));
        let bytes = std::fs::read(&victim).expect("read");
        std::fs::write(&victim, &bytes[..bytes.len() - 11]).expect("truncate");

        let registry2 = Registry::new();
        let (store, recovered) = DurableStore::open(cfg, 1, &registry2);
        // The torn final record was never fully on disk, so it cannot have
        // been fsync-acknowledged: the 4-record prefix is complete.
        assert_eq!(recovered[0].entries.len(), 4);
        assert!(recovered[0].complete);
        assert_eq!(recovered[0].next_seq, 5);
        assert_eq!(store.obs().corrupt_records.get(), 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn batched_sync_policy_batches() {
        let (cfg, registry) = temp_store("batched", SyncPolicy::Batched { records: 8 });
        let dir = cfg.dir.clone();
        let (store, _) = DurableStore::open(cfg, 1, &registry);
        for id in 1..=20u64 {
            store.append(0, &entry(id, 1, 2, 3)).expect("append");
        }
        // 20 appends at batch=8 → 2 interval fsyncs; +1 from sync_all.
        let before = store.obs().fsync_latency.snapshot().count;
        assert_eq!(before, 2);
        store.sync_all().expect("sync_all");
        assert_eq!(store.obs().fsync_latency.snapshot().count, 3);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn sync_policy_parse() {
        assert_eq!(SyncPolicy::parse("per-record"), Some(SyncPolicy::PerRecord));
        assert_eq!(
            SyncPolicy::parse("batched:32"),
            Some(SyncPolicy::Batched { records: 32 })
        );
        assert_eq!(SyncPolicy::parse("batched:0"), None);
        assert_eq!(SyncPolicy::parse("sometimes"), None);
    }

    #[test]
    fn clamp_to_capacity_evicts_oldest() {
        let entries: Vec<JournalEntry> = (1..=10).map(|id| entry(id, 1, 1, 1)).collect();
        let (kept, dropped) = clamp_to_capacity(entries, 4, 0);
        assert_eq!(kept.len(), 4);
        assert_eq!(kept[0].id, 7);
        assert_eq!(dropped, 6);
        let (kept, dropped) = clamp_to_capacity(vec![entry(3, 1, 1, 1)], 4, 2);
        assert_eq!(kept.len(), 1);
        assert_eq!(dropped, 2);
    }
}
