//! Sharded serving runtime: parallel online prediction at scale.
//!
//! [`StreamingPredictor`] serves one request at a time; production
//! deployments (ROADMAP: millions of users) need concurrency. The
//! [`ShardedEngine`] partitions users across `N` worker shards by a
//! deterministic hash of the user id. Each shard is one OS thread owning
//! its users' [`RecentWindow`](crate::streaming::RecentWindow)s and a PTTA
//! adapter, draining a channel of observe/predict requests; the model and
//! parameter store are shared read-only behind [`Arc`]s (PTTA never mutates
//! them — adaptation happens per request on the classifier copy inside the
//! scoring call).
//!
//! Correctness guarantees:
//!
//! - **Per-user ordering.** A user's requests all land on one shard over
//!   one FIFO channel, so observes and predicts interleave exactly as
//!   submitted — no lost updates, no reordering.
//! - **Sequential equivalence.** Prediction depends only on the user's own
//!   window, so any interleaving across *different* users yields the same
//!   per-user results as a single [`StreamingPredictor`] fed the same
//!   per-user sequences.
//! - **Bounded failure.** A shard that dies (panic, injected fault) takes
//!   only its own users with it: requests routed to it surface a typed
//!   [`EngineError`] instead of hanging, other shards keep serving, and
//!   [`ShardedEngine::shutdown`] reports the casualty in
//!   [`EngineReport::failed_shards`].
//!
//! The shard loop consults an optional [`Disturbance`] before every
//! request — a `#[cfg]`-free seam the testkit's fault injection plugs into
//! (worker panics, delayed replies, dropped observes) without any
//! test-only code paths in the engine itself.
//!
//! # Observability
//!
//! Every engine owns an [`adamove_obs::Registry`]: per-shard counters
//! (`engine_observes_total{shard="i"}`, predicts, flushes, dropped
//! observes), a predict-latency histogram, queue-depth and live-user
//! gauges, plus engine-level fault counters (`engine_shard_down_total`,
//! `engine_timeout_total`). All hot-path updates are relaxed atomics —
//! no locks, no allocation. [`ShardedEngine::snapshot`] reads the
//! registry *mid-run*, so shard health (p99, queue depth, faults) is
//! visible before shutdown; the final [`EngineReport`] is rebuilt from
//! the same registry. Pass a sink-equipped [`Tracer`] via
//! [`ShardedEngine::with_observability`] to also get span events (e.g.
//! `shard_panic`); the default no-op tracer costs one branch.

use crate::eval::LatencyProfile;
use crate::lightmob::LightMob;
use crate::parallel::available_threads;
use crate::ptta::{PttaConfig, PttaObs};
use crate::streaming::{StreamObs, StreamPrediction, StreamingPredictor};
use adamove_autograd::ParamStore;
use adamove_mobility::{Point, Timestamp, UserId};
use adamove_obs::{event, labeled, Counter, Gauge, Histogram, HistogramSnapshot, Registry, Tracer};
use adamove_tensor::det::mix64;
use std::fmt;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of a [`ShardedEngine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of worker shards (threads). Zero is rounded up to one.
    pub shards: usize,
    /// Sliding-window context length `c` (paper Definition 3).
    pub context_sessions: usize,
    /// Session length `T` in hours.
    pub session_hours: i64,
    /// PTTA adaptation settings used on every predict.
    pub ptta: PttaConfig,
}

impl Default for EngineConfig {
    /// One shard per available core, paper-default window (`c = 5`,
    /// `T = 72h`) and PTTA settings.
    fn default() -> Self {
        Self {
            shards: available_threads(),
            context_sessions: 5,
            session_hours: 72,
            ptta: PttaConfig::default(),
        }
    }
}

/// Typed failure of a single engine request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The shard owning the user has terminated (panic or injected fault)
    /// and can no longer serve requests.
    ShardDown {
        /// Index of the dead shard.
        shard: usize,
    },
    /// The shard did not reply within the caller's bound (slow or stuck).
    Timeout {
        /// Index of the unresponsive shard.
        shard: usize,
        /// How long the caller waited.
        waited: Duration,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::ShardDown { shard } => write!(f, "engine shard {shard} is down"),
            EngineError::Timeout { shard, waited } => {
                write!(f, "engine shard {shard} did not reply within {waited:?}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Typed failure of [`ShardedEngine::shutdown_timeout`]: one or more shards
/// failed to drain and exit before the deadline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShutdownError {
    /// Shards still running at the deadline (panicked shards are *not*
    /// stuck — they are reported via [`EngineReport::failed_shards`]).
    pub stuck_shards: Vec<usize>,
    /// The deadline that elapsed.
    pub timeout: Duration,
}

impl fmt::Display for ShutdownError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "engine shutdown timed out after {:?}; shards still draining: {:?}",
            self.timeout, self.stuck_shards
        )
    }
}

impl std::error::Error for ShutdownError {}

/// The kind of request a shard is about to process — the [`Disturbance`]
/// seam's view of the traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// A check-in delivery.
    Observe,
    /// A blocking prediction.
    Predict,
    /// A flush barrier token.
    Flush,
}

/// What an injected disturbance does to one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultAction {
    /// Process normally.
    #[default]
    None,
    /// Unwind the shard thread before processing (a worker crash). The
    /// unwind bypasses the panic hook, so tests stay quiet.
    PanicShard,
    /// Sleep before processing (a slow or delayed reply).
    Delay(Duration),
    /// Silently drop the request if it is an observe (delivery loss);
    /// other request kinds are processed normally.
    DropObserve,
}

/// Deterministic runtime-disturbance source, consulted by every shard loop
/// once per incoming request. `seq` counts requests received by that shard
/// (starting at 0, flush tokens included), so an implementation that is a
/// pure function of `(shard, seq, kind)` reproduces the same fault
/// schedule on every run regardless of thread timing.
pub trait Disturbance: Send + Sync + 'static {
    /// Decide what happens to the `seq`-th request on `shard`.
    fn action(&self, shard: usize, seq: u64, kind: RequestKind) -> FaultAction;
}

/// Final statistics from a shut-down engine.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Number of worker shards that ran.
    pub shards: usize,
    /// Total observe requests processed.
    pub observed: usize,
    /// Total predict requests processed.
    pub predictions: usize,
    /// Users with a live window at shutdown, per shard (shard order; zero
    /// for shards that died before reporting).
    pub per_shard_users: Vec<usize>,
    /// Shards that terminated abnormally (panicked) instead of draining.
    pub failed_shards: Vec<usize>,
    /// Observe requests dropped by an injected disturbance.
    pub dropped_observes: usize,
    /// Wall-clock lifetime of the engine.
    pub elapsed: Duration,
    /// Predict-handling latency percentiles (in-shard compute, queueing
    /// excluded) and predictions per wall-clock second.
    pub latency: LatencyProfile,
}

impl EngineReport {
    /// Total users with live windows across all shards.
    pub fn users(&self) -> usize {
        self.per_shard_users.iter().sum()
    }

    /// True when every shard drained and exited cleanly.
    pub fn healthy(&self) -> bool {
        self.failed_shards.is_empty()
    }

    /// All requests (observe + predict) per wall-clock second.
    pub fn requests_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            (self.observed + self.predictions) as f64 / secs
        } else {
            0.0
        }
    }

    /// One-line human-readable rendering.
    pub fn row(&self) -> String {
        let health = if self.healthy() {
            String::new()
        } else {
            format!(
                "  {} shard(s) FAILED {:?}",
                self.failed_shards.len(),
                self.failed_shards
            )
        };
        format!(
            "{} shards  {} users  {} obs + {} pred  {}{}",
            self.shards,
            self.users(),
            self.observed,
            self.predictions,
            self.latency.row(),
            health
        )
    }
}

enum Request {
    Observe(UserId, Point),
    Predict {
        user: UserId,
        now: Timestamp,
        reply: mpsc::Sender<Option<StreamPrediction>>,
    },
    Flush(mpsc::Sender<()>),
}

impl Request {
    fn kind(&self) -> RequestKind {
        match self {
            Request::Observe(..) => RequestKind::Observe,
            Request::Predict { .. } => RequestKind::Predict,
            Request::Flush(..) => RequestKind::Flush,
        }
    }
}

/// Per-shard metric handles, registered once at spawn and cloned into the
/// worker thread. Every update is a relaxed atomic operation.
#[derive(Debug, Clone)]
struct ShardObs {
    observes: Counter,
    predicts: Counter,
    flushes: Counter,
    dropped_observes: Counter,
    predict_latency: Histogram,
    queue_depth: Gauge,
    users: Gauge,
}

impl ShardObs {
    fn register(registry: &Registry, shard: usize) -> Self {
        let s = shard.to_string();
        let l = |name: &str| labeled(name, &[("shard", &s)]);
        Self {
            observes: registry.counter(&l("engine_observes_total")),
            predicts: registry.counter(&l("engine_predicts_total")),
            flushes: registry.counter(&l("engine_flushes_total")),
            dropped_observes: registry.counter(&l("engine_dropped_observes_total")),
            predict_latency: registry.histogram(&l("engine_predict_latency_ns")),
            queue_depth: registry.gauge(&l("engine_queue_depth")),
            users: registry.gauge(&l("engine_users")),
        }
    }
}

/// Mid-run view of one shard, read from the live registry.
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    /// Shard index.
    pub shard: usize,
    /// Observe requests processed so far.
    pub observed: usize,
    /// Predict requests processed so far.
    pub predictions: usize,
    /// Flush tokens processed so far.
    pub flushes: usize,
    /// Observes dropped by an injected disturbance so far.
    pub dropped_observes: usize,
    /// Requests enqueued but not yet received by the worker.
    pub queue_depth: usize,
    /// Users with a live window on this shard.
    pub users: usize,
    /// Predict-handling latency distribution so far (nanoseconds; use
    /// [`HistogramSnapshot::percentile`] for p50/p95/p99 readout).
    pub predict_latency: HistogramSnapshot,
    /// False once the worker thread has terminated (drained or panicked).
    pub alive: bool,
}

/// Mid-run view of the whole engine — [`ShardedEngine::snapshot`].
#[derive(Debug, Clone)]
pub struct EngineSnapshot {
    /// Per-shard state, in shard order.
    pub shards: Vec<ShardSnapshot>,
    /// Requests that failed with [`EngineError::ShardDown`] so far.
    pub shard_down_errors: usize,
    /// Requests that failed with [`EngineError::Timeout`] so far.
    pub timeout_errors: usize,
    /// Engine lifetime so far.
    pub elapsed: Duration,
}

impl EngineSnapshot {
    /// Total observes processed across shards.
    pub fn observed(&self) -> usize {
        self.shards.iter().map(|s| s.observed).sum()
    }

    /// Total predicts processed across shards.
    pub fn predictions(&self) -> usize {
        self.shards.iter().map(|s| s.predictions).sum()
    }

    /// Total observes dropped by disturbances across shards.
    pub fn dropped_observes(&self) -> usize {
        self.shards.iter().map(|s| s.dropped_observes).sum()
    }

    /// Predict-latency distribution merged across all shards.
    pub fn predict_latency(&self) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::empty();
        for s in &self.shards {
            merged.merge(&s.predict_latency);
        }
        merged
    }
}

/// Unwind payload of an injected [`FaultAction::PanicShard`].
struct InjectedShardPanic;

/// Shard index for `user` under a `shards`-way partition.
///
/// Defined as `mix64(user) % shards` with the SplitMix64 finalizer from
/// [`adamove_tensor::det`] — cheap, well-mixed, and stable across runs;
/// the shard assignment is part of the engine's deterministic behaviour
/// and is pinned by the testkit's hashing suite.
pub fn shard_of(user: UserId, shards: usize) -> usize {
    (mix64(user.0 as u64) % shards.max(1) as u64) as usize
}

/// Multi-threaded sharded serving runtime. See the [module docs](self).
pub struct ShardedEngine {
    senders: Vec<mpsc::Sender<Request>>,
    handles: Vec<JoinHandle<()>>,
    // Mutex only to keep `ShardedEngine: Sync` (Receiver is Send but not
    // Sync); shutdown is the sole reader and takes `self` by value.
    // Payload: (shard, users-with-live-windows-at-exit) — the one datum
    // a worker can only report once it stops mutating its windows. All
    // counts and latencies live in the registry instead.
    stats_rx: Mutex<mpsc::Receiver<(usize, usize)>>,
    started: Instant,
    registry: Arc<Registry>,
    tracer: Tracer,
    shard_obs: Vec<ShardObs>,
    shard_down_errors: Counter,
    timeout_errors: Counter,
}

impl ShardedEngine {
    /// Spawn `config.shards` worker threads sharing `model` and `store`.
    pub fn new(model: Arc<LightMob>, store: Arc<ParamStore>, config: EngineConfig) -> Self {
        Self::with_disturbance(model, store, config, None)
    }

    /// [`ShardedEngine::new`] with an optional [`Disturbance`] the shard
    /// loops consult before every request — the fault-injection seam.
    pub fn with_disturbance(
        model: Arc<LightMob>,
        store: Arc<ParamStore>,
        config: EngineConfig,
        disturbance: Option<Arc<dyn Disturbance>>,
    ) -> Self {
        Self::with_observability(
            model,
            store,
            config,
            disturbance,
            Arc::new(Registry::new()),
            Tracer::noop(),
        )
    }

    /// Full constructor: a caller-supplied metric [`Registry`] (shared
    /// with other components or scraped externally) and a [`Tracer`]
    /// cloned into every shard worker. [`ShardedEngine::new`] uses a
    /// private registry and the no-op tracer.
    pub fn with_observability(
        model: Arc<LightMob>,
        store: Arc<ParamStore>,
        config: EngineConfig,
        disturbance: Option<Arc<dyn Disturbance>>,
        registry: Arc<Registry>,
        tracer: Tracer,
    ) -> Self {
        let shards = config.shards.max(1);
        let shard_obs: Vec<ShardObs> = (0..shards)
            .map(|s| ShardObs::register(&registry, s))
            .collect();
        let shard_down_errors = registry.counter("engine_shard_down_total");
        let timeout_errors = registry.counter("engine_timeout_total");
        let (stats_tx, stats_rx) = mpsc::channel::<(usize, usize)>();
        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for (shard, obs) in shard_obs.iter().enumerate() {
            let (tx, rx) = mpsc::channel::<Request>();
            let model = Arc::clone(&model);
            let store = Arc::clone(&store);
            let ptta = config.ptta.clone();
            let (c, t) = (config.context_sessions, config.session_hours);
            let disturbance = disturbance.clone();
            let stats_tx = stats_tx.clone();
            let obs = obs.clone();
            let tracer = tracer.clone();
            let shard_label = shard.to_string();
            let stream_obs = StreamObs::register(&registry, &[("shard", &shard_label)]);
            let ptta_obs = PttaObs::register(&registry, &[("shard", &shard_label)]);
            let handle = std::thread::Builder::new()
                .name(format!("adamove-shard-{shard}"))
                .spawn(move || {
                    let mut sp = StreamingPredictor::new(&model, &store, ptta, c, t);
                    sp.set_obs(stream_obs);
                    sp.set_ptta_obs(ptta_obs);
                    let mut seq: u64 = 0;
                    // Ends when every sender is dropped (engine shutdown).
                    while let Ok(req) = rx.recv() {
                        obs.queue_depth.dec();
                        let kind = req.kind();
                        let action = disturbance
                            .as_deref()
                            .map(|d| d.action(shard, seq, kind))
                            .unwrap_or(FaultAction::None);
                        seq += 1;
                        match action {
                            FaultAction::None => {}
                            FaultAction::PanicShard => {
                                event!(tracer, "shard_panic", shard = shard, seq = seq - 1);
                                // resume_unwind skips the panic hook: the
                                // crash is deliberate and tests stay quiet.
                                std::panic::resume_unwind(Box::new(InjectedShardPanic));
                            }
                            FaultAction::Delay(d) => std::thread::sleep(d),
                            FaultAction::DropObserve => {
                                if kind == RequestKind::Observe {
                                    obs.dropped_observes.inc();
                                    continue;
                                }
                            }
                        }
                        match req {
                            Request::Observe(user, point) => {
                                sp.observe(user, point);
                                obs.observes.inc();
                                obs.users.set(sp.active_users() as f64);
                            }
                            Request::Predict { user, now, reply } => {
                                let t0 = Instant::now();
                                let prediction = sp.predict(user, now);
                                obs.predict_latency.record(t0.elapsed().as_nanos() as u64);
                                obs.predicts.inc();
                                obs.users.set(sp.active_users() as f64);
                                // A dropped reply receiver only means the
                                // caller gave up waiting; not fatal.
                                let _ = reply.send(prediction);
                            }
                            Request::Flush(done) => {
                                obs.flushes.inc();
                                let _ = done.send(());
                            }
                        }
                    }
                    // Receiver gone = the engine was dropped without a
                    // shutdown; losing the stats is fine then.
                    let _ = stats_tx.send((shard, sp.active_users()));
                })
                .expect("failed to spawn engine shard");
            senders.push(tx);
            handles.push(handle);
        }
        Self {
            senders,
            handles,
            stats_rx: Mutex::new(stats_rx),
            started: Instant::now(),
            registry,
            tracer,
            shard_obs,
            shard_down_errors,
            timeout_errors,
        }
    }

    /// The metric registry backing this engine — export it with
    /// [`adamove_obs::to_flat_json`] / [`adamove_obs::to_prometheus`], or
    /// share it with other instrumented components.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The tracer shard workers report span events to.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Read the live registry *without* stopping the engine: per-shard
    /// request counts, queue depths, user counts, predict-latency
    /// percentiles and fault counters, all as of this instant. Counts may
    /// trail in-flight requests by a few relaxed-atomic updates; they
    /// converge as soon as the traffic quiesces (e.g. after
    /// [`ShardedEngine::flush`]).
    pub fn snapshot(&self) -> EngineSnapshot {
        let shards = self
            .shard_obs
            .iter()
            .enumerate()
            .map(|(i, obs)| ShardSnapshot {
                shard: i,
                observed: obs.observes.get() as usize,
                predictions: obs.predicts.get() as usize,
                flushes: obs.flushes.get() as usize,
                dropped_observes: obs.dropped_observes.get() as usize,
                queue_depth: obs.queue_depth.get().max(0.0) as usize,
                users: obs.users.get() as usize,
                predict_latency: obs.predict_latency.snapshot(),
                alive: !self.handles[i].is_finished(),
            })
            .collect();
        EngineSnapshot {
            shards,
            shard_down_errors: self.shard_down_errors.get() as usize,
            timeout_errors: self.timeout_errors.get() as usize,
            elapsed: self.started.elapsed(),
        }
    }

    /// Number of worker shards.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// The shard that owns `user`.
    pub fn shard_of(&self, user: UserId) -> usize {
        shard_of(user, self.senders.len())
    }

    /// Record an observed check-in for `user` (asynchronous: returns once
    /// the request is enqueued on the owning shard). Fails with
    /// [`EngineError::ShardDown`] when the owning shard has terminated.
    pub fn try_observe(&self, user: UserId, point: Point) -> Result<(), EngineError> {
        let shard = self.shard_of(user);
        self.shard_obs[shard].queue_depth.inc();
        self.senders[shard]
            .send(Request::Observe(user, point))
            .map_err(|_| {
                self.shard_obs[shard].queue_depth.dec();
                self.shard_down_errors.inc();
                EngineError::ShardDown { shard }
            })
    }

    /// [`ShardedEngine::try_observe`], panicking if the shard died.
    pub fn observe(&self, user: UserId, point: Point) {
        self.try_observe(user, point).expect("engine shard died");
    }

    /// Predict `user`'s next location, blocking until the owning shard has
    /// drained every earlier request for that user and computed the
    /// answer. `Ok(None)` when the user has no live window at `now`;
    /// [`EngineError::ShardDown`] when the shard terminated before
    /// replying (no hang — the dead shard's dropped channel ends the
    /// wait immediately).
    pub fn try_predict(
        &self,
        user: UserId,
        now: Timestamp,
    ) -> Result<Option<StreamPrediction>, EngineError> {
        let shard = self.shard_of(user);
        let rx = self.send_predict(shard, user, now)?;
        rx.recv().map_err(|_| {
            self.shard_down_errors.inc();
            EngineError::ShardDown { shard }
        })
    }

    /// [`ShardedEngine::try_predict`] with a bounded wait: a shard that is
    /// alive but unresponsive yields [`EngineError::Timeout`] after
    /// `timeout` instead of blocking the caller forever.
    pub fn predict_timeout(
        &self,
        user: UserId,
        now: Timestamp,
        timeout: Duration,
    ) -> Result<Option<StreamPrediction>, EngineError> {
        let shard = self.shard_of(user);
        let rx = self.send_predict(shard, user, now)?;
        rx.recv_timeout(timeout).map_err(|e| match e {
            mpsc::RecvTimeoutError::Timeout => {
                self.timeout_errors.inc();
                EngineError::Timeout {
                    shard,
                    waited: timeout,
                }
            }
            mpsc::RecvTimeoutError::Disconnected => {
                self.shard_down_errors.inc();
                EngineError::ShardDown { shard }
            }
        })
    }

    /// [`ShardedEngine::try_predict`], panicking if the shard died.
    pub fn predict(&self, user: UserId, now: Timestamp) -> Option<StreamPrediction> {
        self.try_predict(user, now).expect("engine shard died")
    }

    fn send_predict(
        &self,
        shard: usize,
        user: UserId,
        now: Timestamp,
    ) -> Result<mpsc::Receiver<Option<StreamPrediction>>, EngineError> {
        let (reply, rx) = mpsc::channel();
        self.shard_obs[shard].queue_depth.inc();
        self.senders[shard]
            .send(Request::Predict { user, now, reply })
            .map_err(|_| {
                self.shard_obs[shard].queue_depth.dec();
                self.shard_down_errors.inc();
                EngineError::ShardDown { shard }
            })?;
        Ok(rx)
    }

    /// Barrier: returns once every *live* shard has drained all requests
    /// enqueued before this call. Dead shards are skipped — a flush never
    /// hangs on a casualty.
    pub fn flush(&self) {
        let receivers: Vec<mpsc::Receiver<()>> = self
            .senders
            .iter()
            .zip(&self.shard_obs)
            .filter_map(|(tx, obs)| {
                let (done, rx) = mpsc::channel();
                obs.queue_depth.inc();
                match tx.send(Request::Flush(done)) {
                    Ok(()) => Some(rx),
                    Err(_) => {
                        obs.queue_depth.dec();
                        None
                    }
                }
            })
            .collect();
        for rx in receivers {
            // A shard that dies mid-flush drops the token; don't hang.
            let _ = rx.recv();
        }
    }

    /// Stop all shards and collect their statistics. Pending requests are
    /// drained before each shard exits; shards that panicked are reported
    /// in [`EngineReport::failed_shards`] rather than propagating the
    /// panic. Waits at most 60 seconds — use
    /// [`ShardedEngine::shutdown_timeout`] for a caller-chosen bound.
    ///
    /// # Panics
    /// If a shard is still draining after the 60-second default deadline.
    pub fn shutdown(self) -> EngineReport {
        self.shutdown_timeout(Duration::from_secs(60))
            .expect("engine shutdown timed out")
    }

    /// [`ShardedEngine::shutdown`] with an explicit deadline. Returns a
    /// typed [`ShutdownError`] naming the stuck shards instead of blocking
    /// forever when a shard cannot drain (the stuck workers are left
    /// detached; they exit on their own once they finish draining).
    pub fn shutdown_timeout(self, timeout: Duration) -> Result<EngineReport, ShutdownError> {
        let ShardedEngine {
            senders,
            handles,
            stats_rx,
            started,
            registry: _,
            tracer: _,
            shard_obs,
            shard_down_errors: _,
            timeout_errors: _,
        } = self;
        let stats_rx = stats_rx.into_inner().unwrap_or_else(|p| p.into_inner());
        // Workers exit (and report stats) once the channel disconnects.
        drop(senders);
        let shards = handles.len();
        let deadline = Instant::now() + timeout;
        let mut collected: Vec<Option<usize>> = (0..shards).map(|_| None).collect();
        let mut received = 0usize;
        while received < shards {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match stats_rx.recv_timeout(remaining) {
                Ok((shard, users)) => {
                    collected[shard] = Some(users);
                    received += 1;
                }
                // All stat senders dropped: every worker exited cleanly
                // (stats already queued and drained above) or panicked.
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    let stuck_shards: Vec<usize> = collected
                        .iter()
                        .enumerate()
                        .filter(|(i, s)| s.is_none() && !handles[*i].is_finished())
                        .map(|(i, _)| i)
                        .collect();
                    // Spurious wakeup right as the last workers finish:
                    // nothing is actually stuck, so keep collecting.
                    if stuck_shards.is_empty() {
                        continue;
                    }
                    return Err(ShutdownError {
                        stuck_shards,
                        timeout,
                    });
                }
            }
        }

        // Every worker has exited by now; joins are immediate (and their
        // final relaxed-atomic metric updates are visible after the join's
        // synchronization). A panicked worker shows up as a join error.
        let mut failed_shards = Vec::new();
        for (i, handle) in handles.into_iter().enumerate() {
            if handle.join().is_err() {
                failed_shards.push(i);
            }
        }

        // Rebuild the report from the registry: counts are the work the
        // shards actually completed (a shard that died mid-stream still
        // reports its pre-crash work); users come from the exit-time stats
        // channel (a dead shard never reports, so its slot stays 0).
        let mut observed = 0;
        let mut predictions = 0;
        let mut dropped_observes = 0;
        let mut latency_hist = HistogramSnapshot::empty();
        for obs in &shard_obs {
            observed += obs.observes.get() as usize;
            predictions += obs.predicts.get() as usize;
            dropped_observes += obs.dropped_observes.get() as usize;
            latency_hist.merge(&obs.predict_latency.snapshot());
        }
        let mut per_shard_users = vec![0usize; shards];
        for (i, users) in collected.into_iter().enumerate() {
            if let Some(users) = users {
                per_shard_users[i] = users;
            }
        }
        let elapsed = started.elapsed();
        Ok(EngineReport {
            shards,
            observed,
            predictions,
            per_shard_users,
            failed_shards,
            dropped_observes,
            elapsed,
            latency: LatencyProfile::from_histogram(&latency_hist, elapsed),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AdaMoveConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pt(loc: u32, h: i64) -> Point {
        Point::new(loc, Timestamp::from_hours(h))
    }

    fn model(locations: u32, users: u32) -> (Arc<ParamStore>, Arc<LightMob>) {
        let mut rng = StdRng::seed_from_u64(23);
        let mut store = ParamStore::new();
        let m = LightMob::new(
            &mut store,
            AdaMoveConfig::tiny(),
            locations,
            users,
            &mut rng,
        );
        (Arc::new(store), Arc::new(m))
    }

    #[test]
    fn shard_assignment_is_deterministic_and_total() {
        for shards in [1, 2, 7] {
            for u in 0..100 {
                let s = shard_of(UserId(u), shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(UserId(u), shards));
            }
        }
        // Hashing spreads users over shards (not all in one bucket).
        let buckets: std::collections::HashSet<usize> =
            (0..100).map(|u| shard_of(UserId(u), 4)).collect();
        assert!(buckets.len() > 1);
    }

    #[test]
    fn engine_matches_streaming_predictor_per_user() {
        let (store, m) = model(8, 6);
        let config = EngineConfig {
            shards: 3,
            context_sessions: 2,
            session_hours: 24,
            ptta: PttaConfig::default(),
        };
        let engine = ShardedEngine::new(Arc::clone(&m), Arc::clone(&store), config.clone());
        let mut reference = StreamingPredictor::new(&m, &store, config.ptta.clone(), 2, 24);

        // Interleaved traffic for six users across three shards.
        for step in 0..12i64 {
            for u in 0..6u32 {
                let p = pt((u + step as u32) % 8, step);
                engine.observe(UserId(u), p);
                reference.observe(UserId(u), p);
            }
        }
        let now = Timestamp::from_hours(13);
        for u in 0..6u32 {
            let from_engine = engine.predict(UserId(u), now);
            let from_reference = reference.predict(UserId(u), now);
            match (from_engine, from_reference) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.scores, b.scores, "user {u}");
                    assert_eq!(a.top, b.top);
                    assert_eq!(a.window_len, b.window_len);
                }
                (a, b) => panic!(
                    "user {u}: engine {:?} vs reference {:?}",
                    a.is_some(),
                    b.is_some()
                ),
            }
        }
        let report = engine.shutdown();
        assert_eq!(report.observed, 72);
        assert_eq!(report.predictions, 6);
        assert_eq!(report.users(), 6);
        assert_eq!(report.shards, 3);
        assert_eq!(report.latency.samples, 6);
        assert!(report.healthy());
        assert_eq!(report.dropped_observes, 0);
        assert!(report.requests_per_sec() > 0.0);
        assert!(!report.row().is_empty());
    }

    #[test]
    fn predict_observes_all_earlier_requests_for_the_user() {
        // No lost updates: a predict enqueued after N observes must see all
        // N points in the window.
        let (store, m) = model(6, 2);
        let engine = ShardedEngine::new(
            m,
            store,
            EngineConfig {
                shards: 2,
                context_sessions: 3,
                session_hours: 24,
                ptta: PttaConfig::default(),
            },
        );
        for i in 0..5i64 {
            engine.observe(UserId(1), pt(i as u32 % 6, i));
        }
        let p = engine.predict(UserId(1), Timestamp::from_hours(6)).unwrap();
        assert_eq!(p.window_len, 5);
        // Unknown user: None, not a panic.
        assert!(engine
            .predict(UserId(0), Timestamp::from_hours(6))
            .is_none());
        engine.flush();
        let report = engine.shutdown();
        assert_eq!(report.observed, 5);
        assert_eq!(report.predictions, 2);
    }

    #[test]
    fn zero_shards_rounds_up_to_one() {
        let (store, m) = model(4, 1);
        let engine = ShardedEngine::new(
            m,
            store,
            EngineConfig {
                shards: 0,
                ..EngineConfig::default()
            },
        );
        assert_eq!(engine.shards(), 1);
        engine.observe(UserId(0), pt(1, 0));
        assert!(engine
            .predict(UserId(0), Timestamp::from_hours(1))
            .is_some());
        engine.shutdown();
    }

    #[test]
    fn shutdown_timeout_succeeds_on_a_healthy_engine() {
        let (store, m) = model(4, 2);
        let engine = ShardedEngine::new(
            m,
            store,
            EngineConfig {
                shards: 2,
                context_sessions: 2,
                session_hours: 24,
                ptta: PttaConfig::default(),
            },
        );
        engine.observe(UserId(0), pt(1, 0));
        engine.observe(UserId(1), pt(2, 0));
        let report = engine
            .shutdown_timeout(Duration::from_secs(10))
            .expect("healthy engine must drain in time");
        assert!(report.healthy());
        assert_eq!(report.observed, 2);
    }

    #[test]
    fn predict_timeout_answers_within_bound_when_healthy() {
        let (store, m) = model(4, 1);
        let engine = ShardedEngine::new(
            m,
            store,
            EngineConfig {
                shards: 1,
                context_sessions: 2,
                session_hours: 24,
                ptta: PttaConfig::default(),
            },
        );
        engine.observe(UserId(0), pt(1, 0));
        let p = engine
            .predict_timeout(UserId(0), Timestamp::from_hours(1), Duration::from_secs(10))
            .expect("healthy shard replies in time");
        assert!(p.is_some());
        engine.shutdown();
    }

    #[test]
    fn snapshot_reads_live_counts_and_percentiles_mid_run() {
        let (store, m) = model(8, 6);
        let engine = ShardedEngine::new(
            m,
            store,
            EngineConfig {
                shards: 2,
                context_sessions: 2,
                session_hours: 24,
                ptta: PttaConfig::default(),
            },
        );
        for step in 0..4i64 {
            for u in 0..6u32 {
                engine.observe(UserId(u), pt((u + step as u32) % 8, step));
            }
        }
        let now = Timestamp::from_hours(5);
        for u in 0..6u32 {
            assert!(engine.predict(UserId(u), now).is_some());
        }
        engine.flush();

        // Mid-run: engine still serving, snapshot agrees with the traffic.
        let snap = engine.snapshot();
        assert_eq!(snap.shards.len(), 2);
        assert_eq!(snap.observed(), 24);
        assert_eq!(snap.predictions(), 6);
        assert_eq!(snap.dropped_observes(), 0);
        assert_eq!(snap.shard_down_errors, 0);
        assert_eq!(snap.timeout_errors, 0);
        let lat = snap.predict_latency();
        assert_eq!(lat.count, 6);
        assert!(lat.percentile(0.50) > 0.0);
        assert!(lat.percentile(0.99) >= lat.percentile(0.50));
        for s in &snap.shards {
            assert!(s.alive, "shard {} should be serving", s.shard);
            // Flushed: nothing left in any queue.
            assert_eq!(s.queue_depth, 0, "shard {}", s.shard);
            assert_eq!(s.flushes, 1);
            assert_eq!(s.predict_latency.count as usize, s.predictions);
        }
        assert_eq!(snap.shards.iter().map(|s| s.users).sum::<usize>(), 6);

        // The engine still serves after a snapshot, and the final report
        // agrees with what the snapshot saw.
        assert!(engine.predict(UserId(0), now).is_some());
        let report = engine.shutdown();
        assert_eq!(report.observed, 24);
        assert_eq!(report.predictions, 7);
        assert_eq!(report.latency.samples, 7);
        assert_eq!(report.users(), 6);
    }

    #[test]
    fn registry_export_contains_engine_metrics() {
        let (store, m) = model(4, 2);
        let engine = ShardedEngine::new(
            m,
            store,
            EngineConfig {
                shards: 1,
                context_sessions: 2,
                session_hours: 24,
                ptta: PttaConfig::default(),
            },
        );
        engine.observe(UserId(0), pt(1, 0));
        assert!(engine
            .predict(UserId(0), Timestamp::from_hours(1))
            .is_some());
        engine.flush();
        let json = adamove_obs::to_flat_json(&engine.registry().snapshot());
        assert!(json.contains("engine_observes_total{shard=\\\"0\\\"}\": 1"));
        assert!(json.contains("engine_predicts_total{shard=\\\"0\\\"}\": 1"));
        assert!(json.contains("engine_predict_latency_ns_p99{shard=\\\"0\\\"}"));
        assert!(json.contains("\"engine_shard_down_total\": 0"));
        let prom = adamove_obs::to_prometheus(&engine.registry().snapshot());
        assert!(prom.contains("# TYPE engine_predict_latency_ns histogram"));
        engine.shutdown();
    }

    #[test]
    fn shared_registry_and_ring_tracer_capture_engine_activity() {
        use adamove_obs::{RingSink, Tracer};
        let (store, m) = model(4, 2);
        let registry = Arc::new(adamove_obs::Registry::new());
        let ring = Arc::new(RingSink::new(16));
        let engine = ShardedEngine::with_observability(
            m,
            store,
            EngineConfig {
                shards: 1,
                context_sessions: 2,
                session_hours: 24,
                ptta: PttaConfig::default(),
            },
            None,
            Arc::clone(&registry),
            Tracer::with_sink(ring.clone()),
        );
        assert!(engine.tracer().enabled());
        engine.observe(UserId(0), pt(1, 0));
        engine.flush();
        // The caller's registry handle sees the worker's updates.
        let snap = registry.snapshot();
        assert_eq!(snap.counters["engine_observes_total{shard=\"0\"}"], 1);
        engine.shutdown();
    }

    #[test]
    fn engine_error_renders_human_readable() {
        let down = EngineError::ShardDown { shard: 3 };
        assert!(down.to_string().contains("shard 3"));
        let slow = EngineError::Timeout {
            shard: 1,
            waited: Duration::from_millis(5),
        };
        assert!(slow.to_string().contains("shard 1"));
        let stuck = ShutdownError {
            stuck_shards: vec![0, 2],
            timeout: Duration::from_secs(1),
        };
        assert!(stuck.to_string().contains("[0, 2]"));
    }
}
