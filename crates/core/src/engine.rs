//! Sharded serving runtime: parallel online prediction at scale.
//!
//! [`StreamingPredictor`] serves one request at a time; production
//! deployments (ROADMAP: millions of users) need concurrency. The
//! [`ShardedEngine`] partitions users across `N` worker shards by a
//! deterministic hash of the user id. Each shard is one OS thread owning
//! its users' [`RecentWindow`](crate::streaming::RecentWindow)s and a PTTA
//! adapter, draining a channel of observe/predict requests; the model and
//! parameter store are shared read-only behind [`Arc`]s (PTTA never mutates
//! them — adaptation happens per request on the classifier copy inside the
//! scoring call).
//!
//! Correctness guarantees:
//!
//! - **Per-user ordering.** A user's requests all land on one shard over
//!   one FIFO channel, so observes and predicts interleave exactly as
//!   submitted — no lost updates, no reordering.
//! - **Sequential equivalence.** Prediction depends only on the user's own
//!   window, so any interleaving across *different* users yields the same
//!   per-user results as a single [`StreamingPredictor`] fed the same
//!   per-user sequences.
//! - **Bounded failure.** A shard that dies (panic, injected fault) takes
//!   only its own users with it: requests routed to it surface a typed
//!   [`EngineError`] instead of hanging, other shards keep serving, and
//!   [`ShardedEngine::shutdown`] reports the casualty in
//!   [`EngineReport::failed_shards`].
//!
//! The shard loop consults an optional [`Disturbance`] before every
//! request — a `#[cfg]`-free seam the testkit's fault injection plugs into
//! (worker panics, delayed replies, dropped observes) without any
//! test-only code paths in the engine itself.
//!
//! # Self-healing
//!
//! The guarantees above are *fail-stop* by default: a dead shard stays
//! dead. Setting [`EngineConfig::recovery`] upgrades the engine to
//! self-healing (see [`crate::recovery`] for the building blocks):
//!
//! - **Checkpoint + journal.** Every accepted observe is appended to a
//!   bounded per-shard write-ahead [`Journal`] *at enqueue time, under the
//!   shard's send lock*, so journal-id order equals queue order. Workers
//!   periodically snapshot their per-user windows into an in-memory
//!   [`CheckpointStore`] and prune the journal. Recovery restores the
//!   checkpoint and replays the journal suffix in id order; because window
//!   eviction is idempotent under monotone query times, the rebuilt shard
//!   serves predictions **bit-identical** to a run that never crashed.
//! - **Supervision + retries.** Requests that hit a dead shard heal it
//!   in-line: the typed `ShardDown`/`Timeout` error is retried under the
//!   configured jitter-free [`RetryPolicy`](crate::recovery::RetryPolicy), respawning the worker and
//!   restoring its state between attempts. An optional background
//!   supervisor thread ([`RecoveryConfig::supervise_interval`]) heals
//!   shards even when no traffic touches them.
//! - **Graceful degradation.** When exact recovery is impossible (journal
//!   overflow past the checkpoint, or checkpointing disabled) the respawned
//!   shard is marked *degraded*: predictions for users whose windows were
//!   lost are served from the [`PopulationPrior`] — the globally most
//!   frequent locations — tagged
//!   [`PredictionQuality::Degraded`](crate::streaming::PredictionQuality::Degraded)
//!   instead of erroring. Fresh observes rebuild real windows (and the
//!   next checkpoint clears the degraded flag), so the shard heals
//!   naturally under live traffic. A per-user PTTA circuit breaker
//!   ([`RecoveryConfig::breaker`]) independently rolls predictions back to
//!   the frozen Θ classifier when the entropy drift signal spikes.
//!
//! One documented divergence: an observe dropped by an injected
//! [`FaultAction::DropObserve`] *after* being journalled is re-delivered
//! by a later replay. The journal records accepted traffic; delivery loss
//! downstream of acceptance is exactly the failure replay repairs.
//!
//! # Observability
//!
//! Every engine owns an [`adamove_obs::Registry`]: per-shard counters
//! (`engine_observes_total{shard="i"}`, predicts, flushes, dropped
//! observes), a predict-latency histogram, per-stage latency histograms
//! (`engine_stage_latency_ns{shard="i",stage="queue_wait"|"forward"|`
//! `"adapt"|"journal"}` — the engine's slice of the request-stage
//! taxonomy, see [`adamove_obs::Stage`]), queue-depth and live-user
//! gauges, plus engine-level fault counters (`engine_shard_down_total`,
//! `engine_timeout_total`). With recovery enabled the registry also
//! carries `engine_respawns_total`, `engine_replayed_observes_total`,
//! `engine_degraded_predictions_total`, `engine_degraded_recoveries_total`,
//! `engine_checkpoints_total`, `engine_journal_overflows_total`,
//! `engine_retries_total` and (with a breaker) the
//! `ptta_breaker_*_total` family. All hot-path updates are relaxed
//! atomics — no locks, no allocation. [`ShardedEngine::snapshot`] reads
//! the registry *mid-run*, so shard health (p99, queue depth, faults,
//! respawns) is visible before shutdown; the final [`EngineReport`] is
//! rebuilt from the same registry. Pass a sink-equipped [`Tracer`] via
//! [`ShardedEngine::with_observability`] to also get span events
//! (`shard_panic`, `shard_respawn`, `shard_checkpoint`, and — for
//! requests that carry a [`TraceContext`] through
//! [`ShardedEngine::predict_traced`] — `shard_predict` with the request
//! id and per-stage timings); the default no-op tracer costs one branch.

use crate::durability::{clamp_to_capacity, DurableStore};
use crate::eval::LatencyProfile;
use crate::lightmob::LightMob;
use crate::parallel::available_threads;
use crate::ptta::{PttaConfig, PttaObs};
use crate::recovery::{
    BreakerConfig, BreakerObs, CheckpointStore, Journal, JournalEntry, PopulationPrior,
    PttaBreaker, RecoveryConfig, ShardCheckpoint,
};
use crate::streaming::{PredictionQuality, StreamObs, StreamPrediction, StreamingPredictor};
use adamove_autograd::ParamStore;
use adamove_mobility::{LocationId, Point, Timestamp, UserId};
use adamove_obs::{
    event, labeled, lock, Counter, Gauge, Histogram, HistogramSnapshot, Registry, Stage, Stopwatch,
    TraceContext, Tracer,
};
use adamove_tensor::det::mix64;
use adamove_verify::sync::{AtomicBool, AtomicU64, Mutex as SlotMutex};
use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of a [`ShardedEngine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of worker shards (threads). Zero is rounded up to one.
    pub shards: usize,
    /// Sliding-window context length `c` (paper Definition 3).
    pub context_sessions: usize,
    /// Session length `T` in hours.
    pub session_hours: i64,
    /// PTTA adaptation settings used on every predict.
    pub ptta: PttaConfig,
    /// How long [`ShardedEngine::shutdown`] waits for shards to drain
    /// before panicking (default 60 s). Use
    /// [`ShardedEngine::shutdown_timeout`] for a per-call bound with a
    /// typed error instead.
    pub shutdown_deadline: Duration,
    /// Self-healing settings (checkpoint + journal recovery, retries,
    /// degradation, PTTA breaker). `None` (the default) keeps the
    /// original fail-stop semantics: a dead shard stays dead.
    pub recovery: Option<RecoveryConfig>,
    /// Maximum consecutive predicts a shard worker drains from its queue
    /// into one batched forward pass (`1`, the default, keeps the
    /// per-request path). Batching changes throughput only — each reply
    /// carries bit-identical scores to an unbatched predict, and replies
    /// still arrive in request order.
    pub batch_max: usize,
}

impl Default for EngineConfig {
    /// One shard per available core, paper-default window (`c = 5`,
    /// `T = 72h`), PTTA settings, a 60 s shutdown deadline and no
    /// recovery layer.
    fn default() -> Self {
        Self {
            shards: available_threads(),
            context_sessions: 5,
            session_hours: 72,
            ptta: PttaConfig::default(),
            shutdown_deadline: Duration::from_secs(60),
            recovery: None,
            batch_max: 1,
        }
    }
}

/// Typed failure of a single engine request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The shard owning the user has terminated (panic or injected fault)
    /// and can no longer serve requests.
    ShardDown {
        /// Index of the dead shard.
        shard: usize,
    },
    /// The shard did not reply within the caller's bound (slow or stuck).
    Timeout {
        /// Index of the unresponsive shard.
        shard: usize,
        /// How long the caller waited.
        waited: Duration,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::ShardDown { shard } => write!(f, "engine shard {shard} is down"),
            EngineError::Timeout { shard, waited } => {
                write!(f, "engine shard {shard} did not reply within {waited:?}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Typed failure of [`ShardedEngine::shutdown_timeout`]: one or more shards
/// failed to drain and exit before the deadline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShutdownError {
    /// Shards still running at the deadline (panicked shards are *not*
    /// stuck — they are reported via [`EngineReport::failed_shards`]).
    pub stuck_shards: Vec<usize>,
    /// The deadline that elapsed.
    pub timeout: Duration,
}

impl fmt::Display for ShutdownError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "engine shutdown timed out after {:?}; shards still draining: {:?}",
            self.timeout, self.stuck_shards
        )
    }
}

impl std::error::Error for ShutdownError {}

/// The kind of request a shard is about to process — the [`Disturbance`]
/// seam's view of the traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// A check-in delivery.
    Observe,
    /// A blocking prediction.
    Predict,
    /// A flush barrier token.
    Flush,
    /// An explicit checkpoint barrier token
    /// ([`ShardedEngine::checkpoint_all`]).
    Checkpoint,
}

/// What an injected disturbance does to one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultAction {
    /// Process normally.
    #[default]
    None,
    /// Unwind the shard thread before processing (a worker crash). The
    /// unwind bypasses the panic hook, so tests stay quiet.
    PanicShard,
    /// Sleep before processing (a slow or delayed reply).
    Delay(Duration),
    /// Silently drop the request if it is an observe (delivery loss);
    /// other request kinds are processed normally.
    DropObserve,
}

/// Deterministic runtime-disturbance source, consulted by every shard loop
/// once per incoming request. `seq` counts requests received by that shard
/// (starting at 0, flush tokens included) and is shared across worker
/// *incarnations* — a respawned shard continues the count rather than
/// restarting it, so an implementation that is a pure function of
/// `(shard, seq, kind)` reproduces the same fault schedule on every run
/// regardless of thread timing, and a one-shot fault fires exactly once.
pub trait Disturbance: Send + Sync + 'static {
    /// Decide what happens to the `seq`-th request on `shard`.
    fn action(&self, shard: usize, seq: u64, kind: RequestKind) -> FaultAction;
}

/// Final statistics from a shut-down engine.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Number of worker shards that ran.
    pub shards: usize,
    /// Total observe requests processed.
    pub observed: usize,
    /// Total predict requests processed.
    pub predictions: usize,
    /// Users with a live window at shutdown, per shard (shard order; zero
    /// for shards that died before reporting).
    pub per_shard_users: Vec<usize>,
    /// Shards that terminated abnormally (panicked) instead of draining.
    /// A shard that crashed but was respawned by the recovery layer and
    /// drained cleanly is *not* listed — it healed.
    pub failed_shards: Vec<usize>,
    /// Observe requests dropped by an injected disturbance.
    pub dropped_observes: usize,
    /// Worker respawns performed by the recovery layer (0 without it).
    pub respawns: usize,
    /// Journalled observes re-applied during recoveries (0 without it).
    pub replayed_observes: usize,
    /// Predictions served from the population prior because the owning
    /// shard was degraded (0 without the recovery layer).
    pub degraded_predictions: usize,
    /// Wall-clock lifetime of the engine.
    pub elapsed: Duration,
    /// Predict-handling latency percentiles (in-shard compute, queueing
    /// excluded) and predictions per wall-clock second.
    pub latency: LatencyProfile,
}

impl EngineReport {
    /// Total users with live windows across all shards.
    pub fn users(&self) -> usize {
        self.per_shard_users.iter().sum()
    }

    /// True when every shard drained and exited cleanly.
    pub fn healthy(&self) -> bool {
        self.failed_shards.is_empty()
    }

    /// All requests (observe + predict) per wall-clock second.
    pub fn requests_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            (self.observed + self.predictions) as f64 / secs
        } else {
            0.0
        }
    }

    /// One-line human-readable rendering.
    pub fn row(&self) -> String {
        let health = if self.healthy() {
            String::new()
        } else {
            format!(
                "  {} shard(s) FAILED {:?}",
                self.failed_shards.len(),
                self.failed_shards
            )
        };
        let healing = if self.respawns > 0 || self.degraded_predictions > 0 {
            format!(
                "  {} respawn(s)  {} replayed  {} degraded",
                self.respawns, self.replayed_observes, self.degraded_predictions
            )
        } else {
            String::new()
        };
        format!(
            "{} shards  {} users  {} obs + {} pred  {}{}{}",
            self.shards,
            self.users(),
            self.observed,
            self.predictions,
            self.latency.row(),
            healing,
            health
        )
    }
}

/// Engine-side per-stage breakdown of one predict request: where the
/// time went between enqueue and reply. Returned alongside the
/// prediction by [`ShardedEngine::predict_traced`] and recorded into the
/// per-shard `engine_stage_latency_ns{stage="..."}` histograms. Forward
/// and adapt are the batch's wall clock split evenly across its
/// requests, with the adapt share attributed by diffing the PTTA
/// adapt-latency total across the batched forward pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStages {
    /// Time waited in the shard's request queue, nanoseconds.
    pub queue_ns: u64,
    /// Share of the batched device forward pass, minus adaptation.
    pub forward_ns: u64,
    /// Share of PTTA test-time adaptation within the forward pass.
    pub adapt_ns: u64,
}

enum Request {
    /// An observed check-in. The `u64` is its write-ahead journal id
    /// (0 when the recovery layer is off), used by the worker to track
    /// the journal position its state covers.
    Observe(UserId, Point, u64),
    Predict {
        user: UserId,
        now: Timestamp,
        /// Trace identity carried from the serving front-end (`None`
        /// for untraced callers — the common case, which pays nothing).
        ctx: Option<TraceContext>,
        /// Started at enqueue; read at drain for the queue-wait stage.
        enqueued: Stopwatch,
        reply: mpsc::Sender<(Option<StreamPrediction>, EngineStages)>,
    },
    Flush(mpsc::Sender<()>),
    /// Take a checkpoint now, regardless of the interval — the graceful
    /// drain path. Doubles as a barrier: the ack is sent after the
    /// checkpoint is durable (when durability is configured).
    Checkpoint(mpsc::Sender<()>),
}

impl Request {
    fn kind(&self) -> RequestKind {
        match self {
            Request::Observe(..) => RequestKind::Observe,
            Request::Predict { .. } => RequestKind::Predict,
            Request::Flush(..) => RequestKind::Flush,
            Request::Checkpoint(..) => RequestKind::Checkpoint,
        }
    }
}

/// Per-shard metric handles, registered once at spawn and cloned into the
/// worker thread. Every update is a relaxed atomic operation.
#[derive(Debug, Clone)]
struct ShardObs {
    observes: Counter,
    predicts: Counter,
    flushes: Counter,
    dropped_observes: Counter,
    predict_latency: Histogram,
    stage_queue_wait: Histogram,
    stage_forward: Histogram,
    stage_adapt: Histogram,
    stage_journal: Histogram,
    queue_depth: Gauge,
    users: Gauge,
    /// 0/1: set on the first journal overflow since the last checkpoint
    /// (exact replay lost), cleared when a checkpoint covers the live
    /// state again. The 0→1 transition also emits a `journal_overflow`
    /// trace event so the flight recorder captures the first
    /// lost-durability moment.
    journal_overflow: Gauge,
}

impl ShardObs {
    fn register(registry: &Registry, shard: usize) -> Self {
        let s = shard.to_string();
        let l = |name: &str| labeled(name, &[("shard", &s)]);
        // One metric name, one `stage` label per taxonomy entry — the
        // same vocabulary the serve layer uses for its wire-side stages.
        let stage = |st: Stage| {
            labeled(
                "engine_stage_latency_ns",
                &[("shard", &s), ("stage", st.name())],
            )
        };
        let queue_wait_name = stage(Stage::QueueWait);
        let forward_name = stage(Stage::Forward);
        let adapt_name = stage(Stage::Adapt);
        let journal_name = stage(Stage::Journal);
        Self {
            observes: registry.counter(&l("engine_observes_total")),
            predicts: registry.counter(&l("engine_predicts_total")),
            flushes: registry.counter(&l("engine_flushes_total")),
            dropped_observes: registry.counter(&l("engine_dropped_observes_total")),
            predict_latency: registry.histogram(&l("engine_predict_latency_ns")),
            stage_queue_wait: registry.histogram(&queue_wait_name),
            stage_forward: registry.histogram(&forward_name),
            stage_adapt: registry.histogram(&adapt_name),
            stage_journal: registry.histogram(&journal_name),
            queue_depth: registry.gauge(&l("engine_queue_depth")),
            users: registry.gauge(&l("engine_users")),
            journal_overflow: registry.gauge(&l("engine_journal_overflow")),
        }
    }
}

/// Mid-run view of one shard, read from the live registry.
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    /// Shard index.
    pub shard: usize,
    /// Observe requests processed so far.
    pub observed: usize,
    /// Predict requests processed so far.
    pub predictions: usize,
    /// Flush tokens processed so far.
    pub flushes: usize,
    /// Observes dropped by an injected disturbance so far.
    pub dropped_observes: usize,
    /// Requests enqueued but not yet received by the worker.
    pub queue_depth: usize,
    /// Users with a live window on this shard.
    pub users: usize,
    /// Predict-handling latency distribution so far (nanoseconds; use
    /// [`HistogramSnapshot::percentile`] for p50/p95/p99 readout).
    pub predict_latency: HistogramSnapshot,
    /// False once the worker thread has terminated (drained or panicked)
    /// and has not (yet) been respawned by the recovery layer.
    pub alive: bool,
    /// True while the shard serves population-prior predictions for users
    /// whose state could not be restored exactly. Cleared by the next
    /// checkpoint.
    pub degraded: bool,
}

/// Mid-run view of the whole engine — [`ShardedEngine::snapshot`].
#[derive(Debug, Clone)]
pub struct EngineSnapshot {
    /// Per-shard state, in shard order.
    pub shards: Vec<ShardSnapshot>,
    /// Requests that failed with [`EngineError::ShardDown`] so far.
    pub shard_down_errors: usize,
    /// Requests that failed with [`EngineError::Timeout`] so far.
    pub timeout_errors: usize,
    /// Worker respawns performed by the recovery layer so far.
    pub respawns: usize,
    /// Journalled observes re-applied during recoveries so far.
    pub replayed_observes: usize,
    /// Predictions served from the population prior so far.
    pub degraded_predictions: usize,
    /// Engine lifetime so far.
    pub elapsed: Duration,
}

impl EngineSnapshot {
    /// Total observes processed across shards.
    pub fn observed(&self) -> usize {
        self.shards.iter().map(|s| s.observed).sum()
    }

    /// Total predicts processed across shards.
    pub fn predictions(&self) -> usize {
        self.shards.iter().map(|s| s.predictions).sum()
    }

    /// Total observes dropped by disturbances across shards.
    pub fn dropped_observes(&self) -> usize {
        self.shards.iter().map(|s| s.dropped_observes).sum()
    }

    /// Predict-latency distribution merged across all shards.
    pub fn predict_latency(&self) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::empty();
        for s in &self.shards {
            merged.merge(&s.predict_latency);
        }
        merged
    }
}

/// Unwind payload of an injected [`FaultAction::PanicShard`].
struct InjectedShardPanic;

/// Shard index for `user` under a `shards`-way partition.
///
/// Defined as `mix64(user) % shards` with the SplitMix64 finalizer from
/// [`adamove_tensor::det`] — cheap, well-mixed, and stable across runs;
/// the shard assignment is part of the engine's deterministic behaviour
/// and is pinned by the testkit's hashing suite.
pub fn shard_of(user: UserId, shards: usize) -> usize {
    (mix64(user.0 as u64) % shards.max(1) as u64) as usize
}

/// One live worker incarnation: its request channel and thread handle.
struct ShardLink {
    sender: mpsc::Sender<Request>,
    handle: JoinHandle<()>,
}

/// Per-shard slot. The `link` mutex doubles as the send lock: journal
/// appends happen under it, so journal-id order equals queue order. `seq`
/// and `degraded` are shared across worker incarnations.
struct ShardSlot {
    link: SlotMutex<Option<ShardLink>>,
    seq: Arc<AtomicU64>,
    degraded: Arc<AtomicBool>,
}

/// Engine-wide recovery state (present only when
/// [`EngineConfig::recovery`] is set).
struct RecoveryRuntime {
    config: RecoveryConfig,
    checkpoints: Arc<CheckpointStore>,
    journals: Vec<Arc<Mutex<Journal>>>,
    /// Disk mirror of the journal + checkpoints, present only when
    /// [`RecoveryConfig::durability`] is set.
    durable: Option<Arc<DurableStore>>,
    prior: Arc<PopulationPrior>,
    breaker_obs: Option<BreakerObs>,
    respawns: Counter,
    replayed_observes: Counter,
    degraded_predictions: Counter,
    degraded_recoveries: Counter,
    checkpoints_taken: Counter,
    journal_overflows: Counter,
    retries: Counter,
}

/// Recovery handles a worker needs, cloned per incarnation.
struct WorkerRecovery {
    checkpoint_interval: usize,
    checkpoints: Arc<CheckpointStore>,
    journal: Arc<Mutex<Journal>>,
    durable: Option<Arc<DurableStore>>,
    prior: Arc<PopulationPrior>,
    breaker: Option<(BreakerConfig, BreakerObs)>,
    replayed_observes: Counter,
    degraded_predictions: Counter,
    checkpoints_taken: Counter,
}

/// Everything a worker incarnation owns. Deliberately holds no
/// `Arc<EngineInner>`: the engine owns the workers' join handles, so a
/// back-reference would leak the whole runtime.
struct WorkerContext {
    shard: usize,
    model: Arc<LightMob>,
    store: Arc<ParamStore>,
    ptta: PttaConfig,
    context_sessions: usize,
    session_hours: i64,
    batch_max: usize,
    disturbance: Option<Arc<dyn Disturbance>>,
    seq: Arc<AtomicU64>,
    degraded: Arc<AtomicBool>,
    obs: ShardObs,
    stream_obs: StreamObs,
    ptta_obs: PttaObs,
    tracer: Tracer,
    stats_tx: mpsc::Sender<(usize, usize)>,
    recovery: Option<WorkerRecovery>,
}

/// State handed to a respawned worker: checkpointed windows plus the
/// journal suffix to replay on top of them.
struct RestorePlan {
    windows: Vec<(UserId, Vec<Point>)>,
    journal: Vec<JournalEntry>,
    last_seen: u64,
}

/// A [`PredictionQuality::Degraded`] prediction served straight from the
/// population prior when the user's window was lost with a shard.
fn prior_prediction(prior: &PopulationPrior) -> StreamPrediction {
    let scores = prior.scores();
    let top = prior.top_k(1).first().copied().unwrap_or(LocationId(0));
    StreamPrediction {
        scores,
        top,
        window_len: 0,
        quality: PredictionQuality::Degraded,
    }
}

fn spawn_worker(ctx: WorkerContext, restore: Option<RestorePlan>) -> ShardLink {
    let (tx, rx) = mpsc::channel::<Request>();
    let shard = ctx.shard;
    let handle = std::thread::Builder::new()
        .name(format!("adamove-shard-{shard}"))
        .spawn(move || run_worker(ctx, rx, restore))
        // lint:allow(panic-path): OS thread-spawn failure is unrecoverable resource exhaustion
        .expect("failed to spawn engine shard");
    ShardLink { sender: tx, handle }
}

fn run_worker(ctx: WorkerContext, rx: mpsc::Receiver<Request>, restore: Option<RestorePlan>) {
    let WorkerContext {
        shard,
        model,
        store,
        ptta,
        context_sessions,
        session_hours,
        batch_max,
        disturbance,
        seq,
        degraded,
        obs,
        stream_obs,
        ptta_obs,
        tracer,
        stats_tx,
        recovery,
    } = ctx;
    let mut sp = StreamingPredictor::new(&model, &store, ptta, context_sessions, session_hours);
    sp.set_obs(stream_obs);
    sp.set_ptta_obs(ptta_obs);
    if let Some(rec) = &recovery {
        if let Some((config, breaker_obs)) = &rec.breaker {
            sp.set_breaker(PttaBreaker::new(config.clone()));
            sp.set_breaker_obs(breaker_obs.clone());
        }
    }
    // Highest journal id this worker's state covers; a checkpoint at this
    // position lets replay resume with strictly later entries.
    let mut last_seen: u64 = 0;
    if let Some(plan) = restore {
        last_seen = plan.last_seen;
        for (user, points) in &plan.windows {
            sp.restore_user(*user, points);
        }
        if let Some(rec) = &recovery {
            for entry in &plan.journal {
                sp.restore_observe(entry.user, entry.point);
                rec.replayed_observes.inc();
                last_seen = last_seen.max(entry.id);
            }
        }
        obs.users.set(sp.active_users() as f64);
    }
    let mut since_checkpoint: usize = 0;
    // A request drained ahead of its turn by predict batching, with its
    // already-consulted disturbance action. Processed before the channel
    // is read again, so queue order is preserved.
    let mut lookahead: Option<(Request, FaultAction, u64)> = None;
    // Ends when every sender is dropped (engine shutdown).
    loop {
        let (req, action, s) = match lookahead.take() {
            Some(pending) => pending,
            None => {
                let Ok(req) = rx.recv() else { break };
                obs.queue_depth.dec();
                let kind = req.kind();
                let s = seq.fetch_add(1, Ordering::Relaxed);
                let action = disturbance
                    .as_deref()
                    .map(|d| d.action(shard, s, kind))
                    .unwrap_or(FaultAction::None);
                (req, action, s)
            }
        };
        let mut handled: usize = 1;
        // Set by an explicit `Request::Checkpoint`; acked after the
        // checkpoint block below has run.
        let mut checkpoint_done: Option<mpsc::Sender<()>> = None;
        match action {
            FaultAction::None => {}
            FaultAction::PanicShard => {
                event!(tracer, "shard_panic", shard = shard, seq = s);
                // resume_unwind skips the panic hook: the crash is
                // deliberate and tests stay quiet.
                std::panic::resume_unwind(Box::new(InjectedShardPanic));
            }
            FaultAction::Delay(d) => std::thread::sleep(d),
            FaultAction::DropObserve => {
                if let Request::Observe(_, _, id) = &req {
                    // The journal cursor still advances: the observe was
                    // accepted, so a post-crash replay re-delivers it
                    // (see the module docs on this divergence).
                    last_seen = last_seen.max(*id);
                    obs.dropped_observes.inc();
                    continue;
                }
            }
        }
        match req {
            Request::Observe(user, point, id) => {
                last_seen = last_seen.max(id);
                sp.observe(user, point);
                obs.observes.inc();
                obs.users.set(sp.active_users() as f64);
            }
            Request::Predict {
                user,
                now,
                ctx,
                enqueued,
                reply,
            } => {
                // Drain consecutive predicts already waiting in the queue
                // into one batched forward pass. A non-predict (or a
                // disturbed request) ends the batch and is carried into
                // the next iteration — queue order is never reordered.
                let mut queries = vec![(user, now)];
                let mut metas = vec![(ctx, enqueued)];
                let mut replies = vec![reply];
                while queries.len() < batch_max {
                    let Ok(next) = rx.try_recv() else { break };
                    obs.queue_depth.dec();
                    let kind = next.kind();
                    let s = seq.fetch_add(1, Ordering::Relaxed);
                    let next_action = disturbance
                        .as_deref()
                        .map(|d| d.action(shard, s, kind))
                        .unwrap_or(FaultAction::None);
                    match (next, next_action) {
                        (
                            Request::Predict {
                                user,
                                now,
                                ctx,
                                enqueued,
                                reply,
                            },
                            FaultAction::None,
                        ) => {
                            queries.push((user, now));
                            metas.push((ctx, enqueued));
                            replies.push(reply);
                        }
                        (other, other_action) => {
                            lookahead = Some((other, other_action, s));
                            break;
                        }
                    }
                }
                handled = queries.len();
                // Queue wait ends where the batch begins.
                let queue_waits: Vec<u64> = metas.iter().map(|(_, e)| e.elapsed_ns()).collect();
                let adapt0 = sp.adapt_ns_total();
                let t0 = Instant::now();
                let predictions = sp.predict_batch(&queries);
                // Per-request latency is the batch's wall-clock split
                // evenly; a batch of one reduces to the old timing. The
                // adapt share comes from the PTTA adapt-latency total
                // diffed across the batch; forward is the remainder.
                let per_request_ns = t0.elapsed().as_nanos() as u64 / handled as u64;
                let adapt_ns = sp.adapt_ns_total().saturating_sub(adapt0) / handled as u64;
                let forward_ns = per_request_ns.saturating_sub(adapt_ns);
                obs.users.set(sp.active_users() as f64);
                for (i, (mut prediction, reply)) in predictions.into_iter().zip(replies).enumerate()
                {
                    if prediction.is_none() && degraded.load(Ordering::Relaxed) {
                        if let Some(rec) = &recovery {
                            prediction = Some(prior_prediction(&rec.prior));
                            rec.degraded_predictions.inc();
                        }
                    }
                    let stages = EngineStages {
                        queue_ns: queue_waits.get(i).copied().unwrap_or(0),
                        forward_ns,
                        adapt_ns,
                    };
                    obs.predict_latency.record(per_request_ns);
                    obs.stage_queue_wait.record(stages.queue_ns);
                    obs.stage_forward.record(stages.forward_ns);
                    obs.stage_adapt.record(stages.adapt_ns);
                    obs.predicts.inc();
                    if let Some(ctx) = metas.get(i).and_then(|(c, _)| *c) {
                        event!(
                            tracer,
                            "shard_predict",
                            request_id = ctx.request_id,
                            parent_id = ctx.parent_id,
                            shard = shard,
                            queue_ns = stages.queue_ns,
                            forward_ns = stages.forward_ns,
                            adapt_ns = stages.adapt_ns
                        );
                    }
                    // A dropped reply receiver only means the caller gave
                    // up waiting; not fatal.
                    let _ = reply.send((prediction, stages));
                }
            }
            Request::Flush(done) => {
                obs.flushes.inc();
                let _ = done.send(());
            }
            Request::Checkpoint(done) => {
                checkpoint_done = Some(done);
            }
        }
        if let Some(rec) = &recovery {
            if rec.checkpoint_interval > 0 {
                since_checkpoint += handled;
            }
            let due = rec.checkpoint_interval > 0 && since_checkpoint >= rec.checkpoint_interval;
            // An explicit checkpoint request fires regardless of the
            // interval — the drain path must not depend on traffic volume.
            if due || checkpoint_done.is_some() {
                since_checkpoint = 0;
                let cp = ShardCheckpoint {
                    last_seen,
                    users: sp.export_windows(),
                };
                if let Some(durable) = &rec.durable {
                    // Persist failures are counted by the store; the
                    // in-memory checkpoint still advances so serving
                    // keeps its RAM-only recovery semantics.
                    let _ = durable.write_checkpoint(shard, &cp);
                }
                rec.checkpoints.save(shard, cp);
                lock(&rec.journal).prune_through(last_seen);
                rec.checkpoints_taken.inc();
                // A fresh checkpoint covers the live state, so future
                // recoveries are exact again.
                // ordering: advisory health flag — readers only sample it
                // for reporting; no data is guarded by it.
                degraded.store(false, Ordering::Relaxed);
                obs.journal_overflow.set(0.0);
                event!(
                    tracer,
                    "shard_checkpoint",
                    shard = shard,
                    journal_pos = last_seen
                );
            }
        }
        if let Some(done) = checkpoint_done {
            let _ = done.send(());
        }
    }
    // Receiver gone = the engine was dropped without a shutdown; losing
    // the stats is fine then.
    let _ = stats_tx.send((shard, sp.active_users()));
}

struct EngineInner {
    model: Arc<LightMob>,
    store: Arc<ParamStore>,
    ptta: PttaConfig,
    context_sessions: usize,
    session_hours: i64,
    batch_max: usize,
    disturbance: Option<Arc<dyn Disturbance>>,
    slots: Vec<ShardSlot>,
    shard_obs: Vec<ShardObs>,
    stream_obs: Vec<StreamObs>,
    ptta_obs: Vec<PttaObs>,
    // The template stats sender, cloned into every worker incarnation.
    // Shutdown takes it so the channel disconnects once the last worker
    // exits; a `None` here also tells `spawn_link` to refuse (shutdown
    // has begun).
    stats_tx: Mutex<Option<mpsc::Sender<(usize, usize)>>>,
    // Mutex only to keep the engine `Sync` (Receiver is Send but not
    // Sync); shutdown is the sole reader. Payload: (shard,
    // users-with-live-windows-at-exit) — the one datum a worker can only
    // report once it stops mutating its windows. All counts and
    // latencies live in the registry instead.
    stats_rx: Mutex<mpsc::Receiver<(usize, usize)>>,
    started: Instant,
    registry: Arc<Registry>,
    tracer: Tracer,
    shard_down_errors: Counter,
    timeout_errors: Counter,
    recovery: Option<RecoveryRuntime>,
    shutdown_deadline: Duration,
    stopping: AtomicBool,
}

impl EngineInner {
    /// Spawn a worker incarnation for `shard`. `None` when shutdown has
    /// already taken the stats sender — spawning then would orphan the
    /// worker.
    fn spawn_link(&self, shard: usize, restore: Option<RestorePlan>) -> Option<ShardLink> {
        let stats_tx = lock(&self.stats_tx).clone()?;
        let recovery = self.recovery.as_ref().map(|r| WorkerRecovery {
            checkpoint_interval: r.config.checkpoint_interval,
            checkpoints: Arc::clone(&r.checkpoints),
            journal: Arc::clone(&r.journals[shard]),
            durable: r.durable.clone(),
            prior: Arc::clone(&r.prior),
            // `breaker_obs` is registered whenever a breaker is
            // configured (see `with_observability`), so the `and_then`
            // never discards a configured breaker — it just keeps this
            // path total without a panic.
            breaker: r
                .config
                .breaker
                .clone()
                .and_then(|bc| r.breaker_obs.clone().map(|obs| (bc, obs))),
            replayed_observes: r.replayed_observes.clone(),
            degraded_predictions: r.degraded_predictions.clone(),
            checkpoints_taken: r.checkpoints_taken.clone(),
        });
        let ctx = WorkerContext {
            shard,
            model: Arc::clone(&self.model),
            store: Arc::clone(&self.store),
            ptta: self.ptta.clone(),
            context_sessions: self.context_sessions,
            session_hours: self.session_hours,
            batch_max: self.batch_max,
            disturbance: self.disturbance.clone(),
            seq: Arc::clone(&self.slots[shard].seq),
            degraded: Arc::clone(&self.slots[shard].degraded),
            obs: self.shard_obs[shard].clone(),
            stream_obs: self.stream_obs[shard].clone(),
            ptta_obs: self.ptta_obs[shard].clone(),
            tracer: self.tracer.clone(),
            stats_tx,
            recovery,
        };
        Some(spawn_worker(ctx, restore))
    }

    /// Respawn `shard` if its worker has died. Returns true when a new
    /// incarnation was spawned. No-op without the recovery layer, while
    /// shutting down, or when the shard is alive (or its slot was already
    /// emptied by shutdown).
    fn heal_shard(&self, shard: usize) -> bool {
        // ordering: pairs with the Release store in shutdown_timeout();
        // a true read also sees every write made before shutdown began,
        // so healing never resurrects a worker into torn-down state.
        if self.stopping.load(Ordering::Acquire) {
            return false;
        }
        let Some(recovery) = &self.recovery else {
            return false;
        };
        let mut guard = self.slots[shard].link.lock();
        let dead = guard.as_ref().is_some_and(|l| l.handle.is_finished());
        if !dead {
            return false;
        }
        if let Some(link) = guard.take() {
            // Collect the corpse; the panic payload is deliberate.
            let _ = link.handle.join();
        }
        let (restore, degraded) = if recovery.config.checkpoint_interval == 0 {
            // Checkpointing disabled: there is nothing to replay the
            // journal onto, so the backlog is moot.
            lock(&recovery.journals[shard]).clear();
            (None, true)
        } else {
            let checkpoint = recovery.checkpoints.load(shard);
            let base = checkpoint.as_ref().map_or(0, |c| c.last_seen);
            let journal = lock(&recovery.journals[shard]);
            let complete = journal.complete_after(base);
            let entries = journal.entries_after(base);
            drop(journal);
            let windows = checkpoint.map(|c| c.users).unwrap_or_default();
            (
                Some(RestorePlan {
                    windows,
                    journal: entries,
                    last_seen: base,
                }),
                // Overflow ate part of the replay suffix: restore what we
                // have, but flag the shard so lost users degrade instead
                // of erroring.
                !complete,
            )
        };
        self.slots[shard]
            .degraded
            .store(degraded, Ordering::Relaxed); // ordering: advisory health flag; readers only sample it
        if degraded {
            recovery.degraded_recoveries.inc();
        }
        let Some(link) = self.spawn_link(shard, restore) else {
            // Shutdown raced us and took the stats sender; leave the
            // slot empty — shutdown will report the shard as failed.
            return false;
        };
        *guard = Some(link);
        recovery.respawns.inc();
        event!(
            self.tracer,
            "shard_respawn",
            shard = shard,
            degraded = degraded as u64
        );
        true
    }
}

/// Background supervisor loop: heal every shard once per `interval`.
/// Holds only a weak reference so dropping the engine stops it; sleeps in
/// short slices so shutdown never waits a full interval.
fn supervise(inner: Weak<EngineInner>, interval: Duration) {
    loop {
        let mut slept = Duration::ZERO;
        while slept < interval {
            let slice = (interval - slept).min(Duration::from_millis(10));
            std::thread::sleep(slice);
            slept += slice;
            let Some(engine) = inner.upgrade() else {
                return;
            };
            // ordering: pairs with the Release store in
            // shutdown_timeout(); see heal_shard.
            if engine.stopping.load(Ordering::Acquire) {
                return;
            }
        }
        let Some(engine) = inner.upgrade() else {
            return;
        };
        for shard in 0..engine.slots.len() {
            engine.heal_shard(shard);
        }
    }
}

/// Multi-threaded sharded serving runtime. See the [module docs](self).
pub struct ShardedEngine {
    inner: Arc<EngineInner>,
    supervisor: Option<JoinHandle<()>>,
}

impl ShardedEngine {
    /// Spawn `config.shards` worker threads sharing `model` and `store`.
    pub fn new(model: Arc<LightMob>, store: Arc<ParamStore>, config: EngineConfig) -> Self {
        Self::with_disturbance(model, store, config, None)
    }

    /// [`ShardedEngine::new`] with an optional [`Disturbance`] the shard
    /// loops consult before every request — the fault-injection seam.
    pub fn with_disturbance(
        model: Arc<LightMob>,
        store: Arc<ParamStore>,
        config: EngineConfig,
        disturbance: Option<Arc<dyn Disturbance>>,
    ) -> Self {
        Self::with_observability(
            model,
            store,
            config,
            disturbance,
            Arc::new(Registry::new()),
            Tracer::noop(),
        )
    }

    /// Full constructor: a caller-supplied metric [`Registry`] (shared
    /// with other components or scraped externally) and a [`Tracer`]
    /// cloned into every shard worker. [`ShardedEngine::new`] uses a
    /// private registry and the no-op tracer.
    pub fn with_observability(
        model: Arc<LightMob>,
        store: Arc<ParamStore>,
        config: EngineConfig,
        disturbance: Option<Arc<dyn Disturbance>>,
        registry: Arc<Registry>,
        tracer: Tracer,
    ) -> Self {
        let shards = config.shards.max(1);
        let shard_obs: Vec<ShardObs> = (0..shards)
            .map(|s| ShardObs::register(&registry, s))
            .collect();
        let mut stream_obs = Vec::with_capacity(shards);
        let mut ptta_obs = Vec::with_capacity(shards);
        for s in 0..shards {
            let label = s.to_string();
            stream_obs.push(StreamObs::register(&registry, &[("shard", &label)]));
            ptta_obs.push(PttaObs::register(&registry, &[("shard", &label)]));
        }
        let shard_down_errors = registry.counter("engine_shard_down_total");
        let timeout_errors = registry.counter("engine_timeout_total");
        // Cold-start restore: with durability configured, recover each
        // shard's newest valid checkpoint + contiguous journal suffix
        // from disk before any worker spawns, so the engine comes up
        // bit-identical to the pre-crash state (or degraded when loss or
        // corruption left a gap).
        let mut restore_plans: Vec<Option<RestorePlan>> = (0..shards).map(|_| None).collect();
        let mut degraded_init = vec![false; shards];
        let recovery = config.recovery.clone().map(|rc| {
            let checkpoints = Arc::new(CheckpointStore::new(shards));
            let mut journals: Vec<Arc<Mutex<Journal>>> = (0..shards)
                .map(|_| Arc::new(Mutex::new(Journal::new(rc.journal_capacity))))
                .collect();
            let durable = rc.durability.clone().map(|dc| {
                let (store, recovered) = DurableStore::open(dc, shards, &registry);
                for (shard, r) in recovered.into_iter().enumerate() {
                    if !r.has_state() {
                        continue;
                    }
                    let base = r.checkpoint.as_ref().map_or(0, |c| c.last_seen);
                    // Seed the in-memory mirrors exactly as live traffic
                    // would have left them: entries past capacity raise
                    // `dropped_through`, an incomplete recovery poisons
                    // `complete_after` so later heals degrade too.
                    let dropped_through = if r.complete { 0 } else { r.next_seq - 1 };
                    // The worker replays the FULL disk suffix (exactness),
                    // while the in-memory journal mirror keeps only the
                    // newest `journal_capacity` entries — the same state a
                    // live engine would hold after those appends.
                    let entries = r.entries;
                    let (tail, dropped_through) =
                        clamp_to_capacity(entries.clone(), rc.journal_capacity, dropped_through);
                    journals[shard] = Arc::new(Mutex::new(Journal::restore(
                        rc.journal_capacity,
                        tail,
                        r.next_seq,
                        dropped_through,
                    )));
                    let windows = r
                        .checkpoint
                        .map(|c| {
                            checkpoints.save(shard, c.clone());
                            c.users
                        })
                        .unwrap_or_default();
                    degraded_init[shard] = !r.complete;
                    restore_plans[shard] = Some(RestorePlan {
                        windows,
                        journal: entries,
                        last_seen: base,
                    });
                }
                store
            });
            RecoveryRuntime {
                checkpoints,
                journals,
                durable,
                prior: Arc::new(PopulationPrior::new(model.num_locations as usize)),
                breaker_obs: rc
                    .breaker
                    .as_ref()
                    .map(|_| BreakerObs::register(&registry, &[])),
                respawns: registry.counter("engine_respawns_total"),
                replayed_observes: registry.counter("engine_replayed_observes_total"),
                degraded_predictions: registry.counter("engine_degraded_predictions_total"),
                degraded_recoveries: registry.counter("engine_degraded_recoveries_total"),
                checkpoints_taken: registry.counter("engine_checkpoints_total"),
                journal_overflows: registry.counter("engine_journal_overflows_total"),
                retries: registry.counter("engine_retries_total"),
                config: rc,
            }
        });
        let supervise_interval = recovery.as_ref().and_then(|r| r.config.supervise_interval);
        let (stats_tx, stats_rx) = mpsc::channel::<(usize, usize)>();
        let slots: Vec<ShardSlot> = (0..shards)
            .map(|s| ShardSlot {
                link: SlotMutex::new(None),
                seq: Arc::new(AtomicU64::new(0)),
                degraded: Arc::new(AtomicBool::new(degraded_init[s])),
            })
            .collect();
        let inner = Arc::new(EngineInner {
            model,
            store,
            ptta: config.ptta.clone(),
            context_sessions: config.context_sessions,
            session_hours: config.session_hours,
            batch_max: config.batch_max.max(1),
            disturbance,
            slots,
            shard_obs,
            stream_obs,
            ptta_obs,
            stats_tx: Mutex::new(Some(stats_tx)),
            stats_rx: Mutex::new(stats_rx),
            started: Instant::now(),
            registry,
            tracer,
            shard_down_errors,
            timeout_errors,
            recovery,
            shutdown_deadline: config.shutdown_deadline,
            stopping: AtomicBool::new(false),
        });
        for (shard, plan) in restore_plans.into_iter().enumerate() {
            let link = inner
                .spawn_link(shard, plan)
                // lint:allow(panic-path): stats_tx is Some until shutdown(), which cannot run mid-construction
                .expect("stats sender is live during construction");
            *inner.slots[shard].link.lock() = Some(link);
        }
        let supervisor = supervise_interval.map(|interval| {
            let weak = Arc::downgrade(&inner);
            std::thread::Builder::new()
                .name("adamove-supervisor".into())
                .spawn(move || supervise(weak, interval))
                // lint:allow(panic-path): OS thread-spawn failure is unrecoverable resource exhaustion
                .expect("failed to spawn engine supervisor")
        });
        Self { inner, supervisor }
    }

    /// The metric registry backing this engine — export it with
    /// [`adamove_obs::to_flat_json`] / [`adamove_obs::to_prometheus`], or
    /// share it with other instrumented components.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.inner.registry
    }

    /// The tracer shard workers report span events to.
    pub fn tracer(&self) -> &Tracer {
        &self.inner.tracer
    }

    /// Read the live registry *without* stopping the engine: per-shard
    /// request counts, queue depths, user counts, predict-latency
    /// percentiles and fault counters, all as of this instant. Counts may
    /// trail in-flight requests by a few relaxed-atomic updates; they
    /// converge as soon as the traffic quiesces (e.g. after
    /// [`ShardedEngine::flush`]).
    pub fn snapshot(&self) -> EngineSnapshot {
        let inner = &self.inner;
        let shards = inner
            .shard_obs
            .iter()
            .enumerate()
            .map(|(i, obs)| ShardSnapshot {
                shard: i,
                observed: obs.observes.get() as usize,
                predictions: obs.predicts.get() as usize,
                flushes: obs.flushes.get() as usize,
                dropped_observes: obs.dropped_observes.get() as usize,
                queue_depth: obs.queue_depth.get().max(0.0) as usize,
                users: obs.users.get() as usize,
                predict_latency: obs.predict_latency.snapshot(),
                alive: inner.slots[i]
                    .link
                    .lock()
                    .as_ref()
                    .is_some_and(|l| !l.handle.is_finished()),
                degraded: inner.slots[i].degraded.load(Ordering::Relaxed),
            })
            .collect();
        let (respawns, replayed_observes, degraded_predictions) = match &inner.recovery {
            Some(r) => (
                r.respawns.get() as usize,
                r.replayed_observes.get() as usize,
                r.degraded_predictions.get() as usize,
            ),
            None => (0, 0, 0),
        };
        EngineSnapshot {
            shards,
            shard_down_errors: inner.shard_down_errors.get() as usize,
            timeout_errors: inner.timeout_errors.get() as usize,
            respawns,
            replayed_observes,
            degraded_predictions,
            elapsed: inner.started.elapsed(),
        }
    }

    /// Deterministically retire one shard: take its link, drop the
    /// request sender, and join the worker. Dropping the sender first
    /// ends a healthy worker's recv loop (it drains its queue, then
    /// exits), so the join can never deadlock on a still-serving
    /// worker; on a shard whose worker already died this is the
    /// race-free way to await the corpse instead of polling
    /// [`ShardedEngine::snapshot`] for `alive` to flip.
    ///
    /// Returns `None` when the slot was already empty (the shard died
    /// and was never respawned, or was already retired); otherwise
    /// `Some(true)` when the worker had panicked and `Some(false)` for
    /// a clean exit. The slot is left empty: the shard stops serving
    /// (callers see [`EngineError::ShardDown`]), `snapshot()` reports
    /// it not alive, and `shutdown*` counts it in
    /// [`EngineReport::failed_shards`] — retirement is a deliberate
    /// decommission, not a heal.
    pub fn retire_shard(&self, shard: usize) -> Option<bool> {
        let slot = self.inner.slots.get(shard)?;
        // Take the link under the slot lock, join outside it so a
        // draining worker never stalls concurrent senders to other
        // shards (or a racing heal, which sees an empty slot and
        // no-ops).
        let ShardLink { sender, handle } = slot.link.lock().take()?;
        drop(sender);
        Some(handle.join().is_err())
    }

    /// Number of worker shards.
    pub fn shards(&self) -> usize {
        self.inner.slots.len()
    }

    /// Live handle on `shard`'s queue-depth gauge (the same cell the
    /// worker updates, not a copy). Serving front-ends poll this for
    /// admission control; returns `None` for an out-of-range shard.
    pub fn shard_queue_depth(&self, shard: usize) -> Option<Gauge> {
        self.inner
            .shard_obs
            .get(shard)
            .map(|o| o.queue_depth.clone())
    }

    /// Live handle on `shard`'s predict-latency histogram. Admission
    /// controllers diff successive snapshots of this to compute windowed
    /// tail percentiles; returns `None` for an out-of-range shard.
    pub fn shard_predict_latency(&self, shard: usize) -> Option<Histogram> {
        self.inner
            .shard_obs
            .get(shard)
            .map(|o| o.predict_latency.clone())
    }

    /// The shard that owns `user`.
    pub fn shard_of(&self, user: UserId) -> usize {
        shard_of(user, self.inner.slots.len())
    }

    /// True while `shard` serves population-prior predictions for users
    /// whose state was lost (always false without the recovery layer).
    pub fn is_degraded(&self, shard: usize) -> bool {
        self.inner.slots[shard].degraded.load(Ordering::Relaxed)
    }

    /// Respawn `shard` now if its worker has died (recovery layer only).
    /// Returns true when a respawn happened. Requests heal lazily through
    /// their retry loop; this is the explicit hook, also used by the
    /// background supervisor.
    pub fn heal_shard(&self, shard: usize) -> bool {
        self.inner.heal_shard(shard)
    }

    /// [`ShardedEngine::heal_shard`] across every shard; returns how many
    /// respawned.
    pub fn heal_all(&self) -> usize {
        (0..self.inner.slots.len())
            .filter(|&s| self.inner.heal_shard(s))
            .count()
    }

    /// Whether a failed request should be retried (and the shard healed)
    /// before surfacing the error.
    fn backoff_and_heal(&self, shard: usize, attempt: u32) -> bool {
        let inner = &self.inner;
        // ordering: pairs with the Release store in shutdown_timeout();
        // see heal_shard.
        if inner.stopping.load(Ordering::Acquire) {
            return false;
        }
        let Some(rec) = &inner.recovery else {
            return false;
        };
        if attempt >= rec.config.retry.max_retries {
            return false;
        }
        rec.retries.inc();
        let delay = rec.config.retry.delay(attempt);
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        inner.heal_shard(shard);
        true
    }

    /// One observe attempt: journal (under the send lock, so id order is
    /// queue order), enqueue, and count the check-in into the population
    /// prior. A failed send retracts the journal entry — the request
    /// never reached the queue, so a later retry may journal it afresh
    /// without duplication.
    fn observe_once(&self, shard: usize, user: UserId, point: Point) -> Result<(), EngineError> {
        let inner = &self.inner;
        let guard = inner.slots[shard].link.lock();
        let Some(link) = guard.as_ref() else {
            inner.shard_down_errors.inc();
            return Err(EngineError::ShardDown { shard });
        };
        let id = match &inner.recovery {
            Some(rec) => {
                let t0 = Stopwatch::start();
                let (id, overflowed) = lock(&rec.journals[shard]).append(user, point);
                inner.shard_obs[shard].stage_journal.record(t0.elapsed_ns());
                if overflowed {
                    rec.journal_overflows.inc();
                    let gauge = &inner.shard_obs[shard].journal_overflow;
                    // The 0→1 transition is the first lost-durability
                    // moment since the last checkpoint — worth a flight-
                    // recorder entry, not just a counter tick. Serialized
                    // by the send lock we hold, so it fires exactly once
                    // per overflow episode.
                    if gauge.get() == 0.0 {
                        gauge.set(1.0);
                        event!(
                            inner.tracer,
                            "journal_overflow",
                            shard = shard,
                            journal_pos = id
                        );
                    }
                }
                id
            }
            None => 0,
        };
        inner.shard_obs[shard].queue_depth.inc();
        match link.sender.send(Request::Observe(user, point, id)) {
            Ok(()) => {
                if let Some(rec) = &inner.recovery {
                    rec.prior.record(point.loc);
                    if let Some(durable) = &rec.durable {
                        // Disk append strictly AFTER a successful send,
                        // still under the send lock: disk order equals
                        // queue order, and a failed send never leaves a
                        // stale record behind (the in-memory retract
                        // below has no on-disk counterpart by design).
                        // Persist errors are counted by the store; the
                        // engine keeps serving with degraded durability.
                        let _ = durable.append(shard, &JournalEntry { id, user, point });
                    }
                }
                Ok(())
            }
            Err(_) => {
                if let Some(rec) = &inner.recovery {
                    lock(&rec.journals[shard]).retract(id);
                }
                inner.shard_obs[shard].queue_depth.dec();
                inner.shard_down_errors.inc();
                Err(EngineError::ShardDown { shard })
            }
        }
    }

    fn send_predict(
        &self,
        shard: usize,
        user: UserId,
        now: Timestamp,
        ctx: Option<TraceContext>,
    ) -> Result<mpsc::Receiver<(Option<StreamPrediction>, EngineStages)>, EngineError> {
        let inner = &self.inner;
        let guard = inner.slots[shard].link.lock();
        let Some(link) = guard.as_ref() else {
            inner.shard_down_errors.inc();
            return Err(EngineError::ShardDown { shard });
        };
        let (reply, rx) = mpsc::channel();
        inner.shard_obs[shard].queue_depth.inc();
        link.sender
            .send(Request::Predict {
                user,
                now,
                ctx,
                enqueued: Stopwatch::start(),
                reply,
            })
            .map_err(|_| {
                inner.shard_obs[shard].queue_depth.dec();
                inner.shard_down_errors.inc();
                EngineError::ShardDown { shard }
            })?;
        Ok(rx)
    }

    /// One predict attempt: enqueue, then wait for the reply (bounded
    /// when `timeout` is set).
    fn predict_once(
        &self,
        shard: usize,
        user: UserId,
        now: Timestamp,
        timeout: Option<Duration>,
        ctx: Option<TraceContext>,
    ) -> Result<(Option<StreamPrediction>, EngineStages), EngineError> {
        let inner = &self.inner;
        let rx = self.send_predict(shard, user, now, ctx)?;
        match timeout {
            None => rx.recv().map_err(|_| {
                inner.shard_down_errors.inc();
                EngineError::ShardDown { shard }
            }),
            Some(t) => rx.recv_timeout(t).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => {
                    inner.timeout_errors.inc();
                    EngineError::Timeout { shard, waited: t }
                }
                mpsc::RecvTimeoutError::Disconnected => {
                    inner.shard_down_errors.inc();
                    EngineError::ShardDown { shard }
                }
            }),
        }
    }

    /// Record an observed check-in for `user` (asynchronous: returns once
    /// the request is enqueued on the owning shard). Fails with
    /// [`EngineError::ShardDown`] when the owning shard has terminated;
    /// with the recovery layer enabled the error is first retried under
    /// the configured [`RetryPolicy`](crate::recovery::RetryPolicy), healing the shard between attempts
    /// (each failed attempt still increments `engine_shard_down_total`).
    pub fn try_observe(&self, user: UserId, point: Point) -> Result<(), EngineError> {
        let shard = self.shard_of(user);
        let mut attempt = 0u32;
        loop {
            match self.observe_once(shard, user, point) {
                Ok(()) => return Ok(()),
                Err(err) => {
                    if !self.backoff_and_heal(shard, attempt) {
                        return Err(err);
                    }
                    attempt += 1;
                }
            }
        }
    }

    /// [`ShardedEngine::try_observe`], panicking if the shard died.
    pub fn observe(&self, user: UserId, point: Point) {
        // lint:allow(panic-path): documented panicking wrapper; try_observe is the typed path
        self.try_observe(user, point).expect("engine shard died");
    }

    /// Predict `user`'s next location, blocking until the owning shard has
    /// drained every earlier request for that user and computed the
    /// answer. `Ok(None)` when the user has no live window at `now`;
    /// [`EngineError::ShardDown`] when the shard terminated before
    /// replying (no hang — the dead shard's dropped channel ends the
    /// wait immediately). With the recovery layer enabled the failure is
    /// retried under the [`RetryPolicy`](crate::recovery::RetryPolicy), healing the shard between
    /// attempts; a degraded shard answers `Ok(Some(..))` with
    /// [`PredictionQuality::Degraded`] instead of losing the user.
    pub fn try_predict(
        &self,
        user: UserId,
        now: Timestamp,
    ) -> Result<Option<StreamPrediction>, EngineError> {
        self.predict_traced(user, now, None, None).map(|(p, _)| p)
    }

    /// [`ShardedEngine::try_predict`] with a bounded wait: a shard that is
    /// alive but unresponsive yields [`EngineError::Timeout`] after
    /// `timeout` instead of blocking the caller forever. Retried like
    /// [`ShardedEngine::try_predict`] when the recovery layer is on.
    pub fn predict_timeout(
        &self,
        user: UserId,
        now: Timestamp,
        timeout: Duration,
    ) -> Result<Option<StreamPrediction>, EngineError> {
        self.predict_traced(user, now, Some(timeout), None)
            .map(|(p, _)| p)
    }

    /// The traced predict path: [`ShardedEngine::try_predict`] /
    /// [`ShardedEngine::predict_timeout`] (per `timeout`), plus a trace
    /// context threaded into the shard worker — which emits a
    /// `shard_predict` span event carrying the request id when the
    /// engine's tracer has a sink — and the engine-side
    /// [`EngineStages`] breakdown returned with the prediction. Passing
    /// `ctx = None` is exactly the untraced path: the prediction is
    /// bit-identical either way, and an attached context changes no
    /// engine decision, only what is recorded about it.
    pub fn predict_traced(
        &self,
        user: UserId,
        now: Timestamp,
        timeout: Option<Duration>,
        ctx: Option<TraceContext>,
    ) -> Result<(Option<StreamPrediction>, EngineStages), EngineError> {
        let shard = self.shard_of(user);
        let mut attempt = 0u32;
        loop {
            match self.predict_once(shard, user, now, timeout, ctx) {
                Ok(r) => return Ok(r),
                Err(err) => {
                    if !self.backoff_and_heal(shard, attempt) {
                        return Err(err);
                    }
                    attempt += 1;
                }
            }
        }
    }

    /// [`ShardedEngine::try_predict`], panicking if the shard died.
    pub fn predict(&self, user: UserId, now: Timestamp) -> Option<StreamPrediction> {
        // lint:allow(panic-path): documented panicking wrapper; try_predict is the typed path
        self.try_predict(user, now).expect("engine shard died")
    }

    /// Predict for many `(user, now)` queries at once. Every query is
    /// enqueued on its owning shard *before* any reply is awaited, so a
    /// shard configured with [`EngineConfig::batch_max`] `> 1` sees the
    /// whole backlog and drains it in batched forward passes —
    /// sequential [`ShardedEngine::predict`] calls keep each shard's
    /// queue depth at one, which never batches.
    ///
    /// Results come back in query order; entry `i` is exactly what
    /// [`ShardedEngine::try_predict`] would return for `queries[i]`
    /// (bit-identical scores, same retry/heal behaviour on shard
    /// failure).
    pub fn predict_many(
        &self,
        queries: &[(UserId, Timestamp)],
    ) -> Vec<Result<Option<StreamPrediction>, EngineError>> {
        let pending: Vec<_> = queries
            .iter()
            .map(|&(user, now)| {
                let shard = self.shard_of(user);
                match self.send_predict(shard, user, now, None) {
                    Ok(rx) => (shard, Ok(rx)),
                    Err(err) => (shard, Err(err)),
                }
            })
            .collect();
        pending
            .into_iter()
            .zip(queries)
            .map(|((shard, sent), &(user, now))| match sent {
                Ok(rx) => match rx.recv() {
                    Ok((prediction, _)) => Ok(prediction),
                    Err(_) => {
                        self.inner.shard_down_errors.inc();
                        self.retry_predict(shard, user, now, EngineError::ShardDown { shard })
                    }
                },
                Err(err) => self.retry_predict(shard, user, now, err),
            })
            .collect()
    }

    /// Retry tail shared by [`ShardedEngine::predict_many`]: heal the
    /// shard between attempts like [`ShardedEngine::try_predict`] does,
    /// starting from an already-failed first attempt.
    fn retry_predict(
        &self,
        shard: usize,
        user: UserId,
        now: Timestamp,
        first_err: EngineError,
    ) -> Result<Option<StreamPrediction>, EngineError> {
        let mut attempt = 0u32;
        let mut err = first_err;
        loop {
            if !self.backoff_and_heal(shard, attempt) {
                return Err(err);
            }
            attempt += 1;
            match self.predict_once(shard, user, now, None, None) {
                Ok((p, _)) => return Ok(p),
                Err(e) => err = e,
            }
        }
    }

    /// Barrier: returns once every *live* shard has drained all requests
    /// enqueued before this call. Dead shards are skipped — a flush never
    /// hangs on a casualty.
    pub fn flush(&self) {
        let inner = &self.inner;
        let receivers: Vec<mpsc::Receiver<()>> = inner
            .slots
            .iter()
            .zip(&inner.shard_obs)
            .filter_map(|(slot, obs)| {
                let guard = slot.link.lock();
                let link = guard.as_ref()?;
                let (done, rx) = mpsc::channel();
                obs.queue_depth.inc();
                match link.sender.send(Request::Flush(done)) {
                    Ok(()) => Some(rx),
                    Err(_) => {
                        obs.queue_depth.dec();
                        None
                    }
                }
            })
            .collect();
        for rx in receivers {
            // A shard that dies mid-flush drops the token; don't hang.
            let _ = rx.recv();
        }
    }

    /// Checkpoint every live shard now, regardless of the checkpoint
    /// interval, and wait for completion — the graceful-drain path. With
    /// durability configured the returned count means that many shards
    /// have an on-disk snapshot covering all processed traffic (their
    /// journals pruned to empty), so a subsequent cold start replays
    /// nothing. Returns the number of shards that acknowledged; without
    /// the recovery layer the tokens are processed as no-ops.
    pub fn checkpoint_all(&self) -> usize {
        let inner = &self.inner;
        let receivers: Vec<mpsc::Receiver<()>> = inner
            .slots
            .iter()
            .zip(&inner.shard_obs)
            .filter_map(|(slot, obs)| {
                let guard = slot.link.lock();
                let link = guard.as_ref()?;
                let (done, rx) = mpsc::channel();
                obs.queue_depth.inc();
                match link.sender.send(Request::Checkpoint(done)) {
                    Ok(()) => Some(rx),
                    Err(_) => {
                        obs.queue_depth.dec();
                        None
                    }
                }
            })
            .collect();
        let mut acked = 0;
        for rx in receivers {
            // A shard that dies mid-checkpoint drops the token; don't hang.
            if rx.recv().is_ok() {
                acked += 1;
            }
        }
        // Any batched-but-unsynced journal tail (observes after the
        // checkpoint barrier entered the queue) still reaches the disk.
        if let Some(durable) = inner.recovery.as_ref().and_then(|r| r.durable.as_ref()) {
            let _ = durable.sync_all();
        }
        acked
    }

    /// Stop all shards and collect their statistics. Pending requests are
    /// drained before each shard exits; shards that panicked are reported
    /// in [`EngineReport::failed_shards`] rather than propagating the
    /// panic. Waits at most [`EngineConfig::shutdown_deadline`] (60 s by
    /// default) — use [`ShardedEngine::shutdown_timeout`] for a per-call
    /// bound with a typed error.
    ///
    /// # Panics
    /// If a shard is still draining after the configured
    /// [`EngineConfig::shutdown_deadline`].
    pub fn shutdown(self) -> EngineReport {
        let deadline = self.inner.shutdown_deadline;
        self.shutdown_timeout(deadline)
            // lint:allow(panic-path): documented panic on deadline; shutdown_timeout is the typed path
            .expect("engine shutdown timed out")
    }

    /// [`ShardedEngine::shutdown`] with an explicit deadline. Returns a
    /// typed [`ShutdownError`] naming the stuck shards instead of blocking
    /// forever when a shard cannot drain (the stuck workers are left
    /// detached; they exit on their own once they finish draining).
    pub fn shutdown_timeout(mut self, timeout: Duration) -> Result<EngineReport, ShutdownError> {
        let inner = Arc::clone(&self.inner);
        // ordering: publishes shutdown intent; the Acquire loads in
        // heal_shard, the supervisor tick, and backoff_and_heal see
        // every write sequenced before this store once they observe it.
        inner.stopping.store(true, Ordering::Release);
        if let Some(handle) = self.supervisor.take() {
            let _ = handle.join();
        }
        // Drop the template sender: the stats channel now disconnects as
        // soon as the last worker exits, and no new worker can spawn.
        drop(lock(&inner.stats_tx).take());
        let shards = inner.slots.len();
        // Take every link: dropping the senders ends the workers' recv
        // loops. An empty slot means the shard died and was never
        // respawned (its corpse was already joined by `heal_shard`).
        let mut handles: Vec<Option<JoinHandle<()>>> = Vec::with_capacity(shards);
        for slot in &inner.slots {
            match slot.link.lock().take() {
                Some(ShardLink { sender, handle }) => {
                    drop(sender);
                    handles.push(Some(handle));
                }
                None => handles.push(None),
            }
        }
        let stats_rx = lock(&inner.stats_rx);
        let deadline = Instant::now() + timeout;
        let mut collected: Vec<Option<usize>> = (0..shards).map(|_| None).collect();
        let mut received = 0usize;
        while received < shards {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match stats_rx.recv_timeout(remaining) {
                Ok((shard, users)) => {
                    collected[shard] = Some(users);
                    received += 1;
                }
                // All stat senders dropped: every worker exited cleanly
                // (stats already queued and drained above) or panicked.
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    let stuck_shards: Vec<usize> = collected
                        .iter()
                        .enumerate()
                        .filter(|(i, s)| {
                            s.is_none() && handles[*i].as_ref().is_some_and(|h| !h.is_finished())
                        })
                        .map(|(i, _)| i)
                        .collect();
                    // Spurious wakeup right as the last workers finish:
                    // nothing is actually stuck, so keep collecting.
                    if stuck_shards.is_empty() {
                        continue;
                    }
                    return Err(ShutdownError {
                        stuck_shards,
                        timeout,
                    });
                }
            }
        }
        drop(stats_rx);

        // Every worker has exited by now; joins are immediate (and their
        // final relaxed-atomic metric updates are visible after the join's
        // synchronization). A panicked worker shows up as a join error; an
        // empty slot was a casualty heal never replaced.
        let mut failed_shards = Vec::new();
        for (i, handle) in handles.into_iter().enumerate() {
            match handle {
                Some(h) => {
                    if h.join().is_err() {
                        failed_shards.push(i);
                    }
                }
                None => failed_shards.push(i),
            }
        }

        // Rebuild the report from the registry: counts are the work the
        // shards actually completed (a shard that died mid-stream still
        // reports its pre-crash work); users come from the exit-time stats
        // channel (a dead shard never reports, so its slot stays 0).
        let mut observed = 0;
        let mut predictions = 0;
        let mut dropped_observes = 0;
        let mut latency_hist = HistogramSnapshot::empty();
        for obs in &inner.shard_obs {
            observed += obs.observes.get() as usize;
            predictions += obs.predicts.get() as usize;
            dropped_observes += obs.dropped_observes.get() as usize;
            latency_hist.merge(&obs.predict_latency.snapshot());
        }
        let (respawns, replayed_observes, degraded_predictions) = match &inner.recovery {
            Some(r) => (
                r.respawns.get() as usize,
                r.replayed_observes.get() as usize,
                r.degraded_predictions.get() as usize,
            ),
            None => (0, 0, 0),
        };
        let mut per_shard_users = vec![0usize; shards];
        for (i, users) in collected.into_iter().enumerate() {
            if let Some(users) = users {
                per_shard_users[i] = users;
            }
        }
        let elapsed = inner.started.elapsed();
        Ok(EngineReport {
            shards,
            observed,
            predictions,
            per_shard_users,
            failed_shards,
            dropped_observes,
            respawns,
            replayed_observes,
            degraded_predictions,
            elapsed,
            latency: LatencyProfile::from_histogram(&latency_hist, elapsed),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AdaMoveConfig;
    use crate::recovery::RetryPolicy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pt(loc: u32, h: i64) -> Point {
        Point::new(loc, Timestamp::from_hours(h))
    }

    fn model(locations: u32, users: u32) -> (Arc<ParamStore>, Arc<LightMob>) {
        let mut rng = StdRng::seed_from_u64(23);
        let mut store = ParamStore::new();
        let m = LightMob::new(
            &mut store,
            AdaMoveConfig::tiny(),
            locations,
            users,
            &mut rng,
        );
        (Arc::new(store), Arc::new(m))
    }

    /// One-shot kill: panics `shard` when it processes request `seq`.
    /// Because the seq counter is shared across incarnations, the fault
    /// fires exactly once even after the shard respawns.
    struct KillAt {
        shard: usize,
        seq: u64,
    }

    impl Disturbance for KillAt {
        fn action(&self, shard: usize, seq: u64, _kind: RequestKind) -> FaultAction {
            if shard == self.shard && seq == self.seq {
                FaultAction::PanicShard
            } else {
                FaultAction::None
            }
        }
    }

    #[test]
    fn shard_assignment_is_deterministic_and_total() {
        for shards in [1, 2, 7] {
            for u in 0..100 {
                let s = shard_of(UserId(u), shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(UserId(u), shards));
            }
        }
        // Hashing spreads users over shards (not all in one bucket).
        let buckets: std::collections::HashSet<usize> =
            (0..100).map(|u| shard_of(UserId(u), 4)).collect();
        assert!(buckets.len() > 1);
    }

    #[test]
    fn engine_matches_streaming_predictor_per_user() {
        let (store, m) = model(8, 6);
        let config = EngineConfig {
            shards: 3,
            context_sessions: 2,
            session_hours: 24,
            ptta: PttaConfig::default(),
            ..EngineConfig::default()
        };
        let engine = ShardedEngine::new(Arc::clone(&m), Arc::clone(&store), config.clone());
        let mut reference = StreamingPredictor::new(&m, &store, config.ptta.clone(), 2, 24);

        // Interleaved traffic for six users across three shards.
        for step in 0..12i64 {
            for u in 0..6u32 {
                let p = pt((u + step as u32) % 8, step);
                engine.observe(UserId(u), p);
                reference.observe(UserId(u), p);
            }
        }
        let now = Timestamp::from_hours(13);
        for u in 0..6u32 {
            let from_engine = engine.predict(UserId(u), now);
            let from_reference = reference.predict(UserId(u), now);
            match (from_engine, from_reference) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.scores, b.scores, "user {u}");
                    assert_eq!(a.top, b.top);
                    assert_eq!(a.window_len, b.window_len);
                    assert_eq!(a.quality, PredictionQuality::Adapted);
                }
                (a, b) => panic!(
                    "user {u}: engine {:?} vs reference {:?}",
                    a.is_some(),
                    b.is_some()
                ),
            }
        }
        let report = engine.shutdown();
        assert_eq!(report.observed, 72);
        assert_eq!(report.predictions, 6);
        assert_eq!(report.users(), 6);
        assert_eq!(report.shards, 3);
        assert_eq!(report.latency.samples, 6);
        assert!(report.healthy());
        assert_eq!(report.dropped_observes, 0);
        assert_eq!(report.respawns, 0);
        assert_eq!(report.degraded_predictions, 0);
        assert!(report.requests_per_sec() > 0.0);
        assert!(!report.row().is_empty());
    }

    #[test]
    fn batched_engine_matches_unbatched_predictions() {
        let (store, m) = model(8, 6);
        let mk = |batch_max: usize| {
            ShardedEngine::new(
                Arc::clone(&m),
                Arc::clone(&store),
                EngineConfig {
                    shards: 2,
                    context_sessions: 2,
                    session_hours: 24,
                    batch_max,
                    ..EngineConfig::default()
                },
            )
        };
        let batched = mk(8);
        let unbatched = mk(1);
        for step in 0..10i64 {
            for u in 0..6u32 {
                let p = pt((u * 2 + step as u32) % 8, step);
                batched.observe(UserId(u), p);
                unbatched.observe(UserId(u), p);
            }
        }
        // Drain the observes so the queues hold only the predict burst —
        // the drain then sees consecutive predicts and batches them.
        batched.flush();
        unbatched.flush();
        let now = Timestamp::from_hours(11);
        let queries: Vec<(UserId, Timestamp)> = (0..6u32).map(|u| (UserId(u), now)).collect();
        let many = batched.predict_many(&queries);
        for (i, &(u, t)) in queries.iter().enumerate() {
            let a = many[i]
                .as_ref()
                .expect("shard alive")
                .as_ref()
                .expect("live window");
            let b = unbatched.predict(u, t).expect("live window");
            assert_eq!(a.scores, b.scores, "user {}", u.0);
            assert_eq!(a.top, b.top, "user {}", u.0);
            assert_eq!(a.window_len, b.window_len, "user {}", u.0);
            assert_eq!(a.quality, PredictionQuality::Adapted);
        }
        let report = batched.shutdown();
        assert_eq!(report.predictions, 6);
        assert!(report.healthy());
        unbatched.shutdown();
    }

    #[test]
    fn predict_observes_all_earlier_requests_for_the_user() {
        // No lost updates: a predict enqueued after N observes must see all
        // N points in the window.
        let (store, m) = model(6, 2);
        let engine = ShardedEngine::new(
            m,
            store,
            EngineConfig {
                shards: 2,
                context_sessions: 3,
                session_hours: 24,
                ptta: PttaConfig::default(),
                ..EngineConfig::default()
            },
        );
        for i in 0..5i64 {
            engine.observe(UserId(1), pt(i as u32 % 6, i));
        }
        let p = engine.predict(UserId(1), Timestamp::from_hours(6)).unwrap();
        assert_eq!(p.window_len, 5);
        // Unknown user: None, not a panic.
        assert!(engine
            .predict(UserId(0), Timestamp::from_hours(6))
            .is_none());
        engine.flush();
        let report = engine.shutdown();
        assert_eq!(report.observed, 5);
        assert_eq!(report.predictions, 2);
    }

    #[test]
    fn zero_shards_rounds_up_to_one() {
        let (store, m) = model(4, 1);
        let engine = ShardedEngine::new(
            m,
            store,
            EngineConfig {
                shards: 0,
                ..EngineConfig::default()
            },
        );
        assert_eq!(engine.shards(), 1);
        engine.observe(UserId(0), pt(1, 0));
        assert!(engine
            .predict(UserId(0), Timestamp::from_hours(1))
            .is_some());
        engine.shutdown();
    }

    #[test]
    fn shutdown_timeout_succeeds_on_a_healthy_engine() {
        let (store, m) = model(4, 2);
        let engine = ShardedEngine::new(
            m,
            store,
            EngineConfig {
                shards: 2,
                context_sessions: 2,
                session_hours: 24,
                ptta: PttaConfig::default(),
                ..EngineConfig::default()
            },
        );
        engine.observe(UserId(0), pt(1, 0));
        engine.observe(UserId(1), pt(2, 0));
        let report = engine
            .shutdown_timeout(Duration::from_secs(10))
            .expect("healthy engine must drain in time");
        assert!(report.healthy());
        assert_eq!(report.observed, 2);
    }

    #[test]
    fn retire_shard_joins_the_worker_and_decommissions_the_slot() {
        let (store, m) = model(4, 2);
        let engine = ShardedEngine::new(
            m,
            store,
            EngineConfig {
                shards: 2,
                context_sessions: 2,
                session_hours: 24,
                ptta: PttaConfig::default(),
                ..EngineConfig::default()
            },
        );
        let on_shard = |s: usize| {
            (0..8)
                .map(UserId)
                .find(|u| engine.shard_of(*u) == s)
                .expect("8 users cover 2 shards")
        };
        let (u0, u1) = (on_shard(0), on_shard(1));
        engine.observe(u0, pt(1, 0));
        engine.observe(u1, pt(2, 0));

        // A healthy worker drains its queue and exits cleanly.
        assert_eq!(engine.retire_shard(0), Some(false));
        // The slot is empty now: not alive, no longer serving, and a
        // second retire finds nothing to join.
        assert!(!engine.snapshot().shards[0].alive);
        assert!(matches!(
            engine.try_observe(u0, pt(3, 1)),
            Err(EngineError::ShardDown { shard: 0 })
        ));
        assert_eq!(engine.retire_shard(0), None);
        assert_eq!(engine.retire_shard(99), None);

        // The other shard is untouched, and shutdown reports the
        // retired shard as failed (deliberate decommission).
        assert!(engine.try_observe(u1, pt(3, 1)).is_ok());
        let report = engine
            .shutdown_timeout(Duration::from_secs(10))
            .expect("drains in time");
        assert_eq!(report.failed_shards, vec![0]);
        assert_eq!(report.observed, 3, "shard 0's pre-retire work is kept");
    }

    #[test]
    fn shutdown_deadline_is_configurable() {
        let (store, m) = model(4, 1);
        let engine = ShardedEngine::new(
            m,
            store,
            EngineConfig {
                shards: 1,
                shutdown_deadline: Duration::from_secs(5),
                ..EngineConfig::default()
            },
        );
        engine.observe(UserId(0), pt(1, 0));
        // `shutdown` uses the configured deadline instead of the 60 s
        // default; a healthy engine drains well within it.
        let report = engine.shutdown();
        assert!(report.healthy());
    }

    #[test]
    fn predict_timeout_answers_within_bound_when_healthy() {
        let (store, m) = model(4, 1);
        let engine = ShardedEngine::new(
            m,
            store,
            EngineConfig {
                shards: 1,
                context_sessions: 2,
                session_hours: 24,
                ptta: PttaConfig::default(),
                ..EngineConfig::default()
            },
        );
        engine.observe(UserId(0), pt(1, 0));
        let p = engine
            .predict_timeout(UserId(0), Timestamp::from_hours(1), Duration::from_secs(10))
            .expect("healthy shard replies in time");
        assert!(p.is_some());
        engine.shutdown();
    }

    #[test]
    fn snapshot_reads_live_counts_and_percentiles_mid_run() {
        let (store, m) = model(8, 6);
        let engine = ShardedEngine::new(
            m,
            store,
            EngineConfig {
                shards: 2,
                context_sessions: 2,
                session_hours: 24,
                ptta: PttaConfig::default(),
                ..EngineConfig::default()
            },
        );
        for step in 0..4i64 {
            for u in 0..6u32 {
                engine.observe(UserId(u), pt((u + step as u32) % 8, step));
            }
        }
        let now = Timestamp::from_hours(5);
        for u in 0..6u32 {
            assert!(engine.predict(UserId(u), now).is_some());
        }
        engine.flush();

        // Mid-run: engine still serving, snapshot agrees with the traffic.
        let snap = engine.snapshot();
        assert_eq!(snap.shards.len(), 2);
        assert_eq!(snap.observed(), 24);
        assert_eq!(snap.predictions(), 6);
        assert_eq!(snap.dropped_observes(), 0);
        assert_eq!(snap.shard_down_errors, 0);
        assert_eq!(snap.timeout_errors, 0);
        assert_eq!(snap.respawns, 0);
        assert_eq!(snap.degraded_predictions, 0);
        let lat = snap.predict_latency();
        assert_eq!(lat.count, 6);
        assert!(lat.percentile(0.50) > 0.0);
        assert!(lat.percentile(0.99) >= lat.percentile(0.50));
        for s in &snap.shards {
            assert!(s.alive, "shard {} should be serving", s.shard);
            assert!(!s.degraded, "shard {}", s.shard);
            // Flushed: nothing left in any queue.
            assert_eq!(s.queue_depth, 0, "shard {}", s.shard);
            assert_eq!(s.flushes, 1);
            assert_eq!(s.predict_latency.count as usize, s.predictions);
        }
        assert_eq!(snap.shards.iter().map(|s| s.users).sum::<usize>(), 6);

        // The engine still serves after a snapshot, and the final report
        // agrees with what the snapshot saw.
        assert!(engine.predict(UserId(0), now).is_some());
        let report = engine.shutdown();
        assert_eq!(report.observed, 24);
        assert_eq!(report.predictions, 7);
        assert_eq!(report.latency.samples, 7);
        assert_eq!(report.users(), 6);
    }

    #[test]
    fn registry_export_contains_engine_metrics() {
        let (store, m) = model(4, 2);
        let engine = ShardedEngine::new(
            m,
            store,
            EngineConfig {
                shards: 1,
                context_sessions: 2,
                session_hours: 24,
                ptta: PttaConfig::default(),
                ..EngineConfig::default()
            },
        );
        engine.observe(UserId(0), pt(1, 0));
        assert!(engine
            .predict(UserId(0), Timestamp::from_hours(1))
            .is_some());
        engine.flush();
        let json = adamove_obs::to_flat_json(&engine.registry().snapshot());
        assert!(json.contains("engine_observes_total{shard=\\\"0\\\"}\": 1"));
        assert!(json.contains("engine_predicts_total{shard=\\\"0\\\"}\": 1"));
        assert!(json.contains("engine_predict_latency_ns_p99{shard=\\\"0\\\"}"));
        assert!(json.contains("\"engine_shard_down_total\": 0"));
        let prom = adamove_obs::to_prometheus(&engine.registry().snapshot());
        assert!(prom.contains("# TYPE engine_predict_latency_ns histogram"));
        engine.shutdown();
    }

    #[test]
    fn shared_registry_and_ring_tracer_capture_engine_activity() {
        use adamove_obs::{RingSink, Tracer};
        let (store, m) = model(4, 2);
        let registry = Arc::new(adamove_obs::Registry::new());
        let ring = Arc::new(RingSink::new(16));
        let engine = ShardedEngine::with_observability(
            m,
            store,
            EngineConfig {
                shards: 1,
                context_sessions: 2,
                session_hours: 24,
                ptta: PttaConfig::default(),
                ..EngineConfig::default()
            },
            None,
            Arc::clone(&registry),
            Tracer::with_sink(ring.clone()),
        );
        assert!(engine.tracer().enabled());
        engine.observe(UserId(0), pt(1, 0));
        engine.flush();
        // The caller's registry handle sees the worker's updates.
        let snap = registry.snapshot();
        assert_eq!(snap.counters["engine_observes_total{shard=\"0\"}"], 1);
        engine.shutdown();
    }

    #[test]
    fn engine_error_renders_human_readable() {
        let down = EngineError::ShardDown { shard: 3 };
        assert!(down.to_string().contains("shard 3"));
        let slow = EngineError::Timeout {
            shard: 1,
            waited: Duration::from_millis(5),
        };
        assert!(slow.to_string().contains("shard 1"));
        let stuck = ShutdownError {
            stuck_shards: vec![0, 2],
            timeout: Duration::from_secs(1),
        };
        assert!(stuck.to_string().contains("[0, 2]"));
    }

    #[test]
    fn recovery_replays_journal_and_matches_no_fault_run() {
        let (store, m) = model(8, 6);
        let recovery = RecoveryConfig {
            checkpoint_interval: 5,
            journal_capacity: 1024,
            retry: RetryPolicy::default(),
            breaker: None,
            supervise_interval: None,
            durability: None,
        };
        let config = |recovery| EngineConfig {
            shards: 2,
            context_sessions: 2,
            session_hours: 24,
            ptta: PttaConfig::default(),
            recovery: Some(recovery),
            ..EngineConfig::default()
        };
        let victim = shard_of(UserId(0), 2);

        // Golden run: identical traffic, no fault.
        let golden =
            ShardedEngine::new(Arc::clone(&m), Arc::clone(&store), config(recovery.clone()));
        // Faulted run: the victim shard is killed while observes stream.
        let engine = ShardedEngine::with_disturbance(
            Arc::clone(&m),
            Arc::clone(&store),
            config(recovery),
            Some(Arc::new(KillAt {
                shard: victim,
                seq: 7,
            })),
        );
        for step in 0..12i64 {
            for u in 0..6u32 {
                let p = pt((u + step as u32) % 8, step);
                golden.observe(UserId(u), p);
                engine.observe(UserId(u), p);
            }
        }
        // Predicts hit the dead shard, heal it (journal replay) and then
        // must match the run that never crashed, bit for bit.
        let now = Timestamp::from_hours(13);
        for u in 0..6u32 {
            let reference = golden.predict(UserId(u), now).expect("golden window");
            let healed = engine.predict(UserId(u), now).expect("healed window");
            assert_eq!(healed.scores, reference.scores, "user {u}");
            assert_eq!(healed.top, reference.top, "user {u}");
            assert_eq!(healed.window_len, reference.window_len, "user {u}");
            assert_eq!(healed.quality, PredictionQuality::Adapted);
        }
        let snap = engine.snapshot();
        assert_eq!(snap.respawns, 1);
        assert!(snap.replayed_observes > 0);
        assert_eq!(snap.degraded_predictions, 0);
        assert!(snap.shards.iter().all(|s| s.alive && !s.degraded));
        golden.shutdown();
        let report = engine.shutdown();
        // The crashed incarnation healed, so the shard is not a casualty.
        assert!(report.healthy());
        assert_eq!(report.respawns, 1);
        assert!(report.replayed_observes > 0);
        assert_eq!(report.degraded_predictions, 0);
    }

    #[test]
    fn degraded_serving_when_checkpointing_is_disabled() {
        let (store, m) = model(8, 6);
        let recovery = RecoveryConfig {
            checkpoint_interval: 0, // no checkpoints: only degraded recovery
            journal_capacity: 64,
            retry: RetryPolicy::default(),
            breaker: None,
            supervise_interval: None,
            durability: None,
        };
        let victim = shard_of(UserId(0), 2);
        // Kill the victim while it processes its *last* observe, so no
        // later observe rebuilds a window before the predicts arrive.
        let victim_observes = (0..6u32)
            .filter(|&u| shard_of(UserId(u), 2) == victim)
            .count()
            * 10;
        let engine = ShardedEngine::with_disturbance(
            Arc::clone(&m),
            Arc::clone(&store),
            EngineConfig {
                shards: 2,
                context_sessions: 2,
                session_hours: 24,
                ptta: PttaConfig::default(),
                recovery: Some(recovery),
                ..EngineConfig::default()
            },
            Some(Arc::new(KillAt {
                shard: victim,
                seq: victim_observes as u64 - 1,
            })),
        );
        // Skewed traffic so the population prior has a clear winner.
        for step in 0..10i64 {
            for u in 0..6u32 {
                let loc = if step % 2 == 0 { 7 } else { u % 4 };
                engine.observe(UserId(u), pt(loc, step));
            }
        }
        let now = Timestamp::from_hours(11);
        let mut degraded = 0usize;
        for u in 0..6u32 {
            let p = engine
                .predict(UserId(u), now)
                .expect("never an unhandled error or a lost user");
            if shard_of(UserId(u), 2) == victim {
                assert_eq!(p.quality, PredictionQuality::Degraded, "user {u}");
                assert_eq!(p.top, LocationId(7), "prior winner");
                assert_eq!(p.window_len, 0);
                degraded += 1;
            } else {
                assert_eq!(p.quality, PredictionQuality::Adapted, "user {u}");
            }
        }
        assert!(degraded > 0);
        assert!(engine.is_degraded(victim));
        let snap = engine.snapshot();
        assert_eq!(snap.degraded_predictions, degraded);
        assert_eq!(snap.respawns, 1);
        // Fresh observes rebuild real windows: the shard heals naturally.
        for step in 11..14i64 {
            for u in 0..6u32 {
                engine.observe(UserId(u), pt((u + step as u32) % 8, step));
            }
        }
        let later = Timestamp::from_hours(15);
        for u in 0..6u32 {
            let p = engine.predict(UserId(u), later).expect("live window");
            assert_eq!(p.quality, PredictionQuality::Adapted, "user {u}");
        }
        let report = engine.shutdown();
        assert_eq!(report.degraded_predictions, degraded);
        assert_eq!(report.respawns, 1);
        assert!(report.healthy());
    }

    #[test]
    fn supervisor_respawns_a_dead_shard_without_traffic() {
        let (store, m) = model(6, 4);
        let engine = ShardedEngine::with_disturbance(
            m,
            store,
            EngineConfig {
                shards: 2,
                context_sessions: 2,
                session_hours: 24,
                ptta: PttaConfig::default(),
                recovery: Some(RecoveryConfig {
                    checkpoint_interval: 8,
                    supervise_interval: Some(Duration::from_millis(5)),
                    ..RecoveryConfig::default()
                }),
                ..EngineConfig::default()
            },
            // The very first request on shard 0 kills it.
            Some(Arc::new(KillAt { shard: 0, seq: 0 })),
        );
        // Exactly one observe per shard, chosen by ownership upfront so
        // no later request can heal shard 0 lazily through a retry.
        let victim_user = (0..8u32)
            .find(|&u| shard_of(UserId(u), 2) == 0)
            .expect("some user maps to shard 0");
        let other_user = (0..8u32)
            .find(|&u| shard_of(UserId(u), 2) == 1)
            .expect("some user maps to shard 1");
        engine.observe(UserId(victim_user), pt(victim_user % 6, 0));
        engine.observe(UserId(other_user), pt(other_user % 6, 0));
        // No further traffic: the background supervisor must notice the
        // corpse and respawn it (replaying the journalled observe).
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let snap = engine.snapshot();
            if snap.respawns >= 1 && snap.shards[0].alive {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "supervisor never respawned shard 0"
            );
            // lint:allow(sleep-in-test): bounded backoff inside a deadline poll for the background supervisor
            std::thread::sleep(Duration::from_millis(2));
        }
        // The killed observe was journalled and replayed: its user's
        // window survived the crash.
        let p = engine
            .predict(UserId(victim_user), Timestamp::from_hours(1))
            .expect("replayed window");
        assert_eq!(p.window_len, 1);
        assert_eq!(p.quality, PredictionQuality::Adapted);
        let report = engine.shutdown();
        assert!(report.healthy());
        assert!(report.respawns >= 1);
    }

    #[test]
    fn retry_none_surfaces_the_error_and_manual_heal_recovers() {
        let (store, m) = model(6, 4);
        let engine = ShardedEngine::with_disturbance(
            m,
            store,
            EngineConfig {
                shards: 1,
                context_sessions: 2,
                session_hours: 24,
                ptta: PttaConfig::default(),
                recovery: Some(RecoveryConfig {
                    checkpoint_interval: 8,
                    retry: RetryPolicy::none(),
                    ..RecoveryConfig::default()
                }),
                ..EngineConfig::default()
            },
            Some(Arc::new(KillAt { shard: 0, seq: 1 })),
        );
        engine.observe(UserId(0), pt(1, 0));
        engine.observe(UserId(0), pt(2, 1)); // killed processing this one
                                             // Wait for the corpse, then: no retries means the error surfaces.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match engine.try_predict(UserId(0), Timestamp::from_hours(3)) {
                Err(EngineError::ShardDown { shard: 0 }) => break,
                Err(e) => panic!("unexpected error {e}"),
                Ok(_) => {
                    assert!(Instant::now() < deadline, "shard 0 never died");
                    // lint:allow(sleep-in-test): bounded backoff inside a deadline poll for the worker's death
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
        // Manual healing still works — and replays both journalled
        // observes (the processed one and the killed one). The reply
        // channel disconnects while the worker is still unwinding, so
        // poll until the corpse is joinable.
        let deadline = Instant::now() + Duration::from_secs(5);
        while !engine.heal_shard(0) {
            assert!(Instant::now() < deadline, "shard 0 never became healable");
            // lint:allow(sleep-in-test): bounded backoff inside a deadline poll for corpse joinability
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(!engine.heal_shard(0), "already healed");
        let p = engine
            .predict(UserId(0), Timestamp::from_hours(3))
            .expect("replayed window");
        assert_eq!(p.window_len, 2);
        let report = engine.shutdown();
        assert!(report.healthy());
        assert_eq!(report.respawns, 1);
        assert_eq!(report.replayed_observes, 2);
    }
}
