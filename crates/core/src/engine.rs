//! Sharded serving runtime: parallel online prediction at scale.
//!
//! [`StreamingPredictor`] serves one request at a time; production
//! deployments (ROADMAP: millions of users) need concurrency. The
//! [`ShardedEngine`] partitions users across `N` worker shards by a
//! deterministic hash of the user id. Each shard is one OS thread owning
//! its users' [`RecentWindow`]s and a PTTA adapter, draining a channel of
//! observe/predict requests; the model and parameter store are shared
//! read-only behind [`Arc`]s (PTTA never mutates them — adaptation happens
//! per request on the classifier copy inside the scoring call).
//!
//! Correctness guarantees:
//!
//! - **Per-user ordering.** A user's requests all land on one shard over
//!   one FIFO channel, so observes and predicts interleave exactly as
//!   submitted — no lost updates, no reordering.
//! - **Sequential equivalence.** Prediction depends only on the user's own
//!   window, so any interleaving across *different* users yields the same
//!   per-user results as a single [`StreamingPredictor`] fed the same
//!   per-user sequences.

use crate::eval::LatencyProfile;
use crate::lightmob::LightMob;
use crate::parallel::available_threads;
use crate::ptta::PttaConfig;
use crate::streaming::{StreamPrediction, StreamingPredictor};
use adamove_autograd::ParamStore;
use adamove_mobility::{Point, Timestamp, UserId};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of a [`ShardedEngine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of worker shards (threads). Zero is rounded up to one.
    pub shards: usize,
    /// Sliding-window context length `c` (paper Definition 3).
    pub context_sessions: usize,
    /// Session length `T` in hours.
    pub session_hours: i64,
    /// PTTA adaptation settings used on every predict.
    pub ptta: PttaConfig,
}

impl Default for EngineConfig {
    /// One shard per available core, paper-default window (`c = 5`,
    /// `T = 72h`) and PTTA settings.
    fn default() -> Self {
        Self {
            shards: available_threads(),
            context_sessions: 5,
            session_hours: 72,
            ptta: PttaConfig::default(),
        }
    }
}

/// Final statistics from a shut-down engine.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Number of worker shards that ran.
    pub shards: usize,
    /// Total observe requests processed.
    pub observed: usize,
    /// Total predict requests processed.
    pub predictions: usize,
    /// Users with a live window at shutdown, per shard (shard order).
    pub per_shard_users: Vec<usize>,
    /// Wall-clock lifetime of the engine.
    pub elapsed: Duration,
    /// Predict-handling latency percentiles (in-shard compute, queueing
    /// excluded) and predictions per wall-clock second.
    pub latency: LatencyProfile,
}

impl EngineReport {
    /// Total users with live windows across all shards.
    pub fn users(&self) -> usize {
        self.per_shard_users.iter().sum()
    }

    /// All requests (observe + predict) per wall-clock second.
    pub fn requests_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            (self.observed + self.predictions) as f64 / secs
        } else {
            0.0
        }
    }

    /// One-line human-readable rendering.
    pub fn row(&self) -> String {
        format!(
            "{} shards  {} users  {} obs + {} pred  {}",
            self.shards,
            self.users(),
            self.observed,
            self.predictions,
            self.latency.row()
        )
    }
}

enum Request {
    Observe(UserId, Point),
    Predict {
        user: UserId,
        now: Timestamp,
        reply: mpsc::Sender<Option<StreamPrediction>>,
    },
    Flush(mpsc::Sender<()>),
}

struct ShardStats {
    observed: usize,
    predictions: usize,
    latencies_ns: Vec<u64>,
    users: usize,
}

/// SplitMix64 finalizer: cheap, well-mixed, and stable across runs — the
/// shard assignment is part of the engine's deterministic behaviour.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Shard index for `user` under a `shards`-way partition.
pub fn shard_of(user: UserId, shards: usize) -> usize {
    (mix64(user.0 as u64) % shards.max(1) as u64) as usize
}

/// Multi-threaded sharded serving runtime. See the [module docs](self).
pub struct ShardedEngine {
    senders: Vec<mpsc::Sender<Request>>,
    handles: Vec<JoinHandle<ShardStats>>,
    started: Instant,
}

impl ShardedEngine {
    /// Spawn `config.shards` worker threads sharing `model` and `store`.
    pub fn new(model: Arc<LightMob>, store: Arc<ParamStore>, config: EngineConfig) -> Self {
        let shards = config.shards.max(1);
        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = mpsc::channel::<Request>();
            let model = Arc::clone(&model);
            let store = Arc::clone(&store);
            let ptta = config.ptta.clone();
            let (c, t) = (config.context_sessions, config.session_hours);
            let handle = std::thread::Builder::new()
                .name(format!("adamove-shard-{shard}"))
                .spawn(move || {
                    let mut sp = StreamingPredictor::new(&model, &store, ptta, c, t);
                    let mut stats = ShardStats {
                        observed: 0,
                        predictions: 0,
                        latencies_ns: Vec::new(),
                        users: 0,
                    };
                    // Ends when every sender is dropped (engine shutdown).
                    while let Ok(req) = rx.recv() {
                        match req {
                            Request::Observe(user, point) => {
                                sp.observe(user, point);
                                stats.observed += 1;
                            }
                            Request::Predict { user, now, reply } => {
                                let t0 = Instant::now();
                                let prediction = sp.predict(user, now);
                                stats.latencies_ns.push(t0.elapsed().as_nanos() as u64);
                                stats.predictions += 1;
                                // A dropped reply receiver only means the
                                // caller gave up waiting; not fatal.
                                let _ = reply.send(prediction);
                            }
                            Request::Flush(done) => {
                                let _ = done.send(());
                            }
                        }
                    }
                    stats.users = sp.active_users();
                    stats
                })
                .expect("failed to spawn engine shard");
            senders.push(tx);
            handles.push(handle);
        }
        Self {
            senders,
            handles,
            started: Instant::now(),
        }
    }

    /// Number of worker shards.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// The shard that owns `user`.
    pub fn shard_of(&self, user: UserId) -> usize {
        shard_of(user, self.senders.len())
    }

    fn send(&self, user: UserId, req: Request) {
        self.senders[self.shard_of(user)]
            .send(req)
            .expect("engine shard died");
    }

    /// Record an observed check-in for `user` (asynchronous: returns once
    /// the request is enqueued on the owning shard).
    pub fn observe(&self, user: UserId, point: Point) {
        self.send(user, Request::Observe(user, point));
    }

    /// Predict `user`'s next location, blocking until the owning shard has
    /// drained every earlier request for that user and computed the
    /// answer. `None` when the user has no live window at `now`.
    pub fn predict(&self, user: UserId, now: Timestamp) -> Option<StreamPrediction> {
        let (reply, rx) = mpsc::channel();
        self.send(user, Request::Predict { user, now, reply });
        rx.recv().expect("engine shard died")
    }

    /// Barrier: returns once every shard has drained all requests enqueued
    /// before this call.
    pub fn flush(&self) {
        let receivers: Vec<mpsc::Receiver<()>> = self
            .senders
            .iter()
            .map(|tx| {
                let (done, rx) = mpsc::channel();
                tx.send(Request::Flush(done)).expect("engine shard died");
                rx
            })
            .collect();
        for rx in receivers {
            rx.recv().expect("engine shard died");
        }
    }

    /// Stop all shards and collect their statistics. Pending requests are
    /// drained before each shard exits.
    pub fn shutdown(self) -> EngineReport {
        let ShardedEngine {
            senders,
            handles,
            started,
        } = self;
        // Workers exit once the channel disconnects.
        drop(senders);
        let mut observed = 0;
        let mut predictions = 0;
        let mut latencies = Vec::new();
        let mut per_shard_users = Vec::with_capacity(handles.len());
        let shards = handles.len();
        for handle in handles {
            let stats = handle.join().expect("engine shard panicked");
            observed += stats.observed;
            predictions += stats.predictions;
            latencies.extend(stats.latencies_ns);
            per_shard_users.push(stats.users);
        }
        let elapsed = started.elapsed();
        EngineReport {
            shards,
            observed,
            predictions,
            per_shard_users,
            elapsed,
            latency: LatencyProfile::from_nanos(latencies, elapsed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AdaMoveConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pt(loc: u32, h: i64) -> Point {
        Point::new(loc, Timestamp::from_hours(h))
    }

    fn model(locations: u32, users: u32) -> (Arc<ParamStore>, Arc<LightMob>) {
        let mut rng = StdRng::seed_from_u64(23);
        let mut store = ParamStore::new();
        let m = LightMob::new(
            &mut store,
            AdaMoveConfig::tiny(),
            locations,
            users,
            &mut rng,
        );
        (Arc::new(store), Arc::new(m))
    }

    #[test]
    fn shard_assignment_is_deterministic_and_total() {
        for shards in [1, 2, 7] {
            for u in 0..100 {
                let s = shard_of(UserId(u), shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(UserId(u), shards));
            }
        }
        // Hashing spreads users over shards (not all in one bucket).
        let buckets: std::collections::HashSet<usize> =
            (0..100).map(|u| shard_of(UserId(u), 4)).collect();
        assert!(buckets.len() > 1);
    }

    #[test]
    fn engine_matches_streaming_predictor_per_user() {
        let (store, m) = model(8, 6);
        let config = EngineConfig {
            shards: 3,
            context_sessions: 2,
            session_hours: 24,
            ptta: PttaConfig::default(),
        };
        let engine = ShardedEngine::new(Arc::clone(&m), Arc::clone(&store), config.clone());
        let mut reference = StreamingPredictor::new(&m, &store, config.ptta.clone(), 2, 24);

        // Interleaved traffic for six users across three shards.
        for step in 0..12i64 {
            for u in 0..6u32 {
                let p = pt((u + step as u32) % 8, step);
                engine.observe(UserId(u), p);
                reference.observe(UserId(u), p);
            }
        }
        let now = Timestamp::from_hours(13);
        for u in 0..6u32 {
            let from_engine = engine.predict(UserId(u), now);
            let from_reference = reference.predict(UserId(u), now);
            match (from_engine, from_reference) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.scores, b.scores, "user {u}");
                    assert_eq!(a.top, b.top);
                    assert_eq!(a.window_len, b.window_len);
                }
                (a, b) => panic!(
                    "user {u}: engine {:?} vs reference {:?}",
                    a.is_some(),
                    b.is_some()
                ),
            }
        }
        let report = engine.shutdown();
        assert_eq!(report.observed, 72);
        assert_eq!(report.predictions, 6);
        assert_eq!(report.users(), 6);
        assert_eq!(report.shards, 3);
        assert_eq!(report.latency.samples, 6);
        assert!(report.requests_per_sec() > 0.0);
        assert!(!report.row().is_empty());
    }

    #[test]
    fn predict_observes_all_earlier_requests_for_the_user() {
        // No lost updates: a predict enqueued after N observes must see all
        // N points in the window.
        let (store, m) = model(6, 2);
        let engine = ShardedEngine::new(
            m,
            store,
            EngineConfig {
                shards: 2,
                context_sessions: 3,
                session_hours: 24,
                ptta: PttaConfig::default(),
            },
        );
        for i in 0..5i64 {
            engine.observe(UserId(1), pt(i as u32 % 6, i));
        }
        let p = engine.predict(UserId(1), Timestamp::from_hours(6)).unwrap();
        assert_eq!(p.window_len, 5);
        // Unknown user: None, not a panic.
        assert!(engine
            .predict(UserId(0), Timestamp::from_hours(6))
            .is_none());
        engine.flush();
        let report = engine.shutdown();
        assert_eq!(report.observed, 5);
        assert_eq!(report.predictions, 2);
    }

    #[test]
    fn zero_shards_rounds_up_to_one() {
        let (store, m) = model(4, 1);
        let engine = ShardedEngine::new(
            m,
            store,
            EngineConfig {
                shards: 0,
                ..EngineConfig::default()
            },
        );
        assert_eq!(engine.shards(), 1);
        engine.observe(UserId(0), pt(1, 0));
        assert!(engine
            .predict(UserId(0), Timestamp::from_hours(1))
            .is_some());
        engine.shutdown();
    }
}
