//! Scoped-thread fan-out primitives for parallel evaluation.
//!
//! Everything here is deterministic by construction: inputs are split into
//! *contiguous* chunks, each worker owns exactly one chunk, and results are
//! reassembled in chunk order. Combined with the exact merge of
//! [`MetricAccumulator`](crate::metrics::MetricAccumulator), a parallel
//! evaluation reproduces the sequential one bit for bit — thread count and
//! scheduling only affect wall-clock time, never results.
//!
//! Built on `std::thread::scope` only; no extra dependencies, no work
//! stealing. Chunks are equal-sized, which is the right trade for
//! evaluation workloads where per-sample cost is roughly uniform.

use std::num::NonZeroUsize;

/// Number of worker threads to use by default: the machine's available
/// parallelism, or 1 when that cannot be determined.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Split `len` items into at most `threads` contiguous chunks of
/// near-equal size. Returns the chunk length (at least 1 for non-empty
/// input).
fn chunk_len(len: usize, threads: usize) -> usize {
    let threads = threads.max(1);
    len.div_ceil(threads).max(1)
}

/// Apply `f` to every contiguous chunk of `items`, one worker thread per
/// chunk, and return the per-chunk results in chunk order.
///
/// With `threads <= 1` (or a single chunk) everything runs on the calling
/// thread — no spawn overhead on the sequential path. Results are
/// positionally identical to `items.chunks(l).map(f).collect()` for the
/// same chunking, whatever the thread timing.
pub fn par_map_chunks<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let l = chunk_len(items.len(), threads);
    if threads <= 1 || l >= items.len() {
        return items.chunks(l).map(f).collect();
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(l)
            .map(|chunk| scope.spawn(|| f(chunk)))
            .collect();
        // Joining in spawn order reassembles chunk order.
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

/// Apply `f` to every element of `items` across `threads` workers and
/// return the results in input order.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let mut out = Vec::with_capacity(items.len());
    for chunk in par_map_chunks(items, threads, |chunk| {
        chunk.iter().map(&f).collect::<Vec<R>>()
    }) {
        out.extend(chunk);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<usize> = (0..103).collect();
        for threads in [1, 2, 3, 4, 7, 16, 200] {
            let out = par_map(&items, threads, |&x| x * 2);
            assert_eq!(
                out,
                items.iter().map(|&x| x * 2).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn par_map_chunks_matches_sequential_chunking() {
        let items: Vec<u32> = (0..50).collect();
        for threads in [1, 3, 8] {
            let sums = par_map_chunks(&items, threads, |c| c.iter().sum::<u32>());
            let total: u32 = sums.iter().sum();
            assert_eq!(total, items.iter().sum::<u32>());
            // Chunk count never exceeds the thread budget.
            assert!(sums.len() <= threads.max(1));
        }
    }

    #[test]
    fn empty_and_tiny_inputs_are_fine() {
        let empty: Vec<i32> = vec![];
        assert!(par_map(&empty, 8, |&x| x).is_empty());
        assert!(par_map_chunks(&empty, 8, |c| c.len()).is_empty());
        assert_eq!(par_map(&[42], 8, |&x| x + 1), vec![43]);
        assert_eq!(par_map(&[1, 2], 0, |&x| x), vec![1, 2]);
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }
}
