//! PTTA: Preference-aware Test-Time Adaptation (§III-B, Algorithm 1).
//!
//! Given a trained model (`f_Φ` frozen, classifier `Θ ∈ R^{H x L}`), PTTA
//! adapts the classifier to each test trajectory in three steps:
//!
//! 1. **Autoregressive pattern generation** — every proper prefix of the
//!    recent trajectory, paired with the location of its next point, forms
//!    a *labelled* pattern (lines 1–5). Labels are real (observed inside the
//!    test input), fixing T3A's unreliable pseudo-label assignment.
//! 2. **Knowledge-base construction** — per location, keep the top-`M`
//!    patterns most cosine-similar to the test pattern `h_N` (lines 6–16),
//!    maintained by a bounded min-queue matching the paper's `O(N log M)`
//!    complexity claim. Similarity replaces T3A's entropy filter, fixing
//!    its aggressive sample filtering under strong shift.
//! 3. **Weight update** — each adapted column becomes the centroid of
//!    `{θ_l} ∪ K_l` (Eq. 2, lines 17–21); untouched columns keep `θ_l`.
//!
//! The Fig. 4 ablation variants are both expressible here:
//! [`ImportanceStrategy::Entropy`] (`w/ ent`) ranks patterns by prediction
//! entropy instead of similarity, and [`LabelStrategy::Pseudo`]
//! (`w/ pseudo-label`) buckets patterns under the model's predicted
//! location instead of the observed one.

use crate::kb::{centroid_with_seed, HeapTopM, TopM as _};
use crate::lightmob::LightMob;
use adamove_autograd::{ParamId, ParamStore};
use adamove_mobility::Sample;
use adamove_obs::{Counter, Histogram, Registry, Stopwatch};
use adamove_tensor::stats::{cosine_similarity, entropy};
use adamove_tensor::{matrix::softmax_inplace, Matrix};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A model PTTA (or T3A) can adapt: it must expose per-prefix classifier
/// inputs ("mobility patterns") and its classification layer.
///
/// [`LightMob`]'s patterns are its encoder hidden states; DeepMove-style
/// two-branch models concatenate the recent hidden state with the history
/// context, so their pattern width is `2 x hidden` — Algorithm 1 is
/// agnostic to that.
pub trait TtaModel {
    /// `N x D` matrix; row `k` is the classifier input for the prefix
    /// `recent[0..=k]` of `sample`.
    fn patterns(&self, store: &ParamStore, sample: &Sample) -> Matrix;
    /// Pattern matrices for a batch of samples, in order. Row `s` of the
    /// result must be bit-identical to `patterns(store, samples[s])` —
    /// implementations may only batch work that preserves per-sample
    /// reduction order (see `adamove_tensor::device`). The default is the
    /// per-sample loop.
    fn patterns_batch(&self, store: &ParamStore, samples: &[&Sample]) -> Vec<Matrix> {
        samples.iter().map(|s| self.patterns(store, s)).collect()
    }
    /// The classification weight `Θ ∈ R^{D x L}`.
    fn theta_param(&self) -> ParamId;
    /// The classification bias, if any (`1 x L`; frozen by PTTA).
    fn bias_param(&self) -> Option<ParamId>;
}

impl TtaModel for LightMob {
    fn patterns(&self, store: &ParamStore, sample: &Sample) -> Matrix {
        self.prefix_hidden_states(store, &sample.recent, sample.user)
    }

    fn patterns_batch(&self, store: &ParamStore, samples: &[&Sample]) -> Vec<Matrix> {
        // The batched encoder wants one shared sequence length, so bucket
        // by `recent.len()` and scatter results back into input order.
        let mut buckets: HashMap<usize, Vec<usize>> = HashMap::new();
        for (i, s) in samples.iter().enumerate() {
            buckets.entry(s.recent.len()).or_default().push(i);
        }
        let mut out = vec![Matrix::zeros(0, 0); samples.len()];
        for idxs in buckets.into_values() {
            let items: Vec<(&[adamove_mobility::Point], adamove_mobility::UserId)> = idxs
                .iter()
                .map(|&i| (samples[i].recent.as_slice(), samples[i].user))
                .collect();
            let hiddens = self.prefix_hidden_states_batch(store, &items);
            for (i, m) in idxs.into_iter().zip(hiddens) {
                out[i] = m;
            }
        }
        out
    }

    fn theta_param(&self) -> ParamId {
        self.theta()
    }

    fn bias_param(&self) -> Option<ParamId> {
        self.bias()
    }
}

/// How pattern importance is scored when the per-location budget overflows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ImportanceStrategy {
    /// Cosine similarity to the test pattern `h_N` (the paper's choice).
    Similarity,
    /// Negative prediction entropy (T3A's criterion; the `w/ ent` variant).
    Entropy,
}

/// Where a pattern's bucket label comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LabelStrategy {
    /// The observed next location inside the test trajectory (the paper's
    /// choice — trajectories are autoregressive, so labels are free).
    Real,
    /// The model's predicted location (T3A's choice; `w/ pseudo-label`).
    Pseudo,
}

/// PTTA configuration. Defaults are the paper's (`M = 5`, similarity, real
/// labels).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PttaConfig {
    /// Knowledge-base capacity `M` per location.
    pub capacity: usize,
    /// Importance scoring (Fig. 4 `w/ ent` flips this).
    pub importance: ImportanceStrategy,
    /// Label source (Fig. 4 `w/ pseudo-label` flips this).
    pub labels: LabelStrategy,
}

impl Default for PttaConfig {
    fn default() -> Self {
        Self {
            capacity: 5,
            importance: ImportanceStrategy::Similarity,
            labels: LabelStrategy::Real,
        }
    }
}

/// Adaptation metric handles for a [`Ptta`] adapter — attach with
/// [`Ptta::set_obs`]. Entropy and confidence of the *adapted* prediction
/// are the drift signal streaming TTA needs (RG-TTA): a rising entropy
/// histogram means adaptation is serving increasingly uncertain answers.
/// All updates are relaxed atomics; an adapter without obs pays one
/// `Option` branch per prediction.
#[derive(Debug, Clone)]
pub struct PttaObs {
    /// Predictions where adaptation moved ≥1 classifier column
    /// (`ptta_updates_applied_total`).
    pub updates_applied: Counter,
    /// Predictions served unadapted — too few points for any pattern
    /// (`ptta_updates_skipped_total`).
    pub updates_skipped: Counter,
    /// Total classifier columns adapted (`ptta_adapted_columns_total`).
    pub adapted_columns: Counter,
    /// Per-prediction adaptation latency in nanoseconds, full Algorithm 1
    /// pass (`ptta_adapt_latency_ns`).
    pub adapt_latency_ns: Histogram,
    /// Entropy of the adapted prediction's softmax, in millinats
    /// (`ptta_entropy_millinats`).
    pub entropy_millinats: Histogram,
    /// Confidence (max softmax probability) of the adapted prediction, in
    /// basis points 0–10000 (`ptta_confidence_bp`).
    pub confidence_bp: Histogram,
}

impl PttaObs {
    /// Register the adaptation metrics in `registry`, with `labels` (e.g.
    /// `[("shard", "3")]`) rendered into every name.
    pub fn register(registry: &Registry, labels: &[(&str, &str)]) -> Self {
        let l = |name: &str| adamove_obs::labeled(name, labels);
        Self {
            updates_applied: registry.counter(&l("ptta_updates_applied_total")),
            updates_skipped: registry.counter(&l("ptta_updates_skipped_total")),
            adapted_columns: registry.counter(&l("ptta_adapted_columns_total")),
            adapt_latency_ns: registry.histogram(&l("ptta_adapt_latency_ns")),
            entropy_millinats: registry.histogram(&l("ptta_entropy_millinats")),
            confidence_bp: registry.histogram(&l("ptta_confidence_bp")),
        }
    }

    /// Record the entropy/confidence drift signal of one adapted
    /// score vector.
    fn record_scores(&self, scores: &[f32]) {
        let (ent, conf) = score_drift_signal(scores);
        self.entropy_millinats.record(ent);
        self.confidence_bp.record(conf);
    }
}

/// The drift signal of one score vector: `(entropy in millinats,
/// confidence in basis points)` of its softmax — exactly the quantities
/// [`PttaObs`] records into `ptta_entropy_millinats` /
/// `ptta_confidence_bp`. Exposed so the recovery layer's circuit breaker
/// (see [`crate::recovery::PttaBreaker`]) trips on the same numbers the
/// histograms show.
pub fn score_drift_signal(scores: &[f32]) -> (u64, u64) {
    let mut probs = scores.to_vec();
    softmax_inplace(&mut probs);
    let ent = entropy(&probs);
    let conf = probs.iter().copied().fold(0.0f32, f32::max);
    (
        (ent * 1_000.0).max(0.0) as u64,
        (conf * 10_000.0).max(0.0) as u64,
    )
}

/// Entropy of a score vector's softmax in millinats — the
/// `ptta_entropy_millinats` drift signal as a single number.
pub fn score_entropy_millinats(scores: &[f32]) -> u64 {
    score_drift_signal(scores).0
}

/// The PTTA adapter. Stateless across samples — each test trajectory
/// carries its own adaptation evidence (its prefixes), unlike T3A's global
/// support set.
#[derive(Debug, Clone, Default)]
pub struct Ptta {
    /// Configuration used for every prediction.
    pub config: PttaConfig,
    obs: Option<PttaObs>,
}

impl Ptta {
    /// Adapter with the given configuration.
    pub fn new(config: PttaConfig) -> Self {
        Self { config, obs: None }
    }

    /// Attach adaptation metrics (see [`PttaObs::register`]). Without
    /// this, every prediction pays exactly one `Option` branch.
    pub fn set_obs(&mut self, obs: PttaObs) {
        self.obs = Some(obs);
    }

    /// Cumulative nanoseconds spent inside per-sample adaptation so far
    /// (one relaxed load on the attached `ptta_adapt_latency_ns`
    /// histogram; 0 without obs). Diffing this across a batched forward
    /// pass attributes the batch's wall time between the device forward
    /// and the adaptation — the engine's forward/adapt stage split.
    pub fn adapt_ns_total(&self) -> u64 {
        self.obs.as_ref().map_or(0, |o| o.adapt_latency_ns.sum())
    }

    /// Algorithm 1 end to end: adapted next-location scores for `sample`.
    ///
    /// Returns a dense `L`-vector of scores (higher = better). The model's
    /// parameters are *not* mutated; adapted columns are computed on the
    /// fly, which is equivalent to materialising `Θ'` and cheaper.
    pub fn predict_scores<M: TtaModel>(
        &self,
        model: &M,
        store: &ParamStore,
        sample: &Sample,
    ) -> Vec<f32> {
        // Zero-overhead-when-off: no timestamp is taken unless obs is on.
        let t0 = self.obs.as_ref().map(|_| Stopwatch::start());
        // Step 1: autoregressive pattern generation. Row k of `hiddens`
        // encodes recent[0..=k]; the pattern for prefix length k+1 is
        // labelled with recent[k+1].loc.
        let hiddens = model.patterns(store, sample);
        let theta = store.value(model.theta_param()); // D x L

        // Base scores: h_test Θ (+ bias).
        let h_row = Matrix::stack_rows(&[hiddens.row(hiddens.rows() - 1)]);
        let mut scores = h_row
            .matmul(theta)
            // lint:allow(panic-path): hidden width == Θ rows is a model-construction invariant, not a runtime condition
            .expect("ptta: hidden/theta shape mismatch")
            .into_vec();
        if let Some(bias) = model.bias_param() {
            for (s, &b) in scores.iter_mut().zip(store.value(bias).as_slice()) {
                *s += b;
            }
        }
        self.adapt_scores(sample, &hiddens, theta, scores, t0)
    }

    /// Batched [`Ptta::predict_scores`]: Algorithm 1 for several samples in
    /// one pass. Pattern generation goes through
    /// [`TtaModel::patterns_batch`] and the base scores through one stacked
    /// `gemm`, so every weight matrix streams through cache once per batch;
    /// the adaptation steps (2–3) stay per sample. Entry `s` is
    /// bit-identical to `predict_scores(model, store, samples[s])`.
    ///
    /// When obs is attached, `ptta_adapt_latency_ns` covers each sample's
    /// own adaptation step; the shared pattern-generation pass is not
    /// attributed to individual samples.
    pub fn predict_scores_batch<M: TtaModel>(
        &self,
        model: &M,
        store: &ParamStore,
        samples: &[&Sample],
    ) -> Vec<Vec<f32>> {
        if samples.is_empty() {
            return Vec::new();
        }
        let patterns = model.patterns_batch(store, samples);
        let theta = store.value(model.theta_param());
        let h_tests: Vec<&[f32]> = patterns.iter().map(|m| m.row(m.rows() - 1)).collect();
        let stacked = Matrix::stack_rows(&h_tests);
        let bias = model.bias_param().map(|b| store.value(b));
        // One (B x D) @ (D x L) pass with the bias fused at the tile store
        // — bit-identical per row to the per-sample matmul-plus-bias.
        let base = adamove_tensor::cpu()
            .gemm(&stacked, theta, bias)
            // lint:allow(panic-path): hidden width == Θ rows is a model-construction invariant, not a runtime condition
            .expect("ptta: hidden/theta shape mismatch");
        samples
            .iter()
            .zip(&patterns)
            .enumerate()
            .map(|(s, (sample, hiddens))| {
                let t0 = self.obs.as_ref().map(|_| Stopwatch::start());
                self.adapt_scores(sample, hiddens, theta, base.row(s).to_vec(), t0)
            })
            .collect()
    }

    /// Steps 2–3 of Algorithm 1 on precomputed patterns and base scores —
    /// the shared tail of [`Ptta::predict_scores`] and
    /// [`Ptta::predict_scores_batch`].
    fn adapt_scores(
        &self,
        sample: &Sample,
        hiddens: &Matrix,
        theta: &Matrix,
        mut scores: Vec<f32>,
        t0: Option<Stopwatch>,
    ) -> Vec<f32> {
        let n = hiddens.rows();
        let h_test = hiddens.row(n - 1);
        let num_locations = theta.cols();
        if n < 2 {
            // No proper prefixes -> no patterns -> unadapted prediction.
            if let Some(obs) = &self.obs {
                obs.updates_skipped.inc();
                if let Some(t0) = t0 {
                    obs.adapt_latency_ns.record(t0.elapsed_ns());
                }
            }
            return scores;
        }

        // Pseudo-labels / entropies need per-prefix logits.
        let prefix_logits = match (self.config.labels, self.config.importance) {
            (LabelStrategy::Real, ImportanceStrategy::Similarity) => None,
            _ => Some(
                hiddens
                    .matmul(theta)
                    // lint:allow(panic-path): pattern width == Θ rows is a model-construction invariant, not a runtime condition
                    .expect("ptta: prefix logits shape mismatch"),
            ),
        };

        // Step 2: knowledge-base construction with the top-M filter,
        // maintained by the priority queue of the complexity analysis.
        let mut kb: HashMap<usize, HeapTopM> = HashMap::new();
        for k in 0..n - 1 {
            let pattern = hiddens.row(k);
            // Total matches: when the strategy needs logits they were
            // computed above, and the `None` arms fall back to the
            // label/importance that needs no logits — no panic path.
            let label = match (self.config.labels, prefix_logits.as_ref()) {
                (LabelStrategy::Pseudo, Some(logits)) => {
                    adamove_tensor::matrix::argmax(logits.row(k))
                }
                (LabelStrategy::Real, _) | (LabelStrategy::Pseudo, None) => {
                    sample.recent[k + 1].loc.index()
                }
            };
            let importance = match (self.config.importance, prefix_logits.as_ref()) {
                (ImportanceStrategy::Entropy, Some(logits)) => {
                    let mut probs = logits.row(k).to_vec();
                    softmax_inplace(&mut probs);
                    -entropy(&probs)
                }
                (ImportanceStrategy::Similarity, _) | (ImportanceStrategy::Entropy, None) => {
                    cosine_similarity(h_test, pattern)
                }
            };
            kb.entry(label)
                .or_insert_with(|| HeapTopM::new(self.config.capacity))
                .push(importance, pattern);
        }

        // Step 3: weight update (Eq. 2) — only adapted columns change.
        for (&loc, top) in &kb {
            debug_assert!(loc < num_locations);
            let centroid = centroid_with_seed(&theta.col(loc), top);
            debug_assert_eq!(centroid.len(), theta.rows());
            // Adapted score replaces the weight part; bias is untouched, so
            // subtract the old dot product and add the new one.
            let mut new_dot = 0.0f32;
            for (hv, cv) in h_test.iter().zip(&centroid) {
                new_dot += hv * cv;
            }
            let mut old_dot = 0.0f32;
            for (hv, tv) in h_test.iter().zip(theta.col(loc).iter()) {
                old_dot += hv * tv;
            }
            scores[loc] += new_dot - old_dot;
        }
        if let Some(obs) = &self.obs {
            obs.updates_applied.inc();
            obs.adapted_columns.add(kb.len() as u64);
            if let Some(t0) = t0 {
                obs.adapt_latency_ns.record(t0.elapsed_ns());
            }
            obs.record_scores(&scores);
        }
        scores
    }

    /// The adapted classifier columns (`location -> θ'_l`) for inspection
    /// and tests; mirrors `predict_scores` step 2–3 without scoring.
    pub fn adapted_columns<M: TtaModel>(
        &self,
        model: &M,
        store: &ParamStore,
        sample: &Sample,
    ) -> HashMap<usize, Vec<f32>> {
        let hiddens = model.patterns(store, sample);
        let n = hiddens.rows();
        if n < 2 {
            return HashMap::new();
        }
        let h_test = hiddens.row(n - 1);
        let theta = store.value(model.theta_param());
        let mut kb: HashMap<usize, HeapTopM> = HashMap::new();
        for k in 0..n - 1 {
            let label = sample.recent[k + 1].loc.index();
            let importance = cosine_similarity(h_test, hiddens.row(k));
            kb.entry(label)
                .or_insert_with(|| HeapTopM::new(self.config.capacity))
                .push(importance, hiddens.row(k));
        }
        kb.into_iter()
            .map(|(loc, top)| (loc, centroid_with_seed(&theta.col(loc), &top)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AdaMoveConfig;
    use adamove_mobility::{LocationId, Point, Timestamp, UserId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pt(loc: u32, h: i64) -> Point {
        Point::new(loc, Timestamp::from_hours(h))
    }

    fn sample(recent_locs: &[u32], target: u32) -> Sample {
        Sample {
            user: UserId(0),
            recent: recent_locs
                .iter()
                .enumerate()
                .map(|(i, &l)| pt(l, i as i64 * 2))
                .collect(),
            history: vec![],
            target: LocationId(target),
            target_time: Timestamp::from_hours(100),
        }
    }

    fn model() -> (ParamStore, LightMob) {
        let mut rng = StdRng::seed_from_u64(21);
        let mut store = ParamStore::new();
        let m = LightMob::new(&mut store, AdaMoveConfig::tiny(), 12, 3, &mut rng);
        (store, m)
    }

    #[test]
    fn single_point_input_falls_back_to_frozen_prediction() {
        let (store, m) = model();
        let s = sample(&[3], 5);
        let ptta = Ptta::default();
        let adapted = ptta.predict_scores(&m, &store, &s);
        let frozen = m.predict_scores(&store, &s.recent, s.user);
        assert_eq!(adapted, frozen);
    }

    #[test]
    fn adaptation_changes_only_labelled_columns() {
        let (store, m) = model();
        // recent = [1, 2, 1, 2, 3]: labels observed = {2, 1, 2, 3}.
        let s = sample(&[1, 2, 1, 2, 3], 4);
        let ptta = Ptta::default();
        let adapted = ptta.predict_scores(&m, &store, &s);
        let frozen = m.predict_scores(&store, &s.recent, s.user);
        let changed: Vec<usize> = (0..12)
            .filter(|&l| (adapted[l] - frozen[l]).abs() > 1e-7)
            .collect();
        // Exactly the labelled locations can change.
        for &l in &changed {
            assert!([1, 2, 3].contains(&l), "unexpected column {l} changed");
        }
        assert!(!changed.is_empty(), "adaptation had no effect at all");
    }

    #[test]
    fn adapted_columns_are_centroids() {
        let (store, m) = model();
        let s = sample(&[1, 2, 3], 4);
        let ptta = Ptta::default();
        let cols = ptta.adapted_columns(&m, &store, &s);
        // Labels: recent[1].loc = 2 (pattern = hidden of [1]),
        //         recent[2].loc = 3 (pattern = hidden of [1,2]).
        assert_eq!(cols.len(), 2);
        let theta = store.value(m.theta());
        let hiddens = m.prefix_hidden_states(&store, &s.recent, s.user);
        let expected2: Vec<f32> = theta
            .col(2)
            .iter()
            .zip(hiddens.row(0))
            .map(|(&t, &h)| (t + h) / 2.0)
            .collect();
        for (a, b) in cols[&2].iter().zip(&expected2) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn capacity_one_keeps_most_similar_pattern() {
        let (store, m) = model();
        let s = sample(&[1, 2, 1, 2, 1, 2], 3);
        let small = Ptta::new(PttaConfig {
            capacity: 1,
            ..PttaConfig::default()
        });
        let big = Ptta::new(PttaConfig {
            capacity: 10,
            ..PttaConfig::default()
        });
        // Both must run; with capacity 1 each column is a 2-vector mean,
        // with capacity 10 more patterns contribute -> different scores.
        let s1 = small.predict_scores(&m, &store, &s);
        let s10 = big.predict_scores(&m, &store, &s);
        assert_ne!(s1, s10);
    }

    #[test]
    fn entropy_variant_differs_from_similarity() {
        let (store, m) = model();
        let s = sample(&[1, 2, 3, 1, 2, 3, 1], 4);
        let sim = Ptta::default().predict_scores(&m, &store, &s);
        let ent = Ptta::new(PttaConfig {
            capacity: 1,
            importance: ImportanceStrategy::Entropy,
            labels: LabelStrategy::Real,
        })
        .predict_scores(&m, &store, &s);
        // With capacity 1 the kept pattern can differ between strategies;
        // at minimum the code path runs and produces finite scores.
        assert!(ent.iter().all(|v| v.is_finite()));
        assert_eq!(sim.len(), ent.len());
    }

    #[test]
    fn pseudo_label_variant_buckets_by_prediction() {
        let (store, m) = model();
        let s = sample(&[1, 2, 3, 1], 4);
        let pseudo = Ptta::new(PttaConfig {
            capacity: 5,
            importance: ImportanceStrategy::Similarity,
            labels: LabelStrategy::Pseudo,
        });
        let scores = pseudo.predict_scores(&m, &store, &s);
        assert!(scores.iter().all(|v| v.is_finite()));
        // Pseudo labels come from argmax of prefix logits: the changed
        // columns must be among the model's per-prefix predictions.
        let frozen = m.predict_scores(&store, &s.recent, s.user);
        let hiddens = m.prefix_hidden_states(&store, &s.recent, s.user);
        let theta = store.value(m.theta());
        let logits = hiddens.matmul(theta).unwrap();
        let predicted: std::collections::HashSet<usize> = (0..3)
            .map(|k| adamove_tensor::matrix::argmax(logits.row(k)))
            .collect();
        for l in 0..12 {
            if (scores[l] - frozen[l]).abs() > 1e-7 {
                assert!(
                    predicted.contains(&l),
                    "column {l} changed without a pseudo label"
                );
            }
        }
    }

    #[test]
    fn ptta_obs_counts_updates_and_drift_signal() {
        let (store, m) = model();
        let registry = Registry::new();
        let mut ptta = Ptta::default();
        ptta.set_obs(PttaObs::register(&registry, &[]));

        // Single point: no patterns, adaptation skipped.
        let _ = ptta.predict_scores(&m, &store, &sample(&[3], 5));
        // Labels observed {2, 1, 3}: three columns adapted.
        let _ = ptta.predict_scores(&m, &store, &sample(&[1, 2, 1, 2, 3], 4));

        let snap = registry.snapshot();
        assert_eq!(snap.counters["ptta_updates_skipped_total"], 1);
        assert_eq!(snap.counters["ptta_updates_applied_total"], 1);
        assert_eq!(snap.counters["ptta_adapted_columns_total"], 3);
        assert_eq!(snap.histograms["ptta_adapt_latency_ns"].count, 2);
        // Drift signal recorded only for the adapted prediction.
        assert_eq!(snap.histograms["ptta_entropy_millinats"].count, 1);
        let conf = &snap.histograms["ptta_confidence_bp"];
        assert_eq!(conf.count, 1);
        // Max softmax probability is in (0, 1] -> at most 10000 bp.
        assert!(conf.sum >= 1 && conf.sum <= 10_000);
    }

    #[test]
    fn drift_signal_helper_is_consistent_and_ordered() {
        let scores = vec![0.1f32, 2.0, -1.0, 0.5];
        let (ent, conf) = score_drift_signal(&scores);
        assert_eq!(ent, score_entropy_millinats(&scores));
        assert!(conf <= 10_000);
        // Uniform scores: maximum entropy ln(4) ~ 1386 millinats.
        let (uniform, _) = score_drift_signal(&[0.0; 4]);
        assert!((uniform as i64 - 1386).abs() <= 1);
        // A confident spike has much lower entropy and high confidence.
        let (peaked, peaked_conf) = score_drift_signal(&[10.0, 0.0, 0.0, 0.0]);
        assert!(peaked < uniform);
        assert!(peaked_conf > 9_000);
    }

    #[test]
    fn batched_predict_scores_is_bit_identical_to_per_sample() {
        let (store, m) = model();
        // Mixed lengths (including a single-point fallback sample) force
        // the length-bucketing path in `patterns_batch`.
        let samples = [
            sample(&[1, 2, 1, 2, 3], 4),
            sample(&[3], 5),
            sample(&[7, 7, 7, 7, 7], 7),
            sample(&[2, 1, 3, 1, 2], 4),
            sample(&[1, 2, 3], 4),
        ];
        let refs: Vec<&Sample> = samples.iter().collect();
        let ptta = Ptta::default();
        let batched = ptta.predict_scores_batch(&m, &store, &refs);
        assert_eq!(batched.len(), samples.len());
        for (i, s) in samples.iter().enumerate() {
            let solo = ptta.predict_scores(&m, &store, s);
            let bits = |xs: &[f32]| xs.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&solo), bits(&batched[i]), "sample {i}");
        }
        assert!(ptta.predict_scores_batch(&m, &store, &[]).is_empty());
    }

    #[test]
    fn repeated_visits_reinforce_the_revisited_location() {
        // A strongly repetitive trajectory 7->7->7->7 should, after
        // adaptation, raise location 7's score relative to the frozen model
        // (its column becomes a centroid of patterns similar to h_test).
        let (store, m) = model();
        let s = sample(&[7, 7, 7, 7, 7], 7);
        let ptta = Ptta::default();
        let adapted = ptta.predict_scores(&m, &store, &s);
        let frozen = m.predict_scores(&store, &s.recent, s.user);
        let adapted_rank = adamove_tensor::stats::rank_of(&adapted, 7);
        let frozen_rank = adamove_tensor::stats::rank_of(&frozen, 7);
        assert!(
            adapted_rank <= frozen_rank,
            "adaptation should not demote the repeated location: {adapted_rank} vs {frozen_rank}"
        );
    }
}
