//! The PTTA knowledge base: bounded top-`M` pattern keepers.
//!
//! The paper's complexity analysis (§III-B) argues the per-location top-`M`
//! list "can be implemented by a priority queue, in which case the queue
//! updating only takes `O(log M)`". [`HeapTopM`] is that structure — a
//! min-heap keyed on importance, evicting the least important pattern on
//! overflow. [`LinearTopM`] is the literal Algorithm 1 formulation (scan
//! for the minimum, lines 14–16), kept as the differential-testing
//! reference and for the `M` is tiny case where a scan beats a heap.
//!
//! Both maintain the same invariant: after any sequence of pushes, the kept
//! set is exactly the `M` highest-importance patterns seen (ties broken by
//! arrival order in an implementation-defined way — centroids are
//! order-insensitive, so PTTA's output does not depend on the tie-break).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An `f32` importance that orders as a min-heap key (`BinaryHeap` is a
/// max-heap, so comparisons are reversed). NaN importances are rejected at
/// insertion, making the ordering total.
#[derive(Debug, Clone, Copy, PartialEq)]
struct MinKey(f32);

impl Eq for MinKey {}

impl PartialOrd for MinKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MinKey {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: smaller importance = greater heap priority (popped first).
        other
            .0
            .partial_cmp(&self.0)
            .expect("MinKey: NaN importance rejected at push")
    }
}

#[derive(Debug, Clone)]
struct HeapEntry {
    key: MinKey,
    pattern: Vec<f32>,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key.cmp(&other.key)
    }
}

/// A bounded top-`M` keeper. Implementations must keep exactly the `M`
/// highest-importance `(importance, pattern)` pairs pushed so far.
pub trait TopM {
    /// Offer a pattern with the given importance. Non-finite importances
    /// are ignored (a NaN cosine similarity means a degenerate pattern).
    fn push(&mut self, importance: f32, pattern: &[f32]);
    /// Number of kept patterns (`<= capacity`).
    fn len(&self) -> usize;
    /// True when nothing has been kept.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Iterate the kept patterns (order unspecified).
    fn patterns(&self) -> Vec<&[f32]>;
}

/// Priority-queue keeper: `O(log M)` per overflow update (§III-B).
#[derive(Debug, Clone)]
pub struct HeapTopM {
    capacity: usize,
    heap: BinaryHeap<HeapEntry>,
}

impl HeapTopM {
    /// Keeper holding at most `capacity` patterns.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            heap: BinaryHeap::with_capacity(capacity + 1),
        }
    }

    /// The minimum kept importance, if any.
    pub fn min_importance(&self) -> Option<f32> {
        self.heap.peek().map(|e| e.key.0)
    }
}

impl TopM for HeapTopM {
    fn push(&mut self, importance: f32, pattern: &[f32]) {
        if !importance.is_finite() || self.capacity == 0 {
            return;
        }
        if self.heap.len() < self.capacity {
            self.heap.push(HeapEntry {
                key: MinKey(importance),
                pattern: pattern.to_vec(),
            });
            return;
        }
        // Full: the root is the current minimum (lines 14-16 of Alg. 1).
        if let Some(min) = self.heap.peek() {
            if importance > min.key.0 {
                self.heap.pop();
                self.heap.push(HeapEntry {
                    key: MinKey(importance),
                    pattern: pattern.to_vec(),
                });
            }
        }
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn patterns(&self) -> Vec<&[f32]> {
        self.heap.iter().map(|e| e.pattern.as_slice()).collect()
    }
}

/// Literal Algorithm 1 keeper: linear scan for the minimum on overflow.
/// `O(M)` per update, faster in practice for the paper's `M = 5`.
#[derive(Debug, Clone)]
pub struct LinearTopM {
    capacity: usize,
    entries: Vec<(f32, Vec<f32>)>,
}

impl LinearTopM {
    /// Keeper holding at most `capacity` patterns.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            entries: Vec::with_capacity(capacity.min(16)),
        }
    }
}

impl TopM for LinearTopM {
    fn push(&mut self, importance: f32, pattern: &[f32]) {
        if !importance.is_finite() || self.capacity == 0 {
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.push((importance, pattern.to_vec()));
            return;
        }
        let (min_idx, min_imp) = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, (imp, _))| (i, *imp))
            .fold(
                (0, f32::INFINITY),
                |acc, cur| if cur.1 < acc.1 { cur } else { acc },
            );
        if importance > min_imp {
            self.entries[min_idx] = (importance, pattern.to_vec());
        }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn patterns(&self) -> Vec<&[f32]> {
        self.entries.iter().map(|(_, p)| p.as_slice()).collect()
    }
}

/// Centroid of `{seed} ∪ kept patterns` (paper Eq. 2): the adjusted
/// classifier column `θ'_l`.
pub fn centroid_with_seed(seed: &[f32], keeper: &dyn TopM) -> Vec<f32> {
    let mut out = seed.to_vec();
    let patterns = keeper.patterns();
    for p in &patterns {
        debug_assert_eq!(p.len(), out.len(), "centroid: pattern width mismatch");
        for (o, &v) in out.iter_mut().zip(*p) {
            *o += v;
        }
    }
    let denom = (patterns.len() + 1) as f32;
    for o in &mut out {
        *o /= denom;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn kept_importances(keeper: &dyn TopM, all: &[(f32, Vec<f32>)]) -> Vec<f32> {
        // Recover importances by matching patterns (unique by construction).
        let mut out: Vec<f32> = keeper
            .patterns()
            .iter()
            .map(|kept| {
                all.iter()
                    .find(|(_, p)| p.as_slice() == *kept)
                    .map(|(i, _)| *i)
                    .expect("kept pattern must come from the input")
            })
            .collect();
        out.sort_by(|a, b| b.partial_cmp(a).unwrap());
        out
    }

    fn reference_top_m(all: &[(f32, Vec<f32>)], m: usize) -> Vec<f32> {
        let mut imps: Vec<f32> = all.iter().map(|(i, _)| *i).collect();
        imps.sort_by(|a, b| b.partial_cmp(a).unwrap());
        imps.truncate(m);
        imps
    }

    #[test]
    fn heap_keeps_highest() {
        let mut h = HeapTopM::new(2);
        h.push(0.3, &[1.0]);
        h.push(0.9, &[2.0]);
        h.push(0.5, &[3.0]);
        h.push(0.1, &[4.0]);
        assert_eq!(h.len(), 2);
        assert_eq!(h.min_importance(), Some(0.5));
    }

    #[test]
    fn zero_capacity_keeps_nothing() {
        let mut h = HeapTopM::new(0);
        h.push(1.0, &[1.0]);
        assert!(h.is_empty());
        let mut l = LinearTopM::new(0);
        l.push(1.0, &[1.0]);
        assert!(l.is_empty());
    }

    #[test]
    fn nan_importance_is_rejected() {
        let mut h = HeapTopM::new(3);
        h.push(f32::NAN, &[1.0]);
        h.push(f32::INFINITY, &[2.0]);
        h.push(0.5, &[3.0]);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn centroid_with_seed_is_mean() {
        let mut h = HeapTopM::new(4);
        h.push(1.0, &[3.0, 3.0]);
        h.push(0.5, &[6.0, 0.0]);
        let c = centroid_with_seed(&[0.0, 0.0], &h);
        assert_eq!(c, vec![3.0, 1.0]);
        // Empty keeper: centroid is the seed itself.
        let empty = HeapTopM::new(4);
        assert_eq!(centroid_with_seed(&[2.0], &empty), vec![2.0]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(60))]

        /// Both keepers retain exactly the M highest importances.
        #[test]
        fn keepers_match_full_sort(
            imps in prop::collection::vec(-100i32..100, 1..40),
            m in 1usize..10,
        ) {
            // Distinct importances via index perturbation so pattern-based
            // recovery is unambiguous.
            let all: Vec<(f32, Vec<f32>)> = imps
                .iter()
                .enumerate()
                .map(|(i, &v)| (v as f32 + i as f32 * 1e-3, vec![i as f32]))
                .collect();
            let mut heap = HeapTopM::new(m);
            let mut linear = LinearTopM::new(m);
            for (imp, p) in &all {
                heap.push(*imp, p);
                linear.push(*imp, p);
            }
            let expected = reference_top_m(&all, m);
            prop_assert_eq!(kept_importances(&heap, &all), expected.clone());
            prop_assert_eq!(kept_importances(&linear, &all), expected);
        }

        /// Centroids from both keepers agree (order-insensitive).
        #[test]
        fn centroids_agree(
            imps in prop::collection::vec(-50i32..50, 1..25),
            m in 1usize..8,
        ) {
            let all: Vec<(f32, Vec<f32>)> = imps
                .iter()
                .enumerate()
                .map(|(i, &v)| (v as f32 + i as f32 * 1e-3, vec![i as f32, -(i as f32)]))
                .collect();
            let mut heap = HeapTopM::new(m);
            let mut linear = LinearTopM::new(m);
            for (imp, p) in &all {
                heap.push(*imp, p);
                linear.push(*imp, p);
            }
            let seed = vec![1.0, 2.0];
            let ch = centroid_with_seed(&seed, &heap);
            let cl = centroid_with_seed(&seed, &linear);
            for (a, b) in ch.iter().zip(&cl) {
                prop_assert!((a - b).abs() < 1e-4);
            }
        }
    }
}
